//! # Bernoulli-RS
//!
//! A Rust reproduction of *“A Framework for Sparse Matrix Code Synthesis
//! from High-level Specifications”* (Ahmed, Mateev, Pingali, Stodghill;
//! SC 2000) — the Bernoulli sparse compiler.
//!
//! The system synthesizes efficient *data-centric* sparse matrix code from
//! two inputs:
//!
//! 1. a **dense-matrix program** — an imperfectly-nested affine loop nest
//!    written as if every matrix were dense (see [`ir`]), and
//! 2. a **format description** — the index structure of each sparse matrix,
//!    expressed in the view grammar of the paper's Fig. 6 (see
//!    [`formats::view`]).
//!
//! The synthesis pipeline (see [`synth`]) embeds statement instances into a
//! product of iteration and data spaces, verifies legality against the
//! program's dependence classes, eliminates redundant dimensions, infers
//! enumeration directions, fuses common enumerations, and emits either an
//! executable plan (interpreted against real formats) or specialized Rust
//! source code.
//!
//! ## Quick start
//!
//! The staged driver is a [`Session`]: a long-lived compiler object
//! owning the worker pool, the polyhedral memo caches and the plan
//! cache, so repeated compiles stay warm and every failure surfaces as
//! a typed [`Error`].
//!
//! ```
//! use bernoulli::prelude::*;
//!
//! fn main() -> Result<(), bernoulli::Error> {
//!     let session = Session::new();
//!     // Dense specification: y += A·x (written as if A were dense).
//!     let spec = kernels::mvm();
//!     // A sparse matrix in CSR format.
//!     let a = Csr::from_triplets(&Triplets::from_entries(
//!         3, 3, &[(0, 0, 2.0), (1, 2, 1.0), (2, 1, 4.0)]));
//!     // Bind the CSR index structure and synthesize a data-centric plan.
//!     let bound = session.bind(&spec, &[("A", a.format_view())])?;
//!     let kernel = session.compile(&bound)?;
//!     // Execute it against the real matrix.
//!     let mut env = ExecEnv::new();
//!     env.set_param("M", 3).set_param("N", 3);
//!     env.bind_sparse("A", &a);
//!     env.bind_vec("x", vec![1.0, 2.0, 3.0]);
//!     env.bind_vec("y", vec![0.0; 3]);
//!     kernel.interpret(&mut env)?;
//!     assert_eq!(env.take_vec("y"), vec![2.0, 3.0, 8.0]);
//!     Ok(())
//! }
//! ```

pub use bernoulli_blas as blas;
pub use bernoulli_formats as formats;
pub use bernoulli_ir as ir;
pub use bernoulli_numeric as numeric;
pub use bernoulli_polyhedra as polyhedra;
pub use bernoulli_synth as synth;

pub use bernoulli_synth::{
    BoundProblem, Budget, BudgetError, CancelToken, CompiledKernel, DepReport, Session,
};

// Structure-aware selection (S40): instance features drive the cost
// model and the format/plan advisor.
pub use bernoulli_formats::{vector_features, StructureFeatures};
pub use bernoulli_synth::{Advice, AdviceEntry, WorkloadStats, DEFAULT_ADVISOR_FORMATS};

// The multi-tenant compile service (S38): concurrent `compile` calls
// over shared cache tiers, with admission control and an optional
// persistent plan cache for warm-start across restarts.
pub use bernoulli_synth::{
    CacheMode, PersistStats, PersistentPlanCache, Service, ServiceConfig, ServiceError,
    ServiceStats,
};

// The compiled-kernel execution path (S37): `CompiledKernel::load` and
// the unified compiled-or-interpreted runner, plus the on-disk artifact
// cache behind it.
pub use bernoulli_synth::{
    clear_kernel_validation_memo, kernel_cache_stats, kernel_cache_stats_reset,
    kernel_validation_enabled, rustc_info, set_kernel_validation, KernelArg, KernelBackend,
    KernelCacheError, KernelCacheStats, KernelCallError, KernelStore, LoadError, LoadedKernel,
};

/// The workspace-wide error type: every crate's typed error converges
/// here via `From`, so embedding code can `?` any stage of the pipeline
/// into one `Result<_, bernoulli::Error>`.
#[derive(Debug)]
pub enum Error {
    /// Program-level failure: syntax, semantics, or reference execution.
    Ir(bernoulli_ir::IrError),
    /// Format-layer failure: unknown formats, violated constraints.
    Format(bernoulli_formats::FormatError),
    /// Polyhedral-layer failure (caller-triggerable API misuse).
    Poly(bernoulli_polyhedra::PolyError),
    /// Synthesis failure: binding, search, interpretation or emission.
    Synth(bernoulli_synth::SynthError),
    /// Service-layer rejection: shed load or an expired queue deadline
    /// (the compile never ran). Admitted-compile failures unwrap to
    /// [`Error::Synth`] instead.
    Service(bernoulli_synth::ServiceError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Ir(e) => e.fmt(f),
            Error::Format(e) => e.fmt(f),
            Error::Poly(e) => e.fmt(f),
            Error::Synth(e) => e.fmt(f),
            Error::Service(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Ir(e) => Some(e),
            Error::Format(e) => Some(e),
            Error::Poly(e) => Some(e),
            Error::Synth(e) => Some(e),
            Error::Service(e) => Some(e),
        }
    }
}

impl From<bernoulli_ir::IrError> for Error {
    fn from(e: bernoulli_ir::IrError) -> Error {
        Error::Ir(e)
    }
}

impl From<bernoulli_ir::ParseError> for Error {
    fn from(e: bernoulli_ir::ParseError) -> Error {
        Error::Ir(e.into())
    }
}

impl From<bernoulli_ir::ValidateError> for Error {
    fn from(e: bernoulli_ir::ValidateError) -> Error {
        Error::Ir(e.into())
    }
}

impl From<bernoulli_formats::FormatError> for Error {
    fn from(e: bernoulli_formats::FormatError) -> Error {
        Error::Format(e)
    }
}

impl From<bernoulli_polyhedra::PolyError> for Error {
    fn from(e: bernoulli_polyhedra::PolyError) -> Error {
        Error::Poly(e)
    }
}

impl From<bernoulli_synth::SynthError> for Error {
    fn from(e: bernoulli_synth::SynthError) -> Error {
        Error::Synth(e)
    }
}

impl From<bernoulli_synth::ServiceError> for Error {
    fn from(e: bernoulli_synth::ServiceError) -> Error {
        // An admitted compile that failed is a synthesis error; only
        // genuine service-layer rejections keep the `Service` tag.
        match e {
            bernoulli_synth::ServiceError::Synth(inner) => Error::Synth(inner),
            other => Error::Service(other),
        }
    }
}

impl From<bernoulli_synth::PlanError> for Error {
    fn from(e: bernoulli_synth::PlanError) -> Error {
        Error::Synth(e.into())
    }
}

impl From<bernoulli_synth::EmitError> for Error {
    fn from(e: bernoulli_synth::EmitError) -> Error {
        Error::Synth(e.into())
    }
}

impl From<bernoulli_synth::ConfigError> for Error {
    fn from(e: bernoulli_synth::ConfigError) -> Error {
        Error::Synth(e.into())
    }
}

/// Convenience re-exports for the common workflow.
pub mod prelude {
    pub use crate::{Advice, AdviceEntry, StructureFeatures, WorkloadStats};
    pub use crate::{
        BoundProblem, Budget, BudgetError, CancelToken, CompiledKernel, DepReport, Error, Session,
    };
    pub use crate::{CacheMode, Service, ServiceConfig, ServiceError, ServiceStats};
    pub use bernoulli_blas::kernels;
    pub use bernoulli_formats::{
        block_fill, discover_block_size, discover_strips, AnyFormat, BlockReport, Bsr, Coo, Csc,
        Csr, Dense, Dia, DiagSplit, Ell, HashVec, Jad, SparseMatrix, SparseVec, SparseView,
        Triplets, Vbr,
    };
    pub use bernoulli_ir::{parse_program, Program};
    pub use bernoulli_synth::{run_plan, synthesize, ExecEnv, SearchReport, SynthOptions};
    pub use bernoulli_synth::{KernelArg, KernelBackend, KernelStore, LoadError, LoadedKernel};
}
