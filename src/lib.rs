//! # Bernoulli-RS
//!
//! A Rust reproduction of *“A Framework for Sparse Matrix Code Synthesis
//! from High-level Specifications”* (Ahmed, Mateev, Pingali, Stodghill;
//! SC 2000) — the Bernoulli sparse compiler.
//!
//! The system synthesizes efficient *data-centric* sparse matrix code from
//! two inputs:
//!
//! 1. a **dense-matrix program** — an imperfectly-nested affine loop nest
//!    written as if every matrix were dense (see [`ir`]), and
//! 2. a **format description** — the index structure of each sparse matrix,
//!    expressed in the view grammar of the paper's Fig. 6 (see
//!    [`formats::view`]).
//!
//! The synthesis pipeline (see [`synth`]) embeds statement instances into a
//! product of iteration and data spaces, verifies legality against the
//! program's dependence classes, eliminates redundant dimensions, infers
//! enumeration directions, fuses common enumerations, and emits either an
//! executable plan (interpreted against real formats) or specialized Rust
//! source code.
//!
//! ## Quick start
//!
//! ```
//! use bernoulli::prelude::*;
//!
//! // Dense specification: y += A·x (written as if A were dense).
//! let spec = kernels::mvm();
//! // A sparse matrix in CSR format.
//! let a = Csr::from_triplets(&Triplets::from_entries(
//!     3, 3, &[(0, 0, 2.0), (1, 2, 1.0), (2, 1, 4.0)]));
//! // Synthesize a data-centric plan for the CSR index structure.
//! let synthesized =
//!     synthesize(&spec, &[("A", a.format_view())], &SynthOptions::default())
//!         .expect("legal plan");
//! // Execute it against the real matrix.
//! let mut env = ExecEnv::new();
//! env.set_param("M", 3).set_param("N", 3);
//! env.bind_sparse("A", &a);
//! env.bind_vec("x", vec![1.0, 2.0, 3.0]);
//! env.bind_vec("y", vec![0.0; 3]);
//! run_plan(&synthesized.plan, &mut env).unwrap();
//! assert_eq!(env.take_vec("y"), vec![2.0, 3.0, 8.0]);
//! ```

pub use bernoulli_blas as blas;
pub use bernoulli_formats as formats;
pub use bernoulli_ir as ir;
pub use bernoulli_numeric as numeric;
pub use bernoulli_polyhedra as polyhedra;
pub use bernoulli_synth as synth;

/// Convenience re-exports for the common workflow.
pub mod prelude {
    pub use bernoulli_blas::kernels;
    pub use bernoulli_formats::{
        Coo, Csc, Csr, Dense, Dia, DiagSplit, Ell, HashVec, Jad, SparseMatrix, SparseVec,
        SparseView, Triplets,
    };
    pub use bernoulli_ir::{parse_program, Program};
    pub use bernoulli_synth::{run_plan, synthesize, ExecEnv, SynthOptions};
}
