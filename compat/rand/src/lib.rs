//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *API subset it actually uses* — `StdRng::seed_from_u64`
//! and `Rng::gen_range` over integer and float ranges — behind the same
//! paths as the real crate (`rand::rngs::StdRng`, `rand::{Rng,
//! SeedableRng}`). The generator is xoshiro256++ seeded through
//! SplitMix64: deterministic for a fixed seed, well-distributed, and
//! fast. The stream differs from the real `StdRng` (ChaCha12), which is
//! fine — every consumer in this workspace treats the stream as an
//! arbitrary deterministic function of the seed.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing sampling methods, blanket-implemented for every core
/// generator like the real crate does.
pub trait Rng: RngCore {
    /// Uniform draw from an integer or float range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Uniform draw from `[0, 1)`.
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        // 53 mantissa bits -> [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A random bool.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen_f64() < p
    }
}

impl<R: RngCore> Rng for R {}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// i128 spans can exceed u128 halfway; the workspace only uses small
// i128 ranges, so the i128 implementation goes through i64 arithmetic.
impl SampleRange<i128> for Range<i128> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> i128 {
        assert!(self.start < self.end, "empty range");
        let span = self.end.wrapping_sub(self.start) as u128;
        let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
        self.start.wrapping_add(r as i128)
    }
}
impl SampleRange<i128> for RangeInclusive<i128> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> i128 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let span = hi.wrapping_sub(lo) as u128 + 1;
        let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
        lo.wrapping_add(r as i128)
    }
}

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (self.end - self.start) * unit as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + (hi - lo) * unit as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_range(0..u64::MAX)).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let u = rng.gen_range(3..17usize);
            assert!((3..17).contains(&u));
            let i = rng.gen_range(-5i128..=5);
            assert!((-5..=5).contains(&i));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn covers_full_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..=3usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
