//! Boolean strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngCore;

/// Strategy producing uniformly random booleans.
#[derive(Clone, Copy, Debug)]
pub struct Any;

/// A uniformly random `bool` (the real crate's `proptest::bool::ANY`).
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
