//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the proptest API subset its property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`, range and tuple
//! strategies, [`collection::vec`] / [`collection::btree_set`],
//! [`bool::ANY`], [`test_runner::ProptestConfig`], and the `proptest!` /
//! `prop_assert*` macros.
//!
//! Semantics match the real crate where the tests can observe it:
//! strategies draw deterministically from a per-test seeded RNG and the
//! configured number of cases runs. The deliberate difference is **no
//! shrinking** — a failing case panics with the assertion message
//! directly (the generated inputs for a failure are reproducible because
//! the per-test seed is fixed).

pub mod bool;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// `Just(value)` — the constant strategy.
pub use strategy::Just;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 0..10usize, (a, b) in (0..5u32, -3i64..=3)) {
            prop_assert!(x < 10);
            prop_assert!(a < 5);
            prop_assert!((-3..=3).contains(&b));
        }

        #[test]
        fn collections(v in crate::collection::vec(0..100u8, 0..8),
                       s in crate::collection::btree_set((0..4usize, 0..4usize), 0..=10)) {
            prop_assert!(v.len() < 8);
            prop_assert!(s.len() <= 10);
        }

        #[test]
        fn mapping(n in (1..5usize).prop_map(|k| k * 2)) {
            prop_assert!(n % 2 == 0);
            prop_assert!((2..10).contains(&n));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0..1000u32, 5..9);
        let mut r1 = crate::test_runner::TestRng::from_name("det");
        let mut r2 = crate::test_runner::TestRng::from_name("det");
        for _ in 0..10 {
            assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
        }
    }

    #[test]
    fn bool_any_hits_both() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::from_name("bools");
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[crate::bool::ANY.generate(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
