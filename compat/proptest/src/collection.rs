//! Collection strategies: `vec` and `btree_set` with flexible size
//! specifications (`n`, `a..b`, `a..=b`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// A size specification for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}
impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}
impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Result of [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with a target size drawn from
/// `size`. If the element space is too small to reach the target (e.g.
/// few distinct values), the set saturates at whatever was reached after
/// a bounded number of attempts — mirroring real proptest's rejection
/// cap without failing the test.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Result of [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        let max_attempts = 16 * target + 64;
        while out.len() < target && attempts < max_attempts {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}
