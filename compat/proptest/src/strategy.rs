//! The [`Strategy`] trait and its core implementations: ranges, tuples,
//! constants, and `prop_map`.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A generator of random values of type `Value`.
///
/// Unlike the real crate there is no value tree / shrinking: `generate`
/// produces the final value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `f(v)` for each generated `v`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// The constant strategy.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident/$idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0);
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
    (A/0, B/1, C/2, D/3, E/4);
    (A/0, B/1, C/2, D/3, E/4, F/5);
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// A boxed strategy (object-safe use of heterogeneous strategies).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}
