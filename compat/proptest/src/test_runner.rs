//! Test-runner configuration and the deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration for a `proptest!` block. Only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG strategies draw from. Seeded from the test's name so every
/// run of a given test sees the same case sequence (reproducible
/// failures without persistence files).
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Deterministic RNG for the named test.
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
