//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate::strategy::{BoxedStrategy, Just, Map, Strategy};
pub use crate::test_runner::{ProptestConfig, TestRng};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases drawn from a
/// deterministic per-test RNG. No shrinking — failures panic directly
/// with the assertion message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let __strategies = ($($strat,)+);
            let mut __rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for _ in 0..__config.cases {
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                $body
            }
        }
        $crate::__proptest_impl!(($config) $($rest)*);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { assert_ne!($($args)+) };
}
