//! Offline stand-in for the `criterion` crate.
//!
//! Implements the bench-definition API the workspace's benches use —
//! [`Criterion::benchmark_group`], [`Criterion::bench_function`],
//! [`Bencher::iter`], [`BenchmarkId`], `criterion_group!`,
//! `criterion_main!` — over a small fixed-budget timing loop instead of
//! the real crate's statistical machinery. Each benchmark prints one
//! `<name> ... time: <best> ns/iter (median <median>)` line. Good enough
//! to rank kernels; EXPERIMENTS.md carries the caveat.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of timed samples per benchmark.
const SAMPLES: usize = 7;
/// Wall-clock budget per sample.
const SAMPLE_BUDGET: Duration = Duration::from_millis(40);

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Mirrors the real API; CLI configuration is ignored.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _c: self,
        }
    }

    /// Runs one benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into().0, f);
        self
    }

    /// Mirrors the real API; nothing to summarize.
    pub fn final_summary(&self) {}
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    name: String,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id.into().0), f);
        self
    }

    /// Mirrors the real API; the sample count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Mirrors the real API; the time budget is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifies a benchmark: `function_name/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `BenchmarkId::new("kernel", param)` → `kernel/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Id consisting of the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}
impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// routine to measure.
pub struct Bencher {
    /// ns per iteration of each timed sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, recording per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: find an iteration count filling the
        // sample budget.
        black_box(routine());
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (SAMPLE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..SAMPLES {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let dt = t0.elapsed();
            self.samples.push(dt.as_nanos() as f64 / iters as f64);
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<48} (no measurement)");
        return;
    }
    b.samples.sort_by(|a, x| a.partial_cmp(x).unwrap());
    let best = b.samples[0];
    let median = b.samples[b.samples.len() / 2];
    println!("{name:<48} time: {best:14.1} ns/iter (median {median:14.1})");
}

/// Collects benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Defines `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.sample_size(10);
        g.bench_function(BenchmarkId::new("sum", 100), |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        g.finish();
        c.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
