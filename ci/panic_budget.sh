#!/usr/bin/env sh
# Blocking gate for the typed-error contract: the number of
# `unwrap(` / `expect(` / `panic!(` sites in the library sources of the
# four error-hierarchy crates (ir, formats, polyhedra, synth) must not
# grow. New caller-triggerable failures belong in the typed error
# enums (`IrError`, `FormatError`, `PolyError`, `SynthError`), not in
# panics; panics are reserved for internal invariants (and #[cfg(test)]
# code inside src/, which this textual count includes — keep that in
# mind when adjusting).
#
# When you genuinely remove panic sites, ratchet ci/panic_budget.txt
# down. Raising it needs a review that the new site really is an
# internal invariant that cannot be a Result.
set -eu
cd "$(dirname "$0")/.."

budget_file="ci/panic_budget.txt"
count=0
for dir in crates/ir/src crates/formats/src crates/polyhedra/src crates/synth/src; do
    c=$(grep -rEo '\.unwrap\(|\.expect\(|panic!\(' "$dir" --include='*.rs' | wc -l)
    echo "  $dir: $c"
    count=$((count + c))
done
budget=$(tr -d '[:space:]' < "$budget_file")
echo "panic-ish sites in lib sources: $count (budget: $budget)"
if [ "$count" -gt "$budget" ]; then
    echo "error: panic budget exceeded ($count > $budget)." >&2
    echo "Convert the new failure path to a typed error, or justify the" >&2
    echo "invariant and raise ci/panic_budget.txt in the same change." >&2
    exit 1
fi
