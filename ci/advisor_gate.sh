#!/usr/bin/env sh
# Blocking gate for the structure-aware advisor (S40): on the small
# tier of `experiments -- advisor`, the kernel/format pair the advisor
# picks must run within CEILING x the measured-best pair on every row
# (`small_max_regret` in BENCH_advisor.json). The large tier is
# reported but not gated here — wall-clock noise on 10^5+-row inputs
# makes a hard ceiling flaky; perf_diff tracks it non-blockingly.
#
# Usage: ci/advisor_gate.sh [path-to-BENCH_advisor.json]
set -eu
cd "$(dirname "$0")/.."

report="${1:-BENCH_advisor.json}"
ceiling="1.25"

if [ ! -f "$report" ]; then
    echo "error: $report not found — run 'experiments -- advisor' first." >&2
    exit 2
fi

regret=$(grep -o '"small_max_regret":[^,}]*' "$report" | head -n 1 \
    | cut -d: -f2 | tr -d '[:space:]')
if [ -z "$regret" ]; then
    echo "error: $report has no small_max_regret field." >&2
    exit 2
fi

echo "advisor small-tier max regret: $regret (ceiling: $ceiling)"
if awk -v r="$regret" -v c="$ceiling" 'BEGIN { exit !(r > c) }'; then
    echo "error: advisor regret ceiling exceeded ($regret > $ceiling)." >&2
    echo "The cost model picked a plan more than ${ceiling}x slower than the" >&2
    echo "measured best on a small-tier input. Inspect the per-row 'formats'" >&2
    echo "arrays in $report and recalibrate the model before merging." >&2
    exit 1
fi
