//! Structure-aware format/plan advice (ROADMAP item 1, SpComp-style).
//!
//! [`crate::session::Session::advise`] closes the paper's Fig. 11 loop
//! against the *instance*: it analyzes the matrix once
//! ([`StructureFeatures`]), derives the cost-model statistics from the
//! measurement ([`WorkloadStats::from_features`]), compiles the program
//! against each candidate format view, and returns every `(format,
//! plan)` pair ranked by predicted cost. Structure flows into the
//! views too — a lower-triangular instance adds the `r ≥ c` bound and
//! a stored-diagonal instance the `FullDiagonal` guarantee, so the
//! search sees exactly what a hand-annotated binding would declare.
//!
//! Advised compiles are ordinary compiles: they run through the same
//! plan-cache key machinery (the derived stats are deterministic, so a
//! second `advise` on the same instance is all cache hits), and the
//! returned [`CompiledKernel`]s interpret/load/emit like any other.

use crate::cost::WorkloadStats;
use crate::search::SynthError;
use crate::session::{bind_problem, BoundProblem, CompiledKernel};
use bernoulli_formats::formats::bsr::bsr_format_view;
use bernoulli_formats::formats::coo::coo_format_view;
use bernoulli_formats::formats::csc::csc_format_view;
use bernoulli_formats::formats::csr::csr_format_view;
use bernoulli_formats::formats::dia::dia_format_view;
use bernoulli_formats::formats::diagsplit::diagsplit_format_view;
use bernoulli_formats::formats::ell::ell_format_view;
use bernoulli_formats::formats::jad::jad_format_view;
use bernoulli_formats::formats::sky::sky_format_view;
use bernoulli_formats::formats::vbr::vbr_format_view;
use bernoulli_formats::view::{Bound, FormatView, StoredGuarantee};
use bernoulli_formats::{StructureFeatures, Triplets};
use bernoulli_ir::Program;

/// Candidate formats `advise` scores when the caller passes none:
/// the scalar general-purpose tier (every format here accepts any
/// pattern without blowup; `dia`/`bsr`/`vbr` opt in explicitly).
pub const DEFAULT_ADVISOR_FORMATS: &[&str] = &["coo", "csr", "csc", "ell", "jad"];

/// One scored `(format, plan)` pair of an [`Advice`] ranking.
#[derive(Clone, Debug)]
pub struct AdviceEntry {
    /// Format name (`"csr"`, `"jad"`, …).
    pub format: String,
    /// The cost model's prediction for the best plan on this format,
    /// under the stats derived from the instance.
    pub predicted_cost: f64,
    /// True when this candidate's search was served from the plan cache.
    pub from_cache: bool,
    /// The compiled kernel — interpret, load or emit it directly.
    pub kernel: CompiledKernel,
}

/// The advisor's report: instance features, derived statistics, and
/// every candidate ranked cheapest-first (ties broken by format name,
/// so the ranking is deterministic).
#[derive(Clone, Debug)]
pub struct Advice {
    /// Name of the advised matrix in the program.
    pub matrix: String,
    /// Measured structure of the instance.
    pub features: StructureFeatures,
    /// Cost-model statistics derived from `features`.
    pub stats: WorkloadStats,
    /// Scored candidates, cheapest predicted cost first. Never empty.
    pub ranked: Vec<AdviceEntry>,
    /// Candidates that could not be scored, with the reason (e.g. no
    /// legal plan for that view). Informational only.
    pub skipped: Vec<(String, String)>,
}

impl Advice {
    /// The chosen pair: the candidate with the lowest predicted cost.
    pub fn best(&self) -> &AdviceEntry {
        &self.ranked[0]
    }

    /// The entry for a specific format, if it was scored.
    pub fn entry(&self, format: &str) -> Option<&AdviceEntry> {
        self.ranked.iter().find(|e| e.format == format)
    }
}

/// Builds the candidate view for `format`, annotated with the bounds
/// and guarantees the instance's structure supports: `r ≥ c` when the
/// instance is lower triangular (and square), plus `FullDiagonal` when
/// the whole diagonal is stored — the annotations a hand binding would
/// add, now measured instead of asserted.
pub fn view_for_features(format: &str, f: &StructureFeatures) -> Result<FormatView, SynthError> {
    let mut v = match format {
        "coo" => coo_format_view(),
        "csr" => csr_format_view(),
        "csc" => csc_format_view(),
        "dia" => dia_format_view(),
        "ell" => ell_format_view(),
        "jad" => jad_format_view(),
        "sky" => sky_format_view(),
        "diagsplit" => diagsplit_format_view(),
        "bsr" => bsr_format_view(f.block.r.max(1), f.block.c.max(1)),
        "vbr" => vbr_format_view(),
        other => {
            return Err(SynthError::Config(crate::config::ConfigError(format!(
                "unknown advisor candidate format {other:?}"
            ))))
        }
    };
    if f.lower_triangular && f.nrows == f.ncols {
        v.bounds.push(Bound::attr_ge("r", "c"));
    }
    if f.full_diagonal() {
        v.guarantees.push(StoredGuarantee::FullDiagonal);
    }
    Ok(v)
}

/// Shared advisor loop behind [`Session::advise`] and
/// [`Service::advise`]. The `compile` closure runs one candidate:
/// `Ok(Err(_))` is a per-candidate synthesis failure (the format is
/// skipped), `Err(_)` aborts the whole advice (service shed, expired
/// deadline).
///
/// [`Session::advise`]: crate::session::Session::advise
/// [`Service::advise`]: crate::service::Service::advise
pub(crate) fn advise_core<E, F>(
    p: &Program,
    matrix: &str,
    t: &Triplets<f64>,
    formats: &[&str],
    mut compile: F,
) -> Result<Advice, E>
where
    E: From<SynthError>,
    F: FnMut(&BoundProblem, &WorkloadStats) -> Result<Result<CompiledKernel, SynthError>, E>,
{
    let formats = if formats.is_empty() {
        DEFAULT_ADVISOR_FORMATS
    } else {
        formats
    };
    let features = StructureFeatures::of_triplets(t);
    let stats = WorkloadStats::from_features(&[(matrix, &features)]);
    let mut ranked: Vec<AdviceEntry> = Vec::new();
    let mut skipped: Vec<(String, String)> = Vec::new();
    for &format in formats {
        let view = match view_for_features(format, &features) {
            Ok(v) => v,
            Err(e) => {
                skipped.push((format.to_string(), e.to_string()));
                continue;
            }
        };
        // Binding failures (unknown matrix, rank mismatch, invalid
        // program) are properties of the problem, not the candidate:
        // they would repeat for every format, so they abort the advice.
        let bound = bind_problem(p, &[(matrix, view)]).map_err(E::from)?;
        match compile(&bound, &stats)? {
            Ok(kernel) => ranked.push(AdviceEntry {
                format: format.to_string(),
                predicted_cost: kernel.cost(),
                from_cache: kernel.from_cache(),
                kernel,
            }),
            Err(e) => skipped.push((format.to_string(), e.to_string())),
        }
    }
    if ranked.is_empty() {
        return Err(E::from(SynthError::NoLegalPlan {
            reasons: skipped.iter().map(|(f, e)| format!("{f}: {e}")).collect(),
        }));
    }
    ranked.sort_by(|a, b| {
        a.predicted_cost
            .total_cmp(&b.predicted_cost)
            .then_with(|| a.format.cmp(&b.format))
    });
    Ok(Advice {
        matrix: matrix.to_string(),
        features,
        stats,
        ranked,
        skipped,
    })
}
