//! Zero safety: restricting execution to stored entries must preserve
//! semantics.
//!
//! Data-centric code only executes statement instances at *stored*
//! positions of the sparse matrices it enumerates or searches. That is
//! correct when, for every restricted reference of a statement, either
//!
//! - **annihilation**: the statement is a no-op when the reference reads
//!   zero — its right-hand side is `lhs ⊕ t₁ ⊕ …` where every `tᵢ` has
//!   the reference as a multiplicative factor (so unstored zeros
//!   contribute nothing); or
//! - **coverage**: the format *guarantees* storage over the statement's
//!   entire execution domain (e.g. the full-diagonal guarantee covers the
//!   `b[j] = b[j] / L[j][j]` division of triangular solve).
//!
//! The paper assumes this reasoning implicitly for the no-fill BLAS
//! (§1, §4); here it is an explicit, checkable pass: candidates that fail
//! are rejected.

use crate::config::Config;
use crate::plan::Plan;
use bernoulli_formats::view::FormatView;
use bernoulli_ir::{AffineExpr, LhsRef, Program, Statement, ValueExpr};
use bernoulli_polyhedra::{Constraint, LinExpr, System};
use std::collections::HashMap;

/// Zero-safety failure: the restriction is not provably semantics-
/// preserving.
#[derive(Debug, PartialEq)]
pub struct ZeroError(pub String);

impl std::fmt::Display for ZeroError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "zero-safety violation: {}", self.0)
    }
}

/// Checks every restricted (statement, reference) pair of a plan.
pub fn check_zero_safety(
    p: &Program,
    cfg: &Config,
    plan: &Plan,
    views: &HashMap<String, FormatView>,
) -> Result<Vec<String>, ZeroError> {
    let mut notes = Vec::new();
    for e in &plan.execs {
        let scopy = &cfg.stmts[e.stmt];
        for &rid in &e.required_refs {
            let rinst = &cfg.refs[rid];
            let view = views
                .get(&rinst.matrix)
                .ok_or_else(|| ZeroError(format!("no view for matrix {:?}", rinst.matrix)))?;
            if rinst.access_idx == 0 {
                // Restricted sparse *write*: only coverage can justify it.
                if covered_by_guarantee(p, scopy, rinst.access.as_slice(), view) {
                    notes.push(format!(
                        "S{}.{}: write to {:?} covered by storage guarantee",
                        e.orig + 1,
                        e.stmt,
                        rinst.matrix
                    ));
                    continue;
                }
                return Err(ZeroError(format!(
                    "statement S{} writes {:?} at possibly-unstored positions",
                    e.orig + 1,
                    rinst.matrix
                )));
            }
            if annihilated_by(&e.body, rinst.access_idx) {
                notes.push(format!(
                    "S{}.{}: annihilated by zeros of {:?}",
                    e.orig + 1,
                    e.stmt,
                    rinst.matrix
                ));
                continue;
            }
            if covered_by_guarantee(p, scopy, rinst.access.as_slice(), view) {
                notes.push(format!(
                    "S{}.{}: domain covered by {:?} storage guarantee",
                    e.orig + 1,
                    e.stmt,
                    rinst.matrix
                ));
                continue;
            }
            return Err(ZeroError(format!(
                "statement S{} is neither annihilated by nor covered for {:?}",
                e.orig + 1,
                rinst.matrix
            )));
        }
    }
    Ok(notes)
}

/// True iff the statement is a no-op whenever the read at `access_idx`
/// (1-based within the access list; 0 is the write) evaluates to zero.
pub fn annihilated_by(stmt: &Statement, access_idx: usize) -> bool {
    // Flatten the rhs into additive terms.
    let mut terms: Vec<(&ValueExpr, bool)> = Vec::new();
    flatten_sum(&stmt.rhs, false, &mut terms);
    // Number the reads in evaluation order to locate the target.
    // A term is either the bare accumulator Read(lhs) (allowed, exactly
    // once, positive) or must contain the target read as a multiplicative
    // factor.
    let mut counter = 1usize; // access 0 is the write
    let mut acc_seen = false;
    // NOTE: reads are numbered across the whole rhs in evaluation order,
    // which coincides with a left-to-right walk of the flattened terms.
    for (t, neg) in &terms {
        let nreads = t.reads().len();
        let range = counter..counter + nreads;
        counter += nreads;
        if let ValueExpr::Read(r) = t {
            if same_ref(r, &stmt.lhs) && !neg {
                if acc_seen {
                    return false;
                }
                acc_seen = true;
                if range.contains(&access_idx) {
                    // The target IS the accumulator: zeroing it changes
                    // the result; not annihilating.
                    return false;
                }
                continue;
            }
        }
        if range.contains(&access_idx) {
            if !is_multiplicative_factor(t, access_idx - range.start) {
                return false;
            }
        } else {
            // A term without the target must vanish... no: it only needs
            // to vanish if the STATEMENT must be a no-op; terms without
            // the target would still contribute. They make the statement
            // non-annihilated.
            return false;
        }
    }
    acc_seen
}

/// Is the `k`-th read (0-based within this term) a multiplicative factor
/// of the term (every path node above it is Mul/Neg, never a divisor)?
fn is_multiplicative_factor(term: &ValueExpr, k: usize) -> bool {
    fn walk(e: &ValueExpr, k: usize, offset: usize) -> Option<bool> {
        // Returns Some(is_factor) when the k-th read (global numbering
        // from `offset`) is inside e.
        match e {
            ValueExpr::Const(_) => None,
            ValueExpr::Read(_) => {
                if offset == k {
                    Some(true)
                } else {
                    None
                }
            }
            ValueExpr::Neg(a) => walk(a, k, offset),
            ValueExpr::Mul(a, b) => {
                let na = a.reads().len();
                walk(a, k, offset).or_else(|| walk(b, k, offset + na))
            }
            ValueExpr::Div(a, b) => {
                let na = a.reads().len();
                match walk(a, k, offset) {
                    Some(f) => Some(f),
                    // In the divisor: zero does NOT annihilate.
                    None => walk(b, k, offset + na).map(|_| false),
                }
            }
            ValueExpr::Add(a, b) | ValueExpr::Sub(a, b) => {
                // An additive subterm: the factor property fails unless
                // BOTH sides vanish — conservatively reject.
                let na = a.reads().len();
                walk(a, k, offset)
                    .or_else(|| walk(b, k, offset + na))
                    .map(|_| false)
            }
        }
    }
    walk(term, k, 0).unwrap_or(false)
}

fn same_ref(a: &LhsRef, b: &LhsRef) -> bool {
    a.array == b.array && a.idxs == b.idxs
}

fn flatten_sum<'a>(e: &'a ValueExpr, neg: bool, out: &mut Vec<(&'a ValueExpr, bool)>) {
    match e {
        ValueExpr::Add(a, b) => {
            flatten_sum(a, neg, out);
            flatten_sum(b, neg, out);
        }
        ValueExpr::Sub(a, b) => {
            flatten_sum(a, neg, out);
            flatten_sum(b, !neg, out);
        }
        other => out.push((other, neg)),
    }
}

/// True iff the statement's whole execution domain lies within a region
/// the view guarantees stored.
fn covered_by_guarantee(
    p: &Program,
    scopy: &crate::config::StmtCopy,
    access: &[AffineExpr],
    view: &FormatView,
) -> bool {
    use bernoulli_formats::view::StoredGuarantee;
    if view
        .guarantees
        .iter()
        .any(|g| matches!(g, StoredGuarantee::AllPositions))
    {
        return true;
    }
    if !view
        .guarantees
        .iter()
        .any(|g| matches!(g, StoredGuarantee::FullDiagonal))
        || access.len() != 2
    {
        return false;
    }
    // Build the statement's iteration domain and check it forces
    // access_r == access_c.
    let mut names: Vec<String> = scopy.info.loops.iter().map(|(v, _, _)| v.clone()).collect();
    for q in &p.params {
        names.push(q.clone());
    }
    let n = names.len();
    let index: HashMap<String, usize> = names
        .iter()
        .enumerate()
        .map(|(i, s)| (s.clone(), i))
        .collect();
    let mut sys = System::new(names);
    for (v, lo, hi) in &scopy.info.loops {
        let vv = LinExpr::var(n, index[v]);
        sys.add_ge(&vv, &lo.to_linexpr(n, &index));
        let hi_e = hi.to_linexpr(n, &index);
        let one = LinExpr::constant(n, 1);
        sys.add(Constraint::ge0(&(&hi_e - &vv) - &one));
    }
    let diff = &access[0] - &access[1];
    sys.forces_zero(&diff.to_linexpr(n, &index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bernoulli_ir::parse_program;

    fn stmt_of(src: &str, k: usize) -> Statement {
        parse_program(src).unwrap().statements()[k].stmt.clone()
    }

    #[test]
    fn mvm_update_annihilated_by_matrix() {
        let s = stmt_of(
            r#"program mvm(M, N) {
                 in matrix A[M][N]; in vector x[N]; inout vector y[M];
                 for i in 0..M { for j in 0..N {
                   y[i] = y[i] + A[i][j] * x[j];
                 } }
               }"#,
            0,
        );
        // accesses: 0 = write y[i]; 1 = read y[i]; 2 = A[i][j]; 3 = x[j]
        assert!(annihilated_by(&s, 2), "zero A entries contribute nothing");
        assert!(annihilated_by(&s, 3), "zero x entries contribute nothing");
        assert!(
            !annihilated_by(&s, 1),
            "the accumulator itself is not a factor"
        );
    }

    #[test]
    fn ts_update_annihilated_but_division_not() {
        let src = r#"program ts(N) {
             in matrix L[N][N]; inout vector b[N];
             for j in 0..N {
               b[j] = b[j] / L[j][j];
               for i in j+1..N {
                 b[i] = b[i] - L[i][j] * b[j];
               }
             }
           }"#;
        let s1 = stmt_of(src, 0);
        // S1 accesses: 0=w b[j], 1=r b[j], 2=r L[j][j]
        assert!(!annihilated_by(&s1, 2), "division is not annihilated");
        let s2 = stmt_of(src, 1);
        // S2 accesses: 0=w b[i], 1=r b[i], 2=r L[i][j], 3=r b[j]
        assert!(annihilated_by(&s2, 2));
        assert!(annihilated_by(&s2, 3));
    }

    #[test]
    fn divisor_position_rejected() {
        let s = stmt_of(
            r#"program p(N) {
                 in matrix A[N][N]; inout vector x[N];
                 for i in 0..N { x[i] = x[i] + 1 / A[i][i]; }
               }"#,
            0,
        );
        // A in the divisor: 1/0 is not zero.
        assert!(!annihilated_by(&s, 2));
    }

    #[test]
    fn extra_term_without_ref_rejected() {
        let s = stmt_of(
            r#"program p(N) {
                 in matrix A[N][N]; inout vector x[N];
                 for i in 0..N { x[i] = x[i] + A[i][i] + 1; }
               }"#,
            0,
        );
        // the "+ 1" term fires even when A is unstored.
        assert!(!annihilated_by(&s, 2));
    }

    #[test]
    fn negated_products_ok() {
        let s = stmt_of(
            r#"program p(N) {
                 in matrix A[N][N]; in vector y[N]; inout vector x[N];
                 for i in 0..N { x[i] = x[i] - A[i][i] * y[i]; }
               }"#,
            0,
        );
        assert!(annihilated_by(&s, 2));
    }
}
