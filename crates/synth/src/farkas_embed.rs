//! The general characterization of legal embeddings via Farkas' lemma
//! (paper §3.1, problem 2, following Feautrier \[9\]).
//!
//! For a dependence class `D` and a product-space dimension `p`, the
//! legality condition is `δ_p(i_s, i_d) = F_d,p(i_d) − F_s,p(i_s) ≥ 0`
//! over `D` (given equality at the outer dimensions). Writing the unknown
//! embedding components as
//!
//! ```text
//!   F_s,p(i_s) = Σ_j u_s[j]·i_s[j] + u_s[m_s]        (and likewise F_d,p)
//! ```
//!
//! `δ_p`'s coefficients are affine in the unknowns `u`, so Farkas' lemma
//! turns "non-negative over D" into a linear system over `u` and the
//! multipliers, and Fourier–Motzkin eliminates the multipliers — yielding
//! the *entire space of legal embedding coefficients* for that dimension
//! and class.
//!
//! The production search uses the cheaper matching heuristic of §4.3 and
//! verifies candidates directly; this module provides the complete
//! characterization the paper describes, and the test suite uses it to
//! certify that the heuristic's choices always lie inside the legal
//! space.

use bernoulli_ir::DepClass;
use bernoulli_polyhedra::{farkas_nonneg_conditions, LinExpr, System};

/// The legal space of `(u_s, u_d)` embedding coefficients for one
/// dimension against one dependence class.
///
/// Variable order of the returned system:
/// `[u_s_0 .. u_s_{m_s-1}, u_s_const, u_d_0 .. u_d_{m_d-1}, u_d_const]`,
/// where `m_s`/`m_d` are the numbers of source/destination loop
/// variables of the class. Embeddings may not reference symbolic
/// parameters (their coefficients are pinned to zero), matching the
/// embeddings the search constructs.
pub fn legal_embedding_space(class: &DepClass) -> System {
    let m_s = class.src_vars.len();
    let m_d = class.dst_vars.len();
    let nu = m_s + 1 + m_d + 1;
    let u_names: Vec<String> = (0..m_s)
        .map(|j| format!("us{j}"))
        .chain(std::iter::once("usc".to_string()))
        .chain((0..m_d).map(|j| format!("ud{j}")))
        .chain(std::iter::once("udc".to_string()))
        .collect();

    // δ_p coefficients per class variable, affine over u.
    let nx = class.sys.num_vars();
    let mut coeff_in_u: Vec<LinExpr> = vec![LinExpr::zero(nu); nx];
    for (j, &xi) in class.src_vars.iter().enumerate() {
        // coefficient of src var = -u_s[j]
        coeff_in_u[xi] = -&LinExpr::var(nu, j);
    }
    for (j, &xi) in class.dst_vars.iter().enumerate() {
        coeff_in_u[xi] = LinExpr::var(nu, m_s + 1 + j);
    }
    // Parameter coefficients stay identically zero (embeddings are over
    // loop variables and constants only).
    let mut cst_in_u = LinExpr::var(nu, m_s + 1 + m_d); // +udc
    cst_in_u.add_scaled(&LinExpr::var(nu, m_s), -bernoulli_numeric::Rational::ONE); // -usc

    farkas_nonneg_conditions(&class.sys, &coeff_in_u, &cst_in_u, &u_names)
}

/// Packs concrete embedding expressions into the `u` layout of
/// [`legal_embedding_space`]: source expr over the source statement's
/// loop vars, destination expr over the destination's.
pub fn pack_u(
    class: &DepClass,
    src_loop_vars: &[&str],
    src_expr: &bernoulli_ir::AffineExpr,
    dst_loop_vars: &[&str],
    dst_expr: &bernoulli_ir::AffineExpr,
) -> Vec<i64> {
    let mut u = Vec::with_capacity(class.src_vars.len() + class.dst_vars.len() + 2);
    for v in src_loop_vars {
        u.push(src_expr.coeff(v));
    }
    u.push(src_expr.cst());
    for v in dst_loop_vars {
        u.push(dst_expr.coeff(v));
    }
    u.push(dst_expr.cst());
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use bernoulli_ir::{analyze, parse_program, AffineExpr};

    const TS: &str = r#"
        program ts(N) {
          in matrix L[N][N];
          inout vector b[N];
          for j in 0..N {
            b[j] = b[j] / L[j][j];
            for i in j+1..N {
              b[i] = b[i] - L[i][j] * b[j];
            }
          }
        }
    "#;

    /// The paper's D2 class (S2 → S1, flow through b with j1 = i2): the
    /// row dimension embedding F_1 = j (for S1) / F_2 = i (for S2) must
    /// satisfy δ = j_d − i_s ≥ 0 over D2 — and it does, because the class
    /// forces j_d = i_s. The Farkas space must contain that choice and
    /// exclude the reversed one.
    #[test]
    fn ts_row_embedding_lies_in_legal_space() {
        let p = parse_program(TS).unwrap();
        let deps = analyze(&p);
        // D2: src = S2 (index 1), dst = S1 (index 0), flow on b, carried.
        let d2 = deps
            .iter()
            .find(|c| c.src == 1 && c.dst == 0 && c.level == Some(0))
            .expect("D2 exists");
        let space = legal_embedding_space(d2);

        // Heuristic choice at the row dimension: F_s (S2) = i, F_d (S1) = j.
        let u = pack_u(
            d2,
            &["j", "i"],
            &AffineExpr::var("i"),
            &["j"],
            &AffineExpr::var("j"),
        );
        let point: Vec<i128> = u.iter().map(|&x| x as i128).collect();
        assert!(
            space.contains_int(&point),
            "heuristic row embedding must be legal: {space:?}"
        );

        // Reversed destination (F_d = -j): illegal (δ = -j_d - i_s < 0
        // somewhere on D2).
        let bad = pack_u(
            d2,
            &["j", "i"],
            &AffineExpr::var("i"),
            &["j"],
            &(-&AffineExpr::var("j")),
        );
        let bad_point: Vec<i128> = bad.iter().map(|&x| x as i128).collect();
        assert!(
            !space.contains_int(&bad_point),
            "reversed embedding must be excluded"
        );
    }

    /// D1 (S1 → S2, loop-independent, j1 = j2): the column dimension
    /// embedding (both = j) is legal; shifting the destination down by
    /// one (F_d = j − 1 < F_s) is not.
    #[test]
    fn ts_column_offsets() {
        let p = parse_program(TS).unwrap();
        let deps = analyze(&p);
        let d1 = deps
            .iter()
            .find(|c| c.src == 0 && c.dst == 1 && c.level.is_none())
            .expect("D1 exists");
        let space = legal_embedding_space(d1);

        let j = AffineExpr::var("j");
        let ok = pack_u(d1, &["j"], &j, &["j", "i"], &j);
        assert!(space.contains_int(&ok.iter().map(|&x| x as i128).collect::<Vec<_>>()));

        // "after" placement (+1 on the destination) is also legal ...
        let after = pack_u(
            d1,
            &["j"],
            &j,
            &["j", "i"],
            &(&j + &AffineExpr::constant(1)),
        );
        assert!(space.contains_int(&after.iter().map(|&x| x as i128).collect::<Vec<_>>()));

        // ... but "before" (-1) would run the read before the write.
        let before = pack_u(
            d1,
            &["j"],
            &j,
            &["j", "i"],
            &(&j - &AffineExpr::constant(1)),
        );
        assert!(!space.contains_int(&before.iter().map(|&x| x as i128).collect::<Vec<_>>()));
    }

    /// Every row/column embedding the production search actually chose
    /// for TS/CSR is certified legal by the Farkas space of every
    /// dependence class.
    #[test]
    fn search_choices_certified_by_farkas() {
        use crate::config::enumerate_configs;
        use crate::embed::base_embedding;
        use crate::spaces::candidate_spaces;
        use bernoulli_formats::formats::csr::csr_format_view;
        use std::collections::HashMap;

        let p = parse_program(TS).unwrap();
        let deps = analyze(&p);
        let mut views = HashMap::new();
        views.insert("L".to_string(), csr_format_view());
        let cfg = enumerate_configs(&p, &views).unwrap().remove(0);
        let space = candidate_spaces(&cfg, 4, false).remove(0);
        let emb = base_embedding(&cfg, &space);

        // Check dimension 0 (the row group leader) against every class
        // that is *carried or decided* there — i.e. classes for which
        // δ_0 is not identically zero. Classes resolved by later
        // dimensions (δ_0 ≡ 0 on the class) impose equality, which the
        // Farkas ≥-space also contains.
        for class in &deps {
            let s_vars: Vec<&str> = cfg.stmts[class.src].info.loop_vars();
            let d_vars: Vec<&str> = cfg.stmts[class.dst].info.loop_vars();
            let space_u = legal_embedding_space(class);
            let u = pack_u(
                class,
                &s_vars,
                emb.at(class.src, 0),
                &d_vars,
                emb.at(class.dst, 0),
            );
            let point: Vec<i128> = u.iter().map(|&x| x as i128).collect();
            assert!(
                space_u.contains_int(&point),
                "dim 0 embedding illegal for {}",
                class.describe()
            );
        }
    }
}
