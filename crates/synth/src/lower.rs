//! Lowering: from (space, embedding, groups, directions) to an
//! enumeration-based [`Plan`] (paper §4.1).
//!
//! Each stepped group is given an *enumeration source*:
//!
//! - **Level**: enumerate a participating reference's chain level
//!   (data-centric); references on the same matrix with identical
//!   position provenance share the cursor (the trivial common
//!   enumeration), references on other matrices are located by
//!   per-value searches (index/hash join);
//! - **MergeJoin**: co-enumerate two sorted levels (merge join);
//! - **Interval**: enumerate the dense value range and search every
//!   participating level — the Fig. 9 pattern (`search(...unmap(r))`)
//!   that triangular solve on JAD requires.
//!
//! After the steps are fixed, every statement copy gets its
//! loop-variable bindings (by incremental solution of its match
//! equations), residual guards (simplified away when the polyhedral
//! context implies them), and value sources for its sparse accesses.

use crate::config::Config;
use crate::embed::Embedding;
use crate::groups::GroupInfo;
use crate::plan::{
    Atom, Dir, ExecStmt, Guard, LevelRef, PExpr, Plan, PlanRef, SearchPart, Step, StepKind,
    ValueSource,
};
use crate::spaces::{DimKind, Space};
use bernoulli_formats::view::{FormatView, Order, SearchKind};
use bernoulli_ir::{AffineExpr, ArrayKind, Program};
use bernoulli_polyhedra::{Constraint, LinExpr, System};
use std::collections::HashMap;

/// Lowering failure (the candidate is infeasible, not a user error).
#[derive(Debug, Clone, PartialEq)]
pub struct LowerError(pub String);

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lowering failed: {}", self.0)
    }
}

/// How many source combinations to explore per candidate.
const MAX_SOURCE_COMBOS: usize = 24;

/// One match equation of a statement copy.
#[derive(Clone, Debug)]
struct EqItem {
    /// Affine expression over the statement's loop variables and params.
    expr: AffineExpr,
    /// `Some(slot)`: `expr == slot value`; `None`: `expr == 0` (a chain
    /// constraint).
    slot: Option<usize>,
    /// Step that bound the slot (`usize::MAX` for chain constraints).
    step: usize,
    /// Real equations come from groups containing a dimension the
    /// statement owns (or from chain constraints); rider equations are
    /// artifacts of the embedding's ride-along expressions and are
    /// dropped — the statement is hoisted out of those steps instead.
    real: bool,
    /// The statement owns a data dimension in the equation's group (its
    /// stored entries drive the enumeration there).
    owns_data: bool,
}

#[derive(Clone)]
struct LState {
    /// dim index -> slot index (for dims bound at runtime).
    dim_slot: HashMap<usize, usize>,
    /// (ref, level) -> positioned?
    positioned: HashMap<(usize, usize), bool>,
    /// per ref: provenance token per level (for sharing decisions).
    prov: HashMap<(usize, usize), u64>,
    /// per ref: may its position be missing at runtime (searched a
    /// compressed level)?
    may_miss: HashMap<usize, bool>,
    /// per ref: restricted to stored entries (any compressed level
    /// positioned)?
    restricted: HashMap<usize, bool>,
    /// pending level bindings: (ref, level) -> per-slot value exprs
    /// (filled as groups bind attrs; searched when complete).
    pending: HashMap<(usize, usize), Vec<Option<(PExpr, Option<String>)>>>,
    steps: Vec<Step>,
    nslots: usize,
    notes: Vec<String>,
    /// searches scheduled during the current step (attached to it after
    /// the step is pushed).
    sched: Vec<SearchPart>,
    /// accumulated match equations per statement copy.
    eqs: Vec<Vec<EqItem>>,
    /// known constraints over slots+params (for guard simplification).
    known: KnownSys,
    /// Pattern facts valid only when a particular (searched, fallible)
    /// reference is present: `(ref_id, expr >= 0)`. Applied per-exec for
    /// statements that require the reference.
    ref_facts: Vec<(usize, PExpr)>,
}

/// A growing polyhedral context over slot values and parameters.
#[derive(Clone)]
struct KnownSys {
    /// variable names: "s0", "s1", ... then parameter names.
    sys: System,
    nslots: usize,
    params: Vec<String>,
}

impl KnownSys {
    fn new(params: &[String]) -> KnownSys {
        let mut names: Vec<String> = Vec::new();
        for p in params {
            names.push(p.clone());
        }
        KnownSys {
            sys: System::new(names),
            nslots: 0,
            params: params.to_vec(),
        }
    }

    fn add_slot(&mut self) -> usize {
        let s = self.nslots;
        self.nslots += 1;
        self.sys.add_var(format!("s{s}"));
        s
    }

    fn pexpr_to_lin(&self, e: &PExpr) -> Option<LinExpr> {
        let n = self.sys.num_vars();
        let mut le = LinExpr::zero(n);
        for (a, c) in &e.terms {
            let idx = match a {
                Atom::Slot(i) => self.params.len() + *i,
                Atom::Var(v) => self.sys.var_index(v)?,
            };
            le.coeffs[idx] += bernoulli_numeric::Rational::int(*c as i128);
        }
        le.cst = bernoulli_numeric::Rational::int(e.cst as i128);
        Some(le)
    }

    /// Records `lo <= slot < hi` (ignored if bounds reference unknowns).
    fn add_interval(&mut self, slot: usize, lo: &PExpr, hi: &PExpr) {
        let sv = {
            let n = self.sys.num_vars();
            LinExpr::var(n, self.params.len() + slot)
        };
        if let Some(l) = self.pexpr_to_lin(lo) {
            self.sys.add(Constraint::ge0(&sv - &l));
        }
        if let Some(h) = self.pexpr_to_lin(hi) {
            let n = self.sys.num_vars();
            let one = LinExpr::constant(n, 1);
            self.sys.add(Constraint::ge0(&(&h - &sv) - &one));
        }
    }

    /// Records a general `e >= 0` fact.
    fn add_ge(&mut self, e: &PExpr) {
        if let Some(l) = self.pexpr_to_lin(e) {
            self.sys.add(Constraint::ge0(l));
        }
    }

    /// Is `g` implied by the known context?
    fn implies(&self, g: &Guard) -> bool {
        match g {
            Guard::Eq(e) => self
                .pexpr_to_lin(e)
                .is_some_and(|l| self.sys.implies(&Constraint::eq0(l))),
            Guard::Ge(e) => self
                .pexpr_to_lin(e)
                .is_some_and(|l| self.sys.implies(&Constraint::ge0(l))),
            Guard::Divides(..) => false,
        }
    }

    /// Is `g` unsatisfiable under the known context?
    fn refutes(&self, g: &Guard) -> bool {
        match g {
            Guard::Eq(e) => self.pexpr_to_lin(e).is_some_and(|l| {
                let mut s = self.sys.clone();
                s.add(Constraint::eq0(l));
                s.is_empty()
            }),
            Guard::Ge(e) => self.pexpr_to_lin(e).is_some_and(|l| {
                let mut s = self.sys.clone();
                s.add(Constraint::ge0(l));
                s.is_empty()
            }),
            Guard::Divides(..) => false,
        }
    }
}

/// Lowers a legal candidate into a bounded number of alternative plans
/// (one per feasible enumeration-source combination).
#[allow(clippy::too_many_arguments, clippy::only_used_in_recursion)]
pub fn lower_plans(
    p: &Program,
    cfg: &Config,
    space: &Space,
    emb: &Embedding,
    groups: &GroupInfo,
    must_increase: &[bool],
    views: &HashMap<String, FormatView>,
    deps: &[bernoulli_ir::DepClass],
    relaxable: &[bool],
    relax_reductions: bool,
) -> Vec<Plan> {
    let params = p.params.clone();
    let stepped = groups.stepped_groups();
    let init = LState {
        dim_slot: HashMap::new(),
        positioned: HashMap::new(),
        prov: HashMap::new(),
        may_miss: HashMap::new(),
        restricted: HashMap::new(),
        pending: HashMap::new(),
        steps: Vec::new(),
        nslots: 0,
        notes: Vec::new(),
        sched: Vec::new(),
        eqs: cfg
            .stmts
            .iter()
            .map(|sc| {
                sc.refs
                    .iter()
                    .flat_map(|&rid| cfg.refs[rid].constraints.iter())
                    .map(|(lhs, rhs)| EqItem {
                        expr: lhs - rhs,
                        slot: None,
                        step: usize::MAX,
                        real: true,
                        owns_data: false,
                    })
                    .collect()
            })
            .collect(),
        known: KnownSys::new(&params),
        ref_facts: Vec::new(),
    };
    let mut done: Vec<LState> = Vec::new();
    explore(
        p,
        cfg,
        space,
        emb,
        groups,
        must_increase,
        views,
        &stepped,
        0,
        init,
        &mut done,
    );
    done.into_iter()
        .filter_map(|st| {
            finish_plan(
                p,
                cfg,
                space,
                emb,
                groups,
                views,
                deps,
                relaxable,
                relax_reductions,
                st,
            )
        })
        .collect()
}

/// DFS over source choices group by group.
#[allow(clippy::too_many_arguments, clippy::only_used_in_recursion)]
fn explore(
    p: &Program,
    cfg: &Config,
    space: &Space,
    emb: &Embedding,
    groups: &GroupInfo,
    must_increase: &[bool],
    views: &HashMap<String, FormatView>,
    stepped: &[usize],
    gi: usize,
    st: LState,
    done: &mut Vec<LState>,
) {
    if done.len() >= MAX_SOURCE_COMBOS {
        return;
    }
    if gi == stepped.len() {
        done.push(st);
        return;
    }
    let g = stepped[gi];
    let dims = &groups.groups[g];
    // Gather the data-dim participants of this and all same-value dims.
    let mut participants: Vec<(usize, usize, usize, usize)> = Vec::new(); // (ref, level, slot_in_level, dim_idx)
    let mut has_iter = false;
    for &d in dims {
        match space.dims[d].kind {
            DimKind::Data { ref_id, dim_idx } => {
                let rd = &cfg.refs[ref_id].dims[dim_idx];
                participants.push((ref_id, rd.level, rd.slot, dim_idx));
            }
            DimKind::Iter { .. } => has_iter = true,
        }
    }

    // Option A: Level enumeration with each eligible participant as
    // primary.
    let mut tried_any = false;
    let mut primaries: Vec<(usize, usize)> = Vec::new();
    for &(r, l, slot, _) in &participants {
        if slot != 0 {
            continue;
        }
        if primaries.contains(&(r, l)) {
            continue;
        }
        primaries.push((r, l));
    }
    for &(r, l) in &primaries {
        if let Some(next) = try_level_source(
            cfg,
            space,
            emb,
            groups,
            must_increase,
            stepped,
            gi,
            &st,
            r,
            l,
        ) {
            tried_any = true;
            let consumed = consumed_groups(cfg, space, groups, stepped, gi, r, l);
            explore(
                p,
                cfg,
                space,
                emb,
                groups,
                must_increase,
                views,
                stepped,
                gi + consumed,
                next,
                done,
            );
        }
    }

    // Option B: merge join between two sorted single-attr levels on
    // different matrices.
    for a in 0..primaries.len() {
        for b in (a + 1)..primaries.len() {
            let (ra, la) = primaries[a];
            let (rb, lb) = primaries[b];
            if cfg.refs[ra].matrix == cfg.refs[rb].matrix {
                continue;
            }
            if let Some(next) = try_merge_source(
                cfg,
                space,
                emb,
                groups,
                must_increase,
                stepped,
                gi,
                &st,
                (ra, la),
                (rb, lb),
            ) {
                tried_any = true;
                explore(
                    p,
                    cfg,
                    space,
                    emb,
                    groups,
                    must_increase,
                    views,
                    stepped,
                    gi + 1,
                    next,
                    done,
                );
            }
        }
    }

    // Option C: interval enumeration + searches.
    if let Some(next) = try_interval_source(
        p,
        cfg,
        space,
        emb,
        groups,
        stepped,
        gi,
        &st,
        &participants,
        has_iter,
    ) {
        tried_any = true;
        explore(
            p,
            cfg,
            space,
            emb,
            groups,
            must_increase,
            views,
            stepped,
            gi + 1,
            next,
            done,
        );
    }

    let _ = tried_any; // exhausted: no feasible source -> dead branch
}

/// How many stepped groups a Level step on `(r, l)` consumes (1 per
/// attribute of the level that leads its own group).
fn consumed_groups(
    cfg: &Config,
    space: &Space,
    groups: &GroupInfo,
    stepped: &[usize],
    gi: usize,
    r: usize,
    l: usize,
) -> usize {
    let nattrs = cfg.refs[r].chain.levels[l].attrs.len();
    if nattrs == 1 {
        return 1;
    }
    // The following stepped groups must contain the remaining slots of
    // the same level (checked by try_level_source); consume them.
    let mut consumed = 1;
    for s in 1..nattrs {
        let expect = gi + s;
        if expect >= stepped.len() {
            break;
        }
        let g = stepped[expect];
        let has = groups.groups[g].iter().any(|&d| {
            matches!(space.dims[d].kind, DimKind::Data { ref_id, dim_idx }
                if ref_id == r && cfg.refs[r].dims[dim_idx].level == l
                   && cfg.refs[r].dims[dim_idx].slot == s)
        });
        if has {
            consumed += 1;
        } else {
            break;
        }
    }
    consumed
}

/// Attempts a Level-enumeration step with `(r, l)` as primary.
#[allow(clippy::too_many_arguments)]
fn try_level_source(
    cfg: &Config,
    space: &Space,
    emb: &Embedding,
    groups: &GroupInfo,
    must_increase: &[bool],
    stepped: &[usize],
    gi: usize,
    st: &LState,
    r: usize,
    l: usize,
) -> Option<LState> {
    let rinst = &cfg.refs[r];
    let level = &rinst.chain.levels[l];
    let nattrs = level.attrs.len();

    // Prerequisite: r's outer levels positioned, and r itself cannot be
    // missing (a missing primary would silently skip foreign statements).
    for ll in 0..l {
        if !st.positioned.get(&(r, ll)).copied().unwrap_or(false) {
            return None;
        }
    }
    if st.may_miss.get(&r).copied().unwrap_or(false) {
        // Allowed only if every statement requires r; conservatively
        // reject (the Interval source remains available).
        return None;
    }

    // The consumed groups must cover exactly r's slots 0..nattrs of level
    // l, in order.
    let consumed = consumed_groups(cfg, space, groups, stepped, gi, r, l);
    if consumed != nattrs {
        return None;
    }

    // Direction requirements: every must-increase dim bound here needs
    // the level's value order to be Increasing.
    for s in 0..consumed {
        let g = stepped[gi + s];
        for &d in &groups.groups[g] {
            if must_increase[d] {
                // The per-dim value order of the primary's dims.
                let prim_dim = rinst.dims.iter().find(|rd| rd.level == l && rd.slot == s)?;
                if prim_dim.order != Order::Increasing {
                    return None;
                }
            }
        }
    }

    let mut next = st.clone();
    let first_slot = next.nslots;
    let mut binds = Vec::new();
    let mut perms: Vec<Option<String>> = Vec::new();
    for s in 0..consumed {
        let g = stepped[gi + s];
        let slot = next.known.add_slot();
        next.nslots += 1;
        for &d in &groups.groups[g] {
            next.dim_slot.insert(d, slot);
            binds.push(space.dims[d].name.clone());
        }
        let prim_dim = rinst.dims.iter().find(|rd| rd.level == l && rd.slot == s)?;
        perms.push(prim_dim.perm.clone());
    }

    // Position the primary; mark restriction if the level is compressed.
    position_ref(
        &mut next,
        r,
        l,
        hash2(1, r as u64 * 31 + l as u64),
        !level.interval,
    );

    // Other participants of the consumed groups.
    let mut sharers: Vec<(usize, usize)> = Vec::new();
    let mut search_levels: Vec<(usize, usize)> = Vec::new();
    for s in 0..consumed {
        let g = stepped[gi + s];
        for &d in &groups.groups[g] {
            if let DimKind::Data { ref_id, dim_idx } = space.dims[d].kind {
                if ref_id == r {
                    continue;
                }
                let rd = &cfg.refs[ref_id].dims[dim_idx];
                // Record this attr's value for the pending level binding.
                let slot = next.dim_slot[&d];
                record_pending(
                    &mut next,
                    cfg,
                    ref_id,
                    rd.level,
                    rd.slot,
                    PExpr::slot(slot),
                    rd.perm.clone(),
                );
                // Sharing: same matrix, same chain, same provenance above.
                let other = &cfg.refs[ref_id];
                let can_share = other.matrix == rinst.matrix
                    && other.chain.id == rinst.chain.id
                    && rd.level == l
                    && rd.slot == s
                    && prov_equal(st, ref_id, r, l);
                if can_share {
                    if !sharers.contains(&(ref_id, rd.level)) {
                        sharers.push((ref_id, rd.level));
                    }
                } else if !search_levels.contains(&(ref_id, rd.level)) {
                    search_levels.push((ref_id, rd.level));
                }
            }
        }
    }
    for &(ref_id, lev) in &sharers {
        // Sharers adopt the primary's provenance.
        position_ref(
            &mut next,
            ref_id,
            lev,
            hash2(1, r as u64 * 31 + l as u64),
            !level.interval,
        );
        // Their pending entry is resolved by sharing.
        next.pending.remove(&(ref_id, lev));
    }

    // Record equations for all consumed groups. An *outermost* interval
    // level visits every value of the dense extent (a permuted interval
    // level still visits every value, in scrambled order), so any
    // statement's matching equation is realizable there. Inner interval
    // levels (e.g. DIA's per-diagonal offset range) only span a
    // sub-range and do not qualify.
    let visits_all = level.interval && l == 0;
    record_equations(
        cfg, space, emb, groups, stepped, gi, consumed, &mut next, visits_all,
    );

    // Flush any completed pending searches.
    flush_pending(cfg, &mut next);

    let step = Step {
        kind: StepKind::Level {
            primary: LevelRef {
                matrix: rinst.matrix.clone(),
                ref_id: r,
                chain: rinst.chain.id,
                level: l,
            },
            perms,
        },
        dir: Dir::Fwd,
        ordered: false, // set by finish_plan
        first_slot,
        nslots: consumed,
        sharers,
        searches: Vec::new(),
        binds,
    };
    next.steps.push(step);
    // Attach searches scheduled during this step to it.
    attach_scheduled_searches(cfg, &mut next);
    bernoulli_trace::counter!("synth.join.level");
    Some(next)
}

/// Attempts a merge join between two single-attribute sorted levels.
#[allow(clippy::too_many_arguments)]
fn try_merge_source(
    cfg: &Config,
    space: &Space,
    emb: &Embedding,
    groups: &GroupInfo,
    must_increase: &[bool],
    stepped: &[usize],
    gi: usize,
    st: &LState,
    (ra, la): (usize, usize),
    (rb, lb): (usize, usize),
) -> Option<LState> {
    let a = &cfg.refs[ra];
    let b = &cfg.refs[rb];
    if a.chain.levels[la].attrs.len() != 1 || b.chain.levels[lb].attrs.len() != 1 {
        return None;
    }
    let da = a.dims.iter().find(|d| d.level == la && d.slot == 0)?;
    let db = b.dims.iter().find(|d| d.level == lb && d.slot == 0)?;
    if da.order != Order::Increasing || db.order != Order::Increasing {
        return None;
    }
    if da.perm.is_some() || db.perm.is_some() {
        return None;
    }
    for ll in 0..la {
        if !st.positioned.get(&(ra, ll)).copied().unwrap_or(false) {
            return None;
        }
    }
    for ll in 0..lb {
        if !st.positioned.get(&(rb, ll)).copied().unwrap_or(false) {
            return None;
        }
    }
    if st.may_miss.get(&ra).copied().unwrap_or(false)
        || st.may_miss.get(&rb).copied().unwrap_or(false)
    {
        return None;
    }

    let g = stepped[gi];
    // Direction requirements are satisfied: merge join yields increasing
    // keys.
    let _ = must_increase;

    let mut next = st.clone();
    let first_slot = next.nslots;
    let slot = next.known.add_slot();
    next.nslots += 1;
    let mut binds = Vec::new();
    for &d in &groups.groups[g] {
        next.dim_slot.insert(d, slot);
        binds.push(space.dims[d].name.clone());
    }
    position_ref(&mut next, ra, la, hash2(2, (ra * 31 + la) as u64), true);
    position_ref(&mut next, rb, lb, hash2(3, (rb * 31 + lb) as u64), true);

    // Other participants (neither a nor b) are searched.
    for &d in &groups.groups[g] {
        if let DimKind::Data { ref_id, dim_idx } = space.dims[d].kind {
            if ref_id == ra || ref_id == rb {
                continue;
            }
            let rd = &cfg.refs[ref_id].dims[dim_idx];
            record_pending(
                &mut next,
                cfg,
                ref_id,
                rd.level,
                rd.slot,
                PExpr::slot(slot),
                rd.perm.clone(),
            );
        }
    }
    record_equations(cfg, space, emb, groups, stepped, gi, 1, &mut next, false);
    flush_pending(cfg, &mut next);

    next.steps.push(Step {
        ordered: false, // set by finish_plan
        kind: StepKind::MergeJoin {
            a: LevelRef {
                matrix: a.matrix.clone(),
                ref_id: ra,
                chain: a.chain.id,
                level: la,
            },
            b: LevelRef {
                matrix: b.matrix.clone(),
                ref_id: rb,
                chain: b.chain.id,
                level: lb,
            },
        },
        dir: Dir::Fwd,
        first_slot,
        nslots: 1,
        sharers: Vec::new(),
        searches: Vec::new(),
        binds,
    });
    attach_scheduled_searches(cfg, &mut next);
    bernoulli_trace::counter!("synth.join.merge");
    Some(next)
}

/// Attempts interval enumeration of the group's common value.
#[allow(clippy::too_many_arguments)]
fn try_interval_source(
    p: &Program,
    cfg: &Config,
    space: &Space,
    emb: &Embedding,
    groups: &GroupInfo,
    stepped: &[usize],
    gi: usize,
    st: &LState,
    participants: &[(usize, usize, usize, usize)],
    has_iter: bool,
) -> Option<LState> {
    let g = stepped[gi];
    // Determine bounds.
    let bounds: Option<(PExpr, PExpr)> = if let Some(&(r, _l, _s, dim_idx)) = participants.first() {
        // Data-led: the range of the dimension's dense image (e.g. the
        // column extent for DIA's offset `o = c`, `[-(N-1), M)` for its
        // diagonal `d = r - c`).
        extent_range(p, cfg, r, dim_idx)
    } else if has_iter {
        // Iteration-led: the loop bounds, with outer variables
        // substituted through the statement's current bindings.
        let &d0 = groups.groups[g].first()?;
        let DimKind::Iter { stmt, loop_idx } = space.dims[d0].kind else {
            return None;
        };
        let (_, lo, hi) = &cfg.stmts[stmt].info.loops[loop_idx];
        let subst = solve_bindings(cfg, stmt, &st.eqs[stmt]);
        let lo = affine_to_pexpr(lo, p, &subst)?;
        let hi = affine_to_pexpr(hi, p, &subst)?;
        Some((lo, hi))
    } else {
        None
    };
    let (lo, hi) = bounds?;

    // Every participating (ref, level) attr gets a pending value; levels
    // that complete will be searched — which requires search support.
    // Parents need not be positioned yet: the pending mechanism holds the
    // key until the ancestor levels are bound by later steps (e.g. the
    // column-first TS/DIA plan binds the offset before the diagonal).
    for &(r, l, _s, _) in participants {
        if cfg.refs[r].chain.levels[l].search == SearchKind::None {
            return None;
        }
    }

    let mut next = st.clone();
    let first_slot = next.nslots;
    let slot = next.known.add_slot();
    next.nslots += 1;
    let mut binds = Vec::new();
    for &d in &groups.groups[g] {
        next.dim_slot.insert(d, slot);
        binds.push(space.dims[d].name.clone());
    }
    next.known.add_interval(slot, &lo, &hi);

    for &(r, l, s, dim_idx) in participants {
        let rd = &cfg.refs[r].dims[dim_idx];
        let _ = s;
        record_pending(
            &mut next,
            cfg,
            r,
            l,
            rd.slot,
            PExpr::slot(slot),
            rd.perm.clone(),
        );
    }
    record_equations(cfg, space, emb, groups, stepped, gi, 1, &mut next, true);
    flush_pending(cfg, &mut next);

    next.steps.push(Step {
        kind: StepKind::Interval { lo, hi },
        dir: Dir::Fwd,
        ordered: false, // set by finish_plan

        first_slot,
        nslots: 1,
        sharers: Vec::new(),
        searches: Vec::new(),
        binds,
    });
    attach_scheduled_searches(cfg, &mut next);
    bernoulli_trace::counter!("synth.join.interval");
    Some(next)
}

// ---------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------

fn hash2(tag: u64, x: u64) -> u64 {
    tag.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(x)
}

fn prov_equal(st: &LState, a: usize, b: usize, upto_level: usize) -> bool {
    (0..upto_level).all(|l| st.prov.get(&(a, l)).copied() == st.prov.get(&(b, l)).copied())
}

fn position_ref(st: &mut LState, r: usize, l: usize, prov: u64, compressed: bool) {
    st.positioned.insert((r, l), true);
    st.prov.insert((r, l), prov);
    if compressed {
        st.restricted.insert(r, true);
    }
}

fn record_pending(
    st: &mut LState,
    cfg: &Config,
    r: usize,
    l: usize,
    slot_in_level: usize,
    value: PExpr,
    perm: Option<String>,
) {
    let nattrs = cfg.refs[r].chain.levels[l].attrs.len();
    let entry = st
        .pending
        .entry((r, l))
        .or_insert_with(|| vec![None; nattrs]);
    entry[slot_in_level] = Some((value, perm));
}

/// Searches every pending level that is complete and whose parents are
/// positioned; records the scheduled searches in a side list consumed by
/// `attach_scheduled_searches`.
fn flush_pending(cfg: &Config, st: &mut LState) {
    loop {
        let mut ready: Vec<(usize, usize)> = st
            .pending
            .iter()
            .filter(|((r, l), v)| {
                v.iter().all(|x| x.is_some())
                    && (0..*l).all(|ll| st.positioned.get(&(*r, ll)).copied().unwrap_or(false))
                    && !st.positioned.get(&(*r, *l)).copied().unwrap_or(false)
            })
            .map(|(&k, _)| k)
            .collect();
        ready.sort_unstable();
        if ready.is_empty() {
            return;
        }
        // Group ready searches by content: same matrix, chain, level and
        // key expressions locate the same position, so later refs share
        // the first ref's search (and its provenance, enabling cursor
        // sharing at deeper levels).
        let mut by_content: Vec<(String, Vec<(usize, usize)>)> = Vec::new();
        for (r, l) in ready {
            // Completeness is the `ready` filter's invariant.
            let Some(keys) = st.pending.get(&(r, l)) else {
                continue;
            };
            let rinst = &cfg.refs[r];
            let content = format!("{}#{}@{l}:{:?}", rinst.matrix, rinst.chain.id, keys);
            match by_content.iter_mut().find(|(c, _)| *c == content) {
                Some((_, v)) => v.push((r, l)),
                None => by_content.push((content, vec![(r, l)])),
            }
        }
        for (content, members) in by_content {
            let prov = {
                let mut h = 0xcbf29ce484222325u64;
                for b in content.bytes() {
                    h = (h ^ b as u64).wrapping_mul(0x100000001b3);
                }
                h
            };
            let (r0, l0) = members[0];
            let Some(keys) = st.pending.remove(&(r0, l0)) else {
                continue;
            };
            // Every slot is Some by the `ready` filter above.
            let keys: Vec<(PExpr, Option<String>)> = keys.into_iter().flatten().collect();
            let rinst = &cfg.refs[r0];
            let compressed = !rinst.chain.levels[l0].interval;
            // A search of the *outermost* interval level with permutation
            // keys cannot miss: the inverse permutation is a bijection on
            // the full extent (the paper's `unmap(r)` in Fig. 9 always
            // lands on a row). Every other search may miss at runtime —
            // compressed levels reject absent keys, and inner interval
            // levels (DIA offsets, skyline strips) reject keys outside
            // their per-parent sub-range.
            let infallible = l0 == 0
                && rinst.chain.levels[l0].interval
                && keys.iter().all(|(_, perm)| perm.is_some());
            st.scheduled_searches_push(SearchPart {
                target: LevelRef {
                    matrix: rinst.matrix.clone(),
                    ref_id: r0,
                    chain: rinst.chain.id,
                    level: l0,
                },
                keys,
                sharers: members[1..].to_vec(),
            });
            for &(r, l) in &members {
                st.pending.remove(&(r, l));
                position_ref(st, r, l, prov, !infallible);
                if !infallible {
                    st.may_miss.insert(r, true);
                }
            }
            let _ = compressed;
        }
    }
}

impl LState {
    fn scheduled_searches_push(&mut self, sp: SearchPart) {
        self.sched.push(sp);
    }
}

fn attach_scheduled_searches(cfg: &Config, st: &mut LState) {
    let _ = cfg;
    let sched = std::mem::take(&mut st.sched);
    if let Some(last) = st.steps.last_mut() {
        bernoulli_trace::counter!("synth.join.searches", sched.len());
        last.searches.extend(sched);
    }
}

#[allow(clippy::too_many_arguments)]
fn record_equations(
    cfg: &Config,
    space: &Space,
    emb: &Embedding,
    groups: &GroupInfo,
    stepped: &[usize],
    gi: usize,
    consumed: usize,
    st: &mut LState,
    all_values_visited: bool,
) {
    let step = st.steps.len(); // the step about to be pushed
    for s in 0..consumed {
        let g = stepped[gi + s];
        let leader = groups.groups[g][0];
        let slot = st.dim_slot[&leader];
        for k in 0..cfg.stmts.len() {
            // Real iff the step actually realizes this copy's instances
            // at the equation's value: the copy owns a data dimension of
            // the group (its stored entries drive or join the
            // enumeration), or the source visits *every* value of the
            // range (interval enumeration — dense steps realize any
            // statement's matching equation).
            let owns_data = groups.groups[g].iter().any(|&d| {
                matches!(space.dims[d].kind, DimKind::Data { ref_id, .. }
                    if cfg.refs[ref_id].stmt == k)
            });
            let real = owns_data || all_values_visited;
            st.eqs[k].push(EqItem {
                expr: emb.at(k, leader).clone(),
                slot: Some(slot),
                step,
                real,
                owns_data,
            });
        }
    }
}

fn dense_attr(attr: &str) -> bool {
    matches!(attr, "r" | "c" | "i")
}

/// The extent (exclusive upper bound) of a dense attribute of a matrix,
/// from the program declaration.
fn extent_expr(p: &Program, matrix: &str, attr: &str) -> Option<PExpr> {
    let decl = p.array(matrix)?;
    let dim = match (decl.kind, attr) {
        (ArrayKind::Matrix, "r") => &decl.dims[0],
        (ArrayKind::Matrix, "c") => &decl.dims[1],
        (ArrayKind::Vector, "i") | (ArrayKind::Matrix, "i") => &decl.dims[0],
        _ => return None,
    };
    affine_to_pexpr_params(dim)
}

/// The half-open value range `[lo, hi)` of a reference dimension,
/// computed from its dense image: each dense attribute ranges over
/// `[0, extent)`, so an affine image `Σ c·a + k` ranges over the interval
/// obtained by extremizing each term.
fn extent_range(
    p: &Program,
    cfg: &Config,
    ref_id: usize,
    dim_idx: usize,
) -> Option<(PExpr, PExpr)> {
    let rinst = &cfg.refs[ref_id];
    let image = crate::config::dim_value_in_dense(rinst, dim_idx)?;
    let mut lo = PExpr::constant(image.cst());
    let mut hi = PExpr::constant(image.cst());
    for (a, c) in image.terms() {
        let ext = extent_expr(p, &rinst.matrix, a)?; // exclusive bound
                                                     // max attr value is ext - 1.
        if c > 0 {
            for (at, cc) in &ext.terms {
                hi.add_term(at.clone(), c * cc);
            }
            hi.cst += c * (ext.cst - 1);
        } else {
            for (at, cc) in &ext.terms {
                lo.add_term(at.clone(), c * cc);
            }
            lo.cst += c * (ext.cst - 1);
        }
    }
    hi.cst += 1; // exclusive
    Some((lo, hi))
}

/// Converts an affine expression over parameters only.
fn affine_to_pexpr_params(e: &AffineExpr) -> Option<PExpr> {
    let mut out = PExpr::constant(e.cst());
    for (v, c) in e.terms() {
        out.add_term(Atom::Var(v.to_string()), c);
    }
    Some(out)
}

/// Converts an affine expression over loop vars + params to a PExpr over
/// slots + params, given variable bindings. Fails if a loop variable is
/// unbound or bound with a divisor.
fn affine_to_pexpr(
    e: &AffineExpr,
    p: &Program,
    subst: &HashMap<String, (PExpr, i64)>,
) -> Option<PExpr> {
    let mut out = PExpr::constant(e.cst());
    for (v, c) in e.terms() {
        if p.params.iter().any(|q| q == v) {
            out.add_term(Atom::Var(v.to_string()), c);
        } else {
            let (pe, div) = subst.get(v)?;
            if *div != 1 {
                return None;
            }
            for (a, cc) in &pe.terms {
                out.add_term(a.clone(), c * cc);
            }
            out.cst += c * pe.cst;
        }
    }
    Some(out)
}

/// Greedy multi-pass solution of a statement's match equations:
/// `var -> (expr over slots/params, divisor)`. Only *real* equations
/// participate.
fn solve_bindings(cfg: &Config, stmt: usize, eqs: &[EqItem]) -> HashMap<String, (PExpr, i64)> {
    let loops: Vec<String> = cfg.stmts[stmt]
        .info
        .loops
        .iter()
        .map(|(v, _, _)| v.clone())
        .collect();
    let mut subst: HashMap<String, (PExpr, i64)> = HashMap::new();
    loop {
        let mut progressed = false;
        for item in eqs {
            if !item.real {
                continue;
            }
            let e = &item.expr;
            // residual = slot - e, with bound (div=1) vars substituted.
            let mut rest = match item.slot {
                Some(slot) => PExpr::slot(slot),
                None => PExpr::constant(0),
            };
            rest.cst -= e.cst();
            let mut unknowns: Vec<(String, i64)> = Vec::new();
            let mut divisor_blocked = false;
            for (v, c) in e.terms() {
                if !loops.iter().any(|l| l == v) {
                    rest.add_term(Atom::Var(v.to_string()), -c); // parameter
                } else if let Some((pe, div)) = subst.get(v) {
                    if *div != 1 {
                        divisor_blocked = true;
                        break;
                    }
                    for (a, cc) in &pe.terms {
                        rest.add_term(a.clone(), -c * cc);
                    }
                    rest.cst -= c * pe.cst;
                } else {
                    unknowns.push((v.to_string(), c));
                }
            }
            if divisor_blocked || unknowns.len() != 1 {
                continue;
            }
            let Some((v, c)) = unknowns.pop() else {
                continue;
            };
            // c * v = rest  =>  v = rest / c
            let (num, den) = if c < 0 {
                let mut neg = PExpr::constant(-rest.cst);
                for (a, cc) in &rest.terms {
                    neg.add_term(a.clone(), -cc);
                }
                (neg, -c)
            } else {
                (rest, c)
            };
            subst.insert(v, (num, den));
            progressed = true;
        }
        if !progressed {
            return subst;
        }
    }
}

/// Builds the final plan: execs with bindings, guards, sources.
#[allow(clippy::too_many_arguments)]
fn finish_plan(
    p: &Program,
    cfg: &Config,
    space: &Space,
    emb: &Embedding,
    groups: &GroupInfo,
    views: &HashMap<String, FormatView>,
    deps: &[bernoulli_ir::DepClass],
    relaxable: &[bool],
    relax_reductions: bool,
    mut st: LState,
) -> Option<Plan> {
    let _ = (emb, groups);
    // Extend known context with array extents for slots bound to dense
    // attrs through Level steps (interval steps recorded their bounds
    // already).
    for step in &st.steps {
        if let StepKind::Level { primary, .. } = &step.kind {
            for s in 0..step.nslots {
                let slot = step.first_slot + s;
                let rinst = &cfg.refs[primary.ref_id];
                if let Some(rd) = rinst
                    .dims
                    .iter()
                    .find(|rd| rd.level == primary.level && rd.slot == s)
                {
                    if dense_attr(&rd.attr) {
                        if let Some(hi) = extent_expr(p, &rinst.matrix, &rd.attr) {
                            st.known.add_interval(slot, &PExpr::constant(0), &hi);
                        }
                    }
                }
            }
        }
    }
    // Format bounds (e.g. r >= c for a lower-triangular matrix) over any
    // ref whose attr dims all have slots.
    for rid in 0..cfg.refs.len() {
        if let Some(view) = views.get(&cfg.refs[rid].matrix) {
            add_view_bound_knowledge(cfg, space, &st.dim_slot.clone(), &mut st, rid, view);
        }
    }
    // Stored-entry range knowledge: a reference whose every level is
    // positioned by enumeration (never by a fallible search) only ever
    // presents *stored* entries, whose dense coordinates lie inside the
    // declared array extents — e.g. DIA's `(d + o, o)` is always a valid
    // `(r, c)`, so the loop-bound guards on mapped coordinates vanish.
    for rid in 0..cfg.refs.len() {
        add_stored_entry_knowledge(p, cfg, space, &st.dim_slot.clone(), &mut st, rid);
    }

    let nsteps = st.steps.len();
    let mut execs = Vec::new();
    'stmt: for (k, scopy) in cfg.stmts.iter().enumerate() {
        // Prune copies whose domain (loop bounds ∧ chain constraints) is
        // empty — e.g. the diagonal-chain copy of a strictly-lower-
        // triangle statement.
        if copy_domain_empty(p, cfg, k) {
            st.notes
                .push(format!("S{}.{k} pruned: empty domain", scopy.orig + 1));
            continue 'stmt;
        }

        // Completeness: demote real equations whose required values the
        // enumeration cannot be proven to visit (the statement hoists out
        // of those steps instead of silently losing instances).
        demote_incomplete_eqs(p, cfg, &mut st, k);

        // Hoisting depth: the leading run of steps that are *real* for
        // this copy. Real steps beyond a rider step cannot be expressed
        // as a single nest — reject the candidate.
        // A step is real for this copy only when *every* equation it
        // contributes there is real (multi-slot steps must be all-real to
        // recover consistent coordinates).
        let mut real_step = vec![true; nsteps];
        let mut has_eq = vec![false; nsteps];
        for item in &st.eqs[k] {
            if item.step != usize::MAX {
                has_eq[item.step] = true;
                real_step[item.step] &= item.real;
            }
        }
        for (r, h) in real_step.iter_mut().zip(&has_eq) {
            *r &= *h;
        }
        let depth = real_step.iter().take_while(|&&r| r).count();
        if real_step[depth..].iter().any(|&r| r) {
            return None; // non-prefix real set: needs loop distribution
        }

        let subst = solve_bindings(cfg, k, &st.eqs[k]);
        // All loop variables must be recoverable.
        for (v, _, _) in &scopy.info.loops {
            if !subst.contains_key(v) {
                return None; // infeasible candidate
            }
        }

        // Value sources first: the set of required (restricting) refs
        // decides which pattern facts may simplify this copy's guards. A
        // hoisted copy only trusts positions established at steps it
        // actually iterates (its prefix).
        let naccesses = scopy.info.accesses().len();
        let mut sources: Vec<Option<ValueSource>> = vec![None; naccesses];
        let mut required = Vec::new();
        let n_copies = cfg.stmts.iter().filter(|s2| s2.orig == scopy.orig).count();
        for &rid in &scopy.refs {
            let rinst = &cfg.refs[rid];
            let nlevels = rinst.chain.levels.len();
            let full = (0..nlevels).all(|l| st.positioned.get(&(rid, l)).copied().unwrap_or(false));
            // An aggregation (∪) copy covers exactly its chain's stored
            // entries; it must reach them *through the chain* (full
            // positioning), or a random-access fallback would re-read
            // entries owned by sibling copies and double-count.
            if !full && n_copies > 1 {
                return None;
            }
            sources[rinst.access_idx] = Some(if full {
                ValueSource::Position { ref_id: rid }
            } else {
                ValueSource::Random { ref_id: rid }
            });
            if st.restricted.get(&rid).copied().unwrap_or(false) {
                required.push(rid);
            }
        }

        // Knowledge context for THIS copy: global facts plus the pattern
        // facts of references whose presence gates the copy's execution.
        let exec_known = {
            let mut kn = st.known.clone();
            for (rid, e) in &st.ref_facts {
                if required.contains(rid) {
                    kn.add_ge(e);
                }
            }
            kn
        };
        // Bindings in dependency order: div=1 first (they may appear in
        // guards), then divisor bindings.
        let mut bindings: Vec<(String, PExpr, i64)> = Vec::new();
        for (v, _, _) in &scopy.info.loops {
            let (pe, d) = subst[v].clone();
            bindings.push((v.clone(), pe, d));
        }
        let mut guards: Vec<Guard> = Vec::new();
        {
            let mut names: Vec<&String> = subst.keys().collect();
            names.sort();
            for v in names {
                let (num, den) = &subst[v];
                if *den != 1 {
                    guards.push(Guard::Divides(num.clone(), *den));
                }
            }
        }

        // Residual match equations (real only; riders are hoisted away).
        for item in &st.eqs[k] {
            if !item.real {
                continue;
            }
            let e = &item.expr;
            // substitute ALL vars (guards run after bindings, so Var
            // atoms referring to loop vars are fine).
            let mut g = match item.slot {
                Some(slot) => PExpr::slot(slot),
                None => PExpr::constant(0),
            };
            g.cst -= e.cst();
            let mut trivially_bound = true;
            for (v, c) in e.terms() {
                if p.params.iter().any(|q| q == v) {
                    g.add_term(Atom::Var(v.to_string()), -c);
                } else if let Some((pe, d)) = subst.get(v) {
                    if *d == 1 {
                        for (a, cc) in &pe.terms {
                            g.add_term(a.clone(), -c * cc);
                        }
                        g.cst -= c * pe.cst;
                    } else {
                        g.add_term(Atom::Var(v.to_string()), -c);
                        trivially_bound = false;
                    }
                } else {
                    g.add_term(Atom::Var(v.to_string()), -c);
                    trivially_bound = false;
                }
            }
            if g.terms.is_empty() && g.cst == 0 {
                continue; // identically satisfied
            }
            if g.terms.is_empty() && g.cst != 0 {
                // The statement (with a non-empty domain) would never
                // execute: the plan loses instances — reject it.
                return None;
            }
            let guard = Guard::Eq(g);
            if trivially_bound && exec_known.implies(&guard) {
                st.notes.push(format!(
                    "S{}.{k}: dropped implied guard {guard}",
                    scopy.orig + 1
                ));
                continue;
            }
            guards.push(guard);
        }

        // Loop-bound guards.
        for (v, lo, hi) in &scopy.info.loops {
            // v - lo >= 0 and hi - 1 - v >= 0
            let ge1 = bound_guard(p, &subst, v, lo, false);
            let ge2 = bound_guard(p, &subst, v, hi, true);
            for g in [ge1, ge2].into_iter().flatten() {
                if exec_known.refutes(&g) {
                    // A refuted bound on a non-empty domain means lost
                    // instances: reject the candidate (for a required-ref
                    // context the refutation means the statement never
                    // meets a stored entry, which annihilation/coverage
                    // must sanction — conservatively reject here too; the
                    // empty-domain prune above already handled the sound
                    // cases).
                    return None;
                }
                if exec_known.implies(&g) {
                    st.notes.push(format!(
                        "S{}.{k}: dropped implied bound {g}",
                        scopy.orig + 1
                    ));
                } else {
                    guards.push(g);
                }
            }
        }

        execs.push(ExecStmt {
            stmt: k,
            orig: scopy.orig,
            body: scopy.info.stmt.clone(),
            bindings,
            guards,
            sources,
            required_refs: required,
            depth,
            after: true,
        });
    }

    // Placement search + authoritative execution-order verification.
    let hoisted: Vec<usize> = execs
        .iter()
        .enumerate()
        .filter(|(_, e)| e.depth < nsteps)
        .map(|(i, _)| i)
        .collect();
    let step_ordered: Vec<bool> = st.steps.iter().map(step_ordered_increasing(cfg)).collect();
    for (step, &ord) in st.steps.iter_mut().zip(&step_ordered) {
        step.ordered = ord;
    }
    let ncombos = 1usize << hoisted.len().min(4);
    let mut verified = false;
    for m in 0..ncombos {
        for (bit, &ei) in hoisted.iter().enumerate() {
            execs[ei].after = (m >> bit) & 1 == 0; // all-after first
        }
        if verify_exec_order(
            cfg,
            deps,
            relaxable,
            relax_reductions,
            &execs,
            &st.eqs,
            &st.steps,
            &step_ordered,
        )
        .is_ok()
        {
            verified = true;
            break;
        }
    }
    if !verified {
        return None;
    }
    for &ei in &hoisted {
        st.notes.push(format!(
            "S{}.{} hoisted to depth {} ({})",
            execs[ei].orig + 1,
            execs[ei].stmt,
            execs[ei].depth,
            if execs[ei].after { "after" } else { "before" }
        ));
    }

    if execs.is_empty() {
        return None;
    }

    let refs = cfg
        .refs
        .iter()
        .map(|r| PlanRef {
            matrix: r.matrix.clone(),
            chain: r.chain.id,
            levels: r.chain.levels.len(),
            access: r
                .access
                .iter()
                .map(|e| {
                    let mut pe = PExpr::constant(e.cst());
                    for (v, c) in e.terms() {
                        pe.add_term(Atom::Var(v.to_string()), c);
                    }
                    pe
                })
                .collect(),
        })
        .collect();

    Some(Plan {
        steps: st.steps,
        execs,
        refs,
        space_desc: space.describe(),
        nslots: st.nslots,
        notes: st.notes,
    })
}

fn bound_guard(
    p: &Program,
    subst: &HashMap<String, (PExpr, i64)>,
    v: &str,
    bound: &AffineExpr,
    upper: bool,
) -> Option<Guard> {
    // lower: v - bound >= 0;  upper: bound - 1 - v >= 0
    let to_pe = |e: &AffineExpr| -> PExpr {
        let mut out = PExpr::constant(e.cst());
        for (x, c) in e.terms() {
            if p.params.iter().any(|q| q == x) {
                out.add_term(Atom::Var(x.to_string()), c);
            } else if let Some((pe, d)) = subst.get(x) {
                if *d == 1 {
                    for (a, cc) in &pe.terms {
                        out.add_term(a.clone(), c * cc);
                    }
                    out.cst += c * pe.cst;
                } else {
                    out.add_term(Atom::Var(x.to_string()), c);
                }
            } else {
                out.add_term(Atom::Var(x.to_string()), c);
            }
        }
        out
    };
    let vv = to_pe(&AffineExpr::var(v));
    let b = to_pe(bound);
    let mut g = PExpr::constant(0);
    if upper {
        for (a, c) in &b.terms {
            g.add_term(a.clone(), *c);
        }
        g.cst += b.cst - 1;
        for (a, c) in &vv.terms {
            g.add_term(a.clone(), -c);
        }
        g.cst -= vv.cst;
    } else {
        for (a, c) in &vv.terms {
            g.add_term(a.clone(), *c);
        }
        g.cst += vv.cst;
        for (a, c) in &b.terms {
            g.add_term(a.clone(), -c);
        }
        g.cst -= b.cst;
    }
    if g.terms.is_empty() && g.cst >= 0 {
        return None; // trivially true
    }
    Some(Guard::Ge(g))
}

/// If every level of `ref_id` is enumerated (positioned and not
/// may-miss) and every dim has a slot, adds `0 <= dense coord < extent`
/// facts for each affinely-mapped dense attribute.
fn add_stored_entry_knowledge(
    p: &Program,
    cfg: &Config,
    space: &Space,
    dim_slot: &HashMap<usize, usize>,
    st: &mut LState,
    rid: usize,
) {
    let rinst = &cfg.refs[rid];
    let nlevels = rinst.chain.levels.len();
    let fully = (0..nlevels).all(|l| st.positioned.get(&(rid, l)).copied().unwrap_or(false));
    if !fully || st.may_miss.get(&rid).copied().unwrap_or(false) {
        return;
    }
    // stored attr -> slot
    let slot_of_attr = |attr: &str| -> Option<usize> {
        rinst
            .chain
            .levels
            .iter()
            .enumerate()
            .flat_map(|(l, lev)| lev.attrs.iter().enumerate().map(move |(sl, a)| (l, sl, a)))
            .find(|(_, _, a)| a.as_str() == attr)
            .and_then(|(l, sl, _)| rinst.dims.iter().position(|d| d.level == l && d.slot == sl))
            .and_then(|di| {
                space.dims.iter().position(|sd| {
                    matches!(sd.kind, DimKind::Data { ref_id: r2, dim_idx }
                        if r2 == rid && dim_idx == di)
                })
            })
            .and_then(|sdi| dim_slot.get(&sdi).copied())
    };
    for t in &rinst.chain.fwd {
        let bernoulli_formats::view::Transform::Affine { out, terms, cst } = t else {
            continue;
        };
        let Some(pos) = rinst.dense_attrs.iter().position(|a| a == out) else {
            continue;
        };
        let mut e = PExpr::constant(*cst);
        let mut ok = true;
        for (a, c) in terms {
            match slot_of_attr(a) {
                Some(sl) => e.add_term(Atom::Slot(sl), *c),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        // 0 <= e and e <= extent - 1
        st.known.add_ge(&e);
        let attr = rinst.dense_attrs[pos].clone();
        if let Some(hi) = extent_expr(p, &rinst.matrix, &attr) {
            let mut ub = hi;
            ub.cst -= 1;
            for (a, c) in &e.terms {
                ub.add_term(a.clone(), -c);
            }
            ub.cst -= e.cst;
            st.known.add_ge(&ub);
        }
    }
}

/// Adds a reference's view bounds (over dense attrs) to the known
/// context, when the corresponding dims have slots.
fn add_view_bound_knowledge(
    cfg: &Config,
    space: &Space,
    dim_slot: &HashMap<usize, usize>,
    st: &mut LState,
    ref_id: usize,
    view: &FormatView,
) {
    let rinst = &cfg.refs[ref_id];
    // Facts from a reference that may be missing at runtime (some level
    // located by a fallible search) hold only where the reference is
    // present — record them per-ref; statements requiring the reference
    // get them, others must not.
    let fallible = st.may_miss.get(&ref_id).copied().unwrap_or(false);
    for b in &view.bounds {
        // Bound over dense attrs: translate each attr to the slot of the
        // ref dim with that value attribute (must exist and be slotted).
        let mut e = PExpr::constant(b.cst);
        let mut ok = true;
        for (attr, c) in &b.terms {
            let slot = rinst
                .dims
                .iter()
                .position(|d| &d.attr == attr)
                .and_then(|di| {
                    space.dims.iter().position(|sd| {
                        matches!(sd.kind, DimKind::Data { ref_id: r2, dim_idx }
                            if r2 == ref_id && dim_idx == di)
                    })
                })
                .and_then(|sdi| dim_slot.get(&sdi).copied());
            match slot {
                Some(s) => e.add_term(Atom::Slot(s), *c),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            if fallible {
                st.ref_facts.push((ref_id, e));
            } else {
                st.known.add_ge(&e);
            }
        }
    }
}

/// The copy's iteration domain (loop bounds ∧ chain constraints) as a
/// polyhedron over `[loop vars..., params...]`, with the name→index map.
fn copy_domain(p: &Program, cfg: &Config, k: usize) -> (System, HashMap<String, usize>) {
    let scopy = &cfg.stmts[k];
    let mut names: Vec<String> = scopy.info.loops.iter().map(|(v, _, _)| v.clone()).collect();
    for q in &p.params {
        names.push(q.clone());
    }
    let n = names.len();
    let index: HashMap<String, usize> = names
        .iter()
        .enumerate()
        .map(|(i, s)| (s.clone(), i))
        .collect();
    let mut sys = System::new(names);
    for (v, lo, hi) in &scopy.info.loops {
        let vv = LinExpr::var(n, index[v]);
        sys.add_ge(&vv, &lo.to_linexpr(n, &index));
        let hi_e = hi.to_linexpr(n, &index);
        let one = LinExpr::constant(n, 1);
        sys.add(Constraint::ge0(&(&hi_e - &vv) - &one));
    }
    for &rid in &scopy.refs {
        for (lhs, rhs) in &cfg.refs[rid].constraints {
            let diff = lhs - rhs;
            sys.add(Constraint::eq0(diff.to_linexpr(n, &index)));
        }
    }
    (sys, index)
}

/// Is the copy's iteration domain empty? Used to prune, e.g., the
/// diagonal-chain copy of a strictly sub-diagonal statement.
fn copy_domain_empty(p: &Program, cfg: &Config, k: usize) -> bool {
    copy_domain(p, cfg, k).0.is_empty()
}

/// Completeness: a *real* equation at an all-values-visited step promises
/// that every domain instance's required value is actually enumerated.
/// Equations whose required values can escape the enumerated range are
/// demoted to riders (the statement hoists out of that step instead);
/// demotion cascades because interval bounds may reference other slots.
fn demote_incomplete_eqs(p: &Program, cfg: &Config, st: &mut LState, k: usize) {
    let (domain, index) = copy_domain(p, cfg, k);
    if domain.is_empty() {
        return;
    }
    let nvars = domain.num_vars();
    loop {
        let mut demote: Option<usize> = None;
        'eqs: for (ei, item) in st.eqs[k].iter().enumerate() {
            if !item.real || item.step == usize::MAX || item.owns_data {
                continue;
            }
            let step = &st.steps[item.step];
            // Range of the enumerated values, as affine exprs over the
            // statement's variables and parameters.
            let range: Option<(AffineExpr, AffineExpr)> = match &step.kind {
                StepKind::Interval { lo, hi } => {
                    let subst = |pe: &PExpr| -> Option<AffineExpr> {
                        let mut out = AffineExpr::constant(pe.cst);
                        for (a, c) in &pe.terms {
                            match a {
                                Atom::Var(v) => out.add_term(v, *c),
                                Atom::Slot(sl) => {
                                    let other = st.eqs[k]
                                        .iter()
                                        .find(|it| it.real && it.slot == Some(*sl))?;
                                    for (v2, c2) in other.expr.terms() {
                                        out.add_term(v2, c * c2);
                                    }
                                    let add = other.expr.cst() * c;
                                    out.set_cst(out.cst() + add);
                                }
                            }
                        }
                        Some(out)
                    };
                    match (subst(lo), subst(hi)) {
                        (Some(l), Some(h)) => Some((l, h)),
                        _ => {
                            demote = Some(ei);
                            break 'eqs;
                        }
                    }
                }
                StepKind::Level { primary, .. } => {
                    // visits-all level (outermost interval): range is the
                    // dense extent of the primary dim's value attribute.
                    let rinst = &cfg.refs[primary.ref_id];
                    let di = rinst
                        .dims
                        .iter()
                        .position(|d| d.level == primary.level && d.slot == 0);
                    match di.and_then(|di| extent_range_affine(p, cfg, primary.ref_id, di)) {
                        Some(r) => Some(r),
                        None => {
                            demote = Some(ei);
                            break 'eqs;
                        }
                    }
                }
                StepKind::MergeJoin { .. } => None, // owns_data-only realness
            };
            let Some((lo, hi)) = range else { continue };
            // domain ⊨ lo <= expr  and  expr <= hi - 1 ?
            let e = item.expr.to_linexpr(nvars, &index);
            let lo_e = lo.to_linexpr(nvars, &index);
            let hi_e = hi.to_linexpr(nvars, &index);
            let one = LinExpr::constant(nvars, 1);
            let c1 = Constraint::ge0(&e - &lo_e);
            let c2 = Constraint::ge0(&(&hi_e - &e) - &one);
            if !domain.implies(&c1) || !domain.implies(&c2) {
                demote = Some(ei);
                break 'eqs;
            }
        }
        match demote {
            Some(ei) => {
                st.eqs[k][ei].real = false;
            }
            None => return,
        }
    }
}

/// Like [`extent_range`] but producing affine expressions over parameter
/// names (for implication checks in statement-variable space).
fn extent_range_affine(
    p: &Program,
    cfg: &Config,
    ref_id: usize,
    dim_idx: usize,
) -> Option<(AffineExpr, AffineExpr)> {
    let (lo, hi) = extent_range(p, cfg, ref_id, dim_idx)?;
    let conv = |pe: &PExpr| -> Option<AffineExpr> {
        let mut out = AffineExpr::constant(pe.cst);
        for (a, c) in &pe.terms {
            match a {
                Atom::Var(v) => out.add_term(v, *c),
                Atom::Slot(_) => return None,
            }
        }
        Some(out)
    };
    Some((conv(&lo)?, conv(&hi)?))
}

/// Does a step enumerate its slot values in increasing order?
fn step_ordered_increasing(cfg: &Config) -> impl Fn(&Step) -> bool + '_ {
    move |step: &Step| match &step.kind {
        StepKind::Interval { .. } => step.dir == Dir::Fwd,
        StepKind::MergeJoin { .. } => true,
        StepKind::Level { primary, perms } => {
            if perms.iter().any(|p| p.is_some()) {
                return false; // permutation scrambles values
            }
            let rinst = &cfg.refs[primary.ref_id];
            (0..step.nslots).all(|s| {
                rinst
                    .dims
                    .iter()
                    .find(|rd| rd.level == primary.level && rd.slot == s)
                    .is_some_and(|rd| rd.order == Order::Increasing)
            })
        }
    }
}

/// Extended value for the step-order walk: finite affine, or the
/// ±∞ placement codes of a hoisted statement.
enum Ext {
    Fin(LinExpr),
    Neg,
    Pos,
}

/// Authoritative verification that the lowered plan executes every
/// dependence class source before its destination, under the actual
/// semantics (hoisted statements run before/after the deeper subtree,
/// rider equations dropped).
#[allow(clippy::too_many_arguments)]
fn verify_exec_order(
    cfg: &Config,
    deps: &[bernoulli_ir::DepClass],
    relaxable: &[bool],
    relax_reductions: bool,
    execs: &[ExecStmt],
    eqs: &[Vec<EqItem>],
    steps: &[Step],
    step_ordered: &[bool],
) -> Result<(), String> {
    for (ci, class) in deps.iter().enumerate() {
        if relax_reductions && relaxable[ci] {
            continue;
        }
        for (sei, se) in execs.iter().enumerate() {
            if se.orig != class.src {
                continue;
            }
            for (dei, de) in execs.iter().enumerate() {
                if de.orig != class.dst {
                    continue;
                }
                verify_pair(cfg, class, se, de, sei, dei, eqs, steps, step_ordered)?;
            }
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn verify_pair(
    _cfg: &Config,
    class: &bernoulli_ir::DepClass,
    se: &ExecStmt,
    de: &ExecStmt,
    sei: usize,
    dei: usize,
    eqs: &[Vec<EqItem>],
    steps: &[Step],
    step_ordered: &[bool],
) -> Result<(), String> {
    let mut sys = class.sys.clone();
    let n = sys.num_vars();
    let index: HashMap<String, usize> = sys
        .vars()
        .iter()
        .enumerate()
        .map(|(i, v)| (v.clone(), i))
        .collect();

    let value_of = |e: &ExecStmt, si: usize, slot: usize, suffix: &str| -> Ext {
        if si >= e.depth {
            return if e.after { Ext::Pos } else { Ext::Neg };
        }
        let item = eqs[e.stmt]
            .iter()
            .find(|it| it.real && it.slot == Some(slot))
            .expect("real equation exists for every step within depth");
        let renamed = item.expr.rename(|v| {
            if index.contains_key(v) {
                v.to_string()
            } else {
                format!("{v}{suffix}")
            }
        });
        Ext::Fin(renamed.to_linexpr(n, &index))
    };

    for (si, step) in steps.iter().enumerate() {
        for s in 0..step.nslots {
            if sys.is_empty() {
                return Ok(());
            }
            let slot = step.first_slot + s;
            let sv = value_of(se, si, slot, "@s");
            let dv = value_of(de, si, slot, "@d");
            match (sv, dv) {
                (Ext::Fin(a), Ext::Fin(b)) => {
                    let d = &b - &a;
                    if sys.forces_zero(&d) {
                        continue;
                    }
                    if !step_ordered[si] {
                        return Err(format!(
                            "unordered step {si} must carry part of {}",
                            class.describe()
                        ));
                    }
                    if !sys.implies(&Constraint::ge0(d.clone())) {
                        return Err(format!(
                            "step {si} can run destination before source for {}",
                            class.describe()
                        ));
                    }
                    sys.add(Constraint::eq0(d));
                }
                // Destination placed after everything at this level.
                (Ext::Fin(_), Ext::Pos) | (Ext::Neg, Ext::Fin(_)) | (Ext::Neg, Ext::Pos) => {
                    return Ok(());
                }
                // Destination placed before the source at this level.
                (Ext::Fin(_), Ext::Neg) | (Ext::Pos, Ext::Fin(_)) | (Ext::Pos, Ext::Neg) => {
                    return Err(format!(
                        "placement runs destination before source for {}",
                        class.describe()
                    ));
                }
                (Ext::Pos, Ext::Pos) | (Ext::Neg, Ext::Neg) => continue,
            }
        }
    }
    if sys.is_empty() {
        return Ok(());
    }
    // Identical points: emission order must put the source first.
    if sei < dei {
        Ok(())
    } else {
        Err(format!(
            "dependent instances at identical points, emission order violates {}",
            class.describe()
        ))
    }
}
