//! The synthesis driver: search over configurations, dimension orders,
//! embeddings and enumeration sources (paper §4.2–4.3).
//!
//! Since S34 the driver is built for speed without giving up
//! reproducibility:
//!
//! - **Parallel fan-out** — each configuration's (order, embedding,
//!   lowering) work is independent, so the per-pass configuration loop
//!   runs over the shared worker pool ([`bernoulli_pool::Pool`]). The
//!   merge is deterministic: outcomes are combined in configuration
//!   order (the pool's `par_map` preserves input order) and ranked with
//!   a stable sort, so parallel and sequential searches return
//!   *byte-identical* candidates, `examined` and `pruned` counts.
//! - **Branch-and-bound pruning** — when a configuration's bound heap
//!   holds `keep` real candidate costs, an embedding whose admissible
//!   cost floor ([`crate::cost::cost_floor`], a product over its stepped
//!   groups of per-group minimum trip counts) strictly exceeds the worst
//!   of them is dropped before the expensive lowering + zero-safety
//!   work. The heap is seeded by a probe round (every configuration's
//!   first embedding variant, fanned out before the real search) and
//!   otherwise stays *local to the configuration*: the seed is frozen,
//!   never updated across pool threads, because a live global bound
//!   would prune differently depending on thread timing and break
//!   determinism.
//! - **Plan cache** — whole-search results are memoized by (program,
//!   views, statistics, search knobs); repeated identical synthesis
//!   requests return the ranked candidates without searching at all.
//!   The polyhedral layer underneath keeps its own memo caches
//!   ([`bernoulli_polyhedra::cache`]), which also accelerate *cold*
//!   searches that re-test structurally identical systems.

use crate::config::{enumerate_configs, Config};
use crate::cost::{cost_floor, estimate_cost, WorkloadStats};
use crate::embed::embedding_variants;
use crate::groups::compute_groups;
use crate::legal::{check_legality, relaxable_classes};
use crate::lower::lower_plans;
use crate::plan::Plan;
use crate::spaces::candidate_spaces_opt;
use crate::zero::check_zero_safety;
use bernoulli_formats::view::FormatView;
use bernoulli_govern::{Budget, BudgetError};
use bernoulli_ir::{analyze, Program};
use bernoulli_pool::{Pool, PoolError};
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Knobs bounding the search (paper §4.3 heuristics).
#[derive(Clone, Debug)]
pub struct SynthOptions {
    /// Cap on dimension orders per configuration.
    pub max_orders: usize,
    /// Cap on embedding variants per (configuration, order).
    pub max_embeddings: usize,
    /// Allow reassociation of associative reductions (every sparse BLAS
    /// does); disable for bitwise-faithful enumeration order.
    pub relax_reductions: bool,
    /// Also generate the deliberately naive iteration-centric order (for
    /// the ablation experiments).
    pub include_iteration_centric: bool,
    /// Workload statistics for the cost model.
    pub stats: WorkloadStats,
    /// Keep at most this many ranked candidates in `synthesize_all`.
    pub keep: usize,
    /// Fan the per-configuration work out over the shared worker pool.
    /// Candidates, `examined` and `pruned` are byte-identical to a
    /// sequential run regardless of pool size.
    pub parallel: bool,
    /// Branch-and-bound: skip lowering embeddings whose admissible cost
    /// floor already exceeds the configuration's worst kept candidate.
    pub prune: bool,
    /// Memoize whole-search results: a second call with the same
    /// program, views, statistics and knobs returns the cached ranked
    /// candidates. Identical results either way; disable to time the
    /// search itself.
    pub cache_plans: bool,
}

impl Default for SynthOptions {
    fn default() -> Self {
        SynthOptions {
            max_orders: 16,
            max_embeddings: 12,
            relax_reductions: true,
            include_iteration_centric: false,
            stats: WorkloadStats::default(),
            keep: 64,
            parallel: true,
            prune: true,
            cache_plans: true,
        }
    }
}

/// A ranked candidate produced by the search.
#[derive(Clone, Debug)]
pub struct Candidate {
    pub plan: Plan,
    pub cost: f64,
    /// Perspective choices: (matrix, alternative) per reference.
    pub choices: Vec<(String, usize)>,
    /// Zero-safety notes (what made the restriction sound).
    pub safety_notes: Vec<String>,
}

/// The best plan plus search statistics.
#[derive(Clone, Debug)]
pub struct Synthesized {
    pub plan: Plan,
    pub cost: f64,
    pub choices: Vec<(String, usize)>,
    pub safety_notes: Vec<String>,
    /// Total candidates that survived legality + zero checks.
    pub legal_candidates: usize,
    /// Total (config, order, embedding) triples examined.
    pub examined: usize,
}

/// Everything [`synthesize_all_report`] learned: the ranked candidates
/// plus the search accounting the benchmarks and experiments read.
#[derive(Clone, Debug)]
pub struct SearchReport {
    /// Surviving candidates, cheapest first (at most `opts.keep`).
    pub candidates: Vec<Candidate>,
    /// Total (config, order, embedding) triples examined.
    pub examined: usize,
    /// Embeddings skipped by branch-and-bound before lowering.
    pub pruned: usize,
    /// Deduplicated rejection reasons (capped).
    pub reasons: Vec<String>,
    /// True iff the whole result came from the plan cache.
    pub plan_cache_hit: bool,
    /// True iff the plan-cache hit was served from the *persistent*
    /// (on-disk) tier rather than memory — a service warm-start.
    pub plan_cache_disk_hit: bool,
    /// True iff the compute budget ran out mid-search: the candidates
    /// are the verified-legal best-so-far (or the baseline fallback),
    /// not the full ranking. Degraded results are never stored in the
    /// plan cache.
    pub degraded: bool,
    /// What stopped the search early, when `degraded`.
    pub budget: Option<BudgetError>,
    /// Configurations whose per-pass work was skipped (fully or
    /// partially) by the early stop.
    pub skipped_configs: usize,
}

/// Why synthesis failed — the root of the `synth` error hierarchy.
/// Every lower layer's typed error converges here via `From`, so the
/// staged [`Session`](crate::session::Session) API can report any
/// caller-triggerable failure as one recoverable type.
#[derive(Clone, Debug)]
pub enum SynthError {
    /// The input program is malformed: a syntax error or a semantic one
    /// (undeclared arrays, out-of-scope variables, arity mismatches).
    InvalidProgram(bernoulli_ir::IrError),
    /// A format view was bound to a matrix the program never declares.
    UnknownMatrix { name: String },
    /// A view disagrees with how the program references the matrix
    /// (e.g. rank mismatch between dense attributes and indices).
    Config(crate::config::ConfigError),
    /// Constructing or converting a concrete format failed.
    Format(bernoulli_formats::FormatError),
    /// Executing a plan against an environment failed (unbound or
    /// dimension-mismatched operands, out-of-range accesses).
    Plan(crate::interp::PlanError),
    /// Specializing a plan to Rust source failed.
    Emit(crate::emit::EmitError),
    /// No legal, zero-safe plan was found; the payload describes the last
    /// rejection reasons observed.
    NoLegalPlan { reasons: Vec<String> },
    /// The compute budget (deadline, operation ceiling or cancellation)
    /// ran out before any legal plan was verified, and the baseline
    /// fallback could not produce one either. A search that has at
    /// least one verified candidate when the budget trips returns it
    /// with [`SearchReport::degraded`] set instead of this error.
    Deadline { cause: BudgetError, examined: usize },
    /// A parallel search job panicked; the pool contained the failure
    /// and stays usable.
    Pool(PoolError),
}

impl std::fmt::Display for SynthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthError::InvalidProgram(e) => write!(f, "invalid program: {e}"),
            SynthError::UnknownMatrix { name } => {
                write!(f, "matrix {name:?} is not declared by the program")
            }
            SynthError::Config(e) => write!(f, "{e}"),
            SynthError::Format(e) => write!(f, "{e}"),
            SynthError::Plan(e) => write!(f, "{e}"),
            SynthError::Emit(e) => write!(f, "{e}"),
            SynthError::NoLegalPlan { reasons } => {
                write!(f, "no legal plan found")?;
                for r in reasons.iter().take(5) {
                    write!(f, "; {r}")?;
                }
                Ok(())
            }
            SynthError::Deadline { cause, examined } => {
                write!(
                    f,
                    "search stopped before any legal plan was verified \
                     ({cause}; {examined} embeddings examined)"
                )
            }
            SynthError::Pool(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SynthError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SynthError::InvalidProgram(e) => Some(e),
            SynthError::Config(e) => Some(e),
            SynthError::Format(e) => Some(e),
            SynthError::Plan(e) => Some(e),
            SynthError::Emit(e) => Some(e),
            SynthError::Pool(e) => Some(e),
            SynthError::Deadline { cause, .. } => Some(cause),
            SynthError::UnknownMatrix { .. } | SynthError::NoLegalPlan { .. } => None,
        }
    }
}

impl From<PoolError> for SynthError {
    fn from(e: PoolError) -> SynthError {
        SynthError::Pool(e)
    }
}

impl From<bernoulli_ir::IrError> for SynthError {
    fn from(e: bernoulli_ir::IrError) -> SynthError {
        SynthError::InvalidProgram(e)
    }
}

impl From<bernoulli_ir::ParseError> for SynthError {
    fn from(e: bernoulli_ir::ParseError) -> SynthError {
        SynthError::InvalidProgram(e.into())
    }
}

impl From<bernoulli_ir::ValidateError> for SynthError {
    fn from(e: bernoulli_ir::ValidateError) -> SynthError {
        SynthError::InvalidProgram(e.into())
    }
}

impl From<crate::config::ConfigError> for SynthError {
    fn from(e: crate::config::ConfigError) -> SynthError {
        SynthError::Config(e)
    }
}

impl From<bernoulli_formats::FormatError> for SynthError {
    fn from(e: bernoulli_formats::FormatError) -> SynthError {
        SynthError::Format(e)
    }
}

impl From<crate::interp::PlanError> for SynthError {
    fn from(e: crate::interp::PlanError) -> SynthError {
        SynthError::Plan(e)
    }
}

impl From<crate::emit::EmitError> for SynthError {
    fn from(e: crate::emit::EmitError) -> SynthError {
        SynthError::Emit(e)
    }
}

/// Synthesizes the best data-centric plan for the program with the given
/// sparse-matrix views.
pub fn synthesize(
    p: &Program,
    views: &[(&str, FormatView)],
    opts: &SynthOptions,
) -> Result<Synthesized, SynthError> {
    let mut all = synthesize_all_report(p, views, opts)?;
    let examined = all.examined;
    let legal = all.candidates.len();
    let best = all
        .candidates
        .drain(..)
        .next()
        .ok_or(SynthError::NoLegalPlan {
            reasons: all.reasons,
        })?;
    Ok(Synthesized {
        plan: best.plan,
        cost: best.cost,
        choices: best.choices,
        safety_notes: best.safety_notes,
        legal_candidates: legal,
        examined,
    })
}

/// Runs the full search and returns all surviving candidates ranked by
/// estimated cost (plus the examined count and rejection reasons) — the
/// raw material of the cost-model-validation experiment.
#[allow(clippy::type_complexity)]
pub fn synthesize_all(
    p: &Program,
    views: &[(&str, FormatView)],
    opts: &SynthOptions,
) -> Result<(Vec<Candidate>, usize, Vec<String>), SynthError> {
    let r = synthesize_all_report(p, views, opts)?;
    Ok((r.candidates, r.examined, r.reasons))
}

/// [`synthesize_all`] with the full [`SearchReport`]. Honors
/// `opts.parallel` by running on the process-global pool.
pub fn synthesize_all_report(
    p: &Program,
    views: &[(&str, FormatView)],
    opts: &SynthOptions,
) -> Result<SearchReport, SynthError> {
    let pool = opts.parallel.then(Pool::global);
    run_search(p, views, opts, pool, global_plan_cache(), None)
}

/// [`synthesize_all_report`] on a caller-supplied pool (ignores
/// `opts.parallel`). The result is byte-identical for every pool size,
/// including a sequential run — the determinism contract the
/// `synth_search_parallel` suite enforces.
pub fn synthesize_all_with_pool(
    p: &Program,
    views: &[(&str, FormatView)],
    opts: &SynthOptions,
    pool: &Pool,
) -> Result<SearchReport, SynthError> {
    run_search(p, views, opts, Some(pool), global_plan_cache(), None)
}

/// Rejection reasons are deduplicated and capped at this many entries.
const MAX_REASONS: usize = 16;

fn push_reason(reasons: &mut Vec<String>, r: &str) {
    if reasons.len() < MAX_REASONS && !reasons.iter().any(|x| x == r) {
        reasons.push(r.to_string());
    }
}

/// Max-heap key ordering costs by `total_cmp` (NaN sorts largest, so a
/// degenerate cost model disables pruning rather than panicking).
struct OrdF64(f64);

impl PartialEq for OrdF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0).is_eq()
    }
}
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Everything one configuration's search produced; merged in
/// configuration order so the fan-out stays deterministic.
#[derive(Default)]
struct ConfigOutcome {
    cands: Vec<Candidate>,
    examined: usize,
    pruned: usize,
    reasons: Vec<String>,
    /// Set when the budget tripped and this configuration's remaining
    /// work was abandoned (its partial results are still merged).
    skipped: bool,
}

/// Operation ceiling for the baseline-fallback search that runs after
/// the caller's budget is spent: enough for the always-realizable
/// iteration-centric lowering of every kernel in the suite, small
/// enough that an adversarial input still terminates promptly.
const FALLBACK_MAX_OPS: u64 = 4_000_000;

/// Runs one configuration's search, converting a panic into the same
/// typed error the pool's `try_par_map` reports — the sequential path
/// must not be the one place where a panicking configuration takes the
/// whole process down.
fn catch_outcome(f: impl FnOnce() -> ConfigOutcome) -> Result<ConfigOutcome, SynthError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(|p| {
        let message = if let Some(s) = p.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = p.downcast_ref::<String>() {
            s.clone()
        } else {
            "search configuration panicked".to_string()
        };
        SynthError::Pool(PoolError::JobPanicked { message })
    })
}

pub(crate) fn run_search(
    p: &Program,
    views: &[(&str, FormatView)],
    opts: &SynthOptions,
    pool: Option<&Pool>,
    cache: &PlanCache,
    persist: Option<&crate::persist::PersistentPlanCache>,
) -> Result<SearchReport, SynthError> {
    bernoulli_trace::counter!("synth.searches");
    bernoulli_trace::span!("synth.search");
    p.validate()?;

    let key = opts.cache_plans.then(|| plan_cache_key(p, views, opts));
    if let Some(k) = &key {
        if let Some(c) = cache.lock().get(k).cloned() {
            cache.hits.fetch_add(1, Ordering::Relaxed);
            bernoulli_trace::counter!("synth.plan_cache_hits");
            // Only complete (never degraded) searches are cached, so a
            // hit is a full result even if the current budget is spent.
            return Ok(SearchReport {
                candidates: c.candidates,
                examined: c.examined,
                pruned: c.pruned,
                reasons: c.reasons,
                plan_cache_hit: true,
                plan_cache_disk_hit: false,
                degraded: false,
                budget: None,
                skipped_configs: 0,
            });
        }
        cache.misses.fetch_add(1, Ordering::Relaxed);
        bernoulli_trace::counter!("synth.plan_cache_misses");
        // Persistent tier: a restarted service finds the previous
        // process's completed searches on disk, promotes them into the
        // in-memory cache, and skips the search entirely (warm-start).
        if let Some(ps) = persist {
            if let Some(c) = ps.load(k) {
                bernoulli_trace::counter!("synth.plan_cache_disk_hits");
                let mut g = cache.lock();
                if g.len() >= PLAN_CACHE_CAP {
                    g.clear();
                }
                g.insert(k.clone(), c.clone());
                drop(g);
                return Ok(SearchReport {
                    candidates: c.candidates,
                    examined: c.examined,
                    pruned: c.pruned,
                    reasons: c.reasons,
                    plan_cache_hit: true,
                    plan_cache_disk_hit: true,
                    degraded: false,
                    budget: None,
                    skipped_configs: 0,
                });
            }
        }
    }

    // The active budget, read once per search from the *calling*
    // thread's slot, and the calling thread's polyhedral cache view.
    // Both slots are thread-local (concurrent compiles are isolated),
    // so `search_config` re-installs this captured context inside every
    // pool job — worker threads must attribute fine-grained op charging
    // and memo lookups to the compile they are working for.
    let budget = bernoulli_govern::current();
    let poly_ctx = bernoulli_polyhedra::cache_context();

    let view_map: HashMap<String, FormatView> = views
        .iter()
        .map(|(n, v)| (n.to_string(), v.clone()))
        .collect();
    let deps = analyze(p);
    let relaxable = relaxable_classes(p, &deps);
    let configs = enumerate_configs(p, &view_map).map_err(SynthError::Config)?;
    bernoulli_trace::counter!("synth.configs", configs.len());

    // One configuration's search, shared verbatim by the sequential and
    // parallel paths (and, with `max_emb == 1`, by the probe round).
    // The branch-and-bound heap holds the `keep` cheapest costs seen by
    // this configuration *plus* the frozen probe seed; an embedding is
    // pruned only when its floor *strictly* exceeds the heap's worst
    // entry while the heap is full — every heap entry is a real
    // candidate's cost, so the pruned plan could never have ranked among
    // the global `keep` cheapest. The seed is computed once before the
    // fan-out and shared read-only, never updated across pool threads:
    // a live global bound would prune differently depending on thread
    // timing and break determinism.
    let search_config = |cfg: &Config,
                         unconstrained: bool,
                         iteration_centric: bool,
                         max_emb: usize,
                         seed: &[f64],
                         budget: Option<&Arc<Budget>>| {
        // Re-establish the submitting compile's context on whichever
        // thread runs this configuration: pool workers have no installed
        // budget or cache view of their own, and with thread-local slots
        // they must observe the session's, not a neighbor compile's.
        let _poly = bernoulli_polyhedra::install_context_scoped(&poly_ctx);
        let _gov = bernoulli_govern::install_scoped(budget.cloned());
        bernoulli_govern::faults::hit("synth.config");
        let mut o = ConfigOutcome::default();
        let mut bound: BinaryHeap<OrdF64> = seed.iter().map(|&c| OrdF64(c)).collect();
        let spaces = candidate_spaces_opt(
            cfg,
            opts.max_orders,
            opts.include_iteration_centric || iteration_centric,
            unconstrained,
        );
        bernoulli_trace::counter!("synth.spaces", spaces.len());
        for space in &spaces {
            // Coarse-grained budget gate: the fine-grained op accounting
            // lives inside the polyhedral layer; here we only bail out
            // between candidate spaces. Partial results stay merged —
            // every candidate already produced was fully verified.
            if budget.is_some_and(|b| b.check().is_err()) {
                o.skipped = true;
                break;
            }
            let mut got_plan = false;
            for emb in embedding_variants(cfg, space, max_emb) {
                o.examined += 1;
                bernoulli_trace::counter!("synth.embeddings_examined");
                // The dimension walk is a direction-inference pre-pass;
                // the lowered plan is re-verified authoritatively, so a
                // "violation" here only means directions are partial.
                let leg =
                    check_legality(cfg, space, &emb, &deps, &relaxable, opts.relax_reductions);
                if let Some(v) = &leg.violation {
                    bernoulli_trace::counter!("synth.embeddings_rejected");
                    push_reason(&mut o.reasons, v);
                }
                let groups = compute_groups(cfg, space, &emb);
                // Branch-and-bound: the group structure is cheap (rank
                // computation) while lowering + zero safety underneath do
                // the polyhedral heavy lifting — prune between the two.
                if opts.prune && opts.keep > 0 && bound.len() == opts.keep {
                    let floor = cost_floor(cfg, space, &groups, &opts.stats);
                    if let Some(worst) = bound.peek() {
                        if floor > worst.0 {
                            o.pruned += 1;
                            bernoulli_trace::counter!("synth.plans_pruned");
                            continue;
                        }
                    }
                }
                for plan in lower_plans(
                    p,
                    cfg,
                    space,
                    &emb,
                    &groups,
                    &leg.must_increase,
                    &view_map,
                    &deps,
                    &relaxable,
                    opts.relax_reductions,
                ) {
                    match check_zero_safety(p, cfg, &plan, &view_map) {
                        Ok(notes) => {
                            bernoulli_trace::counter!("synth.plans_lowered");
                            let cost = estimate_cost(p, cfg, &plan, &opts.stats);
                            got_plan = true;
                            if opts.keep > 0 {
                                bound.push(OrdF64(cost));
                                if bound.len() > opts.keep {
                                    bound.pop();
                                }
                            }
                            o.cands.push(Candidate {
                                plan,
                                cost,
                                choices: cfg.choices.clone(),
                                safety_notes: notes,
                            });
                        }
                        Err(e) => {
                            bernoulli_trace::counter!("synth.plans_zero_unsafe");
                            push_reason(&mut o.reasons, &e.to_string());
                        }
                    }
                }
                if got_plan {
                    break; // embedding variants only matter on failure
                }
            }
        }
        o
    };

    let mut out: Vec<Candidate> = Vec::new();
    let mut examined = 0usize;
    let mut pruned = 0usize;
    let mut skipped_configs = 0usize;
    let mut reasons: Vec<String> = Vec::new();

    // First pass: orders respecting each chain's nesting structure.
    // Second pass: unconstrained cluster orders (needed when the only
    // legal code enumerates an inner coordinate by interval before an
    // outer stored level, e.g. TS on DIA). Third pass: iteration-centric
    // orders — the dense fallback that is always realizable (random
    // access per element) for kernels whose statement structure defeats
    // every data-centric order.
    'passes: for (unconstrained, iteration_centric) in [(false, false), (true, false), (true, true)]
    {
        // Deterministic incumbent: probe every configuration's *first*
        // embedding variant, keep the `keep` cheapest probe costs, and
        // seed every configuration's bound heap with them for the real
        // search. The candidate-producing and expensive-but-fruitless
        // configurations are usually disjoint, so a purely config-local
        // bound never fills; the probe finds the producers at the cost
        // of one embedding per configuration. Probe outcomes are
        // discarded — the main search re-derives those candidates — so
        // `examined`/`pruned` reflect the main search only, and the seed
        // is a fixed multiset of real candidate costs whichever pool
        // size computed it.
        // Probing pays only when the bound heap can actually fill: each
        // configuration's first embedding contributes a handful of
        // candidates at most, so with `keep` far above the configuration
        // count the probe is pure overhead and is skipped.
        let mut seed: Vec<f64> = Vec::new();
        if opts.prune && opts.keep > 0 && configs.len() > 1 && opts.keep <= 2 * configs.len() {
            let probes: Vec<ConfigOutcome> = match pool {
                Some(pl) => pl.try_par_map(&configs, |cfg| {
                    search_config(
                        cfg,
                        unconstrained,
                        iteration_centric,
                        1,
                        &[],
                        budget.as_ref(),
                    )
                })?,
                _ => configs
                    .iter()
                    .map(|cfg| {
                        catch_outcome(|| {
                            search_config(
                                cfg,
                                unconstrained,
                                iteration_centric,
                                1,
                                &[],
                                budget.as_ref(),
                            )
                        })
                    })
                    .collect::<Result<_, _>>()?,
            };
            let mut h: BinaryHeap<OrdF64> = probes
                .iter()
                .flat_map(|o| o.cands.iter().map(|c| OrdF64(c.cost)))
                .collect();
            while h.len() > opts.keep {
                h.pop();
            }
            seed = h.into_iter().map(|c| c.0).collect();
        }
        let outcomes: Vec<ConfigOutcome> = match pool {
            // `par_map` returns results in input order, so the merge
            // below is independent of which thread finished first.
            Some(pl) if configs.len() > 1 => pl.try_par_map(&configs, |cfg| {
                search_config(
                    cfg,
                    unconstrained,
                    iteration_centric,
                    opts.max_embeddings,
                    &seed,
                    budget.as_ref(),
                )
            })?,
            _ => configs
                .iter()
                .map(|cfg| {
                    catch_outcome(|| {
                        search_config(
                            cfg,
                            unconstrained,
                            iteration_centric,
                            opts.max_embeddings,
                            &seed,
                            budget.as_ref(),
                        )
                    })
                })
                .collect::<Result<_, _>>()?,
        };
        for o in outcomes {
            examined += o.examined;
            pruned += o.pruned;
            skipped_configs += o.skipped as usize;
            for r in &o.reasons {
                push_reason(&mut reasons, r);
            }
            out.extend(o.cands);
        }
        // A tripped budget is sticky: later passes would only burn clock
        // re-checking it, so stop fanning out and degrade below.
        if budget.as_deref().is_some_and(|b| b.exceeded().is_some()) {
            break 'passes;
        }
        if !out.is_empty() {
            break 'passes;
        }
    }

    // Graceful degradation. A spent budget means the fan-out above may
    // have stopped early; whatever survived is still fully verified
    // (legality + zero safety ran to completion for every candidate in
    // `out`), so the best-so-far plan is sound to return — it is only
    // potentially sub-optimal, which `degraded: true` records. If *no*
    // candidate was verified before the budget tripped, fall back to the
    // guaranteed-legal baseline: a sequential iteration-centric search
    // (random access per element — always realizable) under a small
    // fresh ops-only budget so even adversarial inputs terminate.
    // Cancellation is the exception: the caller asked us to stop, so we
    // error out instead of burning more time on a fallback.
    let budget_cause = budget.as_deref().and_then(|b| b.exceeded());
    let degraded = budget_cause.is_some();
    if let Some(cause) = budget_cause {
        bernoulli_trace::counter!("synth.searches_degraded");
        if out.is_empty() {
            if matches!(cause, BudgetError::Cancelled) {
                return Err(SynthError::Deadline { cause, examined });
            }
            let fb = Arc::new(Budget::unlimited().with_max_ops(FALLBACK_MAX_OPS));
            let _fallback = bernoulli_govern::install_scoped(Some(Arc::clone(&fb)));
            bernoulli_trace::counter!("synth.baseline_fallbacks");
            for cfg in &configs {
                let o = catch_outcome(|| search_config(cfg, true, true, 1, &[], Some(&fb)))?;
                examined += o.examined;
                pruned += o.pruned;
                skipped_configs += o.skipped as usize;
                for r in &o.reasons {
                    push_reason(&mut reasons, r);
                }
                let found = !o.cands.is_empty();
                out.extend(o.cands);
                if found {
                    break; // first legal baseline plan is enough
                }
            }
            if out.is_empty() {
                return Err(SynthError::Deadline { cause, examined });
            }
        }
    }

    // Stable sort: equal costs keep (configuration, generation) order,
    // and `total_cmp` ranks NaN costs last instead of panicking.
    out.sort_by(|a, b| a.cost.total_cmp(&b.cost));
    out.truncate(opts.keep);
    bernoulli_trace::counter!("synth.candidates_kept", out.len());
    if out.is_empty() && reasons.is_empty() {
        reasons.push("no candidate lowered successfully".to_string());
    }
    // A degraded search is an incomplete search: caching it would serve
    // the truncated result to future *unbudgeted* callers forever —
    // neither tier (memory, disk) ever stores one.
    if let (Some(k), false) = (key, degraded) {
        let entry = CachedSearch {
            candidates: out.clone(),
            examined,
            pruned,
            reasons: reasons.clone(),
        };
        if let Some(ps) = persist {
            ps.store(&k, &entry, p, &view_map);
        }
        let mut g = cache.lock();
        if g.len() >= PLAN_CACHE_CAP {
            g.clear();
        }
        g.insert(k, entry);
    }
    Ok(SearchReport {
        candidates: out,
        examined,
        pruned,
        reasons,
        plan_cache_hit: false,
        plan_cache_disk_hit: false,
        degraded,
        budget: budget_cause,
        skipped_configs,
    })
}

// ---------------------------------------------------------------------
// Whole-search plan cache.

#[derive(Clone)]
pub(crate) struct CachedSearch {
    pub(crate) candidates: Vec<Candidate>,
    pub(crate) examined: usize,
    pub(crate) pruned: usize,
    pub(crate) reasons: Vec<String>,
}

/// Cached whole-search results; cleared wholesale when full.
const PLAN_CACHE_CAP: usize = 128;

/// One whole-search memo cache with hit/miss accounting. The crate
/// keeps a process-global instance behind [`plan_cache_stats`] /
/// [`plan_cache_clear`] for the free-function entry points; a
/// [`Session`](crate::session::Session) owns its own, making warm/cold
/// behavior explicit per session.
pub(crate) struct PlanCache {
    map: Mutex<HashMap<String, CachedSearch>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    pub(crate) fn new() -> PlanCache {
        PlanCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Poison-tolerant lock: a panic mid-insert leaves at worst a
    /// missing memo entry, never a wrong one.
    fn lock(&self) -> MutexGuard<'_, HashMap<String, CachedSearch>> {
        match self.map.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    pub(crate) fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn clear(&self) {
        self.lock().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

pub(crate) fn global_plan_cache() -> &'static PlanCache {
    static C: OnceLock<PlanCache> = OnceLock::new();
    C.get_or_init(PlanCache::new)
}

/// The cache key covers everything the search result depends on: the
/// program, the views (sorted by name — map order is irrelevant), the
/// workload statistics (f64s by bit pattern, maps sorted) and every
/// result-affecting knob. `parallel` and `cache_plans` are deliberately
/// excluded: they never change the result. `prune` is included because
/// it changes the `examined`/`pruned` accounting.
pub(crate) fn plan_cache_key(
    p: &Program,
    views: &[(&str, FormatView)],
    opts: &SynthOptions,
) -> String {
    let mut vs: Vec<String> = views.iter().map(|(n, v)| format!("{n}={v:?}")).collect();
    vs.sort();
    let s = &opts.stats;
    let mut params: Vec<String> = s
        .params
        .iter()
        .map(|(k, v)| format!("{k}={:016x}", v.to_bits()))
        .collect();
    params.sort();
    let mut mats: Vec<String> = s
        .matrices
        .iter()
        .map(|(k, &(r, c, n))| {
            format!(
                "{k}=({:016x},{:016x},{:016x})",
                r.to_bits(),
                c.to_bits(),
                n.to_bits()
            )
        })
        .collect();
    mats.sort();
    format!(
        "prog{{{p:?}}}|views[{}]|params[{}]|mats[{}]|dn{:016x}|dz{:016x}|mo{}|me{}|rr{}|ic{}|keep{}|prune{}",
        vs.join(";"),
        params.join(","),
        mats.join(","),
        s.default_n.to_bits(),
        s.default_nnz_per_row.to_bits(),
        opts.max_orders,
        opts.max_embeddings,
        opts.relax_reductions,
        opts.include_iteration_centric,
        opts.keep,
        opts.prune,
    )
}

/// Hit/miss totals of the whole-search plan cache (process lifetime, or
/// since [`plan_cache_clear`]). Independent of the `trace` feature.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    pub hits: u64,
    pub misses: u64,
}

impl PlanCacheStats {
    /// Hit fraction (0 when the cache was never consulted).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Current hit/miss totals of the *process-global* plan cache (the one
/// the free-function entry points use; a
/// [`Session`](crate::session::Session) owns its own cache and reports
/// through [`Session::plan_cache_stats`](crate::session::Session::plan_cache_stats)).
pub fn plan_cache_stats() -> PlanCacheStats {
    global_plan_cache().stats()
}

/// Drops every cached search result of the process-global plan cache
/// and zeroes its hit/miss counts.
pub fn plan_cache_clear() {
    global_plan_cache().clear();
}

/// Convenience for tests and examples: builds each candidate's
/// one-paragraph description.
pub fn describe_candidate(c: &Candidate) -> String {
    let choices: Vec<String> = c
        .choices
        .iter()
        .map(|(m, a)| format!("{m}:alt{a}"))
        .collect();
    format!("cost {:.1} [{}]\n{}", c.cost, choices.join(", "), c.plan)
}
