//! The synthesis driver: search over configurations, dimension orders,
//! embeddings and enumeration sources (paper §4.2–4.3).

use crate::config::enumerate_configs;
use crate::cost::{estimate_cost, WorkloadStats};
use crate::embed::embedding_variants;
use crate::groups::compute_groups;
use crate::legal::{check_legality, relaxable_classes};
use crate::lower::lower_plans;
use crate::plan::Plan;
use crate::spaces::candidate_spaces_opt;
use crate::zero::check_zero_safety;
use bernoulli_formats::view::FormatView;
use bernoulli_ir::{analyze, Program};
use std::collections::HashMap;

/// Knobs bounding the search (paper §4.3 heuristics).
#[derive(Clone, Debug)]
pub struct SynthOptions {
    /// Cap on dimension orders per configuration.
    pub max_orders: usize,
    /// Cap on embedding variants per (configuration, order).
    pub max_embeddings: usize,
    /// Allow reassociation of associative reductions (every sparse BLAS
    /// does); disable for bitwise-faithful enumeration order.
    pub relax_reductions: bool,
    /// Also generate the deliberately naive iteration-centric order (for
    /// the ablation experiments).
    pub include_iteration_centric: bool,
    /// Workload statistics for the cost model.
    pub stats: WorkloadStats,
    /// Keep at most this many ranked candidates in `synthesize_all`.
    pub keep: usize,
}

impl Default for SynthOptions {
    fn default() -> Self {
        SynthOptions {
            max_orders: 16,
            max_embeddings: 12,
            relax_reductions: true,
            include_iteration_centric: false,
            stats: WorkloadStats::default(),
            keep: 64,
        }
    }
}

/// A ranked candidate produced by the search.
#[derive(Clone, Debug)]
pub struct Candidate {
    pub plan: Plan,
    pub cost: f64,
    /// Perspective choices: (matrix, alternative) per reference.
    pub choices: Vec<(String, usize)>,
    /// Zero-safety notes (what made the restriction sound).
    pub safety_notes: Vec<String>,
}

/// The best plan plus search statistics.
#[derive(Clone, Debug)]
pub struct Synthesized {
    pub plan: Plan,
    pub cost: f64,
    pub choices: Vec<(String, usize)>,
    pub safety_notes: Vec<String>,
    /// Total candidates that survived legality + zero checks.
    pub legal_candidates: usize,
    /// Total (config, order, embedding) triples examined.
    pub examined: usize,
}

/// Why synthesis failed.
#[derive(Debug)]
pub enum SynthError {
    /// The input program is malformed (undeclared arrays, out-of-scope
    /// variables, arity mismatches).
    InvalidProgram(String),
    Config(crate::config::ConfigError),
    /// No legal, zero-safe plan was found; the payload describes the last
    /// rejection reasons observed.
    NoLegalPlan {
        reasons: Vec<String>,
    },
}

impl std::fmt::Display for SynthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthError::InvalidProgram(e) => write!(f, "invalid program: {e}"),
            SynthError::Config(e) => write!(f, "{e}"),
            SynthError::NoLegalPlan { reasons } => {
                write!(f, "no legal plan found")?;
                for r in reasons.iter().take(5) {
                    write!(f, "; {r}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SynthError {}

/// Synthesizes the best data-centric plan for the program with the given
/// sparse-matrix views.
pub fn synthesize(
    p: &Program,
    views: &[(&str, FormatView)],
    opts: &SynthOptions,
) -> Result<Synthesized, SynthError> {
    let mut all = synthesize_all(p, views, opts)?;
    let examined = all.1;
    let legal = all.0.len();
    let best = all
        .0
        .drain(..)
        .next()
        .ok_or(SynthError::NoLegalPlan { reasons: all.2 })?;
    Ok(Synthesized {
        plan: best.plan,
        cost: best.cost,
        choices: best.choices,
        safety_notes: best.safety_notes,
        legal_candidates: legal,
        examined,
    })
}

/// Runs the full search and returns all surviving candidates ranked by
/// estimated cost (plus the examined count and rejection reasons) — the
/// raw material of the cost-model-validation experiment.
#[allow(clippy::type_complexity)]
pub fn synthesize_all(
    p: &Program,
    views: &[(&str, FormatView)],
    opts: &SynthOptions,
) -> Result<(Vec<Candidate>, usize, Vec<String>), SynthError> {
    bernoulli_trace::counter!("synth.searches");
    bernoulli_trace::span!("synth.search");
    p.validate().map_err(SynthError::InvalidProgram)?;
    let view_map: HashMap<String, FormatView> = views
        .iter()
        .map(|(n, v)| (n.to_string(), v.clone()))
        .collect();
    let deps = analyze(p);
    let relaxable = relaxable_classes(p, &deps);
    let configs = enumerate_configs(p, &view_map).map_err(SynthError::Config)?;
    bernoulli_trace::counter!("synth.configs", configs.len());

    let mut out: Vec<Candidate> = Vec::new();
    let mut examined = 0usize;
    let mut reasons: Vec<String> = Vec::new();

    // First pass: orders respecting each chain's nesting structure.
    // Second pass: unconstrained cluster orders (needed when the only
    // legal code enumerates an inner coordinate by interval before an
    // outer stored level, e.g. TS on DIA). Third pass: iteration-centric
    // orders — the dense fallback that is always realizable (random
    // access per element) for kernels whose statement structure defeats
    // every data-centric order.
    'passes: for (unconstrained, iteration_centric) in [(false, false), (true, false), (true, true)]
    {
        for cfg in &configs {
            let spaces = candidate_spaces_opt(
                cfg,
                opts.max_orders,
                opts.include_iteration_centric || iteration_centric,
                unconstrained,
            );
            bernoulli_trace::counter!("synth.spaces", spaces.len());
            for space in &spaces {
                let mut got_plan = false;
                for emb in embedding_variants(cfg, space, opts.max_embeddings) {
                    examined += 1;
                    bernoulli_trace::counter!("synth.embeddings_examined");
                    // The dimension walk is a direction-inference pre-pass;
                    // the lowered plan is re-verified authoritatively, so a
                    // "violation" here only means directions are partial.
                    let leg =
                        check_legality(cfg, space, &emb, &deps, &relaxable, opts.relax_reductions);
                    if let Some(v) = &leg.violation {
                        bernoulli_trace::counter!("synth.embeddings_rejected");
                        if reasons.len() < 16 {
                            reasons.push(v.clone());
                        }
                    }
                    let groups = compute_groups(cfg, space, &emb);
                    for plan in lower_plans(
                        p,
                        cfg,
                        space,
                        &emb,
                        &groups,
                        &leg.must_increase,
                        &view_map,
                        &deps,
                        &relaxable,
                        opts.relax_reductions,
                    ) {
                        match check_zero_safety(p, cfg, &plan, &view_map) {
                            Ok(notes) => {
                                bernoulli_trace::counter!("synth.plans_lowered");
                                let cost = estimate_cost(p, cfg, &plan, &opts.stats);
                                got_plan = true;
                                out.push(Candidate {
                                    plan,
                                    cost,
                                    choices: cfg.choices.clone(),
                                    safety_notes: notes,
                                });
                            }
                            Err(e) => {
                                bernoulli_trace::counter!("synth.plans_zero_unsafe");
                                if reasons.len() < 16 {
                                    reasons.push(e.to_string());
                                }
                            }
                        }
                    }
                    if got_plan {
                        break; // embedding variants only matter on failure
                    }
                }
            }
        }
        if !out.is_empty() {
            break 'passes;
        }
    }

    out.sort_by(|a, b| a.cost.partial_cmp(&b.cost).unwrap());
    out.truncate(opts.keep);
    bernoulli_trace::counter!("synth.candidates_kept", out.len());
    if out.is_empty() && reasons.is_empty() {
        reasons.push("no candidate lowered successfully".to_string());
    }
    Ok((out, examined, reasons))
}

/// Convenience for tests and examples: builds each candidate's
/// one-paragraph description.
pub fn describe_candidate(c: &Candidate) -> String {
    let choices: Vec<String> = c
        .choices
        .iter()
        .map(|(m, a)| format!("{m}:alt{a}"))
        .collect();
    format!("cost {:.1} [{}]\n{}", c.cost, choices.join(", "), c.plan)
}
