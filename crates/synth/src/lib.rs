//! The Bernoulli sparse code synthesizer — the paper's primary
//! contribution.
//!
//! Given a dense-matrix [`Program`](bernoulli_ir::Program) and a
//! [`FormatView`](bernoulli_formats::FormatView) for each sparse matrix,
//! this crate produces efficient *data-centric* sparse code. The pipeline
//! follows the paper §3–4:
//!
//! 1. **Configuration** ([`config`]): choose a perspective (`⊕`) per
//!    sparse reference and split statements over aggregation (`∪`) chains;
//!    compute each reference's *sparse data space* by rewriting dense
//!    coordinates through the view's `map`/`perm` transforms.
//! 2. **Product space** ([`spaces`]): form the Cartesian product of
//!    statement iteration and data spaces; enumerate candidate dimension
//!    orders under the data-centric and format-structure heuristics
//!    (§4.3).
//! 3. **Embeddings** ([`embed`]): affine functions mapping every statement
//!    instance into the product space, built by pedigree matching (the
//!    common-enumeration heuristic) with before/after offset repairs.
//! 4. **Legality and directions** ([`legal`]): one recursive procedure per
//!    dependence class both verifies that lexicographic enumeration
//!    preserves the dependence and computes the set of dimensions that
//!    must be enumerated in increasing order (§4.1); associative
//!    reduction self-dependences may be relaxed.
//! 5. **Redundancy and common enumerations** ([`groups`]): redundant
//!    dimensions are detected by rank computation on the `G` matrix
//!    (Fig. 7) and fused with the non-redundant dimension they follow.
//! 6. **Lowering** ([`lower`]): emit an *enumeration-based plan* — the
//!    paper's pseudocode of Figs. 5/8 — choosing per group between level
//!    enumeration, interval enumeration plus search, and merge/hash joins,
//!    with residual guards simplified through the polyhedral machinery.
//! 7. **Zero safety** ([`zero`]): verify that restricting execution to
//!    stored entries preserves semantics (annihilation or coverage).
//! 8. **Cost and search** ([`cost`], [`search`]): estimate each candidate
//!    with the Fig. 11 cost model and return the cheapest legal plan.
//!
//! Plans can be executed directly against real formats ([`interp`]) or
//! specialized into Rust source code ([`emit`]), the analogue of the
//! paper's compiler-instantiated C++ (Fig. 9).

#![allow(clippy::needless_range_loop, clippy::type_complexity)]
pub mod advise;
pub mod compiled;
pub mod config;
pub mod cost;
pub mod embed;
pub mod emit;
pub mod farkas_embed;
pub mod groups;
pub mod interp;
pub mod legal;
pub mod lower;
pub mod persist;
pub mod plan;
pub mod search;
pub mod service;
pub mod session;
pub mod spaces;
pub mod zero;

pub use advise::{view_for_features, Advice, AdviceEntry, DEFAULT_ADVISOR_FORMATS};
pub use compiled::{
    clear_kernel_validation_memo, kernel_validation_enabled, set_kernel_validation, KernelArg,
    KernelBackend, KernelCallError, KernelSig, LoadError, LoadedKernel, RawOut,
};
pub use config::{Config, ConfigError, RefInst, StmtCopy};
pub use cost::{cost_floor, WorkloadStats};
pub use emit::{emit_module, emit_rust, emit_rust_ranged, range_splittable, EmitError};
pub use interp::{run_plan, ExecEnv, PlanError, RunStats};
pub use persist::{PersistStats, PersistentPlanCache, DEFAULT_MAX_BYTES, DEFAULT_MAX_ENTRIES};
pub use plan::{Plan, Step};
pub use search::{
    plan_cache_clear, plan_cache_stats, synthesize, synthesize_all, synthesize_all_report,
    synthesize_all_with_pool, Candidate, PlanCacheStats, SearchReport, SynthError, SynthOptions,
    Synthesized,
};
pub use service::{
    Admission, AdmissionPermit, CacheMode, Service, ServiceConfig, ServiceError, ServiceStats,
};
pub use session::{BoundProblem, CompiledKernel, DepReport, Session};

// Resource-governance vocabulary (budgets, deadlines, cancellation) so
// callers can drive `Session::with_deadline` & co. without naming the
// `bernoulli-govern` crate directly.
pub use bernoulli_govern::{Budget, BudgetError, CancelToken};

// Kernel artifact-cache vocabulary so callers can inspect the compiled
// path (`CompiledKernel::load` & co.) without naming the
// `bernoulli-kernel-cache` crate directly.
pub use bernoulli_kernel_cache::{
    rustc_info, stats as kernel_cache_stats, stats_reset as kernel_cache_stats_reset,
    KernelCacheError, KernelCacheStats, KernelStore, RustcInfo,
};
