//! The compiled-kernel execution path: runtime codegen, loading, and
//! the typed interpreter fallback.
//!
//! [`CompiledKernel::load`](crate::session::CompiledKernel::load)
//! closes the paper's emit → run loop at runtime: the best plan is
//! specialized into a **self-contained** kernel crate (no dependency on
//! this workspace — the format structs are mirrored into the generated
//! source as borrowed-slice views), `rustc` builds it to a `cdylib`
//! through the on-disk artifact cache of `bernoulli-kernel-cache`, and
//! the resulting shared object is loaded behind a stable `extern "C"`
//! ABI. A warm cache — including a restarted process — skips the
//! compile and loads in microseconds.
//!
//! When anything along that path is impossible (no compiler on the
//! host, an un-marshallable view, a plan the emitter has no template
//! for), [`CompiledKernel::backend`](crate::session::CompiledKernel::backend)
//! degrades to the interpreter carrying the typed [`LoadError`] reason,
//! and [`run_with`](crate::session::CompiledKernel::run_with) executes
//! identically through either backend.
//!
//! # ABI (version 1)
//!
//! One exported entry point per kernel:
//!
//! ```c
//! int32_t bernoulli_kernel_v1(const int64_t *params, size_t nparams,
//!                             const size_t *dims,   size_t ndims,
//!                             const RawSlice *slices, size_t nslices);
//! ```
//!
//! `params` are the program's symbolic parameters in declaration order;
//! `dims` and `slices` are the flattened scalar fields and array fields
//! of every operand in declaration order, using the fixed per-format
//! field order of `view_marshal`. Returns 0 on success, 1 when the
//! kernel body panicked (caught inside the library — panics never cross
//! the FFI boundary), 2 on an arity mismatch. Plans whose outermost
//! step enumerates the rows of a row-major format additionally export
//! `bernoulli_kernel_range_v1` with trailing `(int64_t row_lo, int64_t
//! row_hi)` — the entry the parallel lane dispatches nnz-balanced row
//! chunks through, and which the full-range entry itself uses to walk
//! CSR rows in cache-sized blocks.

use crate::emit::{emit_rust, emit_rust_ranged, EmitError};
use crate::interp::{run_plan, ExecEnv, PlanError};
use crate::plan::{Plan, StepKind, ValueSource};
use crate::search::SynthError;
use bernoulli_formats::view::FormatView;
use bernoulli_formats::{Bsr, Coo, Csc, Csr, Dia, Ell, Jad, Sky, Vbr};
use bernoulli_ir::{ArrayKind, Program, Role};
use bernoulli_kernel_cache::{Artifact, KernelCacheError, KernelStore, Library};
use std::collections::HashMap;
use std::sync::Arc;

/// Version of the `extern "C"` kernel ABI described in the module docs.
/// Part of every artifact cache key: an ABI change can never load a
/// stale artifact.
pub const KERNEL_ABI_VERSION: u32 = 1;

/// Exported symbol of the full-range entry point.
pub const KERNEL_SYMBOL: &str = "bernoulli_kernel_v1";

/// Exported symbol of the row-ranged entry point (present only for
/// range-splittable plans).
pub const KERNEL_RANGE_SYMBOL: &str = "bernoulli_kernel_range_v1";

/// Rows per block of the cache-blocked CSR traversal the full-range
/// entry performs (bounds the live band of `y`/`rowptr` per call while
/// keeping the per-block dispatch overhead negligible).
const CSR_ROW_BLOCK: i64 = 2048;

/// The host-side mirror of the ABI's array argument: one base pointer
/// plus a length, in elements of the field's declared type.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct RawSlice {
    pub ptr: *const u8,
    pub len: usize,
}

type EntryV1 =
    unsafe extern "C" fn(*const i64, usize, *const usize, usize, *const RawSlice, usize) -> i32;
type RangeV1 = unsafe extern "C" fn(
    *const i64,
    usize,
    *const usize,
    usize,
    *const RawSlice,
    usize,
    i64,
    i64,
) -> i32;

/// Why a kernel could not be loaded as native code. Carried by
/// [`KernelBackend::Interpreted`] as the typed fallback reason.
#[derive(Clone, Debug)]
pub enum LoadError {
    /// The plan uses a runtime feature the static emitter has no
    /// template for.
    Emit(EmitError),
    /// The array's view has no fixed marshalling layout (e.g. a hash
    /// vector: its index map is not a flat array).
    UnsupportedView { array: String, view: String },
    /// Compiling, caching, or dynamically loading the artifact failed
    /// (no `rustc` on the host, a rejected build, a dlopen failure…).
    Cache(KernelCacheError),
    /// The loaded kernel disagreed with the interpreter on the
    /// deterministic probe instance (differential validation). The
    /// artifact has been quarantined.
    ValidationFailed { detail: String },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Emit(e) => write!(f, "{e}"),
            LoadError::UnsupportedView { array, view } => {
                write!(
                    f,
                    "view {view:?} of array {array:?} has no kernel ABI marshalling"
                )
            }
            LoadError::Cache(e) => write!(f, "{e}"),
            LoadError::ValidationFailed { detail } => {
                write!(
                    f,
                    "kernel failed differential validation against the \
                     interpreter (artifact quarantined): {detail}"
                )
            }
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Emit(e) => Some(e),
            LoadError::Cache(e) => Some(e),
            LoadError::UnsupportedView { .. } | LoadError::ValidationFailed { .. } => None,
        }
    }
}

impl From<EmitError> for LoadError {
    fn from(e: EmitError) -> LoadError {
        LoadError::Emit(e)
    }
}

impl From<KernelCacheError> for LoadError {
    fn from(e: KernelCacheError) -> LoadError {
        LoadError::Cache(e)
    }
}

/// Calling a loaded kernel failed before (or inside) the native code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KernelCallError {
    /// Wrong number or kind of parameters/operands for the kernel's
    /// signature.
    Mismatch { detail: String },
    /// The kernel body panicked (caught inside the library; the panic
    /// does not cross the FFI boundary).
    Panicked,
    /// The plan has no row-ranged entry point.
    NoRangedEntry,
    /// The library returned an unknown status code.
    Abi { code: i32 },
}

impl std::fmt::Display for KernelCallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelCallError::Mismatch { detail } => write!(f, "kernel call mismatch: {detail}"),
            KernelCallError::Panicked => write!(f, "loaded kernel panicked (caught in-library)"),
            KernelCallError::NoRangedEntry => {
                write!(f, "this kernel's plan is not row-range splittable")
            }
            KernelCallError::Abi { code } => write!(f, "loaded kernel returned ABI status {code}"),
        }
    }
}

impl std::error::Error for KernelCallError {}

impl From<KernelCallError> for SynthError {
    fn from(e: KernelCallError) -> SynthError {
        SynthError::Plan(PlanError(e.to_string()))
    }
}

/// A writable output region passed to a *ranged* kernel call by raw
/// pointer, so several concurrent calls over disjoint row ranges can
/// target the same vector without materializing aliasing `&mut`
/// references on the host side.
#[derive(Clone, Copy, Debug)]
pub struct RawOut {
    ptr: *mut f64,
    len: usize,
}

// Safety: a RawOut is only a (pointer, len) pair; the unsafe contract
// about concurrent disjoint writes is taken on at construction.
unsafe impl Send for RawOut {}
unsafe impl Sync for RawOut {}

impl RawOut {
    /// Wraps a raw output region.
    ///
    /// # Safety
    /// `ptr..ptr+len` must be valid writable `f64` storage for the
    /// duration of every kernel call using it, and concurrent calls
    /// sharing the region must write disjoint elements (e.g. ranged
    /// calls over disjoint row bands of a row-major kernel).
    pub unsafe fn new(ptr: *mut f64, len: usize) -> RawOut {
        RawOut { ptr, len }
    }
}

/// One operand of a loaded-kernel call, in program declaration order.
pub enum KernelArg<'a> {
    Csr(&'a Csr<f64>),
    Csc(&'a Csc<f64>),
    Coo(&'a Coo<f64>),
    Dia(&'a Dia<f64>),
    Ell(&'a Ell<f64>),
    Jad(&'a Jad<f64>),
    Sky(&'a Sky<f64>),
    Bsr(&'a Bsr<f64>),
    Vbr(&'a Vbr<f64>),
    /// Read-only dense vector.
    In(&'a [f64]),
    /// Writable dense vector.
    Out(&'a mut [f64]),
    /// Writable dense vector shared across concurrent ranged calls
    /// (see [`RawOut`]).
    OutShared(RawOut),
}

impl KernelArg<'_> {
    fn kind(&self) -> &'static str {
        match self {
            KernelArg::Csr(_) => "csr",
            KernelArg::Csc(_) => "csc",
            KernelArg::Coo(_) => "coo",
            KernelArg::Dia(_) => "dia",
            KernelArg::Ell(_) => "ell",
            KernelArg::Jad(_) => "jad",
            KernelArg::Sky(_) => "sky",
            KernelArg::Bsr(_) => "bsr",
            KernelArg::Vbr(_) => "vbr",
            KernelArg::In(_) => "vec-in",
            KernelArg::Out(_) | KernelArg::OutShared(_) => "vec-out",
        }
    }
}

/// Fixed marshalling layout of a format view: scalar fields (in
/// `dims`), then array fields (in `slices`), in this exact order on
/// both sides of the ABI.
struct ViewMarshal {
    dims: &'static [&'static str],
    slices: &'static [(&'static str, SliceTy)],
}

#[derive(Clone, Copy, PartialEq)]
enum SliceTy {
    Usize,
    I64,
    F64,
}

impl SliceTy {
    fn rust(self) -> &'static str {
        match self {
            SliceTy::Usize => "usize",
            SliceTy::I64 => "i64",
            SliceTy::F64 => "f64",
        }
    }
}

/// The marshalling/mirror identity of a view name: every `bsr{R}x{C}`
/// view shares the `"bsr"` layout and mirror struct (the block shape is
/// carried in `dims`, specialized as literals in the body).
fn view_base(view: &str) -> &str {
    if crate::emit::parse_bsr(view).is_some() {
        "bsr"
    } else {
        view
    }
}

fn view_marshal(view: &str) -> Option<ViewMarshal> {
    use SliceTy::*;
    Some(match view_base(view) {
        "csr" => ViewMarshal {
            dims: &["nrows", "ncols"],
            slices: &[("rowptr", Usize), ("colind", Usize), ("values", F64)],
        },
        "csc" => ViewMarshal {
            dims: &["nrows", "ncols"],
            slices: &[("colptr", Usize), ("rowind", Usize), ("values", F64)],
        },
        "coo" => ViewMarshal {
            dims: &["nrows", "ncols"],
            slices: &[("rows", Usize), ("cols", Usize), ("values", F64)],
        },
        "dia" => ViewMarshal {
            dims: &["nrows", "ncols"],
            slices: &[
                ("diags", I64),
                ("lo", I64),
                ("hi", I64),
                ("ptr", Usize),
                ("values", F64),
            ],
        },
        "ell" => ViewMarshal {
            dims: &["nrows", "ncols", "width"],
            slices: &[("colind", I64), ("values", F64), ("rowlen", Usize)],
        },
        "jad" => ViewMarshal {
            dims: &["nrows", "ncols"],
            slices: &[
                ("iperm", Usize),
                ("iperm_inv", Usize),
                ("dptr", Usize),
                ("colind", Usize),
                ("values", F64),
                ("rowlen", Usize),
            ],
        },
        "sky" => ViewMarshal {
            dims: &["n"],
            slices: &[("lo", Usize), ("ptr", Usize), ("values", F64)],
        },
        "bsr" => ViewMarshal {
            dims: &["nrows", "ncols", "r", "c"],
            slices: &[("browptr", Usize), ("bcolind", Usize), ("values", F64)],
        },
        "vbr" => ViewMarshal {
            dims: &["nrows", "ncols"],
            slices: &[
                ("val", F64),
                ("indx", Usize),
                ("bindx", Usize),
                ("rpntr", Usize),
                ("cpntr", Usize),
                ("bpntrb", Usize),
                ("bpntre", Usize),
                ("rowblk", Usize),
            ],
        },
        _ => return None,
    })
}

/// The mirror struct (plus `find` helpers replicating the real formats'
/// search semantics) emitted into the self-contained kernel source for
/// a view, so the generated body compiles without this workspace.
fn mirror_decl(view: &str) -> Option<&'static str> {
    Some(match view_base(view) {
        "csr" => {
            r#"pub struct Csr<T: 'static = f64> {
    pub nrows: usize,
    pub ncols: usize,
    pub rowptr: &'static [usize],
    pub colind: &'static [usize],
    pub values: &'static [T],
}
impl<T> Csr<T> {
    #[inline]
    pub fn find(&self, r: usize, c: usize) -> Option<usize> {
        let (lo, hi) = (self.rowptr[r], self.rowptr[r + 1]);
        self.colind[lo..hi].binary_search(&c).ok().map(|k| lo + k)
    }
}
"#
        }
        "csc" => {
            r#"pub struct Csc<T: 'static = f64> {
    pub nrows: usize,
    pub ncols: usize,
    pub colptr: &'static [usize],
    pub rowind: &'static [usize],
    pub values: &'static [T],
}
impl<T> Csc<T> {
    #[inline]
    pub fn find(&self, r: usize, c: usize) -> Option<usize> {
        let (lo, hi) = (self.colptr[c], self.colptr[c + 1]);
        self.rowind[lo..hi].binary_search(&r).ok().map(|k| lo + k)
    }
}
"#
        }
        "coo" => {
            r#"pub struct Coo<T: 'static = f64> {
    pub nrows: usize,
    pub ncols: usize,
    pub rows: &'static [usize],
    pub cols: &'static [usize],
    pub values: &'static [T],
}
impl<T> Coo<T> {
    #[inline]
    pub fn find(&self, r: usize, c: usize) -> Option<usize> {
        (0..self.values.len()).find(|&i| self.rows[i] == r && self.cols[i] == c)
    }
}
"#
        }
        "dia" => {
            r#"pub struct Dia<T: 'static = f64> {
    pub nrows: usize,
    pub ncols: usize,
    pub diags: &'static [i64],
    pub lo: &'static [i64],
    pub hi: &'static [i64],
    pub ptr: &'static [usize],
    pub values: &'static [T],
}
impl<T> Dia<T> {
    #[inline]
    pub fn find(&self, r: usize, c: usize) -> Option<usize> {
        let d = r as i64 - c as i64;
        let k = self.diags.binary_search(&d).ok()?;
        let o = c as i64;
        if o >= self.lo[k] && o < self.hi[k] {
            Some(self.ptr[k] + (o - self.lo[k]) as usize)
        } else {
            None
        }
    }
}
"#
        }
        "ell" => {
            r#"pub struct Ell<T: 'static = f64> {
    pub nrows: usize,
    pub ncols: usize,
    pub width: usize,
    pub colind: &'static [i64],
    pub values: &'static [T],
    pub rowlen: &'static [usize],
}
impl<T> Ell<T> {
    #[inline]
    pub fn find(&self, r: usize, c: usize) -> Option<usize> {
        let base = r * self.width;
        let row = &self.colind[base..base + self.rowlen[r]];
        row.binary_search(&(c as i64)).ok().map(|s| base + s)
    }
}
"#
        }
        "jad" => {
            r#"pub struct Jad<T: 'static = f64> {
    pub nrows: usize,
    pub ncols: usize,
    pub iperm: &'static [usize],
    pub iperm_inv: &'static [usize],
    pub dptr: &'static [usize],
    pub colind: &'static [usize],
    pub values: &'static [T],
    pub rowlen: &'static [usize],
}
impl<T> Jad<T> {
    #[inline]
    pub fn find_in_row(&self, rr: usize, c: usize) -> Option<usize> {
        let (mut lo, mut hi) = (0usize, self.rowlen[rr]);
        while lo < hi {
            let mid = (lo + hi) / 2;
            let jj = self.dptr[mid] + rr;
            match self.colind[jj].cmp(&c) {
                std::cmp::Ordering::Equal => return Some(jj),
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
            }
        }
        None
    }
    #[inline]
    pub fn find(&self, r: usize, c: usize) -> Option<usize> {
        self.find_in_row(self.iperm_inv[r], c)
    }
}
"#
        }
        "sky" => {
            r#"pub struct Sky<T: 'static = f64> {
    pub n: usize,
    pub lo: &'static [usize],
    pub ptr: &'static [usize],
    pub values: &'static [T],
}
impl<T> Sky<T> {
    #[inline]
    pub fn find(&self, r: usize, c: usize) -> Option<usize> {
        if c >= self.lo[r] && c <= r {
            Some(self.ptr[r] + (c - self.lo[r]))
        } else {
            None
        }
    }
}
"#
        }
        "bsr" => {
            r#"pub struct Bsr<T: 'static = f64> {
    pub nrows: usize,
    pub ncols: usize,
    pub r: usize,
    pub c: usize,
    pub browptr: &'static [usize],
    pub bcolind: &'static [usize],
    pub values: &'static [T],
}
impl<T> Bsr<T> {
    #[inline]
    pub fn find(&self, row: usize, col: usize) -> Option<usize> {
        let br = row / self.r;
        let (lo, hi) = (self.browptr[br], self.browptr[br + 1]);
        self.bcolind[lo..hi]
            .binary_search(&(col / self.c))
            .ok()
            .map(|k| ((lo + k) * self.r + row % self.r) * self.c + col % self.c)
    }
}
"#
        }
        "vbr" => {
            r#"pub struct Vbr<T: 'static = f64> {
    pub nrows: usize,
    pub ncols: usize,
    pub val: &'static [T],
    pub indx: &'static [usize],
    pub bindx: &'static [usize],
    pub rpntr: &'static [usize],
    pub cpntr: &'static [usize],
    pub bpntrb: &'static [usize],
    pub bpntre: &'static [usize],
    pub rowblk: &'static [usize],
}
impl<T> Vbr<T> {
    #[inline]
    pub fn find(&self, row: usize, col: usize) -> Option<usize> {
        let br = self.rowblk[row];
        let rr = row - self.rpntr[br];
        for b in self.bpntrb[br]..self.bpntre[br] {
            let bc = self.bindx[b];
            if col < self.cpntr[bc] {
                return None;
            }
            if col < self.cpntr[bc + 1] {
                let w = self.cpntr[bc + 1] - self.cpntr[bc];
                return Some(self.indx[b] + rr * w + (col - self.cpntr[bc]));
            }
        }
        None
    }
}
"#
        }
        _ => return None,
    })
}

/// One operand slot of the kernel signature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgSpec {
    /// A sparse matrix marshalled per its view's fixed layout.
    View(String),
    /// A read-only dense vector.
    VecIn,
    /// A writable dense vector.
    VecOut,
}

/// The call signature a loaded kernel expects: parameter names and one
/// [`ArgSpec`] per program array, in declaration order.
#[derive(Clone, Debug)]
pub struct KernelSig {
    pub params: Vec<String>,
    pub args: Vec<(String, ArgSpec)>,
    ndims: usize,
    nslices: usize,
}

impl KernelSig {
    /// Derives the signature from a program and its bound views;
    /// errors on any operand without a fixed marshalling layout.
    pub(crate) fn of(
        p: &Program,
        views: &HashMap<String, FormatView>,
    ) -> Result<KernelSig, LoadError> {
        let mut args = Vec::new();
        let (mut ndims, mut nslices) = (0usize, 0usize);
        for a in &p.arrays {
            let spec = match (views.get(&a.name), a.kind) {
                (Some(v), _) => {
                    let m = view_marshal(&v.name).ok_or_else(|| LoadError::UnsupportedView {
                        array: a.name.clone(),
                        view: v.name.clone(),
                    })?;
                    ndims += m.dims.len();
                    nslices += m.slices.len();
                    ArgSpec::View(v.name.clone())
                }
                (None, ArrayKind::Matrix) => {
                    return Err(LoadError::Emit(EmitError(format!(
                        "no view bound for {:?}",
                        a.name
                    ))));
                }
                (None, ArrayKind::Vector) => {
                    nslices += 1;
                    match a.role {
                        Role::In => ArgSpec::VecIn,
                        Role::Out | Role::InOut => ArgSpec::VecOut,
                    }
                }
            };
            args.push((a.name.clone(), spec));
        }
        Ok(KernelSig {
            params: p.params.clone(),
            args,
            ndims,
            nslices,
        })
    }
}

/// Generates the complete, self-contained cdylib source for a plan:
/// mirror structs, the specialized kernel body, and the `extern "C"`
/// wrapper(s). Returns the source and whether a ranged entry exists.
pub(crate) fn cdylib_source(
    p: &Program,
    plan: &Plan,
    views: &HashMap<String, FormatView>,
) -> Result<(String, bool), LoadError> {
    let sig = KernelSig::of(p, views)?;
    // Random-access reads lower to the `SparseMatrix::get` trait, which
    // the mirror structs deliberately do not replicate (it would defeat
    // the data-centric ABI); such plans stay on the interpreter.
    if plan.execs.iter().any(|e| {
        e.sources
            .iter()
            .any(|s| matches!(s, Some(ValueSource::Random { .. })))
    }) {
        return Err(LoadError::Emit(EmitError(
            "plan reads a sparse operand by random access; \
             not expressible over the kernel ABI"
                .to_string(),
        )));
    }
    // The specialized body; the ranged variant replaces the plain one
    // when the plan's outermost step is a row enumeration.
    let ranged_body = emit_rust_ranged(p, plan, views, "kernel_impl_range")?;
    let plain_body = if ranged_body.is_none() {
        Some(emit_rust(p, plan, views, "kernel_impl")?)
    } else {
        None
    };

    let mut out = String::new();
    out.push_str("// GENERATED by bernoulli-synth (runtime kernel crate) — do not edit.\n");
    out.push_str(&format!(
        "// ABI v{KERNEL_ABI_VERSION}: see bernoulli_synth::compiled module docs.\n"
    ));
    out.push_str("#![allow(unused_parens, unused_variables, clippy::all)]\n\n");

    // Mirror structs for every distinct view used.
    let mut seen: Vec<&str> = Vec::new();
    for (_, spec) in &sig.args {
        if let ArgSpec::View(v) = spec {
            // Dedup on the marshalling base so two block shapes of the
            // same format share one mirror struct.
            if !seen.contains(&view_base(v)) {
                seen.push(view_base(v));
                if let Some(decl) = mirror_decl(v) {
                    out.push_str(decl);
                    out.push('\n');
                }
            }
        }
    }

    out.push_str(
        "#[repr(C)]\npub struct RawSlice {\n    pub ptr: *const u8,\n    pub len: usize,\n}\n\n",
    );
    out.push_str(
        "unsafe fn sl<T>(s: &RawSlice) -> &'static [T] {\n    if s.len == 0 {\n        &[]\n    } else {\n        std::slice::from_raw_parts(s.ptr as *const T, s.len)\n    }\n}\n\n",
    );
    out.push_str(
        "unsafe fn sl_mut(s: &RawSlice) -> &'static mut [f64] {\n    if s.len == 0 {\n        &mut []\n    } else {\n        std::slice::from_raw_parts_mut(s.ptr as *mut f64, s.len)\n    }\n}\n\n",
    );

    if let Some(body) = &plain_body {
        out.push_str(body);
        out.push('\n');
    }
    if let Some(body) = &ranged_body {
        out.push_str(body);
        out.push('\n');
    }

    // Shared operand-unpacking text (used by every entry point).
    let mut unpack = String::new();
    let (mut di, mut si) = (0usize, 0usize);
    let mut call_args: Vec<String> = Vec::new();
    for i in 0..sig.params.len() {
        call_args.push(format!("params[{i}]"));
    }
    let mut outer_nrows: Option<String> = None;
    for (name, spec) in &sig.args {
        let var = format!("{}_", name.to_lowercase());
        match spec {
            ArgSpec::View(v) => {
                let m = view_marshal(v).ok_or_else(|| LoadError::UnsupportedView {
                    array: name.clone(),
                    view: v.clone(),
                })?;
                let ty = match view_base(v) {
                    "csr" => "Csr",
                    "csc" => "Csc",
                    "coo" => "Coo",
                    "dia" => "Dia",
                    "ell" => "Ell",
                    "jad" => "Jad",
                    "sky" => "Sky",
                    "bsr" => "Bsr",
                    "vbr" => "Vbr",
                    _ => {
                        return Err(LoadError::UnsupportedView {
                            array: name.clone(),
                            view: v.clone(),
                        })
                    }
                };
                let mut fields: Vec<String> = Vec::new();
                for d in m.dims {
                    fields.push(format!("{d}: dims[{di}]"));
                    di += 1;
                }
                for (f, t) in m.slices {
                    fields.push(format!("{f}: sl::<{}>(&slices[{si}])", t.rust()));
                    si += 1;
                }
                unpack.push_str(&format!(
                    "        let {var} = {ty}::<f64> {{ {} }};\n",
                    fields.join(", ")
                ));
                if outer_nrows.is_none() && matches!(view_base(v), "csr" | "ell" | "bsr" | "vbr") {
                    outer_nrows = Some(format!("{var}.nrows"));
                }
                call_args.push(format!("&{var}"));
            }
            ArgSpec::VecIn => {
                unpack.push_str(&format!("        let {var} = sl::<f64>(&slices[{si}]);\n"));
                si += 1;
                call_args.push(var);
            }
            ArgSpec::VecOut => {
                unpack.push_str(&format!("        let {var} = sl_mut(&slices[{si}]);\n"));
                si += 1;
                call_args.push(var);
            }
        }
    }

    let preamble = format!(
        "    if nparams != {np} || ndims != {nd} || nslices != {ns} {{\n        return 2;\n    }}\n    let params = if nparams == 0 {{ &[][..] }} else {{ unsafe {{ std::slice::from_raw_parts(params, nparams) }} }};\n    let dims = if ndims == 0 {{ &[][..] }} else {{ unsafe {{ std::slice::from_raw_parts(dims, ndims) }} }};\n    let slices = if nslices == 0 {{ &[][..] }} else {{ unsafe {{ std::slice::from_raw_parts(slices, nslices) }} }};\n    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {{\n",
        np = sig.params.len(),
        nd = sig.ndims,
        ns = sig.nslices,
    );
    let postamble = "    }));\n    if r.is_ok() { 0 } else { 1 }\n";

    // Full-range entry.
    out.push_str(&format!(
        "#[no_mangle]\npub extern \"C\" fn {KERNEL_SYMBOL}(\n    params: *const i64,\n    nparams: usize,\n    dims: *const usize,\n    ndims: usize,\n    slices: *const RawSlice,\n    nslices: usize,\n) -> i32 {{\n"
    ));
    out.push_str(&preamble);
    out.push_str(&unpack);
    if ranged_body.is_some() {
        let nrows = outer_nrows.as_deref().unwrap_or("0");
        let is_csr_outer = outer_row_view(plan, views).as_deref() == Some("csr");
        if is_csr_outer {
            // Cache-blocked CSR row traversal: walk the rows in fixed
            // blocks through the ranged body.
            out.push_str(&format!(
                "        let nrows__ = {nrows} as i64;\n        let mut r0__ = 0i64;\n        while r0__ < nrows__ {{\n            let r1__ = if r0__ + {CSR_ROW_BLOCK} < nrows__ {{ r0__ + {CSR_ROW_BLOCK} }} else {{ nrows__ }};\n            kernel_impl_range({args}, r0__, r1__);\n            r0__ = r1__;\n        }}\n",
                args = call_args.join(", ")
            ));
        } else {
            out.push_str(&format!(
                "        kernel_impl_range({args}, 0, {nrows} as i64);\n",
                args = call_args.join(", ")
            ));
        }
    } else {
        out.push_str(&format!(
            "        kernel_impl({args});\n",
            args = call_args.join(", ")
        ));
    }
    out.push_str(postamble);
    out.push_str("}\n");

    // Ranged entry.
    if ranged_body.is_some() {
        out.push('\n');
        out.push_str(&format!(
            "#[no_mangle]\npub extern \"C\" fn {KERNEL_RANGE_SYMBOL}(\n    params: *const i64,\n    nparams: usize,\n    dims: *const usize,\n    ndims: usize,\n    slices: *const RawSlice,\n    nslices: usize,\n    row_lo: i64,\n    row_hi: i64,\n) -> i32 {{\n"
        ));
        out.push_str(&preamble);
        out.push_str(&unpack);
        out.push_str(&format!(
            "        kernel_impl_range({args}, row_lo, row_hi);\n",
            args = call_args.join(", ")
        ));
        out.push_str(postamble);
        out.push_str("}\n");
    }

    Ok((out, ranged_body.is_some()))
}

/// The view name of the plan's outermost row enumeration, if any.
fn outer_row_view(plan: &Plan, views: &HashMap<String, FormatView>) -> Option<String> {
    let step = plan.steps.first()?;
    let StepKind::Level { primary, .. } = &step.kind else {
        return None;
    };
    views.get(&primary.matrix).map(|v| v.name.clone())
}

/// A runtime-compiled, dynamically loaded kernel: native code for one
/// (program, views, plan) triple behind the stable `extern "C"` ABI.
pub struct LoadedKernel {
    lib: Arc<Library>,
    entry: EntryV1,
    ranged: Option<RangeV1>,
    sig: KernelSig,
    from_cache: bool,
    /// Matrix whose rows the ranged entry splits, when present.
    outer_matrix: Option<String>,
    /// True when the kernel passed differential validation against the
    /// interpreter on the deterministic probe instance.
    validated: bool,
    /// The store the artifact came from — kept so a bad ABI status at
    /// call time can quarantine the artifact behind it.
    store: KernelStore,
}

impl std::fmt::Debug for LoadedKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoadedKernel")
            .field("artifact", &self.lib.path())
            .field("from_cache", &self.from_cache)
            .field("ranged", &self.ranged.is_some())
            .field("validated", &self.validated)
            .finish()
    }
}

impl LoadedKernel {
    /// The call signature (parameter names, operand kinds).
    pub fn sig(&self) -> &KernelSig {
        &self.sig
    }

    /// True when the artifact came from the on-disk cache (no `rustc`
    /// run in this call).
    pub fn from_cache(&self) -> bool {
        self.from_cache
    }

    /// True when the kernel passed differential validation against the
    /// interpreter (see [`KernelBackend::Validated`]). False when
    /// validation was skipped — disabled, or the probe instance could
    /// not be built for this signature.
    pub fn validated(&self) -> bool {
        self.validated
    }

    /// The shared object backing this kernel.
    pub fn artifact_path(&self) -> &std::path::Path {
        self.lib.path()
    }

    /// True when the kernel exports the row-ranged entry (its plan's
    /// outermost step enumerates rows of a row-major format).
    pub fn supports_ranged(&self) -> bool {
        self.ranged.is_some()
    }

    /// The matrix whose rows [`run_range`](LoadedKernel::run_range)
    /// splits, when the ranged entry exists.
    pub fn outer_matrix(&self) -> Option<&str> {
        self.outer_matrix.as_deref()
    }

    /// Runs the kernel over its full iteration space.
    pub fn run(&self, params: &[i64], args: &mut [KernelArg<'_>]) -> Result<(), KernelCallError> {
        self.call(params, args, None)
    }

    /// Runs the kernel restricted to outer rows `row_lo..row_hi`
    /// (clamping is the caller's job; the entry enumerates exactly this
    /// band). Concurrent calls over disjoint bands may share output
    /// vectors via [`KernelArg::OutShared`].
    pub fn run_range(
        &self,
        params: &[i64],
        args: &mut [KernelArg<'_>],
        row_lo: i64,
        row_hi: i64,
    ) -> Result<(), KernelCallError> {
        if self.ranged.is_none() {
            return Err(KernelCallError::NoRangedEntry);
        }
        self.call(params, args, Some((row_lo, row_hi)))
    }

    fn call(
        &self,
        params: &[i64],
        args: &mut [KernelArg<'_>],
        range: Option<(i64, i64)>,
    ) -> Result<(), KernelCallError> {
        if params.len() != self.sig.params.len() {
            return Err(KernelCallError::Mismatch {
                detail: format!(
                    "expected {} parameters ({:?}), got {}",
                    self.sig.params.len(),
                    self.sig.params,
                    params.len()
                ),
            });
        }
        if args.len() != self.sig.args.len() {
            return Err(KernelCallError::Mismatch {
                detail: format!(
                    "expected {} operands, got {}",
                    self.sig.args.len(),
                    args.len()
                ),
            });
        }
        let mut dims: Vec<usize> = Vec::with_capacity(self.sig.ndims);
        let mut slices: Vec<RawSlice> = Vec::with_capacity(self.sig.nslices);
        for ((name, spec), arg) in self.sig.args.iter().zip(args.iter_mut()) {
            marshal(name, spec, arg, &mut dims, &mut slices)?;
        }
        let code = match range {
            None => unsafe {
                (self.entry)(
                    params.as_ptr(),
                    params.len(),
                    dims.as_ptr(),
                    dims.len(),
                    slices.as_ptr(),
                    slices.len(),
                )
            },
            Some((lo, hi)) => {
                let Some(f) = self.ranged else {
                    return Err(KernelCallError::NoRangedEntry);
                };
                unsafe {
                    f(
                        params.as_ptr(),
                        params.len(),
                        dims.as_ptr(),
                        dims.len(),
                        slices.as_ptr(),
                        slices.len(),
                        lo,
                        hi,
                    )
                }
            }
        };
        match code {
            0 => Ok(()),
            1 => Err(KernelCallError::Panicked),
            2 => Err(KernelCallError::Mismatch {
                detail: "library rejected the operand arity (ABI drift?)".to_string(),
            }),
            c => {
                // An unknown nonzero status means the artifact and the
                // host disagree about the ABI: quarantine it so it is
                // never loaded again (callers re-serve through the
                // interpreter on their next `backend` call).
                self.store.quarantine(self.lib.path());
                unvalidate(self.lib.path());
                Err(KernelCallError::Abi { code: c })
            }
        }
    }
}

fn raw(ptr: *const u8, len: usize) -> RawSlice {
    RawSlice { ptr, len }
}

fn marshal(
    name: &str,
    spec: &ArgSpec,
    arg: &mut KernelArg<'_>,
    dims: &mut Vec<usize>,
    slices: &mut Vec<RawSlice>,
) -> Result<(), KernelCallError> {
    let mismatch = |want: &str, got: &str| KernelCallError::Mismatch {
        detail: format!("operand {name:?}: expected {want}, got {got}"),
    };
    let matches_spec = match (spec, &*arg) {
        // A BSR view name carries the block shape the kernel was
        // specialized for; the operand must match it exactly.
        (ArgSpec::View(v), KernelArg::Bsr(m)) => crate::emit::parse_bsr(v) == Some((m.r, m.c)),
        (ArgSpec::View(v), a) => v == a.kind(),
        (ArgSpec::VecIn, KernelArg::In(_)) => true,
        (ArgSpec::VecOut, KernelArg::Out(_) | KernelArg::OutShared(_)) => true,
        _ => false,
    };
    if !matches_spec {
        let want = match spec {
            ArgSpec::View(v) => v.as_str(),
            ArgSpec::VecIn => "vec-in",
            ArgSpec::VecOut => "vec-out",
        };
        return Err(mismatch(want, arg.kind()));
    }
    match arg {
        KernelArg::Csr(m) => {
            dims.extend([m.nrows, m.ncols]);
            slices.push(raw(m.rowptr.as_ptr() as *const u8, m.rowptr.len()));
            slices.push(raw(m.colind.as_ptr() as *const u8, m.colind.len()));
            slices.push(raw(m.values.as_ptr() as *const u8, m.values.len()));
        }
        KernelArg::Csc(m) => {
            dims.extend([m.nrows, m.ncols]);
            slices.push(raw(m.colptr.as_ptr() as *const u8, m.colptr.len()));
            slices.push(raw(m.rowind.as_ptr() as *const u8, m.rowind.len()));
            slices.push(raw(m.values.as_ptr() as *const u8, m.values.len()));
        }
        KernelArg::Coo(m) => {
            dims.extend([m.nrows, m.ncols]);
            slices.push(raw(m.rows.as_ptr() as *const u8, m.rows.len()));
            slices.push(raw(m.cols.as_ptr() as *const u8, m.cols.len()));
            slices.push(raw(m.values.as_ptr() as *const u8, m.values.len()));
        }
        KernelArg::Dia(m) => {
            dims.extend([m.nrows, m.ncols]);
            slices.push(raw(m.diags.as_ptr() as *const u8, m.diags.len()));
            slices.push(raw(m.lo.as_ptr() as *const u8, m.lo.len()));
            slices.push(raw(m.hi.as_ptr() as *const u8, m.hi.len()));
            slices.push(raw(m.ptr.as_ptr() as *const u8, m.ptr.len()));
            slices.push(raw(m.values.as_ptr() as *const u8, m.values.len()));
        }
        KernelArg::Ell(m) => {
            dims.extend([m.nrows, m.ncols, m.width]);
            slices.push(raw(m.colind.as_ptr() as *const u8, m.colind.len()));
            slices.push(raw(m.values.as_ptr() as *const u8, m.values.len()));
            slices.push(raw(m.rowlen.as_ptr() as *const u8, m.rowlen.len()));
        }
        KernelArg::Jad(m) => {
            dims.extend([m.nrows, m.ncols]);
            slices.push(raw(m.iperm.as_ptr() as *const u8, m.iperm.len()));
            slices.push(raw(m.iperm_inv.as_ptr() as *const u8, m.iperm_inv.len()));
            slices.push(raw(m.dptr.as_ptr() as *const u8, m.dptr.len()));
            slices.push(raw(m.colind.as_ptr() as *const u8, m.colind.len()));
            slices.push(raw(m.values.as_ptr() as *const u8, m.values.len()));
            slices.push(raw(m.rowlen.as_ptr() as *const u8, m.rowlen.len()));
        }
        KernelArg::Sky(m) => {
            dims.push(m.n);
            slices.push(raw(m.lo.as_ptr() as *const u8, m.lo.len()));
            slices.push(raw(m.ptr.as_ptr() as *const u8, m.ptr.len()));
            slices.push(raw(m.values.as_ptr() as *const u8, m.values.len()));
        }
        KernelArg::Bsr(m) => {
            dims.extend([m.nrows, m.ncols, m.r, m.c]);
            slices.push(raw(m.browptr.as_ptr() as *const u8, m.browptr.len()));
            slices.push(raw(m.bcolind.as_ptr() as *const u8, m.bcolind.len()));
            slices.push(raw(m.values.as_ptr() as *const u8, m.values.len()));
        }
        KernelArg::Vbr(m) => {
            dims.extend([m.nrows, m.ncols]);
            slices.push(raw(m.val.as_ptr() as *const u8, m.val.len()));
            slices.push(raw(m.indx.as_ptr() as *const u8, m.indx.len()));
            slices.push(raw(m.bindx.as_ptr() as *const u8, m.bindx.len()));
            slices.push(raw(m.rpntr.as_ptr() as *const u8, m.rpntr.len()));
            slices.push(raw(m.cpntr.as_ptr() as *const u8, m.cpntr.len()));
            slices.push(raw(m.bpntrb.as_ptr() as *const u8, m.bpntrb.len()));
            slices.push(raw(m.bpntre.as_ptr() as *const u8, m.bpntre.len()));
            slices.push(raw(m.rowblk.as_ptr() as *const u8, m.rowblk.len()));
        }
        KernelArg::In(x) => {
            slices.push(raw(x.as_ptr() as *const u8, x.len()));
        }
        KernelArg::Out(y) => {
            slices.push(raw(y.as_mut_ptr() as *const u8, y.len()));
        }
        KernelArg::OutShared(r) => {
            slices.push(raw(r.ptr as *const u8, r.len));
        }
    }
    Ok(())
}

/// How a [`CompiledKernel`](crate::session::CompiledKernel) will
/// execute: native loaded code, or the interpreter with the typed
/// reason native loading was impossible.
#[derive(Debug)]
pub enum KernelBackend {
    /// Runtime-compiled native code that *passed differential
    /// validation*: before being served it reproduced the interpreter's
    /// output bitwise on a deterministic probe instance.
    Validated(LoadedKernel),
    /// Runtime-compiled native code; validation was skipped (disabled,
    /// or no probe instance exists for this signature).
    Compiled(LoadedKernel),
    /// Interpreter fallback; `reason` says why (no compiler on the
    /// host, unsupported view, emission failure, failed validation…).
    Interpreted { reason: LoadError },
}

impl KernelBackend {
    /// True for either native path (validated or not).
    pub fn is_compiled(&self) -> bool {
        matches!(
            self,
            KernelBackend::Validated(_) | KernelBackend::Compiled(_)
        )
    }

    /// True only for native code that passed differential validation.
    pub fn is_validated(&self) -> bool {
        matches!(self, KernelBackend::Validated(_))
    }
}

// ---------------------------------------------------------------------
// Differential validation
// ---------------------------------------------------------------------

/// Whether freshly loaded kernels are differentially validated against
/// the interpreter before being served (on by default).
static VALIDATION_ENABLED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(true);

/// Enables/disables differential validation of loaded kernels
/// (process-wide). Benchmarks use this to measure the validation
/// overhead itself; everything else should leave it on.
pub fn set_kernel_validation(enabled: bool) {
    VALIDATION_ENABLED.store(enabled, std::sync::atomic::Ordering::Relaxed);
}

/// True when differential validation of loaded kernels is enabled.
pub fn kernel_validation_enabled() -> bool {
    VALIDATION_ENABLED.load(std::sync::atomic::Ordering::Relaxed)
}

/// Artifacts that already passed validation this process: warm loads
/// of a validated artifact skip the probe entirely, so the steady-state
/// load path pays validation exactly once per artifact.
fn validated_memo() -> &'static std::sync::Mutex<std::collections::HashSet<std::path::PathBuf>> {
    static M: std::sync::OnceLock<std::sync::Mutex<std::collections::HashSet<std::path::PathBuf>>> =
        std::sync::OnceLock::new();
    M.get_or_init(|| std::sync::Mutex::new(std::collections::HashSet::new()))
}

fn memo_contains(path: &std::path::Path) -> bool {
    validated_memo()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .contains(path)
}

fn memo_insert(path: &std::path::Path) {
    validated_memo()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(path.to_path_buf());
}

/// Forgets an artifact's validated status (it misbehaved after
/// loading, or a benchmark wants to re-measure the probe cost).
pub(crate) fn unvalidate(path: &std::path::Path) {
    validated_memo()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(path);
}

/// Clears the process-wide validation memo (benchmark isolation).
pub fn clear_kernel_validation_memo() {
    validated_memo()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
}

/// One owned operand of the probe instance; `arg` borrows it as a
/// [`KernelArg`].
enum ProbeOperand {
    Csr(Csr<f64>),
    Csc(Csc<f64>),
    Coo(Coo<f64>),
    Dia(Dia<f64>),
    Ell(Ell<f64>),
    Jad(Jad<f64>),
    Sky(Sky<f64>),
    Bsr(Bsr<f64>),
    Vbr(Vbr<f64>),
    In(Vec<f64>),
    Out(Vec<f64>),
}

impl ProbeOperand {
    fn arg(&mut self) -> KernelArg<'_> {
        match self {
            ProbeOperand::Csr(m) => KernelArg::Csr(m),
            ProbeOperand::Csc(m) => KernelArg::Csc(m),
            ProbeOperand::Coo(m) => KernelArg::Coo(m),
            ProbeOperand::Dia(m) => KernelArg::Dia(m),
            ProbeOperand::Ell(m) => KernelArg::Ell(m),
            ProbeOperand::Jad(m) => KernelArg::Jad(m),
            ProbeOperand::Sky(m) => KernelArg::Sky(m),
            ProbeOperand::Bsr(m) => KernelArg::Bsr(m),
            ProbeOperand::Vbr(m) => KernelArg::Vbr(m),
            ProbeOperand::In(x) => KernelArg::In(x),
            ProbeOperand::Out(y) => KernelArg::Out(y),
        }
    }
}

fn lcm(a: usize, b: usize) -> usize {
    fn gcd(mut a: usize, mut b: usize) -> usize {
        while b != 0 {
            (a, b) = (b, a % b);
        }
        a
    }
    a / gcd(a, b) * b
}

/// Builds the deterministic probe operands for a kernel signature, or
/// `None` when some view has no probe construction (validation is then
/// skipped, not failed). The matrix is n×n lower-triangular with a
/// full nonzero diagonal — legal for every format including skyline —
/// with n sized to divide evenly into any BSR block shape in the
/// signature.
fn probe_operands(sig: &KernelSig) -> Option<(i64, Vec<ProbeOperand>)> {
    use bernoulli_formats::Triplets;
    let mut n = 4usize;
    for (_, spec) in &sig.args {
        if let ArgSpec::View(v) = spec {
            if let Some((r, c)) = crate::emit::parse_bsr(v) {
                n = lcm(n, lcm(r, c));
            }
        }
    }
    let mut entries: Vec<(usize, usize, f64)> = Vec::with_capacity(2 * n);
    for i in 0..n {
        entries.push((i, i, 1.0 + 0.125 * i as f64));
        if i > 0 {
            entries.push((i, i - 1, 0.5 + 0.0625 * i as f64));
        }
    }
    let t = Triplets::<f64>::from_entries(n, n, &entries);
    let mut ops = Vec::with_capacity(sig.args.len());
    for (_, spec) in &sig.args {
        let op = match spec {
            ArgSpec::VecIn => ProbeOperand::In((0..n).map(|k| 1.0 + 0.25 * k as f64).collect()),
            ArgSpec::VecOut => ProbeOperand::Out((0..n).map(|k| 0.5 * k as f64).collect()),
            ArgSpec::View(v) => {
                if let Some((r, c)) = crate::emit::parse_bsr(v) {
                    ProbeOperand::Bsr(Bsr::from_triplets(&t, r, c))
                } else {
                    match v.as_str() {
                        "csr" => ProbeOperand::Csr(Csr::from_triplets(&t)),
                        "csc" => ProbeOperand::Csc(Csc::from_triplets(&t)),
                        "coo" => ProbeOperand::Coo(Coo::from_triplets(&t)),
                        "dia" => ProbeOperand::Dia(Dia::from_triplets(&t)),
                        "ell" => ProbeOperand::Ell(Ell::from_triplets(&t)),
                        "jad" => ProbeOperand::Jad(Jad::from_triplets(&t)),
                        "sky" => ProbeOperand::Sky(Sky::from_triplets(&t)),
                        "vbr" => {
                            let pntr = [0, n / 2, n];
                            ProbeOperand::Vbr(Vbr::from_triplets(&t, &pntr, &pntr))
                        }
                        _ => return None,
                    }
                }
            }
        };
        ops.push(op);
    }
    Some((n as i64, ops))
}

/// Runs the freshly loaded kernel against the interpreter on the probe
/// instance. `Ok(true)`: validated (bitwise-identical outputs).
/// `Ok(false)`: validation skipped — disabled, already validated this
/// process, no probe for this signature, or the *interpreter* could not
/// run the probe (then there is no reference to compare against).
/// `Err`: the kernel disagreed or failed — the artifact is quarantined.
fn validate_kernel(p: &Program, plan: &Plan, kernel: &LoadedKernel) -> Result<bool, LoadError> {
    if !kernel_validation_enabled() {
        return Ok(false);
    }
    if memo_contains(kernel.lib.path()) {
        return Ok(true);
    }
    let Some((n, mut interp_ops)) = probe_operands(&kernel.sig) else {
        return Ok(false);
    };
    let params = vec![n; kernel.sig.params.len()];
    let mut interp_args: Vec<KernelArg<'_>> = interp_ops.iter_mut().map(|o| o.arg()).collect();
    if interp_positional(p, plan, &params, &mut interp_args).is_err() {
        return Ok(false);
    }
    drop(interp_args);
    // Deterministic, so this re-derivation cannot fail after the first
    // call succeeded — but degrade to "skipped" rather than assert.
    let Some((_, mut kernel_ops)) = probe_operands(&kernel.sig) else {
        return Ok(false);
    };
    let mut kernel_args: Vec<KernelArg<'_>> = kernel_ops.iter_mut().map(|o| o.arg()).collect();
    let reject = |detail: String| {
        kernel.store.quarantine(kernel.lib.path());
        bernoulli_trace::counter!("kernel.validation_failures");
        LoadError::ValidationFailed { detail }
    };
    if let Err(e) = kernel.run(&params, &mut kernel_args) {
        return Err(reject(format!("probe call failed: {e}")));
    }
    drop(kernel_args);
    for (i, (expect, got)) in interp_ops.iter().zip(kernel_ops.iter()).enumerate() {
        let (ProbeOperand::Out(expect), ProbeOperand::Out(got)) = (expect, got) else {
            continue;
        };
        let same = expect.len() == got.len()
            && expect
                .iter()
                .zip(got)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        if !same {
            return Err(reject(format!(
                "output operand {:?} differs from the interpreter on the \
                 {n}×{n} probe (expected {expect:?}, kernel wrote {got:?})",
                kernel.sig.args[i].0
            )));
        }
    }
    memo_insert(kernel.lib.path());
    bernoulli_trace::counter!("kernel.validations");
    Ok(true)
}

/// Loads (building if needed) the native kernel for a compiled plan,
/// then differentially validates it against the interpreter (unless
/// disabled or already validated this process).
pub(crate) fn load_kernel(
    p: &Program,
    plan: &Plan,
    views: &HashMap<String, FormatView>,
    logical_key: &str,
    store: &KernelStore,
) -> Result<LoadedKernel, LoadError> {
    let sig = KernelSig::of(p, views)?;
    let (source, has_ranged) = cdylib_source(p, plan, views)?;
    let key = format!("abi{KERNEL_ABI_VERSION}|{logical_key}");
    let Artifact { path, from_cache } = store.get_or_build(&key, &source)?;
    let lib = Library::open(&path)?;
    let entry_ptr = lib.symbol(KERNEL_SYMBOL)?;
    // Safety: the artifact was built from `source`, which exports
    // KERNEL_SYMBOL with exactly the EntryV1 signature (the cache key
    // covers source + ABI version, so a stale artifact cannot match).
    let entry: EntryV1 = unsafe { std::mem::transmute(entry_ptr) };
    let ranged: Option<RangeV1> = if has_ranged {
        let p = lib.symbol(KERNEL_RANGE_SYMBOL)?;
        // Safety: same as above, RangeV1 signature.
        Some(unsafe { std::mem::transmute::<*const (), RangeV1>(p) })
    } else {
        None
    };
    let outer_matrix = if has_ranged {
        plan.steps.first().and_then(|s| match &s.kind {
            StepKind::Level { primary, .. } => Some(primary.matrix.clone()),
            _ => None,
        })
    } else {
        None
    };
    bernoulli_trace::counter!("kernel.loads");
    let mut kernel = LoadedKernel {
        lib: Arc::new(lib),
        entry,
        ranged,
        sig,
        from_cache,
        outer_matrix,
        validated: false,
        store: store.clone(),
    };
    kernel.validated = validate_kernel(p, plan, &kernel)?;
    Ok(kernel)
}

/// Runs a plan through the interpreter with the *same positional
/// call convention* as a loaded kernel, so the two backends are
/// interchangeable: parameters in program order, one [`KernelArg`] per
/// array. Output vectors are copied in and back out around the run.
pub(crate) fn interp_positional(
    p: &Program,
    plan: &Plan,
    params: &[i64],
    args: &mut [KernelArg<'_>],
) -> Result<(), SynthError> {
    if params.len() != p.params.len() {
        return Err(SynthError::Plan(PlanError(format!(
            "expected {} parameters ({:?}), got {}",
            p.params.len(),
            p.params,
            params.len()
        ))));
    }
    if args.len() != p.arrays.len() {
        return Err(SynthError::Plan(PlanError(format!(
            "expected {} operands, got {}",
            p.arrays.len(),
            args.len()
        ))));
    }
    let mut env = ExecEnv::new();
    for (name, v) in p.params.iter().zip(params) {
        env.set_param(name, *v);
    }
    for (decl, arg) in p.arrays.iter().zip(args.iter()) {
        match arg {
            KernelArg::Csr(m) => env.bind_sparse(&decl.name, *m),
            KernelArg::Csc(m) => env.bind_sparse(&decl.name, *m),
            KernelArg::Coo(m) => env.bind_sparse(&decl.name, *m),
            KernelArg::Dia(m) => env.bind_sparse(&decl.name, *m),
            KernelArg::Ell(m) => env.bind_sparse(&decl.name, *m),
            KernelArg::Jad(m) => env.bind_sparse(&decl.name, *m),
            KernelArg::Sky(m) => env.bind_sparse(&decl.name, *m),
            KernelArg::Bsr(m) => env.bind_sparse(&decl.name, *m),
            KernelArg::Vbr(m) => env.bind_sparse(&decl.name, *m),
            KernelArg::In(x) => env.bind_vec(&decl.name, x.to_vec()),
            KernelArg::Out(y) => env.bind_vec(&decl.name, y.to_vec()),
            KernelArg::OutShared(_) => {
                return Err(SynthError::Plan(PlanError(format!(
                    "operand {:?}: raw shared outputs are only usable on the \
                     compiled backend",
                    decl.name
                ))));
            }
        };
    }
    run_plan(plan, &mut env)?;
    let mut outs: Vec<(usize, Vec<f64>)> = Vec::new();
    for (i, decl) in p.arrays.iter().enumerate() {
        if matches!(args[i], KernelArg::Out(_)) {
            outs.push((i, env.try_take_vec(&decl.name)?));
        }
    }
    drop(env);
    for (i, v) in outs {
        if let KernelArg::Out(y) = &mut args[i] {
            if y.len() != v.len() {
                return Err(SynthError::Plan(PlanError(format!(
                    "output {:?} length changed across the run ({} -> {})",
                    p.arrays[i].name,
                    y.len(),
                    v.len()
                ))));
            }
            y.copy_from_slice(&v);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use bernoulli_formats::{SparseView, Triplets};

    const MVM: &str = "
        program mvm(M, N) {
          in matrix A[M][N];
          in vector x[N];
          inout vector y[M];
          for i in 0..M {
            for j in 0..N {
              y[i] = y[i] + A[i][j] * x[j];
            }
          }
        }
    ";

    fn csr3() -> Csr<f64> {
        Csr::from_triplets(&Triplets::from_entries(
            3,
            3,
            &[(0, 0, 2.0), (1, 2, 1.0), (2, 1, 4.0)],
        ))
    }

    fn compile(a: &Csr<f64>) -> crate::session::CompiledKernel {
        let s = Session::new();
        let p = s.parse(MVM).expect("spec parses");
        let bound = s.bind(&p, &[("A", a.format_view())]).expect("binds");
        s.compile(&bound).expect("compiles")
    }

    #[test]
    fn cdylib_source_is_self_contained_with_ranged_entry() {
        let a = csr3();
        let k = compile(&a);
        let (src, ranged) = cdylib_source(k.program(), k.plan(), k.views()).expect("source");
        assert!(ranged, "csr mvm outer row loop must be range-splittable");
        assert!(src.contains("#[no_mangle]"), "{src}");
        assert!(src.contains(KERNEL_SYMBOL));
        assert!(src.contains(KERNEL_RANGE_SYMBOL));
        assert!(
            src.contains("pub struct Csr"),
            "mirror struct missing:\n{src}"
        );
        assert!(
            !src.contains("bernoulli_formats"),
            "kernel crate must not depend on the workspace:\n{src}"
        );
        // Cache-blocked CSR traversal in the full entry.
        assert!(src.contains("r0__"), "blocked row walk missing:\n{src}");
    }

    #[test]
    fn sig_rejects_unmarshallable_views() {
        let s = Session::new();
        let p = s
            .parse(
                "program f(N) { in vector v[N]; inout vector y[N];
                  for i in 0..N { y[i] = y[i] + v[i]; } }",
            )
            .expect("parses");
        let hv = bernoulli_formats::formats::sparsevec::hashvec_format_view();
        let views: HashMap<String, FormatView> = [("v".to_string(), hv)].into_iter().collect();
        match KernelSig::of(&p, &views) {
            Err(LoadError::UnsupportedView { array, view }) => {
                assert_eq!(array, "v");
                assert_eq!(view, "hashvec");
            }
            other => panic!("expected UnsupportedView, got {other:?}"),
        }
    }

    #[test]
    fn positional_interpreter_matches_env_interpreter() {
        let a = csr3();
        let k = compile(&a);
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        let mut args = [
            KernelArg::Csr(&a),
            KernelArg::In(&x),
            KernelArg::Out(&mut y),
        ];
        interp_positional(k.program(), k.plan(), &[3, 3], &mut args).expect("runs");
        assert_eq!(y, vec![2.0, 3.0, 8.0]);
    }

    #[test]
    fn positional_interpreter_rejects_bad_arity() {
        let a = csr3();
        let k = compile(&a);
        let x = vec![1.0, 2.0, 3.0];
        let mut args = [KernelArg::Csr(&a), KernelArg::In(&x)];
        let err = interp_positional(k.program(), k.plan(), &[3, 3], &mut args)
            .expect_err("missing output operand");
        assert!(matches!(err, SynthError::Plan(_)), "{err:?}");
    }

    /// An artifact whose entry returns an unknown nonzero status is an
    /// ABI breach: the call must surface `KernelCallError::Abi`, the
    /// artifact must land in the store's quarantine, and the store must
    /// refuse to serve it again.
    #[test]
    fn abi_breach_quarantines_the_artifact() -> Result<(), KernelCacheError> {
        if bernoulli_kernel_cache::rustc_info().is_err() {
            return Ok(());
        }
        // A well-formed cdylib that honours the EntryV1 signature but
        // reports a status code no host version understands.
        const ROGUE: &str = "
            #[no_mangle]
            pub extern \"C\" fn bernoulli_kernel_v1(
                _params: *const i64, _nparams: usize,
                _dims: *const usize, _ndims: usize,
                _slices: *const u8, _nslices: usize,
            ) -> i32 { 7 }
        ";
        let dir = std::env::temp_dir().join(format!("bernoulli-abi-breach-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = KernelStore::at(&dir);
        let Artifact { path, .. } = store.get_or_build("abi-breach-test", ROGUE)?;
        let lib = Library::open(&path)?;
        let entry: EntryV1 = unsafe { std::mem::transmute(lib.symbol(KERNEL_SYMBOL)?) };
        let kernel = LoadedKernel {
            lib: Arc::new(lib),
            entry,
            ranged: None,
            sig: KernelSig {
                params: Vec::new(),
                args: Vec::new(),
                ndims: 0,
                nslices: 0,
            },
            from_cache: false,
            outer_matrix: None,
            validated: false,
            store: store.clone(),
        };
        let outcome = kernel.run(&[], &mut []);
        assert!(
            matches!(outcome, Err(KernelCallError::Abi { code: 7 })),
            "expected Abi {{ code: 7 }}, got {outcome:?}"
        );
        assert!(
            store.is_quarantined(&path),
            "a bad status must quarantine the artifact"
        );
        assert!(
            !memo_contains(&path),
            "quarantine must also drop the validation memo entry"
        );
        let refusal = store.get_or_build("abi-breach-test", ROGUE);
        assert!(
            matches!(refusal, Err(KernelCacheError::Quarantined { .. })),
            "expected Quarantined refusal, got {refusal:?}"
        );
        store.clear_quarantine();
        let _ = std::fs::remove_dir_all(&dir);
        Ok(())
    }
}
