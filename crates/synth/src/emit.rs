//! Rust source emission: specializing a plan for concrete formats.
//!
//! This is the analogue of the paper's compiler-instantiated C++
//! (Fig. 9): the plan's enumerations become loops over the format
//! structs' public fields, searches become calls to the formats' `find`
//! helpers or inline binary searches, and statement bodies become plain
//! scalar Rust. The generated functions are monomorphic — the moral
//! equivalent of the paper's Barton–Nackman compile-time dispatch — and
//! are what the benchmark harness measures.
//!
//! The emitted text depends only on the plan and the program, so
//! generated kernels can be committed (see `bernoulli-blas`'s `synth`
//! module) and checked against regeneration in CI.

use crate::plan::{Atom, Dir, ExecStmt, Guard, LevelRef, PExpr, Plan, StepKind, ValueSource};
use bernoulli_formats::view::FormatView;
use bernoulli_ir::{ArrayKind, LhsRef, Program, Role, ValueExpr};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Emission failure: the plan uses a runtime feature with no static
/// template (fall back to the interpreter).
#[derive(Clone, Debug, PartialEq)]
pub struct EmitError(pub String);

impl std::fmt::Display for EmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "emission failed: {}", self.0)
    }
}

impl std::error::Error for EmitError {}

/// Parses a BSR view name (`bsr{r}x{c}`) into its block shape. The
/// shape rides in the name so the emitter can unroll the within-block
/// loop with literal bounds (and so plans for distinct shapes never
/// collide in the plan cache).
pub(crate) fn parse_bsr(view_name: &str) -> Option<(usize, usize)> {
    let (r, c) = view_name.strip_prefix("bsr")?.split_once('x')?;
    match (r.parse(), c.parse()) {
        (Ok(r), Ok(c)) if r > 0 && c > 0 => Some((r, c)),
        _ => None,
    }
}

/// The per-(chain, level) template name for a view: BSR's shape-carrying
/// names all share the `bsr` templates.
fn template_name(view_name: &str) -> &str {
    if parse_bsr(view_name).is_some() {
        "bsr"
    } else {
        view_name
    }
}

/// The Rust type for a view name.
fn rust_type(view_name: &str) -> Result<&'static str, EmitError> {
    if parse_bsr(view_name).is_some() {
        return Ok("Bsr<f64>");
    }
    Ok(match view_name {
        "dense" => "Dense<f64>",
        "coo" => "Coo<f64>",
        "csr" => "Csr<f64>",
        "csc" => "Csc<f64>",
        "dia" => "Dia<f64>",
        "ell" => "Ell<f64>",
        "jad" => "Jad<f64>",
        "diagsplit" => "DiagSplit<f64>",
        "sky" => "Sky<f64>",
        "vbr" => "Vbr<f64>",
        "spvec" => "SparseVec<f64>",
        "hashvec" => "HashVec<f64>",
        other => return Err(EmitError(format!("no Rust type for view {other:?}"))),
    })
}

struct Emitter<'a> {
    p: &'a Program,
    plan: &'a Plan,
    views: &'a HashMap<String, FormatView>,
    /// matrix name -> local variable name in the generated fn
    mat_var: HashMap<String, String>,
    out: String,
    indent: usize,
    /// Scalar replacement: a dense-vector element promoted to a register
    /// across the innermost step (array, index expr, register name).
    promotion: Option<Promotion>,
    /// Set when the body used the `ix` unchecked-read helper, so the
    /// helper definition is spliced into the function prologue.
    uses_ix: std::cell::Cell<bool>,
    /// Emit the outermost row enumeration over `row_lo__..row_hi__`
    /// parameters instead of `0..nrows` (the range-splittable entry the
    /// parallel lane dispatches chunks through).
    ranged: bool,
}

/// The unchecked-read helper spliced into functions that index
/// format-owned arrays on the hot path: the indices are in bounds by
/// format validity (checked in debug builds), and removing the release
/// bounds checks is what lets LLVM vectorize the ELL/DIA inner loops.
const IX_HELPER: &str = "    /// Read of a format-owned array: in bounds by format validity\n    /// (debug-checked), branch-free in release so inner loops vectorize.\n    #[inline(always)]\n    fn ix<T: Copy>(s: &[T], i: usize) -> T {\n        debug_assert!(i < s.len());\n        unsafe { *s.get_unchecked(i) }\n    }\n";

/// A proved-safe register promotion of `vec[idx]` across the innermost
/// enumeration (the classical scalar replacement the hand-written NIST
/// kernels perform with a temporary accumulator).
#[derive(Clone, Debug)]
struct Promotion {
    array: String,
    /// Index expression over outer-step slots and parameters.
    idx: PExpr,
    reg: String,
    /// Deferred pivot division: the exec index whose `acc = acc / X` is
    /// moved after the inner loop (capturing `X` in a register at its
    /// original firing point). Sound because its `Eq` guard fires at most
    /// once per inner enumeration (strictly increasing slot) and every
    /// other statement is proved to fire strictly earlier.
    deferred_div: Option<usize>,
}

/// Substitutes an exec's (divisor-free) bindings into an affine index,
/// yielding a PExpr over slots and parameters, or `None` when a variable
/// is unbound or divisor-bound.
fn subst_index(e: &ExecStmt, idx: &bernoulli_ir::AffineExpr, params: &[String]) -> Option<PExpr> {
    let mut out = PExpr::constant(idx.cst());
    for (v, c) in idx.terms() {
        if params.iter().any(|q| q == v) {
            out.add_term(Atom::Var(v.to_string()), c);
            continue;
        }
        let (pe, d) = e
            .bindings
            .iter()
            .find(|(bv, _, _)| bv == v)
            .map(|(_, pe, d)| (pe, d))?;
        if *d != 1 {
            return None;
        }
        for (a, cc) in &pe.terms {
            out.add_term(a.clone(), c * cc);
        }
        out.cst += c * pe.cst;
    }
    Some(out)
}

fn pexpr_eq(a: &PExpr, b: &PExpr) -> bool {
    if a.cst != b.cst || a.terms.len() != b.terms.len() {
        return false;
    }
    a.terms
        .iter()
        .all(|(at, ac)| b.terms.iter().any(|(bt, bc)| at == bt && ac == bc))
}

/// `a - b` over PExprs.
fn pexpr_sub(a: &PExpr, b: &PExpr) -> PExpr {
    let mut out = a.clone();
    for (t, c) in &b.terms {
        out.add_term(t.clone(), -c);
    }
    out.cst -= b.cst;
    out
}

/// Does one of the exec's guards prove `diff != 0`? True when a `Ge`
/// guard states `diff - k >= 0` with `k >= 1`, or `-diff - k >= 0` with
/// `k >= 1` (i.e. `diff <= -1` or `diff >= 1`).
fn guards_prove_nonzero(e: &ExecStmt, diff: &PExpr) -> bool {
    e.guards.iter().any(|g| {
        let Guard::Ge(x) = g else { return false };
        // x == diff + c with c <= -1  (diff >= -c >= 1)
        let mut d1 = pexpr_sub(x, diff);
        d1.cst = 0;
        let matches_pos = d1.terms.is_empty() && (x.cst - diff.cst) <= -1;
        // x == -diff + c with c <= -1 (diff <= c <= -1)
        let mut nd = PExpr::constant(-diff.cst);
        for (t, c) in &diff.terms {
            nd.add_term(t.clone(), -c);
        }
        let mut d2 = pexpr_sub(x, &nd);
        d2.cst = 0;
        let matches_neg = d2.terms.is_empty() && (x.cst - nd.cst) <= -1;
        matches_pos || matches_neg
    })
}

/// Are two guards provably disjoint (at most one can hold)?
/// Recognizes the `Eq(a)` vs `Ge(-a-1)` / `Ge(a-1)` patterns and the
/// `Ge(a)` vs `Ge(-a-1)` pattern produced by complementary regions.
fn guards_disjoint(g1: &Guard, g2: &Guard) -> bool {
    let neg_minus1 = |x: &PExpr| {
        let mut n = PExpr::constant(-x.cst - 1);
        for (t, c) in &x.terms {
            n.add_term(t.clone(), -c);
        }
        n
    };
    let minus1 = |x: &PExpr| {
        let mut n = x.clone();
        n.cst -= 1;
        n
    };
    match (g1, g2) {
        (Guard::Eq(a), Guard::Ge(b)) | (Guard::Ge(b), Guard::Eq(a)) => {
            pexpr_eq(b, &neg_minus1(a)) || pexpr_eq(b, &minus1(a))
        }
        (Guard::Ge(a), Guard::Ge(b)) => pexpr_eq(b, &neg_minus1(a)),
        _ => false,
    }
}

/// Looks for a safe promotion across the innermost step.
fn find_promotion(p: &Program, plan: &Plan) -> Option<Promotion> {
    let nsteps = plan.steps.len();
    if nsteps == 0 {
        return None;
    }
    let last = &plan.steps[nsteps - 1];
    let last_slots: Vec<usize> = (last.first_slot..last.first_slot + last.nslots).collect();
    let inner: Vec<&ExecStmt> = plan.execs.iter().filter(|e| e.depth == nsteps).collect();
    if inner.is_empty() || inner.len() != plan.execs.len() {
        // Hoisted statements might touch the same element; stay
        // conservative.
        return None;
    }
    // All inner execs must write the same dense vector at the same index.
    let mut target: Option<(String, PExpr)> = None;
    for e in &inner {
        if e.sources[0].is_some() {
            return None; // sparse write
        }
        if e.bindings.iter().any(|(_, _, d)| *d != 1)
            || e.guards
                .iter()
                .find(|g| matches!(g, Guard::Divides(..)))
                .is_some()
        {
            return None;
        }
        let idx = subst_index(e, &e.body.lhs.idxs[0], &p.params)?;
        if idx
            .terms
            .iter()
            .any(|(a, _)| matches!(a, Atom::Slot(sl) if last_slots.contains(sl)))
        {
            return None; // write target varies across the inner loop
        }
        match &target {
            None => target = Some((e.body.lhs.array.clone(), idx)),
            Some((arr, prev)) => {
                if *arr != e.body.lhs.array || !pexpr_eq(prev, &idx) {
                    return None;
                }
            }
        }
    }
    let (array, idx) = target?;
    // Every read of the target array must be the same element or provably
    // different.
    for e in &inner {
        for r in e.body.rhs.reads() {
            if r.array != array {
                continue;
            }
            let ridx = subst_index(e, &r.idxs[0], &p.params)?;
            if pexpr_eq(&ridx, &idx) {
                continue;
            }
            let diff = pexpr_sub(&ridx, &idx);
            if !guards_prove_nonzero(e, &diff) {
                return None;
            }
        }
    }
    let deferred_div = find_deferred_div(plan, &inner, &array, &idx, p);
    Some(Promotion {
        array,
        idx,
        reg: "acc__".to_string(),
        deferred_div,
    })
}

/// Finds a division statement `acc = acc / X` whose execution can be
/// deferred past the inner loop (the pivot-capture transformation the
/// hand-written triangular solves perform):
///
/// - its only guard is `Eq(g)` where `g` has a ±1 coefficient on exactly
///   one slot of the innermost step (so, with increasing enumeration, it
///   fires at most once per inner loop);
/// - every other full-depth statement carries a `Ge` guard placing it
///   strictly on the "earlier" side of that firing point;
/// - `X` does not read the promoted element.
fn find_deferred_div(
    plan: &Plan,
    inner: &[&ExecStmt],
    array: &str,
    idx: &PExpr,
    p: &Program,
) -> Option<usize> {
    let nsteps = plan.steps.len();
    let last = &plan.steps[nsteps - 1];
    if !last.ordered {
        return None;
    }
    let last_slots: Vec<usize> = (last.first_slot..last.first_slot + last.nslots).collect();

    // Identify the division candidate.
    let mut div_at: Option<(usize, PExpr)> = None; // (exec idx in plan order, normalized g)
    for e in inner.iter() {
        let is_div = matches!(&e.body.rhs, ValueExpr::Div(a, _)
            if matches!(a.as_ref(), ValueExpr::Read(r)
                if r.array == array
                   && subst_index(e, &r.idxs[0], &p.params).is_some_and(|ri| pexpr_eq(&ri, idx))));
        if !is_div {
            continue;
        }
        if e.guards.len() != 1 {
            return None;
        }
        let Guard::Eq(g) = &e.guards[0] else {
            return None;
        };
        // The divisor must not read the promoted element.
        if let ValueExpr::Div(_, b) = &e.body.rhs {
            for r in b.reads() {
                if r.array == array {
                    if let Some(ri) = subst_index(e, &r.idxs[0], &p.params) {
                        if pexpr_eq(&ri, idx) {
                            return None;
                        }
                    } else {
                        return None;
                    }
                }
            }
        }
        // Exactly one inner slot with coefficient ±1; normalize to +1.
        let inner_terms: Vec<(&Atom, i64)> = g
            .terms
            .iter()
            .filter(|(a, _)| matches!(a, Atom::Slot(sl) if last_slots.contains(sl)))
            .map(|(a, c)| (a, *c))
            .collect();
        if inner_terms.len() != 1 || inner_terms[0].1.abs() != 1 {
            return None;
        }
        let mut gn = g.clone();
        if inner_terms[0].1 == -1 {
            let mut neg = PExpr::constant(-gn.cst);
            for (t, c) in &gn.terms {
                neg.add_term(t.clone(), -c);
            }
            gn = neg;
        }
        if div_at.is_some() {
            return None; // at most one division statement
        }
        let pos = plan
            .execs
            .iter()
            .position(|x| x.stmt == e.stmt)
            .unwrap_or(usize::MAX);
        div_at = Some((pos, gn));
    }
    let (div_idx, gn) = div_at?;

    // Every other inner exec fires strictly before the division's point:
    // it must carry the guard `-g - 1 >= 0` (value < firing point).
    let before = {
        let mut b = PExpr::constant(-gn.cst - 1);
        for (t, c) in &gn.terms {
            b.add_term(t.clone(), -c);
        }
        b
    };
    for (k, e) in plan.execs.iter().enumerate() {
        if k == div_idx || e.depth != nsteps {
            continue;
        }
        if !e
            .guards
            .iter()
            .any(|g| matches!(g, Guard::Ge(h) if pexpr_eq(h, &before)))
        {
            return None;
        }
    }
    Some(div_idx)
}

/// Emits a standalone Rust function implementing the plan.
///
/// Signature: parameters (`i64`) in program order, then arrays in
/// declaration order — matrices by shared reference to their concrete
/// format type, vectors as `&[f64]` (role `in`) or `&mut [f64]`.
pub fn emit_rust(
    p: &Program,
    plan: &Plan,
    views: &HashMap<String, FormatView>,
    fn_name: &str,
) -> Result<String, EmitError> {
    emit_rust_inner(p, plan, views, fn_name, false)
}

/// Like [`emit_rust`], but the outermost row enumeration runs over two
/// extra trailing parameters `row_lo__, row_hi__: i64` instead of
/// `0..nrows`, so callers can restrict a call to a row band (the
/// parallel lane dispatches nnz-balanced chunks through this entry).
/// Returns `Ok(None)` when the plan's outermost step is not a
/// row-primary level enumeration (no sound way to split it by rows).
pub fn emit_rust_ranged(
    p: &Program,
    plan: &Plan,
    views: &HashMap<String, FormatView>,
    fn_name: &str,
) -> Result<Option<String>, EmitError> {
    if !range_splittable(p, plan, views) {
        return Ok(None);
    }
    emit_rust_inner(p, plan, views, fn_name, true).map(Some)
}

/// True when restricting the plan to a row band enumerates exactly that
/// band's instances *and* bands are independent, so disjoint bands may
/// run concurrently (the parallel lane's contract). Two conditions:
///
/// 1. the outermost step enumerates the rows of a row-major format
///    (level 0 of csr/ell/dense) forward, and
/// 2. no statement reads an output (`out`/`inout`) array anywhere but
///    at the element its own write touches — a cross-row read (e.g. the
///    triangular solve's `b[j]` with `j < i`) makes later rows depend
///    on earlier ones, which a split into concurrently-run bands would
///    violate even though the *sequential* blocked traversal is fine.
pub fn range_splittable(p: &Program, plan: &Plan, views: &HashMap<String, FormatView>) -> bool {
    let Some(step) = plan.steps.first() else {
        return false;
    };
    let StepKind::Level { primary, .. } = &step.kind else {
        return false;
    };
    let Some(view) = views.get(&primary.matrix) else {
        return false;
    };
    if step.dir != Dir::Fwd
        || primary.level != 0
        || primary.chain != 0
        || !matches!(
            template_name(&view.name),
            "csr" | "ell" | "dense" | "bsr" | "vbr"
        )
    {
        return false;
    }
    // Cross-row dependence check (condition 2): every read of a written
    // array must be the accumulator self-read of its own statement.
    for s in p.statements() {
        for r in s.stmt.rhs.reads() {
            let written = p
                .array(&r.array)
                .is_some_and(|a| matches!(a.role, Role::Out | Role::InOut));
            if written && (r.array != s.stmt.lhs.array || r.idxs != s.stmt.lhs.idxs) {
                return false;
            }
        }
    }
    true
}

fn emit_rust_inner(
    p: &Program,
    plan: &Plan,
    views: &HashMap<String, FormatView>,
    fn_name: &str,
    ranged: bool,
) -> Result<String, EmitError> {
    let mut mat_var = HashMap::new();
    for a in &p.arrays {
        mat_var.insert(a.name.clone(), format!("{}_", a.name.to_lowercase()));
    }
    let promotion = find_promotion(p, plan);
    let mut e = Emitter {
        p,
        plan,
        views,
        mat_var,
        out: String::new(),
        indent: 0,
        promotion,
        uses_ix: std::cell::Cell::new(false),
        ranged,
    };
    e.function(fn_name)?;
    Ok(e.out)
}

impl Emitter<'_> {
    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn mat(&self, name: &str) -> &str {
        &self.mat_var[name]
    }

    fn function(&mut self, fn_name: &str) -> Result<(), EmitError> {
        // Header.
        let mut sig = format!("pub fn {fn_name}(");
        let mut first = true;
        for q in &self.p.params {
            if !first {
                sig.push_str(", ");
            }
            first = false;
            let _ = write!(sig, "{}_: i64", q.to_lowercase());
        }
        for a in &self.p.arrays {
            if !first {
                sig.push_str(", ");
            }
            first = false;
            // Any array with a bound view is passed as its format type;
            // view-less matrices are not emit-able, view-less vectors are
            // plain slices.
            if let Some(view) = self.views.get(&a.name) {
                let ty = rust_type(&view.name)?;
                let _ = write!(sig, "{}: &{ty}", self.mat_var[&a.name]);
            } else {
                match a.kind {
                    ArrayKind::Matrix => {
                        return Err(EmitError(format!("no view bound for {:?}", a.name)));
                    }
                    ArrayKind::Vector => {
                        let m = match a.role {
                            Role::In => "",
                            Role::Out | Role::InOut => "mut ",
                        };
                        let _ = write!(sig, "{}: &{m}[f64]", self.mat_var[&a.name]);
                    }
                }
            }
        }
        if self.ranged {
            if first {
                return Err(EmitError("ranged emission of a nullary function".into()));
            }
            sig.push_str(", row_lo__: i64, row_hi__: i64");
        }
        sig.push_str(") {");
        self.line(&sig);
        self.indent += 1;
        let helper_at = self.out.len();
        // Silence possibly-unused parameter warnings deterministically.
        for q in &self.p.params.clone() {
            self.line(&format!("let _ = {}_;", q.to_lowercase()));
        }

        if !self.bsr_tiled_nest()? && !self.vbr_tiled_nest()? {
            self.nest(0)?;
        }

        self.indent -= 1;
        self.line("}");
        if self.uses_ix.get() {
            self.out.insert_str(helper_at, IX_HELPER);
        }
        Ok(())
    }

    /// Register-tiled emission of the blocked gather pattern: a
    /// two-step plan `rows (bsr level 0) → blocks (bsr level 1)` whose
    /// single full-depth statement reduces into a promoted
    /// row-invariant element (the MVM shape). The generic nest walks
    /// each block row `R` times — once per logical row — with a single
    /// serial accumulator chain; this template walks it once with `R`
    /// independent accumulators, one per row of the block row. Each
    /// row's reduction order is unchanged (blocks ascending, then
    /// within-block columns ascending), so results stay bitwise
    /// identical to the generic nest and the interpreter; the win is
    /// that the `R` dependency chains now retire in parallel, which is
    /// exactly where the hand-written micro-kernels get their
    /// throughput. Rows outside the leading/trailing block boundary
    /// (reachable only through the ranged entry) run the generic
    /// scalar per-row body.
    ///
    /// Returns `Ok(false)` — emit nothing — when the plan is not this
    /// shape.
    fn bsr_tiled_nest(&mut self) -> Result<bool, EmitError> {
        if self.plan.steps.len() != 2 || self.plan.execs.len() != 1 {
            return Ok(false);
        }
        let (s0, s1) = (self.plan.steps[0].clone(), self.plan.steps[1].clone());
        let (StepKind::Level { primary: p0, .. }, StepKind::Level { primary: p1, .. }) =
            (&s0.kind, &s1.kind)
        else {
            return Ok(false);
        };
        let e = self.plan.execs[0].clone();
        let Some(pr) = self.promotion.clone() else {
            return Ok(false);
        };
        let view_name = match self.views.get(&p0.matrix) {
            Some(v) => v.name.clone(),
            None => return Ok(false),
        };
        let Some((rb, cb)) = parse_bsr(&view_name) else {
            return Ok(false);
        };
        if rb < 2
            || s0.dir != Dir::Fwd
            || s1.dir != Dir::Fwd
            || (p0.chain, p0.level) != (0, 0)
            || (p1.chain, p1.level) != (0, 1)
            || p0.ref_id != p1.ref_id
            || s0.nslots != 1
            || s1.nslots != 1
            || !s0.searches.is_empty()
            || !s1.searches.is_empty()
            || !s0.sharers.is_empty()
            || !s1.sharers.is_empty()
            || e.depth != 2
            || pr.deferred_div.is_some()
        {
            return Ok(false);
        }

        let m = self.mat(&p0.matrix).to_string();
        let arr = self.mat(&pr.array).to_string();
        let v0 = slot_var(s0.first_slot);
        let v1 = slot_var(s1.first_slot);
        let pv0 = pos_var(p0.ref_id, 0);
        let pv1 = pos_var(p1.ref_id, 1);

        if self.ranged {
            self.line("let mut r0__ = row_lo__;");
            self.line("let rend__ = row_hi__;");
        } else {
            self.line("let mut r0__ = 0i64;");
            self.line(&format!("let rend__ = {m}.nrows as i64;"));
        }
        // Scalar rows up to the first block-row boundary (a no-op from
        // the full entry: row 0 is always aligned).
        let scalar_row = |this: &mut Self| -> Result<(), EmitError> {
            this.line(&format!("let {v0} = r0__;"));
            this.line(&format!("let {pv0} = {v0} as usize;"));
            this.nest(1)?;
            this.line("r0__ += 1;");
            Ok(())
        };
        self.line(&format!(
            "while r0__ < rend__ && !(r0__ as usize).is_multiple_of({rb}) {{"
        ));
        self.indent += 1;
        scalar_row(self)?;
        self.indent -= 1;
        self.line("}");

        // Full block rows, one walk, R register accumulators.
        let (blo, bhi, bcol) = (
            self.ix(&format!("{m}.browptr"), "br__"),
            self.ix(&format!("{m}.browptr"), "br__ + 1"),
            self.ix(&format!("{m}.bcolind"), "b__"),
        );
        self.line(&format!("while r0__ + {rb} <= rend__ {{"));
        self.indent += 1;
        self.line(&format!("let br__ = (r0__ as usize) / {rb};"));
        for k in 0..rb {
            self.line(&format!("let {v0} = r0__ + {k};"));
            let idx = self.pexpr(&pr.idx);
            self.line(&format!("let mut acc{k}t__ = {arr}[({idx}) as usize];"));
        }
        self.line(&format!("for b__ in {blo}..{bhi} {{"));
        self.indent += 1;
        self.line(&format!("let base__ = b__ * {};", rb * cb));
        self.line(&format!("let c0__ = {bcol} * {cb};"));
        self.line(&format!("for s__ in 0..{cb} {{"));
        self.indent += 1;
        self.line(&format!("let {v1} = (c0__ + s__) as i64;"));
        self.line(&format!("let _ = {v1};"));
        for k in 0..rb {
            self.line(&format!("let {v0} = r0__ + {k};"));
            self.line(&format!("let _ = {v0};"));
            self.line(&format!("let {pv1} = base__ + {} + s__;", k * cb));
            self.line(&format!("let _ = {pv1};"));
            if let Some(p) = self.promotion.as_mut() {
                p.reg = format!("acc{k}t__");
            }
            self.exec(&e)?;
        }
        self.promotion = Some(pr.clone());
        self.indent -= 1;
        self.line("}");
        self.indent -= 1;
        self.line("}");
        for k in 0..rb {
            self.line(&format!("let {v0} = r0__ + {k};"));
            let idx = self.pexpr(&pr.idx);
            self.line(&format!("{arr}[({idx}) as usize] = acc{k}t__;"));
        }
        self.line(&format!("r0__ += {rb};"));
        self.indent -= 1;
        self.line("}");

        // Scalar rows after the last full block row (ranged entries
        // whose band ends mid-block).
        self.line("while r0__ < rend__ {");
        self.indent += 1;
        scalar_row(self)?;
        self.indent -= 1;
        self.line("}");
        Ok(true)
    }

    /// Strip-tiled emission of the VBR gather pattern: the same
    /// two-step blocked-MVM shape as [`Self::bsr_tiled_nest`], but the
    /// strip extents are runtime data (`rpntr`/`cpntr`), so the tile
    /// height is the strip height read at run time instead of a
    /// compile-time literal. Each full strip walks its stored blocks
    /// once with one accumulator per strip row — spilled to a reused
    /// buffer between blocks, held in a register inside each block —
    /// where the generic nest walks the strip's blocks once per row.
    /// Each row's reduction order (blocks ascending, then within-block
    /// columns ascending) is unchanged, so results stay bitwise
    /// identical to the generic nest and the interpreter. Rows whose
    /// strip extends outside the entry's row range (reachable only
    /// through the ranged entry; the partitioner is strip-aligned) run
    /// the generic scalar per-row body.
    ///
    /// Returns `Ok(false)` — emit nothing — when the plan is not this
    /// shape.
    fn vbr_tiled_nest(&mut self) -> Result<bool, EmitError> {
        if self.plan.steps.len() != 2 || self.plan.execs.len() != 1 {
            return Ok(false);
        }
        let (s0, s1) = (self.plan.steps[0].clone(), self.plan.steps[1].clone());
        let (StepKind::Level { primary: p0, .. }, StepKind::Level { primary: p1, .. }) =
            (&s0.kind, &s1.kind)
        else {
            return Ok(false);
        };
        let e = self.plan.execs[0].clone();
        let Some(pr) = self.promotion.clone() else {
            return Ok(false);
        };
        let view_name = match self.views.get(&p0.matrix) {
            Some(v) => v.name.clone(),
            None => return Ok(false),
        };
        if template_name(&view_name) != "vbr"
            || s0.dir != Dir::Fwd
            || s1.dir != Dir::Fwd
            || (p0.chain, p0.level) != (0, 0)
            || (p1.chain, p1.level) != (0, 1)
            || p0.ref_id != p1.ref_id
            || s0.nslots != 1
            || s1.nslots != 1
            || !s0.searches.is_empty()
            || !s1.searches.is_empty()
            || !s0.sharers.is_empty()
            || !s1.sharers.is_empty()
            || e.depth != 2
            || pr.deferred_div.is_some()
        {
            return Ok(false);
        }

        let m = self.mat(&p0.matrix).to_string();
        let arr = self.mat(&pr.array).to_string();
        let v0 = slot_var(s0.first_slot);
        let v1 = slot_var(s1.first_slot);
        let pv0 = pos_var(p0.ref_id, 0);
        let pv1 = pos_var(p1.ref_id, 1);

        if self.ranged {
            self.line("let mut r0__ = row_lo__;");
            self.line("let rend__ = row_hi__;");
        } else {
            self.line("let mut r0__ = 0i64;");
            self.line(&format!("let rend__ = {m}.nrows as i64;"));
        }
        self.line("let mut accv__: Vec<f64> = Vec::new();");
        let rowblk = self.ix(&format!("{m}.rowblk"), "r0__ as usize");
        let (rp0, rp1) = (
            self.ix(&format!("{m}.rpntr"), "br__"),
            self.ix(&format!("{m}.rpntr"), "br__ + 1"),
        );
        self.line("while r0__ < rend__ {");
        self.indent += 1;
        self.line(&format!("let br__ = {rowblk};"));
        self.line(&format!("let s0__ = {rp0} as i64;"));
        self.line(&format!("let s1__ = {rp1} as i64;"));
        self.line("if r0__ == s0__ && s1__ <= rend__ {");
        self.indent += 1;
        // Full strip: one block walk, one accumulator per strip row.
        self.line("let h__ = (s1__ - s0__) as usize;");
        self.line("accv__.clear();");
        self.line("for k__ in 0..h__ {");
        self.indent += 1;
        self.line(&format!("let {v0} = s0__ + k__ as i64;"));
        let idx = self.pexpr(&pr.idx);
        self.line(&format!("accv__.push({arr}[({idx}) as usize]);"));
        self.indent -= 1;
        self.line("}");
        let (blo, bhi) = (
            self.ix(&format!("{m}.bpntrb"), "br__"),
            self.ix(&format!("{m}.bpntre"), "br__"),
        );
        let bcol = self.ix(&format!("{m}.bindx"), "b__");
        let (cj0, cj1) = (
            self.ix(&format!("{m}.cpntr"), "bc__"),
            self.ix(&format!("{m}.cpntr"), "bc__ + 1"),
        );
        let base = self.ix(&format!("{m}.indx"), "b__");
        self.line(&format!("for b__ in {blo}..{bhi} {{"));
        self.indent += 1;
        self.line(&format!("let bc__ = {bcol};"));
        self.line(&format!("let cj0__ = {cj0};"));
        self.line(&format!("let w__ = {cj1} - cj0__;"));
        self.line(&format!("let bbase__ = {base};"));
        self.line("for k__ in 0..h__ {");
        self.indent += 1;
        self.line("let mut acct__ = accv__[k__];");
        self.line(&format!("let {v0} = s0__ + k__ as i64;"));
        self.line(&format!("let _ = {v0};"));
        self.line("for s__ in 0..w__ {");
        self.indent += 1;
        self.line(&format!("let {v1} = (cj0__ + s__) as i64;"));
        self.line(&format!("let _ = {v1};"));
        self.line(&format!("let {pv1} = bbase__ + k__ * w__ + s__;"));
        self.line(&format!("let _ = {pv1};"));
        if let Some(p) = self.promotion.as_mut() {
            p.reg = "acct__".into();
        }
        self.exec(&e)?;
        self.promotion = Some(pr.clone());
        self.indent -= 1;
        self.line("}");
        self.line("accv__[k__] = acct__;");
        self.indent -= 1;
        self.line("}");
        self.indent -= 1;
        self.line("}");
        self.line("for k__ in 0..h__ {");
        self.indent += 1;
        self.line(&format!("let {v0} = s0__ + k__ as i64;"));
        let idx = self.pexpr(&pr.idx);
        self.line(&format!("{arr}[({idx}) as usize] = accv__[k__];"));
        self.indent -= 1;
        self.line("}");
        self.line("r0__ = s1__;");
        self.indent -= 1;
        self.line("} else {");
        self.indent += 1;
        // A strip cut by the entry's row range: generic per-row body.
        self.line(&format!("let {v0} = r0__;"));
        self.line(&format!("let {pv0} = {v0} as usize;"));
        self.nest(1)?;
        self.line("r0__ += 1;");
        self.indent -= 1;
        self.line("}");
        self.indent -= 1;
        self.line("}");
        Ok(true)
    }

    /// `ix(&arr, i)` — the unchecked-in-release read of a format-owned
    /// array (marks the helper for inclusion in the prologue).
    fn ix(&self, arr: &str, i: &str) -> String {
        self.uses_ix.set(true);
        format!("ix(&{arr}, {i})")
    }

    /// Emits step `si`'s loop and its subtree.
    fn nest(&mut self, si: usize) -> Result<(), EmitError> {
        if si == self.plan.steps.len() {
            let inner: Vec<ExecStmt> = self
                .plan
                .execs
                .iter()
                .filter(|e| e.depth == si)
                .cloned()
                .collect();
            // Provably-disjoint single guards fuse into an if/else-if
            // chain (one comparison on the hot path), matching the
            // hand-written kernels' structure. Put the Ge-guarded (dense)
            // case first.
            let slot_only = |g: &Guard| {
                let e = match g {
                    Guard::Eq(x) | Guard::Ge(x) | Guard::Divides(x, _) => x,
                };
                e.terms.iter().all(|(a, _)| matches!(a, Atom::Slot(_)))
            };
            if inner.len() == 2
                && inner
                    .iter()
                    .all(|e| e.guards.len() == 1 && slot_only(&e.guards[0]))
                && inner
                    .iter()
                    .all(|e| e.bindings.iter().all(|(_, _, d)| *d == 1))
                && guards_disjoint(&inner[0].guards[0], &inner[1].guards[0])
            {
                let (first, second) = if matches!(inner[0].guards[0], Guard::Ge(_)) {
                    (&inner[0], &inner[1])
                } else {
                    (&inner[1], &inner[0])
                };
                self.exec_chained(first, second)?;
                return Ok(());
            }
            for e in &inner {
                self.exec(e)?;
            }
            return Ok(());
        }
        // Hoisted-before statements.
        for e in &self.plan.execs.clone() {
            if e.depth == si && !e.after {
                self.exec(e)?;
            }
        }
        let promotion_here = if si + 1 == self.plan.steps.len() {
            self.promotion.clone()
        } else {
            None
        };
        if let Some(pr) = &promotion_here {
            let idx = self.pexpr(&pr.idx);
            let arr = self.mat(&pr.array).to_string();
            self.line(&format!("let mut {} = {arr}[({idx}) as usize];", pr.reg));
            if pr.deferred_div.is_some() {
                self.line("let mut pivot__ = 0.0f64;");
                self.line("let mut has_pivot__ = false;");
            }
        }
        let step = self.plan.steps[si].clone();
        match &step.kind {
            StepKind::Interval { lo, hi } => {
                let lo = self.pexpr(lo);
                let hi = self.pexpr(hi);
                let v = slot_var(step.first_slot);
                match step.dir {
                    Dir::Fwd => self.line(&format!("for {v} in ({lo})..({hi}) {{")),
                    Dir::Rev => self.line(&format!("for {v} in (({lo})..({hi})).rev() {{")),
                }
                self.indent += 1;
                self.step_tail(si, &step)?;
                self.indent -= 1;
                self.line("}");
            }
            StepKind::Level { primary, perms } => {
                self.level_loop(si, &step, primary, perms)?;
            }
            StepKind::MergeJoin { a, b } => {
                self.merge_join(si, &step, a, b)?;
            }
        }
        if let Some(pr) = &promotion_here {
            if pr.deferred_div.is_some() {
                self.line(&format!(
                    "if has_pivot__ {{ {} = {} / pivot__; }}",
                    pr.reg, pr.reg
                ));
            }
            let idx = self.pexpr(&pr.idx);
            let arr = self.mat(&pr.array).to_string();
            self.line(&format!("{arr}[({idx}) as usize] = {};", pr.reg));
        }
        // Hoisted-after statements.
        for e in &self.plan.execs.clone() {
            if e.depth == si && e.after {
                self.exec(e)?;
            }
        }
        Ok(())
    }

    /// Sharer aliases, searches, then the deeper subtree.
    fn step_tail(&mut self, si: usize, step: &crate::plan::Step) -> Result<(), EmitError> {
        for &(rid, lev) in &step.sharers.clone() {
            let primary = match &step.kind {
                StepKind::Level { primary, .. } => primary,
                _ => return Err(EmitError("sharers on a non-level step".into())),
            };
            self.line(&format!(
                "let {} = {};",
                pos_var(rid, lev),
                pos_var(primary.ref_id, primary.level)
            ));
            self.line(&format!("let _ = {};", pos_var(rid, lev)));
        }
        for sp in &step.searches.clone() {
            self.search(sp)?;
        }
        self.nest(si + 1)
    }

    fn level_loop(
        &mut self,
        si: usize,
        step: &crate::plan::Step,
        primary: &LevelRef,
        perms: &[Option<String>],
    ) -> Result<(), EmitError> {
        let m = self.mat(&primary.matrix).to_string();
        let view_name = self.views[&primary.matrix].name.clone();
        let pv = pos_var(primary.ref_id, primary.level);
        let parent = if primary.level == 0 {
            "0usize".to_string()
        } else {
            pos_var(primary.ref_id, primary.level - 1)
        };
        let v0 = slot_var(step.first_slot);
        if step.dir == Dir::Rev {
            return Err(EmitError("reverse level enumeration not templated".into()));
        }
        // The range-splittable entry replaces the outermost row
        // enumeration's bounds with the `row_lo__..row_hi__` parameters.
        let row_range = if self.ranged && si == 0 {
            "row_lo__..row_hi__".to_string()
        } else {
            format!("0..{m}.nrows as i64")
        };
        // Most templates open a single loop; the two-level blocked
        // formats open a block loop plus a within-block loop.
        let mut opened = 1usize;
        match (template_name(&view_name), primary.chain, primary.level) {
            ("csr", 0, 0) | ("ell", 0, 0) | ("bsr", 0, 0) | ("vbr", 0, 0) => {
                self.line(&format!("for {v0} in {row_range} {{"));
                self.indent += 1;
                self.line(&format!("let {pv} = {v0} as usize;"));
            }
            ("bsr", 0, 1) => {
                // Blocked row walk: the outer loop runs over the stored
                // blocks of the parent row's block row, the inner over
                // the row's contiguous slice of each block. The block
                // shape is a compile-time literal (from the view name),
                // so LLVM fully unrolls the inner loop.
                let Some((rb, cb)) = parse_bsr(&view_name) else {
                    return Err(EmitError(format!(
                        "bsr template on non-bsr view {view_name}"
                    )));
                };
                let (blo, bhi, bcol) = (
                    self.ix(&format!("{m}.browptr"), "br__"),
                    self.ix(&format!("{m}.browptr"), "br__ + 1"),
                    self.ix(&format!("{m}.bcolind"), "b__"),
                );
                self.line(&format!("let br__ = {parent} / {rb};"));
                self.line(&format!("let rr__ = {parent} % {rb};"));
                self.line(&format!("for b__ in {blo}..{bhi} {{"));
                self.indent += 1;
                self.line(&format!("let base__ = (b__ * {rb} + rr__) * {cb};"));
                self.line(&format!("let c0__ = {bcol} * {cb};"));
                self.line(&format!("for s__ in 0..{cb} {{"));
                self.indent += 1;
                self.line(&format!("let {pv} = base__ + s__;"));
                self.line(&format!("let {v0} = (c0__ + s__) as i64;"));
                opened = 2;
            }
            ("vbr", 0, 1) => {
                // Variable block strips: block extents are runtime data
                // (`cpntr`), so the within-block trip count is hoisted
                // per block; the inner loop is a fixed-stride slice walk
                // that autovectorizes.
                let rowblk = self.ix(&format!("{m}.rowblk"), &parent);
                let rp = self.ix(&format!("{m}.rpntr"), "br__");
                let (blo, bhi) = (
                    self.ix(&format!("{m}.bpntrb"), "br__"),
                    self.ix(&format!("{m}.bpntre"), "br__"),
                );
                let bcol = self.ix(&format!("{m}.bindx"), "b__");
                let (cj0, cj1) = (
                    self.ix(&format!("{m}.cpntr"), "bc__"),
                    self.ix(&format!("{m}.cpntr"), "bc__ + 1"),
                );
                let base = self.ix(&format!("{m}.indx"), "b__");
                self.line(&format!("let br__ = {rowblk};"));
                self.line(&format!("let rr__ = {parent} - {rp};"));
                self.line(&format!("for b__ in {blo}..{bhi} {{"));
                self.indent += 1;
                self.line(&format!("let bc__ = {bcol};"));
                self.line(&format!("let cj0__ = {cj0};"));
                self.line(&format!("let w__ = {cj1} - cj0__;"));
                self.line(&format!("let base__ = {base} + rr__ * w__;"));
                self.line("for s__ in 0..w__ {");
                self.indent += 1;
                self.line(&format!("let {pv} = base__ + s__;"));
                self.line(&format!("let {v0} = (cj0__ + s__) as i64;"));
                opened = 2;
            }
            ("csr", 0, 1) => {
                self.line(&format!(
                    "for {pv} in {m}.rowptr[{parent}]..{m}.rowptr[{parent} + 1] {{"
                ));
                self.indent += 1;
                self.line(&format!("let {v0} = {m}.colind[{pv}] as i64;"));
            }
            ("csc", 0, 0) => {
                self.line(&format!("for {v0} in 0..{m}.ncols as i64 {{"));
                self.indent += 1;
                self.line(&format!("let {pv} = {v0} as usize;"));
            }
            ("csc", 0, 1) => {
                self.line(&format!(
                    "for {pv} in {m}.colptr[{parent}]..{m}.colptr[{parent} + 1] {{"
                ));
                self.indent += 1;
                self.line(&format!("let {v0} = {m}.rowind[{pv}] as i64;"));
            }
            ("coo", 0, 0) => {
                let v1 = slot_var(step.first_slot + 1);
                self.line(&format!("for {pv} in 0..{m}.values.len() {{"));
                self.indent += 1;
                self.line(&format!("let {v0} = {m}.rows[{pv}] as i64;"));
                self.line(&format!("let {v1} = {m}.cols[{pv}] as i64;"));
            }
            ("dia", 0, 0) => {
                self.line(&format!("for {pv} in 0..{m}.diags.len() {{"));
                self.indent += 1;
                self.line(&format!("let {v0} = {m}.diags[{pv}];"));
            }
            ("dia", 0, 1) => {
                // Hoist the per-diagonal bounds and strip base out of the
                // loop: the body then runs at a fixed stride over the
                // strip with no per-iteration structure reads, which is
                // what lets it autovectorize.
                let (lo, hi, base) = (
                    self.ix(&format!("{m}.lo"), &parent),
                    self.ix(&format!("{m}.hi"), &parent),
                    self.ix(&format!("{m}.ptr"), &parent),
                );
                self.line(&format!("let lo__ = {lo};"));
                self.line(&format!("let hi__ = {hi};"));
                self.line(&format!("let base__ = {base};"));
                self.line(&format!("for {v0} in lo__..hi__ {{"));
                self.indent += 1;
                self.line(&format!("let {pv} = base__ + ({v0} - lo__) as usize;"));
            }
            ("ell", 0, 1) => {
                // Fixed-stride slot walk: the row base is hoisted and the
                // column read is bounds-check-free, so the body
                // autovectorizes over the row's slots.
                let len = self.ix(&format!("{m}.rowlen"), &parent);
                let col = self.ix(&format!("{m}.colind"), &pv);
                self.line(&format!("let base__ = {parent} * {m}.width;"));
                self.line(&format!("for s__ in 0..{len} {{"));
                self.indent += 1;
                self.line(&format!("let {pv} = base__ + s__;"));
                self.line(&format!("let {v0} = {col};"));
            }
            ("jad", 0, 0) => {
                // Flat perspective: walk the jagged diagonals.
                let v1 = slot_var(step.first_slot + 1);
                self.line("let mut d__ = 0usize;");
                self.line(&format!("for {pv} in 0..{m}.values.len() {{"));
                self.indent += 1;
                self.line(&format!("while {pv} >= {m}.dptr[d__ + 1] {{ d__ += 1; }}"));
                self.line(&format!("let rr__ = {pv} - {m}.dptr[d__];"));
                self.line(&format!("let {v0} = {m}.iperm[rr__] as i64;"));
                self.line(&format!("let {v1} = {m}.colind[{pv}] as i64;"));
            }
            ("jad", 1, 0) => {
                self.line(&format!("for rr__ in 0..{m}.nrows {{"));
                self.indent += 1;
                self.line(&format!("let {pv} = rr__;"));
                if perms[0].is_some() {
                    self.line(&format!("let {v0} = {m}.iperm[rr__] as i64;"));
                } else {
                    self.line(&format!("let {v0} = rr__ as i64;"));
                }
            }
            ("jad", 1, 1) => {
                self.line(&format!("for d__ in 0..{m}.rowlen[{parent}] {{"));
                self.indent += 1;
                self.line(&format!("let {pv} = {m}.dptr[d__] + {parent};"));
                self.line(&format!("let {v0} = {m}.colind[{pv}] as i64;"));
            }
            ("dense", 0, 0) => {
                self.line(&format!("for {v0} in {row_range} {{"));
                self.indent += 1;
                self.line(&format!("let {pv} = {v0} as usize;"));
            }
            ("dense", 0, 1) => {
                self.line(&format!("for {v0} in 0..{m}.ncols as i64 {{"));
                self.indent += 1;
                self.line(&format!("let {pv} = {parent} * {m}.ncols + {v0} as usize;"));
            }
            ("diagsplit", 0, 0) => {
                self.line(&format!("for {v0} in 0..{m}.n as i64 {{"));
                self.indent += 1;
                self.line(&format!("let {pv} = {v0} as usize;"));
            }
            ("diagsplit", 1, 0) => {
                self.line(&format!("for {v0} in 0..{m}.off.nrows as i64 {{"));
                self.indent += 1;
                self.line(&format!("let {pv} = {v0} as usize;"));
            }
            ("diagsplit", 1, 1) => {
                self.line(&format!(
                    "for {pv} in {m}.off.rowptr[{parent}]..{m}.off.rowptr[{parent} + 1] {{"
                ));
                self.indent += 1;
                self.line(&format!("let {v0} = {m}.off.colind[{pv}] as i64;"));
            }
            ("spvec", 0, 0) | ("hashvec", 0, 0) => {
                self.line(&format!("for {pv} in 0..{m}.values.len() {{"));
                self.indent += 1;
                self.line(&format!("let {v0} = {m}.ind[{pv}] as i64;"));
            }
            ("sky", 0, 0) => {
                self.line(&format!("for {v0} in 0..{m}.n as i64 {{"));
                self.indent += 1;
                self.line(&format!("let {pv} = {v0} as usize;"));
            }
            ("sky", 0, 1) => {
                self.line(&format!(
                    "for {v0} in {m}.lo[{parent}] as i64..{parent} as i64 + 1 {{"
                ));
                self.indent += 1;
                self.line(&format!(
                    "let {pv} = {m}.ptr[{parent}] + ({v0} as usize - {m}.lo[{parent}]);"
                ));
            }
            other => {
                return Err(EmitError(format!("no level template for {other:?}")));
            }
        }
        self.step_tail(si, step)?;
        for _ in 0..opened {
            self.indent -= 1;
            self.line("}");
        }
        Ok(())
    }

    fn merge_join(
        &mut self,
        si: usize,
        step: &crate::plan::Step,
        a: &LevelRef,
        b: &LevelRef,
    ) -> Result<(), EmitError> {
        let (ma, mb) = (
            self.mat(&a.matrix).to_string(),
            self.mat(&b.matrix).to_string(),
        );
        let na = self.views[&a.matrix].name.clone();
        let nb = self.views[&b.matrix].name.clone();
        if (na.as_str(), a.level) != ("spvec", 0) || (nb.as_str(), b.level) != ("spvec", 0) {
            return Err(EmitError(format!(
                "merge join templated only for sorted vectors, got {na}/{nb}"
            )));
        }
        let (pa, pb) = (pos_var(a.ref_id, 0), pos_var(b.ref_id, 0));
        let v0 = slot_var(step.first_slot);
        self.line(&format!("let mut {pa} = 0usize;"));
        self.line(&format!("let mut {pb} = 0usize;"));
        self.line(&format!(
            "while {pa} < {ma}.ind.len() && {pb} < {mb}.ind.len() {{"
        ));
        self.indent += 1;
        self.line(&format!("let ka__ = {ma}.ind[{pa}];"));
        self.line(&format!("let kb__ = {mb}.ind[{pb}];"));
        self.line("if ka__ < kb__ {");
        self.indent += 1;
        self.line(&format!("{pa} += 1;"));
        self.indent -= 1;
        self.line("} else if kb__ < ka__ {");
        self.indent += 1;
        self.line(&format!("{pb} += 1;"));
        self.indent -= 1;
        self.line("} else {");
        self.indent += 1;
        self.line(&format!("let {v0} = ka__ as i64;"));
        self.line(&format!("let _ = {v0};"));
        self.step_tail(si, step)?;
        self.line(&format!("{pa} += 1;"));
        self.line(&format!("{pb} += 1;"));
        self.indent -= 1;
        self.line("}");
        self.indent -= 1;
        self.line("}");
        Ok(())
    }

    fn search(&mut self, sp: &crate::plan::SearchPart) -> Result<(), EmitError> {
        let m = self.mat(&sp.target.matrix).to_string();
        let view_name = self.views[&sp.target.matrix].name.clone();
        let rid = sp.target.ref_id;
        let lev = sp.target.level;
        let pv = pos_var(rid, lev);
        let ok = ok_var(rid, lev);
        let parent_ok = if lev == 0 || !self.ref_level_searched(rid, lev - 1) {
            "true".to_string()
        } else {
            ok_var(rid, lev - 1)
        };
        let parent = if lev == 0 {
            "0usize".to_string()
        } else {
            pos_var(rid, lev - 1)
        };

        // Key expressions (apply inverse perms).
        let mut keys = Vec::new();
        for (e, perm) in &sp.keys {
            let raw = self.pexpr(e);
            match perm {
                Some(_t) => {
                    keys.push(format!(
                        "(if ({raw}) >= 0 && (({raw}) as usize) < {m}.iperm_inv.len() {{ {m}.iperm_inv[({raw}) as usize] as i64 }} else {{ -1 }})"
                    ));
                }
                None => keys.push(raw),
            }
        }
        let k0 = keys[0].clone();

        let find = match (template_name(&view_name), sp.target.chain, lev) {
            ("bsr", 0, 0) | ("vbr", 0, 0) => format!(
                "if ({k0}) >= 0 && ({k0}) < {m}.nrows as i64 {{ Some(({k0}) as usize) }} else {{ None }}"
            ),
            ("bsr", 0, 1) | ("vbr", 0, 1) => format!(
                "if ({k0}) >= 0 {{ {m}.find({parent}, ({k0}) as usize) }} else {{ None }}"
            ),
            ("csr", 0, 0) | ("ell", 0, 0) => format!(
                "if ({k0}) >= 0 && ({k0}) < {m}.nrows as i64 {{ Some(({k0}) as usize) }} else {{ None }}"
            ),
            ("csr", 0, 1) => format!(
                "if ({k0}) >= 0 {{ {m}.find({parent}, ({k0}) as usize) }} else {{ None }}"
            ),
            ("csc", 0, 0) => format!(
                "if ({k0}) >= 0 && ({k0}) < {m}.ncols as i64 {{ Some(({k0}) as usize) }} else {{ None }}"
            ),
            ("csc", 0, 1) => format!(
                "if ({k0}) >= 0 {{ {m}.find(({k0}) as usize, {parent}) }} else {{ None }}"
            ),
            ("coo", 0, 0) => {
                let k1 = keys[1].clone();
                format!(
                    "if ({k0}) >= 0 && ({k1}) >= 0 {{ {m}.find(({k0}) as usize, ({k1}) as usize) }} else {{ None }}"
                )
            }
            ("dia", 0, 0) => format!("{m}.diags.binary_search(&({k0})).ok()"),
            ("dia", 0, 1) => format!(
                "if ({k0}) >= {m}.lo[{parent}] && ({k0}) < {m}.hi[{parent}] {{ Some({m}.ptr[{parent}] + (({k0}) - {m}.lo[{parent}]) as usize) }} else {{ None }}"
            ),
            ("ell", 0, 1) => format!(
                "if ({k0}) >= 0 {{ {m}.find({parent}, ({k0}) as usize) }} else {{ None }}"
            ),
            ("jad", 1, 0) => format!(
                "if ({k0}) >= 0 && ({k0}) < {m}.nrows as i64 {{ Some(({k0}) as usize) }} else {{ None }}"
            ),
            ("jad", 1, 1) => format!(
                "if ({k0}) >= 0 {{ {m}.find_in_row({parent}, ({k0}) as usize) }} else {{ None }}"
            ),
            ("dense", 0, 0) => format!(
                "if ({k0}) >= 0 && ({k0}) < {m}.nrows as i64 {{ Some(({k0}) as usize) }} else {{ None }}"
            ),
            ("dense", 0, 1) => format!(
                "if ({k0}) >= 0 && ({k0}) < {m}.ncols as i64 {{ Some({parent} * {m}.ncols + ({k0}) as usize) }} else {{ None }}"
            ),
            ("diagsplit", 0, 0) => format!(
                "if ({k0}) >= 0 && ({k0}) < {m}.n as i64 {{ Some(({k0}) as usize) }} else {{ None }}"
            ),
            ("diagsplit", 1, 0) => format!(
                "if ({k0}) >= 0 && ({k0}) < {m}.off.nrows as i64 {{ Some(({k0}) as usize) }} else {{ None }}"
            ),
            ("diagsplit", 1, 1) => format!(
                "if ({k0}) >= 0 {{ {m}.off.find({parent}, ({k0}) as usize) }} else {{ None }}"
            ),
            ("spvec", 0, 0) => format!(
                "if ({k0}) >= 0 {{ {m}.find(({k0}) as usize) }} else {{ None }}"
            ),
            ("hashvec", 0, 0) => format!(
                "if ({k0}) >= 0 {{ {m}.index.get(&(({k0}) as usize)).copied() }} else {{ None }}"
            ),
            ("sky", 0, 0) => format!(
                "if ({k0}) >= 0 && ({k0}) < {m}.n as i64 {{ Some(({k0}) as usize) }} else {{ None }}"
            ),
            ("sky", 0, 1) => format!(
                "if ({k0}) >= 0 {{ {m}.find({parent}, ({k0}) as usize) }} else {{ None }}"
            ),
            other => return Err(EmitError(format!("no search template for {other:?}"))),
        };

        self.line(&format!(
            "let ({ok}, {pv}) = if {parent_ok} {{ match {find} {{ Some(p__) => (true, p__), None => (false, 0usize) }} }} else {{ (false, 0usize) }};"
        ));
        self.line(&format!("let _ = ({ok}, {pv});"));
        for &(r2, l2) in &sp.sharers {
            self.line(&format!(
                "let ({}, {}) = ({ok}, {pv});",
                ok_var(r2, l2),
                pos_var(r2, l2)
            ));
            self.line(&format!(
                "let _ = ({}, {});",
                ok_var(r2, l2),
                pos_var(r2, l2)
            ));
        }
        Ok(())
    }

    fn exec(&mut self, e: &ExecStmt) -> Result<(), EmitError> {
        // Deferred pivot division: capture the divisor at the firing
        // point; the division itself runs after the inner loop.
        if let Some(pr) = self.promotion.clone() {
            if let Some(div_idx) = pr.deferred_div {
                if self.plan.execs[div_idx].stmt == e.stmt {
                    return self.exec_capture_pivot(e);
                }
            }
        }
        self.line("{");
        self.indent += 1;
        // Required-refs presence: conjunction of the ok flags of every
        // searched level of the ref (enumerated levels cannot miss).
        let mut conds: Vec<String> = Vec::new();
        for &rid in &e.required_refs {
            for lev in 0..self.plan.refs[rid].levels {
                if self.ref_level_searched(rid, lev) {
                    conds.push(ok_var(rid, lev));
                }
            }
        }
        let mut opened = 0usize;
        if !conds.is_empty() {
            self.line(&format!("if {} {{", conds.join(" && ")));
            self.indent += 1;
            opened += 1;
        }
        for (v, expr, div) in &e.bindings.clone() {
            let ex = self.pexpr(expr);
            if *div == 1 {
                self.line(&format!("let {}_ = {ex};", v.to_lowercase()));
            } else {
                self.line(&format!("if ({ex}).rem_euclid({div}) == 0 {{"));
                self.indent += 1;
                opened += 1;
                self.line(&format!(
                    "let {}_ = ({ex}).div_euclid({div});",
                    v.to_lowercase()
                ));
            }
            self.line(&format!("let _ = {}_;", v.to_lowercase()));
        }
        // Guards.
        let gs: Vec<String> = e.guards.iter().map(|g| self.guard_cond(g)).collect();
        if !gs.is_empty() {
            self.line(&format!("if {} {{", gs.join(" && ")));
            self.indent += 1;
            opened += 1;
        }
        // The statement itself.
        let mut next_access = 1usize;
        let rhs = self.value_expr(e, &e.body.rhs, &mut next_access)?;
        let lhs = self.lhs(e, &e.body.lhs)?;
        self.line(&format!("{lhs} = {rhs};"));
        for _ in 0..opened {
            self.indent -= 1;
            self.line("}");
        }
        self.indent -= 1;
        self.line("}");
        Ok(())
    }

    /// Emits two guard-disjoint statements as an if/else-if chain.
    fn exec_chained(&mut self, first: &ExecStmt, second: &ExecStmt) -> Result<(), EmitError> {
        self.exec_one(first, true)?;
        self.line("else {");
        self.indent += 1;
        self.exec(second)?;
        self.indent -= 1;
        self.line("}");
        Ok(())
    }

    /// Emits one statement; with `open_chain` the trailing brace of its
    /// guard `if` is left ready for an `else` continuation (guards are
    /// emitted as the outermost condition).
    fn exec_one(&mut self, e: &ExecStmt, open_chain: bool) -> Result<(), EmitError> {
        // Guard first (single guard, no divisor bindings assumed checked
        // by the caller via guards_disjoint preconditions).
        let mut conds: Vec<String> = Vec::new();
        for &rid in &e.required_refs {
            for lev in 0..self.plan.refs[rid].levels {
                if self.ref_level_searched(rid, lev) {
                    conds.push(ok_var(rid, lev));
                }
            }
        }
        for g in &e.guards {
            conds.push(self.guard_cond(g));
        }
        self.line(&format!("if {} {{", conds.join(" && ")));
        self.indent += 1;
        for (v, expr, div) in &e.bindings.clone() {
            let ex = self.pexpr(expr);
            if *div != 1 {
                return Err(EmitError("divisor binding in chained exec".into()));
            }
            self.line(&format!("let {}_ = {ex};", v.to_lowercase()));
            self.line(&format!("let _ = {}_;", v.to_lowercase()));
        }
        let is_deferred = self
            .promotion
            .as_ref()
            .and_then(|pr| pr.deferred_div)
            .is_some_and(|di| self.plan.execs[di].stmt == e.stmt);
        if is_deferred {
            let ValueExpr::Div(_, divisor) = &e.body.rhs else {
                return Err(EmitError("deferred division lost its shape".into()));
            };
            let mut next_access = 2usize;
            let dsrc = self.value_expr(e, divisor, &mut next_access)?;
            self.line(&format!("pivot__ = {dsrc};"));
            self.line("has_pivot__ = true;");
        } else {
            let mut next_access = 1usize;
            let rhs = self.value_expr(e, &e.body.rhs, &mut next_access)?;
            let lhs = self.lhs(e, &e.body.lhs)?;
            self.line(&format!("{lhs} = {rhs};"));
        }
        self.indent -= 1;
        // With `open_chain` the caller appends `else { ... }` right after
        // this closing brace (`}` followed by `else` on the next line is
        // valid Rust).
        self.line("}");
        let _ = open_chain;
        Ok(())
    }

    /// Emits the pivot-capture form of a deferred division statement:
    /// same guards and bindings, but the body stores the divisor.
    fn exec_capture_pivot(&mut self, e: &ExecStmt) -> Result<(), EmitError> {
        self.line("{");
        self.indent += 1;
        let mut conds: Vec<String> = Vec::new();
        for &rid in &e.required_refs {
            for lev in 0..self.plan.refs[rid].levels {
                if self.ref_level_searched(rid, lev) {
                    conds.push(ok_var(rid, lev));
                }
            }
        }
        let mut opened = 0usize;
        if !conds.is_empty() {
            self.line(&format!("if {} {{", conds.join(" && ")));
            self.indent += 1;
            opened += 1;
        }
        for (v, expr, div) in &e.bindings.clone() {
            let ex = self.pexpr(expr);
            debug_assert_eq!(*div, 1);
            self.line(&format!("let {}_ = {ex};", v.to_lowercase()));
            self.line(&format!("let _ = {}_;", v.to_lowercase()));
        }
        let gs: Vec<String> = e.guards.iter().map(|g| self.guard_cond(g)).collect();
        if !gs.is_empty() {
            self.line(&format!("if {} {{", gs.join(" && ")));
            self.indent += 1;
            opened += 1;
        }
        let ValueExpr::Div(_, divisor) = &e.body.rhs else {
            return Err(EmitError("deferred division lost its shape".into()));
        };
        let mut next_access = 1usize;
        // Skip the accumulator read's access slot (it is the Div's lhs).
        next_access += 1;
        let dsrc = self.value_expr(e, divisor, &mut next_access)?;
        self.line(&format!("pivot__ = {dsrc};"));
        self.line("has_pivot__ = true;");
        for _ in 0..opened {
            self.indent -= 1;
            self.line("}");
        }
        self.indent -= 1;
        self.line("}");
        Ok(())
    }

    /// Was (ref, level) positioned by a search (may miss) rather than an
    /// enumeration?
    fn ref_level_searched(&self, rid: usize, lev: usize) -> bool {
        self.plan.steps.iter().any(|s| {
            s.searches.iter().any(|sp| {
                (sp.target.ref_id == rid && sp.target.level == lev)
                    || sp.sharers.contains(&(rid, lev))
            })
        })
    }

    fn lhs(&mut self, e: &ExecStmt, r: &LhsRef) -> Result<String, EmitError> {
        match &e.sources[0] {
            None => {
                if let Some(reg) = self.promoted_elem(e, r) {
                    return Ok(reg);
                }
                let idx = self.affine(&r.idxs[0]);
                Ok(format!("{}[({idx}) as usize]", self.mat(&r.array)))
            }
            Some(_) => Err(EmitError(
                "sparse writes are not supported by the emitter".into(),
            )),
        }
    }

    /// If `r` is the promoted element for this (full-depth) exec, the
    /// register name.
    fn promoted_elem(&self, e: &ExecStmt, r: &LhsRef) -> Option<String> {
        let pr = self.promotion.as_ref()?;
        if e.depth != self.plan.steps.len() || r.array != pr.array {
            return None;
        }
        let ridx = subst_index(e, &r.idxs[0], &self.p.params)?;
        pexpr_eq(&ridx, &pr.idx).then(|| pr.reg.clone())
    }

    fn value_expr(
        &mut self,
        e: &ExecStmt,
        v: &ValueExpr,
        next_access: &mut usize,
    ) -> Result<String, EmitError> {
        Ok(match v {
            ValueExpr::Const(c) => {
                if c.fract() == 0.0 && c.abs() < 1e15 {
                    format!("{:.1}", c)
                } else {
                    format!("{c:?}")
                }
            }
            ValueExpr::Read(r) => {
                let access = *next_access;
                *next_access += 1;
                match e.sources.get(access).and_then(|s| s.as_ref()) {
                    Some(ValueSource::Position { ref_id }) => {
                        let meta = &self.plan.refs[*ref_id];
                        let pv = pos_var(*ref_id, meta.levels - 1);
                        self.value_at(&meta.matrix.clone(), *ref_id, &pv)?
                    }
                    Some(ValueSource::Random { ref_id }) => {
                        let meta = &self.plan.refs[*ref_id];
                        let m = self.mat(&meta.matrix).to_string();
                        let rr = self.affine(&r.idxs[0]);
                        let cc = if r.idxs.len() > 1 {
                            self.affine(&r.idxs[1])
                        } else {
                            "0".to_string()
                        };
                        format!("{m}.get(({rr}) as usize, ({cc}) as usize)")
                    }
                    None => {
                        if let Some(reg) = self.promoted_elem(e, r) {
                            reg
                        } else {
                            let idx = self.affine(&r.idxs[0]);
                            format!("{}[({idx}) as usize]", self.mat(&r.array))
                        }
                    }
                }
            }
            ValueExpr::Add(a, b) => format!(
                "({} + {})",
                self.value_expr(e, a, next_access)?,
                self.value_expr(e, b, next_access)?
            ),
            ValueExpr::Sub(a, b) => format!(
                "({} - {})",
                self.value_expr(e, a, next_access)?,
                self.value_expr(e, b, next_access)?
            ),
            ValueExpr::Mul(a, b) => format!(
                "({} * {})",
                self.value_expr(e, a, next_access)?,
                self.value_expr(e, b, next_access)?
            ),
            ValueExpr::Div(a, b) => format!(
                "({} / {})",
                self.value_expr(e, a, next_access)?,
                self.value_expr(e, b, next_access)?
            ),
            ValueExpr::Neg(a) => format!("(-{})", self.value_expr(e, a, next_access)?),
        })
    }

    /// The value expression at a position of a ref's chain.
    fn value_at(&self, matrix: &str, rid: usize, pv: &str) -> Result<String, EmitError> {
        let m = self.mat(matrix);
        let view_name = &self.views[matrix].name;
        let chain = self.plan.refs[rid].chain;
        Ok(match (view_name.as_str(), chain) {
            ("dense", _) => self.ix(&format!("{m}.data"), pv),
            ("diagsplit", 0) => self.ix(&format!("{m}.diag"), pv),
            ("diagsplit", 1) => self.ix(&format!("{m}.off.values"), pv),
            ("vbr", _) => self.ix(&format!("{m}.val"), pv),
            _ => self.ix(&format!("{m}.values"), pv),
        })
    }

    /// PExpr → Rust i64 expression.
    /// A guard as a Rust boolean expression, printed in *two-sided*
    /// comparison form: `v0 > v1` rather than `(v0 - v1 - 1) >= 0`.
    ///
    /// The single-sided form forces a wrapped i64 subtraction chain the
    /// optimizer must keep (signed `a - b` may wrap, so `a - b - 1 >= 0`
    /// cannot legally be folded to `a > b` after the fact); moving the
    /// negative terms across the comparison here is sound because every
    /// atom is a loop index or size parameter derived from an in-memory
    /// array extent, far below the i64 overflow boundary. Measured ~20%
    /// on the triangular-solve inner loop, whose lower/diagonal split is
    /// guard-driven.
    fn guard_cond(&self, g: &Guard) -> String {
        let (op, x) = match g {
            Guard::Eq(x) => ("==", x),
            Guard::Ge(x) => (">=", x),
            Guard::Divides(x, d) => {
                return format!("({}).rem_euclid({d}) == 0", self.pexpr(x));
            }
        };
        let mut lhs = PExpr {
            terms: Vec::new(),
            cst: 0,
        };
        let mut rhs = PExpr {
            terms: Vec::new(),
            cst: 0,
        };
        for (a, c) in &x.terms {
            if *c > 0 {
                lhs.terms.push((a.clone(), *c));
            } else {
                rhs.terms.push((a.clone(), -*c));
            }
        }
        // `lhs - rhs - 1 >= 0` is exactly `lhs > rhs`.
        let op = if op == ">=" && x.cst == -1 && !lhs.terms.is_empty() {
            ">"
        } else {
            if x.cst > 0 {
                lhs.cst = x.cst;
            } else {
                rhs.cst = -x.cst;
            }
            op
        };
        format!("{} {op} {}", self.pexpr(&lhs), self.pexpr(&rhs))
    }

    fn pexpr(&self, e: &PExpr) -> String {
        let mut parts: Vec<String> = Vec::new();
        for (a, c) in &e.terms {
            let name = match a {
                Atom::Slot(i) => slot_var(*i),
                Atom::Var(n) => format!("{}_", n.to_lowercase()),
            };
            match *c {
                1 => parts.push(name),
                -1 => parts.push(format!("-{name}")),
                c => parts.push(format!("{c} * {name}")),
            }
        }
        if e.cst != 0 || parts.is_empty() {
            parts.push(format!("{}", e.cst));
        }
        parts.join(" + ").replace("+ -", "- ")
    }

    /// AffineExpr (over loop vars / params) → Rust i64 expression.
    fn affine(&self, e: &bernoulli_ir::AffineExpr) -> String {
        let mut parts: Vec<String> = Vec::new();
        for (v, c) in e.terms() {
            let name = format!("{}_", v.to_lowercase());
            match c {
                1 => parts.push(name),
                -1 => parts.push(format!("-{name}")),
                c => parts.push(format!("{c} * {name}")),
            }
        }
        if e.cst() != 0 || parts.is_empty() {
            parts.push(format!("{}", e.cst()));
        }
        parts.join(" + ").replace("+ -", "- ")
    }
}

fn slot_var(i: usize) -> String {
    format!("v{i}")
}

fn pos_var(rid: usize, lev: usize) -> String {
    format!("p{rid}_{lev}")
}

fn ok_var(rid: usize, lev: usize) -> String {
    format!("ok{rid}_{lev}")
}

/// Emits a complete module: header comment, imports, and one function.
pub fn emit_module(
    p: &Program,
    plan: &Plan,
    views: &HashMap<String, FormatView>,
    fn_name: &str,
) -> Result<String, EmitError> {
    let body = emit_rust(p, plan, views, fn_name)?;
    let needs_random = plan.execs.iter().any(|e| {
        e.sources
            .iter()
            .any(|s| matches!(s, Some(ValueSource::Random { .. })))
    });
    let mut used_types: Vec<String> = Vec::new();
    for a in &p.arrays {
        if let Some(v) = views.get(&a.name) {
            let ty = rust_type(&v.name)?;
            let base = ty.split('<').next().unwrap_or(ty).to_string();
            if !used_types.contains(&base) {
                used_types.push(base);
            }
        }
    }
    let mut out = String::new();
    out.push_str("// GENERATED by bernoulli-synth — do not edit by hand.\n");
    out.push_str("// Regenerated and checked by the kernel fidelity tests in bernoulli-blas.\n");
    if !used_types.is_empty() {
        let _ = writeln!(out, "use bernoulli_formats::{{{}}};", used_types.join(", "));
    }
    if needs_random {
        out.push_str("#[allow(unused_imports)]\nuse bernoulli_formats::SparseMatrix as _;\n");
    }
    out.push('\n');
    out.push_str(&body);
    Ok(out)
}
