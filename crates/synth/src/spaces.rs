//! Product spaces: dimensions and candidate dimension orders.
//!
//! The product space of a configuration has one dimension per sparse data
//! dimension of every reference and one per loop of every statement copy
//! (paper §3.1). The order of dimensions is the enumeration order of the
//! generated code; the heuristics of §4.3 restrict candidate orders to:
//!
//! - **data-centric** orders (all data dimensions before all iteration
//!   dimensions), and
//! - orders compatible with each format's **index structure** (a chain's
//!   outer level must be enumerated before its inner level).
//!
//! Data dimensions referring to the same coordinate of the same matrix
//! are kept adjacent (*clusters*), which is what later allows them to be
//! fused into a common enumeration.

use crate::config::Config;
use std::collections::HashMap;

/// What a product-space dimension stands for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DimKind {
    /// Data dimension `dim_idx` of reference `ref_id`.
    Data { ref_id: usize, dim_idx: usize },
    /// Loop `loop_idx` (outermost = 0) of statement copy `stmt`.
    Iter { stmt: usize, loop_idx: usize },
}

/// One dimension of the product space.
#[derive(Clone, Debug)]
pub struct Dim {
    /// Display name, e.g. `L0.r` (data) or `j@1` (iteration).
    pub name: String,
    pub kind: DimKind,
}

/// An ordered product space.
#[derive(Clone, Debug)]
pub struct Space {
    /// Dimensions in enumeration order (outermost first).
    pub dims: Vec<Dim>,
}

impl Space {
    /// Number of dimensions.
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// True when the space has no dimensions.
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// Dimension names joined for display.
    pub fn describe(&self) -> String {
        self.dims
            .iter()
            .map(|d| d.name.as_str())
            .collect::<Vec<_>>()
            .join(" × ")
    }
}

/// All dimensions of a configuration, unordered: data dims in reference
/// order, then iteration dims in statement order.
pub fn all_dims(cfg: &Config) -> Vec<Dim> {
    let mut out = Vec::new();
    for r in &cfg.refs {
        for (k, d) in r.dims.iter().enumerate() {
            out.push(Dim {
                name: format!("{}{}.{}", r.matrix, r.id, d.attr),
                kind: DimKind::Data {
                    ref_id: r.id,
                    dim_idx: k,
                },
            });
        }
    }
    for (si, s) in cfg.stmts.iter().enumerate() {
        for (li, (v, _, _)) in s.info.loops.iter().enumerate() {
            out.push(Dim {
                name: format!("{v}@{si}"),
                kind: DimKind::Iter {
                    stmt: si,
                    loop_idx: li,
                },
            });
        }
    }
    out
}

/// Candidate dimension orders for a configuration.
///
/// Data dimensions are clustered by `(matrix, value attribute)`; cluster
/// orders are all topological permutations respecting each chain's level
/// nesting, capped at `max_orders`. Iteration dimensions follow in
/// statement order (data-centric heuristic). When
/// `include_iteration_centric` is set, one extra order per configuration
/// puts iteration dimensions first — the deliberately naive baseline used
/// by the ablation experiments.
pub fn candidate_spaces(
    cfg: &Config,
    max_orders: usize,
    include_iteration_centric: bool,
) -> Vec<Space> {
    candidate_spaces_opt(cfg, max_orders, include_iteration_centric, false)
}

/// Like [`candidate_spaces`], with `unconstrained = true` dropping the
/// chain-nesting precedence between clusters — the fallback used when no
/// structure-respecting order yields a legal plan (e.g. triangular solve
/// on DIA needs the offset/column cluster *before* the diagonal cluster,
/// enumerable via interval + search).
pub fn candidate_spaces_opt(
    cfg: &Config,
    max_orders: usize,
    include_iteration_centric: bool,
    unconstrained: bool,
) -> Vec<Space> {
    let dims = all_dims(cfg);

    // Cluster data dims by (matrix, dense image): dimensions standing for
    // the same dense coordinate of the same matrix cluster together even
    // across different chains (a diagonal chain's `i` clusters with a CSR
    // chain's `r`). Non-affine dims (under a perm, the post-perm value is
    // itself dense, so this is rare) fall back to the attr name.
    let mut cluster_index: HashMap<(String, String), usize> = HashMap::new();
    let mut clusters: Vec<Vec<usize>> = Vec::new(); // dim indices
    let mut iter_dims: Vec<usize> = Vec::new();
    for (i, d) in dims.iter().enumerate() {
        match d.kind {
            DimKind::Data { ref_id, dim_idx } => {
                let r = &cfg.refs[ref_id];
                let image = crate::config::dim_value_in_dense(r, dim_idx)
                    .map(|e| e.to_string())
                    .unwrap_or_else(|| r.dims[dim_idx].attr.clone());
                let key = (r.matrix.clone(), image);
                let ci = *cluster_index.entry(key).or_insert_with(|| {
                    clusters.push(Vec::new());
                    clusters.len() - 1
                });
                clusters[ci].push(i);
            }
            DimKind::Iter { .. } => iter_dims.push(i),
        }
    }

    // Precedence between clusters: for each reference, the cluster of its
    // dim k precedes the cluster of its dim k+1.
    let nclusters = clusters.len();
    let mut prec: Vec<Vec<bool>> = vec![vec![false; nclusters]; nclusters];
    // Every dim is in exactly one cluster by construction; a miss here
    // (or a missing successor dim) just contributes no precedence edge.
    let cluster_of = |dim_i: usize| clusters.iter().position(|c| c.contains(&dim_i));
    for (i, d) in dims.iter().enumerate() {
        if let DimKind::Data { ref_id, dim_idx } = d.kind {
            if dim_idx + 1 < cfg.refs[ref_id].dims.len() {
                // find dim index of the next dim of same ref
                let next = dims.iter().position(|d2| {
                    matches!(d2.kind, DimKind::Data { ref_id: r2, dim_idx: k2 }
                        if r2 == ref_id && k2 == dim_idx + 1)
                });
                if let (Some(a), Some(b)) = (cluster_of(i), next.and_then(cluster_of)) {
                    if a != b {
                        prec[a][b] = true;
                    }
                }
            }
        }
    }

    if unconstrained {
        for row in prec.iter_mut() {
            for x in row.iter_mut() {
                *x = false;
            }
        }
    }

    // Enumerate topological permutations of clusters.
    let mut orders: Vec<Vec<usize>> = Vec::new();
    let mut cur: Vec<usize> = Vec::new();
    let mut used = vec![false; nclusters];
    topo_perms(&prec, &mut used, &mut cur, &mut orders, max_orders);

    let mut out = Vec::new();
    for order in &orders {
        let mut v: Vec<Dim> = Vec::with_capacity(dims.len());
        for &ci in order {
            for &di in &clusters[ci] {
                v.push(dims[di].clone());
            }
        }
        for &ii in &iter_dims {
            v.push(dims[ii].clone());
        }
        out.push(Space { dims: v });
    }

    if include_iteration_centric {
        // Iteration dims first, then data clusters in the first
        // topological order.
        if let Some(order) = orders.first() {
            let mut v: Vec<Dim> = Vec::with_capacity(dims.len());
            for &ii in &iter_dims {
                v.push(dims[ii].clone());
            }
            for &ci in order {
                for &di in &clusters[ci] {
                    v.push(dims[di].clone());
                }
            }
            out.push(Space { dims: v });
        } else {
            // No data dims at all: the single iteration order.
            out.push(Space {
                dims: iter_dims.iter().map(|&i| dims[i].clone()).collect(),
            });
        }
    }
    if out.is_empty() {
        out.push(Space {
            dims: iter_dims.iter().map(|&i| dims[i].clone()).collect(),
        });
    }
    out
}

fn topo_perms(
    prec: &[Vec<bool>],
    used: &mut Vec<bool>,
    cur: &mut Vec<usize>,
    out: &mut Vec<Vec<usize>>,
    cap: usize,
) {
    let n = prec.len();
    if out.len() >= cap {
        return;
    }
    if cur.len() == n {
        out.push(cur.clone());
        return;
    }
    for c in 0..n {
        if used[c] {
            continue;
        }
        // All predecessors of c must already be placed.
        if (0..n).any(|p| prec[p][c] && !used[p]) {
            continue;
        }
        used[c] = true;
        cur.push(c);
        topo_perms(prec, used, cur, out, cap);
        cur.pop();
        used[c] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::enumerate_configs;
    use bernoulli_formats::formats::csr::csr_format_view;
    use bernoulli_ir::parse_program;
    use std::collections::HashMap;

    const TS: &str = r#"
        program ts(N) {
          in matrix L[N][N];
          inout vector b[N];
          for j in 0..N {
            b[j] = b[j] / L[j][j];
            for i in j+1..N {
              b[i] = b[i] - L[i][j] * b[j];
            }
          }
        }
    "#;

    fn ts_config() -> Config {
        let p = parse_program(TS).unwrap();
        let mut views = HashMap::new();
        views.insert("L".to_string(), csr_format_view());
        enumerate_configs(&p, &views).unwrap().remove(0)
    }

    #[test]
    fn seven_dims_like_the_paper() {
        // The paper's TS product space has 7 dimensions:
        // l1r, l1c, l2r, l2c, j1, j2, i2.
        let cfg = ts_config();
        let dims = all_dims(&cfg);
        assert_eq!(dims.len(), 7);
        let names: Vec<&str> = dims.iter().map(|d| d.name.as_str()).collect();
        assert!(names.contains(&"L0.r"));
        assert!(names.contains(&"L1.c"));
        assert!(names.contains(&"j@0"));
        assert!(names.contains(&"i@1"));
    }

    #[test]
    fn data_centric_orders() {
        let cfg = ts_config();
        let spaces = candidate_spaces(&cfg, 16, false);
        // Clusters: (L, r) and (L, c); r must precede c (CSR nesting), so
        // exactly one topological order.
        assert_eq!(spaces.len(), 1);
        let s = &spaces[0];
        assert_eq!(s.len(), 7);
        // Data dims first (data-centric), rows before cols.
        assert_eq!(s.dims[0].name, "L0.r");
        assert_eq!(s.dims[1].name, "L1.r");
        assert_eq!(s.dims[2].name, "L0.c");
        assert_eq!(s.dims[3].name, "L1.c");
        assert!(matches!(s.dims[4].kind, DimKind::Iter { .. }));
    }

    #[test]
    fn iteration_centric_appended() {
        let cfg = ts_config();
        let spaces = candidate_spaces(&cfg, 16, true);
        assert_eq!(spaces.len(), 2);
        let naive = &spaces[1];
        assert!(matches!(naive.dims[0].kind, DimKind::Iter { .. }));
        assert!(naive.describe().starts_with("j@0"));
    }

    #[test]
    fn no_sparse_dims_still_yields_a_space() {
        let p = parse_program(
            "program scale(N) { inout vector x[N]; for i in 0..N { x[i] = x[i] * 2; } }",
        )
        .unwrap();
        let cfg = enumerate_configs(&p, &HashMap::new()).unwrap().remove(0);
        let spaces = candidate_spaces(&cfg, 8, false);
        assert_eq!(spaces.len(), 1);
        assert_eq!(spaces[0].len(), 1);
        assert_eq!(spaces[0].dims[0].name, "i@0");
    }
}
