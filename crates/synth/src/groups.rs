//! Redundant dimensions and common-enumeration groups (paper §4.1).
//!
//! A dimension is *redundant* when its row of the `G` matrix — the linear
//! parts of all embedding functions side by side (Fig. 7), here extended
//! with per-statement parameter and constant columns so affine parts are
//! handled too — is a linear combination of the rows of the dimensions
//! enumerated before it. Redundant dimensions need no runtime value:
//! their match conditions are implied by the preceding ones.
//!
//! Dimensions with *identical* embedding expressions for every statement
//! always hold the same value; consecutive runs of such dimensions form a
//! **group** enumerated by a single loop — the trivial common enumeration
//! (e.g. `l1r` and `l2r` of the paper's example). Groups whose leader is
//! redundant are skipped entirely.

use crate::config::Config;
use crate::embed::Embedding;
use crate::spaces::Space;
use bernoulli_numeric::{Rational, RowSpace};

/// Group structure of an ordered, embedded product space.
#[derive(Clone, Debug)]
pub struct GroupInfo {
    /// Per dimension: is it redundant (determined by earlier dims)?
    pub redundant: Vec<bool>,
    /// Same-value groups in dimension order; each is a list of dimension
    /// indices, leader (first, lowest index) first.
    pub groups: Vec<Vec<usize>>,
    /// Per dimension: index of its group in `groups`.
    pub group_of: Vec<usize>,
}

impl GroupInfo {
    /// Groups that require a runtime enumeration step (leader
    /// non-redundant), in order.
    pub fn stepped_groups(&self) -> Vec<usize> {
        self.groups
            .iter()
            .enumerate()
            .filter(|(_, g)| !self.redundant[g[0]])
            .map(|(i, _)| i)
            .collect()
    }
}

/// Computes redundancy flags and same-value groups.
pub fn compute_groups(cfg: &Config, space: &Space, emb: &Embedding) -> GroupInfo {
    let nstmts = cfg.stmts.len();
    // Column layout: for each statement copy k: [its loop vars..., the
    // program params..., 1].  Parameters are duplicated per statement so
    // that a shared multiplier λ must match every statement's affine part
    // independently.
    let params: Vec<String> = collect_params(cfg);
    let mut col_offset = Vec::with_capacity(nstmts);
    let mut total = 0usize;
    for s in &cfg.stmts {
        col_offset.push(total);
        total += s.info.loops.len() + params.len() + 1;
    }

    let row_of = |p: usize| -> Vec<Rational> {
        let mut row = vec![Rational::ZERO; total];
        for (k, s) in cfg.stmts.iter().enumerate() {
            let e = emb.at(k, p);
            let base = col_offset[k];
            for (li, (v, _, _)) in s.info.loops.iter().enumerate() {
                row[base + li] = Rational::int(e.coeff(v) as i128);
            }
            for (pi, pn) in params.iter().enumerate() {
                row[base + s.info.loops.len() + pi] = Rational::int(e.coeff(pn) as i128);
            }
            row[base + s.info.loops.len() + params.len()] = Rational::int(e.cst() as i128);
        }
        row
    };

    let ndims = space.len();
    let mut redundant = vec![false; ndims];
    let mut rs = RowSpace::new(total);
    for p in 0..ndims {
        redundant[p] = !rs.insert(&row_of(p));
    }
    bernoulli_trace::counter!("synth.dims_examined", ndims);
    bernoulli_trace::counter!(
        "synth.dims_eliminated",
        redundant.iter().filter(|&&r| r).count()
    );

    // Same-value groups: maximal consecutive runs with identical
    // embedding expressions across all statements.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut group_of = vec![0usize; ndims];
    for p in 0..ndims {
        let ngroups = groups.len();
        match groups.last_mut() {
            Some(g) if (0..nstmts).all(|k| emb.at(k, p) == emb.at(k, g[0])) => {
                group_of[p] = ngroups - 1;
                g.push(p);
            }
            _ => {
                group_of[p] = ngroups;
                groups.push(vec![p]);
            }
        }
    }

    let info = GroupInfo {
        redundant,
        groups,
        group_of,
    };
    bernoulli_trace::counter!("synth.enum_groups", info.groups.len());
    bernoulli_trace::counter!("synth.enum_groups_stepped", info.stepped_groups().len());
    info
}

fn collect_params(cfg: &Config) -> Vec<String> {
    // Parameters are whatever variables appear in embeddings that are not
    // loop variables; gather from the loop bound expressions instead — we
    // simply take the union of non-loop variables across bounds and
    // access expressions.
    let mut params: Vec<String> = Vec::new();
    let mut push = |v: &str, loops: &[String]| {
        if !loops.iter().any(|l| l == v) && !params.iter().any(|p| p == v) {
            params.push(v.to_string());
        }
    };
    for s in &cfg.stmts {
        let loops: Vec<String> = s.info.loops.iter().map(|(v, _, _)| v.clone()).collect();
        for (_, lo, hi) in &s.info.loops {
            for (v, _) in lo.terms().chain(hi.terms()) {
                push(v, &loops);
            }
        }
    }
    for r in &cfg.refs {
        let loops: Vec<String> = cfg.stmts[r.stmt]
            .info
            .loops
            .iter()
            .map(|(v, _, _)| v.clone())
            .collect();
        for d in &r.dims {
            for (v, _) in d.value.terms() {
                push(v, &loops);
            }
        }
    }
    params
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::enumerate_configs;
    use crate::embed::base_embedding;
    use crate::spaces::candidate_spaces;
    use bernoulli_formats::formats::csr::csr_format_view;
    use bernoulli_ir::parse_program;
    use std::collections::HashMap;

    const TS: &str = r#"
        program ts(N) {
          in matrix L[N][N];
          inout vector b[N];
          for j in 0..N {
            b[j] = b[j] / L[j][j];
            for i in j+1..N {
              b[i] = b[i] - L[i][j] * b[j];
            }
          }
        }
    "#;

    #[test]
    fn ts_redundancy_matches_paper() {
        // The paper (§4.1): with this order and embedding, only the first
        // row dimension and the first column dimension are non-redundant.
        let p = parse_program(TS).unwrap();
        let mut views = HashMap::new();
        views.insert("L".to_string(), csr_format_view());
        let cfg = enumerate_configs(&p, &views).unwrap().remove(0);
        let space = candidate_spaces(&cfg, 4, false).remove(0);
        // dims: L0.r, L1.r, L0.c, L1.c, j@0, j@1, i@1
        let emb = base_embedding(&cfg, &space);
        let g = compute_groups(&cfg, &space, &emb);
        assert_eq!(
            g.redundant,
            vec![false, true, false, true, true, true, true]
        );
        // Groups: {L0.r, L1.r}, {L0.c, L1.c, j@0, j@1}, {i@1}.
        assert_eq!(g.groups.len(), 3);
        assert_eq!(g.groups[0], vec![0, 1]);
        assert_eq!(g.groups[1], vec![2, 3, 4, 5]);
        assert_eq!(g.groups[2], vec![6]);
        // Steps: the two leader groups; i@1's group leader is redundant.
        assert_eq!(g.stepped_groups(), vec![0, 1]);
    }

    #[test]
    fn dense_loop_program_groups() {
        let p = parse_program(
            "program scale(N) { inout vector x[N]; for i in 0..N { x[i] = x[i] * 2; } }",
        )
        .unwrap();
        let cfg = enumerate_configs(&p, &HashMap::new()).unwrap().remove(0);
        let space = candidate_spaces(&cfg, 4, false).remove(0);
        let emb = base_embedding(&cfg, &space);
        let g = compute_groups(&cfg, &space, &emb);
        assert_eq!(g.redundant, vec![false]);
        assert_eq!(g.stepped_groups(), vec![0]);
    }
}
