//! Plan interpreter: executes an enumeration-based plan against real
//! formats through the dynamic cursor API.
//!
//! This gives every synthesized plan an executable semantics without
//! compiling generated source — the integration tests compare it against
//! the dense reference executor. The statically-specialized equivalent is
//! what [`crate::emit`] produces.

use crate::plan::{Dir, Guard, Plan, StepKind, ValueSource};
use bernoulli_formats::{Position, SparseView};
use bernoulli_ir::ValueExpr;
use std::collections::HashMap;

/// Runtime error during plan execution.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanError(pub String);

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "plan execution error: {}", self.0)
    }
}

impl std::error::Error for PlanError {}

/// Execution environment for plans: parameters, dense vectors (owned) and
/// sparse matrices (borrowed through the dynamic low-level API).
#[derive(Default)]
pub struct ExecEnv<'m> {
    pub params: HashMap<String, i64>,
    pub vectors: HashMap<String, Vec<f64>>,
    pub sparse: HashMap<String, &'m dyn SparseView>,
}

impl<'m> ExecEnv<'m> {
    /// Creates an empty environment.
    pub fn new() -> ExecEnv<'m> {
        ExecEnv::default()
    }

    /// Binds a size parameter.
    pub fn set_param(&mut self, name: &str, v: i64) -> &mut Self {
        self.params.insert(name.to_string(), v);
        self
    }

    /// Binds (moves in) a dense vector.
    pub fn bind_vec(&mut self, name: &str, v: Vec<f64>) -> &mut Self {
        self.vectors.insert(name.to_string(), v);
        self
    }

    /// Binds a sparse matrix by reference.
    pub fn bind_sparse(&mut self, name: &str, m: &'m dyn SparseView) -> &mut Self {
        self.sparse.insert(name.to_string(), m);
        self
    }

    /// Removes and returns a vector (typically the output).
    ///
    /// # Panics
    /// Panics if the vector was never bound (or already taken); use
    /// [`ExecEnv::try_take_vec`] to recover instead.
    pub fn take_vec(&mut self, name: &str) -> Vec<f64> {
        match self.try_take_vec(name) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Removes and returns a vector, reporting an unbound name as a
    /// [`PlanError`] instead of panicking.
    pub fn try_take_vec(&mut self, name: &str) -> Result<Vec<f64>, PlanError> {
        self.vectors
            .remove(name)
            .ok_or_else(|| PlanError(format!("vector {name:?} not bound")))
    }
}

struct Runtime<'p, 'm, 'e> {
    plan: &'p Plan,
    env: &'e mut ExecEnv<'m>,
    slots: Vec<i64>,
    /// (ref, level) -> position
    pos: HashMap<(usize, usize), Position>,
    /// per ref: the step index at which its position went missing, if any
    /// (scoped: re-running a step's searches clears misses recorded at
    /// that step or deeper).
    missing_at: Vec<Option<usize>>,
    /// cached param map for PExpr evaluation
    params: HashMap<String, i64>,
    stats: RunStats,
}

/// Counters accumulated during interpretation (used by the cost-model
/// validation experiment).
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct RunStats {
    /// Loop iterations across all steps.
    pub iterations: u64,
    /// Searches performed.
    pub searches: u64,
    /// Statement instances executed.
    pub executions: u64,
    /// Guard evaluations that failed.
    pub guard_misses: u64,
}

/// Runs a plan to completion against the environment.
pub fn run_plan(plan: &Plan, env: &mut ExecEnv) -> Result<RunStats, PlanError> {
    let params = env.params.clone();
    let mut rt = Runtime {
        plan,
        env,
        slots: vec![0; plan.nslots],
        pos: HashMap::new(),
        missing_at: vec![None; plan.refs.len()],
        params,
        stats: RunStats::default(),
    };
    rt.run_step(0)?;
    Ok(rt.stats)
}

impl Runtime<'_, '_, '_> {
    fn view(&self, matrix: &str) -> Result<&dyn SparseView, PlanError> {
        self.env
            .sparse
            .get(matrix)
            .copied()
            .ok_or_else(|| PlanError(format!("matrix {matrix:?} not bound")))
    }

    fn run_step(&mut self, si: usize) -> Result<(), PlanError> {
        if si == self.plan.steps.len() {
            return self.run_execs_at(si, true);
        }
        // Misses recorded at this step or deeper are stale leftovers from
        // a previous sibling subtree; only outer-scope misses persist.
        for m in self.missing_at.iter_mut() {
            if matches!(*m, Some(d) if d >= si) {
                *m = None;
            }
        }
        // Hoisted statements placed *before* the deeper enumeration.
        self.run_execs_at(si, false)?;
        let step = &self.plan.steps[si];
        match &step.kind {
            StepKind::Interval { lo, hi } => {
                let lo = lo.eval(&self.slots, &self.params);
                let hi = hi.eval(&self.slots, &self.params);
                let range: Vec<i64> = match step.dir {
                    Dir::Fwd => (lo..hi).collect(),
                    Dir::Rev => (lo..hi).rev().collect(),
                };
                for v in range {
                    self.stats.iterations += 1;
                    self.slots[step.first_slot] = v;
                    self.do_searches(si)?;
                    self.run_step(si + 1)?;
                }
            }
            StepKind::Level { primary, perms } => {
                let parent = if primary.level == 0 {
                    0
                } else {
                    match self.pos.get(&(primary.ref_id, primary.level - 1)) {
                        Some(&p) => p,
                        None => {
                            return Err(PlanError(format!(
                                "primary {primary} has no parent position"
                            )))
                        }
                    }
                };
                if self.missing_at[primary.ref_id].is_some() {
                    // Lowering guarantees this is only reachable when every
                    // statement requires the primary; skipping is sound.
                    return Ok(());
                }
                let view = self.view(&primary.matrix)?;
                let mut cur =
                    view.cursor(primary.chain, primary.level, parent, step.dir == Dir::Rev);
                // We cannot hold `view` across the mutable recursion;
                // re-fetch inside the loop.
                loop {
                    let view = self.view(&primary.matrix)?;
                    if !view.advance(&mut cur) {
                        break;
                    }
                    self.stats.iterations += 1;
                    for (s, perm) in perms.iter().enumerate() {
                        let raw = cur.keys[s];
                        let value = match perm {
                            Some(t) => self.view(&primary.matrix)?.perm_apply(t, raw),
                            None => raw,
                        };
                        self.slots[step.first_slot + s] = value;
                    }
                    self.pos.insert((primary.ref_id, primary.level), cur.pos);
                    for &(rid, lev) in &step.sharers {
                        self.pos.insert((rid, lev), cur.pos);
                    }
                    self.do_searches(si)?;
                    self.run_step(si + 1)?;
                }
            }
            StepKind::MergeJoin { a, b } => {
                let pa = if a.level == 0 {
                    0
                } else {
                    *self
                        .pos
                        .get(&(a.ref_id, a.level - 1))
                        .ok_or_else(|| PlanError(format!("{a} has no parent position")))?
                };
                let pb = if b.level == 0 {
                    0
                } else {
                    *self
                        .pos
                        .get(&(b.ref_id, b.level - 1))
                        .ok_or_else(|| PlanError(format!("{b} has no parent position")))?
                };
                let va = self.view(&a.matrix)?;
                let mut ca = va.cursor(a.chain, a.level, pa, false);
                let mut cb = self.view(&b.matrix)?.cursor(b.chain, b.level, pb, false);
                let mut have_a = self.view(&a.matrix)?.advance(&mut ca);
                let mut have_b = self.view(&b.matrix)?.advance(&mut cb);
                while have_a && have_b {
                    self.stats.iterations += 1;
                    let ka = ca.keys[0];
                    let kb = cb.keys[0];
                    match ka.cmp(&kb) {
                        std::cmp::Ordering::Less => {
                            have_a = self.view(&a.matrix)?.advance(&mut ca);
                        }
                        std::cmp::Ordering::Greater => {
                            have_b = self.view(&b.matrix)?.advance(&mut cb);
                        }
                        std::cmp::Ordering::Equal => {
                            self.slots[step.first_slot] = ka;
                            self.pos.insert((a.ref_id, a.level), ca.pos);
                            self.pos.insert((b.ref_id, b.level), cb.pos);
                            self.do_searches(si)?;
                            self.run_step(si + 1)?;
                            have_a = self.view(&a.matrix)?.advance(&mut ca);
                            have_b = self.view(&b.matrix)?.advance(&mut cb);
                        }
                    }
                }
            }
        }
        // Hoisted statements placed *after* the deeper enumeration.
        self.run_execs_at(si, true)?;
        Ok(())
    }

    fn do_searches(&mut self, si: usize) -> Result<(), PlanError> {
        let step = &self.plan.steps[si];
        for sp in &step.searches {
            let rid = sp.target.ref_id;
            // Clear misses recorded at this step or deeper (stale from the
            // previous iteration); keep outer-scope misses.
            if matches!(self.missing_at[rid], Some(m) if m >= si) {
                self.missing_at[rid] = None;
            }
            if self.missing_at[rid].is_some() {
                for &(r2, _) in &sp.sharers {
                    if self.missing_at[r2].is_none() {
                        self.missing_at[r2] = self.missing_at[rid];
                    }
                }
                continue; // missing at an outer step: stays missing
            }
            let parent = if sp.target.level == 0 {
                0
            } else {
                match self.pos.get(&(rid, sp.target.level - 1)) {
                    Some(&p) => p,
                    None => {
                        self.missing_at[rid] = Some(si);
                        continue;
                    }
                }
            };
            let mut keys = Vec::with_capacity(sp.keys.len());
            for (e, perm) in &sp.keys {
                let v = e.eval(&self.slots, &self.params);
                let key = match perm {
                    Some(t) => {
                        let view = self.view(&sp.target.matrix)?;
                        if v < 0 || v >= view.nrows() as i64 {
                            self.missing_at[rid] = Some(si);
                            break;
                        }
                        view.perm_unapply(t, v)
                    }
                    None => v,
                };
                keys.push(key);
            }
            if keys.len() != sp.keys.len() {
                continue; // perm range miss already flagged
            }
            self.stats.searches += 1;
            let view = self.view(&sp.target.matrix)?;
            match view.search(sp.target.chain, sp.target.level, parent, &keys) {
                Some(p) => {
                    self.pos.insert((rid, sp.target.level), p);
                    for &(r2, l2) in &sp.sharers {
                        self.pos.insert((r2, l2), p);
                        if matches!(self.missing_at[r2], Some(m) if m >= si) {
                            self.missing_at[r2] = None;
                        }
                    }
                }
                None => {
                    self.missing_at[rid] = Some(si);
                    for &(r2, _) in &sp.sharers {
                        self.missing_at[r2] = Some(si);
                    }
                }
            }
        }
        Ok(())
    }

    /// Runs the statements placed at `depth` with the given after-flag
    /// (full-depth statements run with `after == true` at the innermost
    /// point, where the flag is meaningless).
    fn run_execs_at(&mut self, depth: usize, after: bool) -> Result<(), PlanError> {
        for ei in 0..self.plan.execs.len() {
            let e = &self.plan.execs[ei];
            if e.depth == depth && (e.after == after || depth == self.plan.steps.len()) {
                self.run_exec(ei)?;
            }
        }
        Ok(())
    }

    fn run_exec(&mut self, ei: usize) -> Result<(), PlanError> {
        let e = &self.plan.execs[ei];
        // Required refs present?
        if e.required_refs
            .iter()
            .any(|&r| self.missing_at[r].is_some())
        {
            return Ok(());
        }
        // Bindings.
        let mut vars = self.params.clone();
        for (v, expr, div) in &e.bindings {
            let raw = expr.eval(&self.slots, &vars);
            if *div != 1 {
                if raw % *div != 0 {
                    return Ok(());
                }
                vars.insert(v.clone(), raw / *div);
            } else {
                vars.insert(v.clone(), raw);
            }
        }
        // Guards.
        for g in &e.guards {
            let pass = match g {
                Guard::Eq(x) => x.eval(&self.slots, &vars) == 0,
                Guard::Ge(x) => x.eval(&self.slots, &vars) >= 0,
                Guard::Divides(x, d) => x.eval(&self.slots, &vars) % d == 0,
            };
            if !pass {
                self.stats.guard_misses += 1;
                return Ok(());
            }
        }
        self.stats.executions += 1;

        // Evaluate rhs; reads are numbered 1.. in evaluation order.
        let mut next_access = 1usize;
        let value = self.eval_value(ei, &e.body.rhs, &vars, &mut next_access)?;

        // Write lhs (access 0).
        let e = &self.plan.execs[ei];
        match &e.sources[0] {
            None => {
                let idx: Vec<i64> = e.body.lhs.idxs.iter().map(|x| x.eval(&vars)).collect();
                let vec =
                    self.env.vectors.get_mut(&e.body.lhs.array).ok_or_else(|| {
                        PlanError(format!("vector {:?} not bound", e.body.lhs.array))
                    })?;
                let i = idx[0];
                if idx.len() != 1 || i < 0 || i as usize >= vec.len() {
                    return Err(PlanError(format!(
                        "lhs write {} out of range at {idx:?}",
                        e.body.lhs
                    )));
                }
                vec[i as usize] = value;
            }
            Some(_) => {
                return Err(PlanError(
                    "writes to sparse matrices are not supported by the interpreter".to_string(),
                ));
            }
        }
        Ok(())
    }

    fn eval_value(
        &self,
        ei: usize,
        e: &ValueExpr,
        vars: &HashMap<String, i64>,
        next_access: &mut usize,
    ) -> Result<f64, PlanError> {
        Ok(match e {
            ValueExpr::Const(c) => *c,
            ValueExpr::Read(r) => {
                let access = *next_access;
                *next_access += 1;
                let exec = &self.plan.execs[ei];
                match exec.sources.get(access).and_then(|s| s.as_ref()) {
                    Some(ValueSource::Position { ref_id }) => {
                        let meta = &self.plan.refs[*ref_id];
                        let pos = *self.pos.get(&(*ref_id, meta.levels - 1)).ok_or_else(|| {
                            PlanError(format!(
                                "reference {ref_id} has no innermost position (read {r})"
                            ))
                        })?;
                        self.view(&meta.matrix)?.value_at(meta.chain, pos)
                    }
                    Some(ValueSource::Random { ref_id }) => {
                        let meta = &self.plan.refs[*ref_id];
                        let view = self.view(&meta.matrix)?;
                        let idx: Vec<i64> = r.idxs.iter().map(|x| x.eval(vars)).collect();
                        let (rr, cc) = (idx[0], *idx.get(1).unwrap_or(&0));
                        if rr < 0
                            || cc < 0
                            || rr as usize >= view.nrows()
                            || cc as usize >= view.ncols()
                        {
                            return Err(PlanError(format!(
                                "random access {r} out of range at ({rr},{cc})"
                            )));
                        }
                        view.get(rr as usize, cc as usize)
                    }
                    None => {
                        // Dense access: vector or unbound-sparse matrix.
                        let idx: Vec<i64> = r.idxs.iter().map(|x| x.eval(vars)).collect();
                        if let Some(v) = self.env.vectors.get(&r.array) {
                            let i = idx[0];
                            if idx.len() != 1 || i < 0 || i as usize >= v.len() {
                                return Err(PlanError(format!(
                                    "vector read {r} out of range at {idx:?}"
                                )));
                            }
                            v[i as usize]
                        } else if let Some(m) = self.env.sparse.get(&r.array) {
                            let (rr, cc) = (idx[0], *idx.get(1).unwrap_or(&0));
                            if rr < 0
                                || cc < 0
                                || rr as usize >= m.nrows()
                                || cc as usize >= m.ncols()
                            {
                                return Err(PlanError(format!(
                                    "matrix read {r} out of range at ({rr},{cc})"
                                )));
                            }
                            m.get(rr as usize, cc as usize)
                        } else {
                            return Err(PlanError(format!("array {:?} not bound", r.array)));
                        }
                    }
                }
            }
            ValueExpr::Add(a, b) => {
                self.eval_value(ei, a, vars, next_access)?
                    + self.eval_value(ei, b, vars, next_access)?
            }
            ValueExpr::Sub(a, b) => {
                self.eval_value(ei, a, vars, next_access)?
                    - self.eval_value(ei, b, vars, next_access)?
            }
            ValueExpr::Mul(a, b) => {
                self.eval_value(ei, a, vars, next_access)?
                    * self.eval_value(ei, b, vars, next_access)?
            }
            ValueExpr::Div(a, b) => {
                self.eval_value(ei, a, vars, next_access)?
                    / self.eval_value(ei, b, vars, next_access)?
            }
            ValueExpr::Neg(a) => -self.eval_value(ei, a, vars, next_access)?,
        })
    }
}
