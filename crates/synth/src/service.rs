//! A multi-tenant compile server: concurrent [`compile`](Service::compile)
//! calls from many threads multiplexed over one shared worker pool and
//! shared caches (S38).
//!
//! Where a [`Session`](crate::session::Session) is a single-tenant
//! driver — one caller, one cache lineage, compiles issued one at a
//! time — a [`Service`] is built to be shared: it is `Send + Sync`,
//! wrap it in an `Arc` and hand clones to as many client threads as
//! you like. Three concerns separate it from a session:
//!
//! 1. **Shared cache tiers.** All requests share the service's
//!    whole-search plan cache and (by default) read through to the
//!    process-wide polyhedral memo tier
//!    ([`bernoulli_polyhedra::shared_tier`]); per-request
//!    [`CacheMode`] selects overlay or full isolation instead.
//!    Optionally a *persistent* plan cache
//!    ([`PersistentPlanCache`])
//!    warm-starts searches across process restarts.
//! 2. **Admission control.** In-flight compiles are bounded
//!    ([`ServiceConfig::max_inflight`]); excess requests wait in a
//!    strict FIFO queue of bounded depth ([`ServiceConfig::max_queue`]).
//!    A full queue sheds load with [`ServiceError::Overloaded`]; a
//!    request whose deadline expires while still queued is rejected
//!    with [`ServiceError::QueueDeadline`] rather than admitted late.
//!    FIFO tickets make admission fair: no request can starve behind
//!    later arrivals.
//! 3. **Per-request budgets.** Each admitted compile arms a fresh
//!    [`Budget`] from the *remaining* deadline (queue wait is charged
//!    against the request, not forgiven) plus the configured op
//!    ceiling, so one adversarial program degrades itself instead of
//!    the tenancy.
//! 4. **Single-flight coalescing.** Concurrent compiles of the same
//!    plan-cache key share one search (and hence one kernel build
//!    downstream): the first request leads, the rest wait and receive
//!    the leader's result — or its typed error — without re-searching.
//!    Degraded results are never shared (each request's budget is its
//!    own), and requests with plan caching disabled never coalesce.
//!
//! Determinism is preserved under concurrency: compiles taken through
//! the service produce byte-identical plans and emitted source to the
//! same compiles run sequentially on a fresh session (the concurrency
//! suite in `tests/` holds this). Nothing on these paths panics.

use crate::persist::{PersistStats, PersistentPlanCache};
use crate::search::{
    plan_cache_key, run_search, PlanCache, PlanCacheStats, SearchReport, SynthError, SynthOptions,
};
use crate::session::{bind_problem, BoundProblem, CompiledKernel, DepReport};
use bernoulli_formats::view::FormatView;
use bernoulli_govern::Budget;
use bernoulli_ir::{analyze, parse_program, Program};
use bernoulli_polyhedra::PolyCaches;
use bernoulli_pool::Pool;
use std::collections::{BTreeSet, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// How a request's polyhedral decision-procedure lookups relate to the
/// process-wide memo tier. (The whole-search *plan* cache is always
/// service-shared; this mode governs the fine-grained polyhedral memos
/// only.)
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CacheMode {
    /// Read and write the process-wide shared tier directly (the
    /// default). Maximum reuse across tenants; safe because cached
    /// decisions are keyed by canonicalized constraint systems and are
    /// input-deterministic.
    #[default]
    Shared,
    /// Look in the service's private overlay first, fall through to
    /// the shared tier on miss (backfilling the overlay), and write
    /// new results through to both. Keeps a hot working set local
    /// while still profiting from — and contributing to — the tier.
    Overlay,
    /// A fresh, fully private cache instance for this request alone;
    /// nothing read from or written to the shared tier. For tenants
    /// that must not observe cross-tenant cache effects at all.
    Isolated,
}

/// Configuration for a [`Service`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Maximum compiles running concurrently. Further requests queue.
    pub max_inflight: usize,
    /// Maximum requests waiting for admission; a full queue sheds new
    /// arrivals with [`ServiceError::Overloaded`].
    pub max_queue: usize,
    /// Deadline applied to [`Service::compile`] requests (queue wait
    /// included). `None`: wait and search without time limit.
    pub default_deadline: Option<Duration>,
    /// Per-compile ceiling on abstract polyhedral operations (see
    /// [`Budget::with_max_ops`]).
    pub op_budget: Option<u64>,
    /// `Some(n)`: the service owns a private `n`-thread worker pool.
    /// `None`: searches fan out on the process-global pool.
    pub threads: Option<usize>,
    /// Directory for the persistent plan cache; `None` disables
    /// persistence.
    pub persist_dir: Option<PathBuf>,
    /// Polyhedral-memo sharing mode for requests (see [`CacheMode`]).
    pub cache_mode: CacheMode,
    /// Search options used by [`Service::compile`].
    pub opts: SynthOptions,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            max_inflight: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            max_queue: 64,
            default_deadline: None,
            op_budget: None,
            threads: None,
            persist_dir: None,
            cache_mode: CacheMode::Shared,
            opts: SynthOptions::default(),
        }
    }
}

/// Why a service request failed. Admission rejections (`Overloaded`,
/// `QueueDeadline`) are *sticky shed signals*: the compile never ran,
/// so retrying against a less-loaded service is always safe.
#[derive(Debug)]
pub enum ServiceError {
    /// The admission queue was full; the request was shed immediately.
    Overloaded {
        /// Compiles running when the request was shed.
        inflight: usize,
        /// Requests already queued when the request was shed.
        queued: usize,
    },
    /// The request's deadline expired while it was still waiting in
    /// the admission queue; it was never admitted.
    QueueDeadline {
        /// How long the request waited before being rejected.
        waited_ms: u64,
    },
    /// The compile itself failed after admission.
    Synth(SynthError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded { inflight, queued } => write!(
                f,
                "service overloaded: {inflight} compile(s) in flight, \
                 {queued} queued; request shed"
            ),
            ServiceError::QueueDeadline { waited_ms } => write!(
                f,
                "request deadline expired after {waited_ms} ms in the \
                 admission queue; compile never started"
            ),
            ServiceError::Synth(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Synth(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SynthError> for ServiceError {
    fn from(e: SynthError) -> ServiceError {
        ServiceError::Synth(e)
    }
}

/// FIFO admission state: `next_ticket` is handed to the next arrival,
/// `next_served` is the ticket at the head of the queue. A waiter may
/// start iff its ticket is at the head *and* an in-flight slot is
/// free, which is exactly first-come-first-served.
struct AdmState {
    inflight: usize,
    queued: usize,
    next_ticket: u64,
    next_served: u64,
    /// Tickets whose owners gave up (deadline) before being served;
    /// `next_served` skips over them.
    abandoned: BTreeSet<u64>,
}

/// Bounded-concurrency FIFO admission gate. Public so the admission
/// behavior (shedding, deadlines, fairness) is testable directly,
/// without driving full compiles through a [`Service`].
pub struct Admission {
    state: Mutex<AdmState>,
    cv: Condvar,
    max_inflight: usize,
    max_queue: usize,
}

/// An admitted request's slot; dropping it releases the slot and wakes
/// queued waiters.
pub struct AdmissionPermit<'a> {
    adm: &'a Admission,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        let mut st = self.adm.lock();
        st.inflight = st.inflight.saturating_sub(1);
        drop(st);
        self.adm.cv.notify_all();
    }
}

impl Admission {
    /// A gate admitting at most `max_inflight` concurrent holders with
    /// at most `max_queue` waiters. Both floors are clamped to 1/0
    /// sensibly: `max_inflight == 0` would deadlock, so it is raised
    /// to 1.
    pub fn new(max_inflight: usize, max_queue: usize) -> Admission {
        Admission {
            state: Mutex::new(AdmState {
                inflight: 0,
                queued: 0,
                next_ticket: 0,
                next_served: 0,
                abandoned: BTreeSet::new(),
            }),
            cv: Condvar::new(),
            max_inflight: max_inflight.max(1),
            max_queue,
        }
    }

    /// Poison-tolerant lock: admission state stays usable even if a
    /// panic unwound through a holder (counter updates are atomic with
    /// respect to the lock; there is no partially-applied state).
    fn lock(&self) -> MutexGuard<'_, AdmState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Skips `next_served` past tickets whose owners abandoned the
    /// queue, so the head position always names a live waiter (or the
    /// next future arrival).
    fn advance(st: &mut AdmState) {
        while st.abandoned.remove(&st.next_served) {
            st.next_served += 1;
        }
    }

    /// Waits for an in-flight slot, FIFO-fair, shedding instead of
    /// waiting when the queue is full and giving up at `deadline`.
    /// Returns a permit whose `Drop` releases the slot.
    pub fn acquire(&self, deadline: Option<Instant>) -> Result<AdmissionPermit<'_>, ServiceError> {
        let enqueued_at = Instant::now();
        let mut st = self.lock();
        // Fast path: a free slot and nobody queued ahead of us.
        if st.inflight < self.max_inflight && st.queued == 0 {
            st.inflight += 1;
            return Ok(AdmissionPermit { adm: self });
        }
        if st.queued >= self.max_queue {
            bernoulli_trace::counter!("service.shed_overloaded");
            return Err(ServiceError::Overloaded {
                inflight: st.inflight,
                queued: st.queued,
            });
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queued += 1;
        loop {
            if st.next_served == ticket && st.inflight < self.max_inflight {
                st.queued -= 1;
                st.next_served += 1;
                Self::advance(&mut st);
                st.inflight += 1;
                drop(st);
                // Another waiter may now be at the head with a slot
                // still free (max_inflight > 1): let it re-check.
                self.cv.notify_all();
                return Ok(AdmissionPermit { adm: self });
            }
            match deadline {
                None => {
                    st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        // Give up: mark the ticket abandoned so the
                        // head position can move past it.
                        st.queued = st.queued.saturating_sub(1);
                        st.abandoned.insert(ticket);
                        Self::advance(&mut st);
                        drop(st);
                        self.cv.notify_all();
                        bernoulli_trace::counter!("service.shed_deadline");
                        return Err(ServiceError::QueueDeadline {
                            waited_ms: enqueued_at.elapsed().as_millis() as u64,
                        });
                    }
                    let (g, _timeout) = self
                        .cv
                        .wait_timeout(st, d - now)
                        .unwrap_or_else(|e| e.into_inner());
                    st = g;
                }
            }
        }
    }

    /// Compiles currently holding slots.
    pub fn inflight(&self) -> usize {
        self.lock().inflight
    }

    /// Requests currently waiting for admission.
    pub fn queued(&self) -> usize {
        self.lock().queued
    }
}

/// Which worker pool the service fans searches out over.
enum ServicePool {
    Shared,
    Owned(Arc<Pool>),
}

/// Monotonic request accounting, all updated lock-free.
#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    admitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    shed_overloaded: AtomicU64,
    shed_deadline: AtomicU64,
    degraded: AtomicU64,
    peak_inflight: AtomicU64,
    searches: AtomicU64,
    coalesced: AtomicU64,
}

/// The outcome a search leader publishes to its followers.
#[derive(Clone)]
enum FlightState {
    /// The leader is still searching.
    Pending,
    /// The leader finished; followers take the shared (cloned) result.
    Done(Result<SearchReport, SynthError>),
    /// The leader's search degraded under *its own* budget — a
    /// degraded result is never shared. Followers race to become the
    /// next leader instead.
    Retry,
}

/// One in-flight search per plan-cache key (single-flight coalescing):
/// N concurrent compiles of the same key share one search.
struct SearchFlight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

/// A point-in-time snapshot of a service's request accounting
/// ([`Service::stats`]). `submitted = admitted + shed_overloaded +
/// shed_deadline` once the service is quiescent; `admitted =
/// completed + failed` likewise.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests that entered [`Service::compile`].
    pub submitted: u64,
    /// Requests that passed admission and ran a search.
    pub admitted: u64,
    /// Admitted requests that returned a kernel.
    pub completed: u64,
    /// Admitted requests that returned a [`SynthError`].
    pub failed: u64,
    /// Requests shed because the queue was full.
    pub shed_overloaded: u64,
    /// Requests whose deadline expired while queued.
    pub shed_deadline: u64,
    /// Completed requests whose search degraded (budget exhaustion
    /// mid-search; the kernel is still correct, see the governance
    /// docs).
    pub degraded: u64,
    /// High-water mark of concurrent in-flight compiles.
    pub peak_inflight: u64,
    /// Genuine searches executed: `run_search` calls that neither hit
    /// a plan-cache tier nor were coalesced onto another request's
    /// in-flight search.
    pub searches: u64,
    /// Requests served by waiting on another request's in-flight
    /// search of the same plan-cache key (single-flight coalescing)
    /// instead of searching themselves.
    pub coalesced: u64,
    /// `rustc` kernel builds since this service was created
    /// (process-wide kernel-cache compiles, baselined at
    /// [`Service::new`]).
    pub kernel_builds: u64,
}

/// A `Send + Sync` compile server: wrap in an `Arc`, share across
/// threads, call [`compile`](Service::compile) concurrently. See the
/// module docs for the tenancy model.
pub struct Service {
    cfg: ServiceConfig,
    pool: ServicePool,
    plan_cache: PlanCache,
    /// Service-private polyhedral overlay used by
    /// [`CacheMode::Overlay`] requests.
    overlay: Arc<PolyCaches>,
    persist: Option<PersistentPlanCache>,
    admission: Admission,
    counters: Counters,
    /// In-flight searches by plan-cache key (single-flight coalescing).
    flights: Mutex<HashMap<String, Arc<SearchFlight>>>,
    /// Process-wide kernel-cache compile count when this service was
    /// created; [`ServiceStats::kernel_builds`] is the delta.
    kc_compiles_at_start: u64,
}

impl Service {
    /// A service with the given configuration.
    pub fn new(cfg: ServiceConfig) -> Service {
        let pool = match cfg.threads {
            Some(n) => ServicePool::Owned(Arc::new(Pool::new(n))),
            None => ServicePool::Shared,
        };
        let persist = cfg.persist_dir.as_ref().map(PersistentPlanCache::new);
        let admission = Admission::new(cfg.max_inflight, cfg.max_queue);
        Service {
            cfg,
            pool,
            plan_cache: PlanCache::new(),
            overlay: Arc::new(PolyCaches::new()),
            persist,
            admission,
            counters: Counters::default(),
            flights: Mutex::new(HashMap::new()),
            kc_compiles_at_start: bernoulli_kernel_cache::stats().compiles,
        }
    }

    /// A service with [`ServiceConfig::default`].
    pub fn with_defaults() -> Service {
        Service::new(ServiceConfig::default())
    }

    /// The service's configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Stage 1 — parse and semantically validate program text
    /// (identical to [`Session::parse`](crate::session::Session::parse);
    /// offered here so service clients need no session).
    pub fn parse(&self, text: &str) -> Result<Program, SynthError> {
        let p = parse_program(text)?;
        p.validate()?;
        Ok(p)
    }

    /// Stage 2 — dependence analysis (paper §3).
    pub fn analyze(&self, p: &Program) -> DepReport {
        DepReport {
            classes: analyze(p),
        }
    }

    /// Stage 3 — bind format views to sparse arrays, validated against
    /// the program's declarations.
    pub fn bind(
        &self,
        p: &Program,
        views: &[(&str, FormatView)],
    ) -> Result<BoundProblem, SynthError> {
        bind_problem(p, views)
    }

    /// Structure-aware selection on the service: the multi-tenant
    /// mirror of [`Session::advise`](crate::session::Session::advise).
    /// Every candidate compile is a normal admitted request (counted,
    /// queued, deadline-checked); a per-candidate synthesis failure
    /// skips that format, while a service-level rejection (shed load,
    /// expired queue deadline) aborts the whole advice.
    pub fn advise(
        &self,
        p: &Program,
        matrix: &str,
        t: &bernoulli_formats::Triplets<f64>,
        formats: &[&str],
    ) -> Result<crate::advise::Advice, ServiceError> {
        crate::advise::advise_core(p, matrix, t, formats, |bound, stats| {
            let mut opts = self.cfg.opts.clone();
            opts.stats = stats.clone();
            match self.compile_with(bound, &opts, self.cfg.default_deadline) {
                Ok(k) => Ok(Ok(k)),
                Err(ServiceError::Synth(e)) => Ok(Err(e)),
                Err(fatal) => Err(fatal),
            }
        })
    }

    /// Stage 4 — compile under the service's configured options,
    /// deadline, and cache mode. Safe to call from many threads at
    /// once; admission control applies (see the module docs).
    pub fn compile(&self, problem: &BoundProblem) -> Result<CompiledKernel, ServiceError> {
        self.compile_with(problem, &self.cfg.opts.clone(), self.cfg.default_deadline)
    }

    /// [`compile`](Service::compile) with per-request option overrides
    /// and an explicit deadline. The deadline covers the *whole*
    /// request: time spent waiting in the admission queue is deducted
    /// from the search budget, and a request still queued at its
    /// deadline is rejected with [`ServiceError::QueueDeadline`].
    pub fn compile_with(
        &self,
        problem: &BoundProblem,
        opts: &SynthOptions,
        deadline: Option<Duration>,
    ) -> Result<CompiledKernel, ServiceError> {
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        let absolute = deadline.map(|d| Instant::now() + d);
        let permit = match self.admission.acquire(absolute) {
            Ok(p) => p,
            Err(e) => {
                match &e {
                    ServiceError::Overloaded { .. } => {
                        self.counters
                            .shed_overloaded
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    ServiceError::QueueDeadline { .. } => {
                        self.counters.shed_deadline.fetch_add(1, Ordering::Relaxed);
                    }
                    ServiceError::Synth(_) => {}
                }
                return Err(e);
            }
        };
        self.counters.admitted.fetch_add(1, Ordering::Relaxed);
        self.counters
            .peak_inflight
            .fetch_max(self.admission.inflight() as u64, Ordering::Relaxed);
        let result = self.run_admitted(problem, opts, absolute);
        drop(permit);
        match &result {
            Ok(k) => {
                self.counters.completed.fetch_add(1, Ordering::Relaxed);
                if k.report().degraded {
                    self.counters.degraded.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(_) => {
                self.counters.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        result
    }

    /// The admitted portion of a compile: arm the per-request budget,
    /// install the request's cache view on this thread (the search
    /// layer re-installs both on every pool worker), and search.
    fn run_admitted(
        &self,
        problem: &BoundProblem,
        opts: &SynthOptions,
        absolute_deadline: Option<Instant>,
    ) -> Result<CompiledKernel, ServiceError> {
        // Budget from whatever deadline remains after queueing, plus
        // the configured op ceiling. No limits configured: install
        // nothing and pay zero governance overhead.
        let remaining = absolute_deadline.map(|d| d.saturating_duration_since(Instant::now()));
        let budget = if remaining.is_some() || self.cfg.op_budget.is_some() {
            let mut b = Budget::unlimited();
            if let Some(r) = remaining {
                b = b.with_deadline(r);
            }
            if let Some(ops) = self.cfg.op_budget {
                b = b.with_max_ops(ops);
            }
            Some(Arc::new(b))
        } else {
            None
        };
        let _budget = budget.map(|b| bernoulli_govern::install_scoped(Some(b)));
        let _poly = match self.cfg.cache_mode {
            // No install: lookups on this thread (and, propagated, on
            // the pool workers) go straight to the process-wide tier.
            CacheMode::Shared => None,
            CacheMode::Overlay => Some(bernoulli_polyhedra::install_overlay_scoped(Arc::clone(
                &self.overlay,
            ))),
            CacheMode::Isolated => Some(bernoulli_polyhedra::install_scoped(Arc::new(
                PolyCaches::new(),
            ))),
        };
        let views: Vec<(&str, FormatView)> = problem
            .views()
            .iter()
            .map(|(n, v)| (n.as_str(), v.clone()))
            .collect();
        let pool = match &self.pool {
            ServicePool::Owned(p) => opts.parallel.then_some(&**p),
            ServicePool::Shared => opts.parallel.then(Pool::global),
        };
        let cache_key = plan_cache_key(problem.program(), &views, opts);
        let report = if opts.cache_plans {
            self.search_coalesced(
                &cache_key,
                problem.program(),
                &views,
                opts,
                pool,
                absolute_deadline,
            )?
        } else {
            // With plan caching off, requests for the same key are
            // deliberately independent (load generators rely on this
            // to measure genuine search throughput).
            self.search_counted(problem.program(), &views, opts, pool)?
        };
        if report.candidates.is_empty() {
            return Err(ServiceError::Synth(SynthError::NoLegalPlan {
                reasons: report.reasons,
            }));
        }
        Ok(CompiledKernel::from_parts(
            problem.program().clone(),
            problem.views().iter().cloned().collect(),
            report,
            cache_key,
        ))
    }

    /// Runs a search and counts it in [`ServiceStats::searches`] when
    /// it was a genuine search (not served by a plan-cache tier).
    fn search_counted(
        &self,
        p: &Program,
        views: &[(&str, FormatView)],
        opts: &SynthOptions,
        pool: Option<&Pool>,
    ) -> Result<SearchReport, SynthError> {
        let report = run_search(
            p,
            views,
            opts,
            pool,
            &self.plan_cache,
            self.persist.as_ref(),
        )?;
        if !report.plan_cache_hit && !report.plan_cache_disk_hit {
            self.counters.searches.fetch_add(1, Ordering::Relaxed);
        }
        Ok(report)
    }

    /// Single-flight search: concurrent requests for the same
    /// plan-cache key share one search. The first request in becomes
    /// the *leader* and searches; followers wait on the flight and
    /// receive the leader's result — or its typed error — cloned.
    /// A leader whose search *degraded* under its own budget keeps the
    /// degraded result for itself but never publishes it: followers
    /// are woken to race for leadership instead. A follower whose
    /// deadline expires while waiting falls back to its own search, so
    /// deadline accounting stays identical to the sequential path.
    fn search_coalesced(
        &self,
        key: &str,
        p: &Program,
        views: &[(&str, FormatView)],
        opts: &SynthOptions,
        pool: Option<&Pool>,
        deadline: Option<Instant>,
    ) -> Result<SearchReport, SynthError> {
        loop {
            let (flight, leader) = {
                let mut map = self.flights.lock().unwrap_or_else(|e| e.into_inner());
                match map.get(key) {
                    Some(f) => (Arc::clone(f), false),
                    None => {
                        let f = Arc::new(SearchFlight {
                            state: Mutex::new(FlightState::Pending),
                            cv: Condvar::new(),
                        });
                        map.insert(key.to_string(), Arc::clone(&f));
                        (f, true)
                    }
                }
            };
            if leader {
                return self.lead_search(key, &flight, p, views, opts, pool);
            }
            let mut state = flight.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                match &*state {
                    FlightState::Pending => {}
                    FlightState::Done(shared) => {
                        self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                        bernoulli_trace::counter!("service.searches_coalesced");
                        return shared.clone();
                    }
                    FlightState::Retry => break,
                }
                match deadline {
                    None => {
                        state = flight.cv.wait(state).unwrap_or_else(|e| e.into_inner());
                    }
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            // Waited out the deadline: search under our
                            // own (expired) budget so the typed budget
                            // error matches the sequential path.
                            drop(state);
                            return self.search_counted(p, views, opts, pool);
                        }
                        let (g, _) = flight
                            .cv
                            .wait_timeout(state, d - now)
                            .unwrap_or_else(|e| e.into_inner());
                        state = g;
                    }
                }
            }
            // Retry: the previous leader degraded. Race for leadership.
        }
    }

    /// The leader half of [`search_coalesced`]: search, then publish.
    /// The guard publishes `Retry` if the search panics, so followers
    /// are never wedged on a dead flight.
    fn lead_search(
        &self,
        key: &str,
        flight: &Arc<SearchFlight>,
        p: &Program,
        views: &[(&str, FormatView)],
        opts: &SynthOptions,
        pool: Option<&Pool>,
    ) -> Result<SearchReport, SynthError> {
        struct Publish<'a> {
            service: &'a Service,
            key: &'a str,
            flight: &'a SearchFlight,
            done: bool,
        }
        impl Publish<'_> {
            fn publish(&mut self, outcome: FlightState) {
                self.service
                    .flights
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .remove(self.key);
                *self.flight.state.lock().unwrap_or_else(|e| e.into_inner()) = outcome;
                self.flight.cv.notify_all();
                self.done = true;
            }
        }
        impl Drop for Publish<'_> {
            fn drop(&mut self) {
                if !self.done {
                    self.publish(FlightState::Retry);
                }
            }
        }
        let mut guard = Publish {
            service: self,
            key,
            flight,
            done: false,
        };
        let result = self.search_counted(p, views, opts, pool);
        let outcome = match &result {
            // A degraded result reflects *this* request's budget; it
            // is never shared (followers re-search under their own).
            Ok(r) if r.degraded => FlightState::Retry,
            other => FlightState::Done(other.clone()),
        };
        guard.publish(outcome);
        result
    }

    /// A point-in-time snapshot of the request accounting.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.counters.submitted.load(Ordering::Relaxed),
            admitted: self.counters.admitted.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            failed: self.counters.failed.load(Ordering::Relaxed),
            shed_overloaded: self.counters.shed_overloaded.load(Ordering::Relaxed),
            shed_deadline: self.counters.shed_deadline.load(Ordering::Relaxed),
            degraded: self.counters.degraded.load(Ordering::Relaxed),
            peak_inflight: self.counters.peak_inflight.load(Ordering::Relaxed),
            searches: self.counters.searches.load(Ordering::Relaxed),
            coalesced: self.counters.coalesced.load(Ordering::Relaxed),
            kernel_builds: bernoulli_kernel_cache::stats()
                .compiles
                .saturating_sub(self.kc_compiles_at_start),
        }
    }

    /// Hit/miss totals of the service-shared whole-search plan cache.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// Hit/miss/write totals of the persistent plan cache, if one is
    /// configured.
    pub fn persist_stats(&self) -> Option<PersistStats> {
        self.persist.as_ref().map(|p| p.stats())
    }

    /// Hit/miss totals of the service's private polyhedral overlay
    /// (only populated by [`CacheMode::Overlay`] requests).
    pub fn overlay_stats(&self) -> bernoulli_polyhedra::CacheStats {
        self.overlay.stats()
    }

    /// The service's admission gate. Exposed so operators (and the
    /// admission-control tests) can observe or occupy slots directly —
    /// holding a permit from here deterministically forces subsequent
    /// requests onto the queue/shed paths.
    pub fn admission(&self) -> &Admission {
        &self.admission
    }

    /// Compiles currently running.
    pub fn inflight(&self) -> usize {
        self.admission.inflight()
    }

    /// Requests currently waiting for admission.
    pub fn queued(&self) -> usize {
        self.admission.queued()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn service_is_send_and_sync() {
        assert_send_sync::<Service>();
        assert_send_sync::<Arc<Service>>();
    }

    #[test]
    fn admission_fast_path_and_release() {
        let adm = Admission::new(2, 4);
        let a = adm.acquire(None).ok();
        let b = adm.acquire(None).ok();
        assert!(a.is_some() && b.is_some());
        assert_eq!(adm.inflight(), 2);
        drop(a);
        assert_eq!(adm.inflight(), 1);
        drop(b);
        assert_eq!(adm.inflight(), 0);
    }

    #[test]
    fn admission_sheds_when_queue_full() {
        // One slot, zero queue depth: a second concurrent request is
        // shed immediately with the typed overload error.
        let adm = Admission::new(1, 0);
        let held = adm.acquire(None).ok();
        assert!(held.is_some());
        match adm.acquire(Some(Instant::now())) {
            Err(ServiceError::Overloaded { inflight, queued }) => {
                assert_eq!((inflight, queued), (1, 0));
            }
            other => {
                drop(other);
                unreachable!("expected Overloaded");
            }
        };
    }

    #[test]
    fn admission_queue_deadline_expires() {
        let adm = Admission::new(1, 4);
        let held = adm.acquire(None).ok();
        assert!(held.is_some());
        let start = Instant::now();
        match adm.acquire(Some(Instant::now() + Duration::from_millis(30))) {
            Err(ServiceError::QueueDeadline { waited_ms }) => {
                assert!(start.elapsed() >= Duration::from_millis(30));
                // Tolerance: the reported wait covers at least the
                // requested deadline, minus scheduler slop.
                assert!(waited_ms >= 20, "waited_ms = {waited_ms}");
            }
            other => {
                drop(other);
                unreachable!("expected QueueDeadline");
            }
        }
        // The abandoned ticket must not block later arrivals.
        drop(held);
        assert!(adm
            .acquire(Some(Instant::now() + Duration::from_secs(5)))
            .is_ok());
    }

    #[test]
    fn admission_is_fifo_fair() {
        // Release the only slot repeatedly; queued waiters must be
        // served in arrival order (tickets are strictly FIFO).
        let adm = Arc::new(Admission::new(1, 16));
        let held = adm.acquire(None).ok();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for i in 0..6 {
            let gate = Arc::clone(&adm);
            let order = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                let permit = gate.acquire(Some(Instant::now() + Duration::from_secs(30)));
                if permit.is_ok() {
                    order.lock().unwrap_or_else(|e| e.into_inner()).push(i);
                }
                // Hold briefly so successors observe the slot cycling.
                std::thread::sleep(Duration::from_millis(1));
            }));
            // Arrival order must match spawn order for the FIFO
            // assertion to be meaningful: wait until thread i is
            // actually queued before spawning thread i+1.
            while adm.queued() < i + 1 {
                std::thread::yield_now();
            }
        }
        drop(held);
        for h in handles {
            let _ = h.join();
        }
        let served = order.lock().unwrap_or_else(|e| e.into_inner()).clone();
        assert_eq!(served, vec![0, 1, 2, 3, 4, 5], "admission must be FIFO");
        assert_eq!(adm.inflight(), 0);
        assert_eq!(adm.queued(), 0);
    }
}
