//! The staged compiler driver: a long-lived [`Session`] owning every
//! piece of shared state the synthesis pipeline accumulates — the
//! worker pool, the polyhedral memo caches, the whole-search plan
//! cache, and the search options — behind the four-stage API the
//! paper's pipeline implies:
//!
//! ```text
//! parse(text)          -> Program        (syntax + semantic checks)
//! analyze(&Program)    -> DepReport      (dependence classes, §3)
//! bind(&Program, fmts) -> BoundProblem   (views checked against decls)
//! compile(&Bound)      -> CompiledKernel (ranked candidates, §4)
//! ```
//!
//! A [`CompiledKernel`] can then be [`interpret`](CompiledKernel::interpret)-ed
//! against real formats or [`emit`](CompiledKernel::emit)-ted to Rust
//! source. Because the session owns its caches, warm/cold behavior is
//! explicit: a second identical `compile` on the *same* session hits
//! the plan cache (visible in [`SearchReport::plan_cache_hit`]), while
//! a fresh session starts cold — no process-global state involved.
//! Every failure a caller can trigger surfaces as a typed
//! [`SynthError`]; nothing on these paths panics.

use crate::compiled::{KernelArg, KernelBackend, LoadError, LoadedKernel};
use crate::config::ConfigError;
use crate::interp::{run_plan, ExecEnv, RunStats};
use crate::plan::Plan;
use crate::search::{
    run_search, Candidate, PlanCache, PlanCacheStats, SearchReport, SynthError, SynthOptions,
};
use bernoulli_formats::view::FormatView;
use bernoulli_govern::{Budget, CancelToken};
use bernoulli_ir::{analyze, parse_program, ArrayKind, DepClass, Program};
use bernoulli_polyhedra::PolyCaches;
use bernoulli_pool::Pool;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Which worker pool a session fans its searches out over.
enum SessionPool {
    /// The process-global pool (sized by `BERNOULLI_THREADS`).
    Shared,
    /// A pool this session owns.
    Owned(Arc<Pool>),
}

/// A long-lived compiler object: create once, compile many kernels.
///
/// Reusing one session across compiles is what makes repeated
/// synthesis fast — the plan cache returns identical requests without
/// searching, and the polyhedral memo caches accelerate even cold
/// searches over structurally similar systems. Dropping the session
/// drops all of that state.
pub struct Session {
    opts: SynthOptions,
    pool: SessionPool,
    plan_cache: PlanCache,
    poly_caches: Arc<PolyCaches>,
    /// Per-compile wall-clock limit (armed afresh at each `compile`).
    budget_deadline: Option<Duration>,
    /// Per-compile ceiling on abstract polyhedral operations.
    budget_ops: Option<u64>,
    /// Lazily created by [`Session::cancel_token`]; observed by every
    /// budget this session arms afterwards.
    cancel: OnceLock<CancelToken>,
}

impl Session {
    /// A session with default [`SynthOptions`], searching on the shared
    /// worker pool.
    pub fn new() -> Session {
        Session::with_options(SynthOptions::default())
    }

    /// A session with explicit search options.
    pub fn with_options(opts: SynthOptions) -> Session {
        Session {
            opts,
            pool: SessionPool::Shared,
            plan_cache: PlanCache::new(),
            poly_caches: Arc::new(PolyCaches::new()),
            budget_deadline: None,
            budget_ops: None,
            cancel: OnceLock::new(),
        }
    }

    /// Gives the session its own worker pool of `nthreads` threads
    /// instead of the shared one.
    pub fn with_threads(mut self, nthreads: usize) -> Session {
        self.pool = SessionPool::Owned(Arc::new(Pool::new(nthreads)));
        self
    }

    /// Caps each `compile` at `limit` of wall-clock time. When the
    /// deadline passes mid-search, the compile degrades gracefully: it
    /// returns the best fully-verified plan found so far (or the
    /// guaranteed-legal baseline plan), with
    /// [`SearchReport::degraded`] set — see the crate docs on resource
    /// governance. The clock is re-armed at the start of every compile.
    pub fn with_deadline(mut self, limit: Duration) -> Session {
        self.budget_deadline = Some(limit);
        self
    }

    /// Caps each `compile` at `max_ops` abstract polyhedral operations
    /// (cf. isl's `max_operations`). Bounds the worst-case exponential
    /// blowup of Fourier–Motzkin elimination on adversarial programs;
    /// exhaustion degrades the search the same way a deadline does.
    pub fn with_op_budget(mut self, max_ops: u64) -> Session {
        self.budget_ops = Some(max_ops);
        self
    }

    /// A cancellation token observed by every subsequent `compile` on
    /// this session. Calling [`CancelToken::cancel`] (from any thread)
    /// makes an in-flight compile stop at its next budget check and
    /// return [`SynthError::Deadline`] with a `Cancelled` cause; unlike
    /// deadline/op exhaustion, cancellation does not run the baseline
    /// fallback — the caller asked for *stop*, not *best effort*.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.get_or_init(CancelToken::new).clone()
    }

    /// The budget a compile runs under, if any limit is configured. A
    /// fresh [`Budget`] per compile: deadlines re-arm, op counts reset.
    fn arm_budget(&self) -> Option<Arc<Budget>> {
        let cancel = self.cancel.get();
        if self.budget_deadline.is_none() && self.budget_ops.is_none() && cancel.is_none() {
            return None;
        }
        let mut b = Budget::unlimited();
        if let Some(limit) = self.budget_deadline {
            b = b.with_deadline(limit);
        }
        if let Some(ops) = self.budget_ops {
            b = b.with_max_ops(ops);
        }
        if let Some(tok) = cancel {
            b = b.with_cancel(tok.clone());
        }
        Some(Arc::new(b))
    }

    /// The session's search options.
    pub fn options(&self) -> &SynthOptions {
        &self.opts
    }

    /// Mutable access to the search options (takes effect on the next
    /// [`compile`](Session::compile)).
    pub fn options_mut(&mut self) -> &mut SynthOptions {
        &mut self.opts
    }

    /// Stage 1 — parse *and semantically validate* program text.
    pub fn parse(&self, text: &str) -> Result<Program, SynthError> {
        let p = parse_program(text)?;
        p.validate()?;
        Ok(p)
    }

    /// Stage 2 — dependence analysis (paper §3): the dependence classes
    /// legality will be checked against. Infallible on a validated
    /// program; offered on the session so drivers can inspect or log
    /// the classes between parsing and binding.
    pub fn analyze(&self, p: &Program) -> DepReport {
        DepReport {
            classes: analyze(p),
        }
    }

    /// Stage 3 — bind a format view to each sparse matrix, checking the
    /// views against the program's declarations: every bound name must
    /// be a declared array, and the view's dense rank must match the
    /// array kind (2 for matrices, 1 for vectors).
    pub fn bind(
        &self,
        p: &Program,
        views: &[(&str, FormatView)],
    ) -> Result<BoundProblem, SynthError> {
        bind_problem(p, views)
    }

    /// Stage 4 — run the search (§4.2–4.3) with the session's options,
    /// pool and caches, returning the ranked candidates as an
    /// executable/emit-able [`CompiledKernel`].
    pub fn compile(&self, problem: &BoundProblem) -> Result<CompiledKernel, SynthError> {
        self.compile_with(problem, &self.opts.clone())
    }

    /// [`compile`](Session::compile) with per-call option overrides
    /// (the session still supplies pool and caches). Used by the
    /// experiment drivers that sweep search knobs.
    pub fn compile_with(
        &self,
        problem: &BoundProblem,
        opts: &SynthOptions,
    ) -> Result<CompiledKernel, SynthError> {
        // Route the polyhedral decision procedures through this
        // session's memo caches for the duration of the search (the
        // guard restores the previous instance even on panic).
        let _poly = bernoulli_polyhedra::install_scoped(Arc::clone(&self.poly_caches));
        // Arm a fresh budget for this compile when any limit is
        // configured; an unlimited session installs nothing and pays
        // zero governance overhead.
        let _budget = self
            .arm_budget()
            .map(|b| bernoulli_govern::install_scoped(Some(b)));
        let views: Vec<(&str, FormatView)> = problem
            .views
            .iter()
            .map(|(n, v)| (n.as_str(), v.clone()))
            .collect();
        let pool = match &self.pool {
            SessionPool::Owned(p) => opts.parallel.then_some(&**p),
            SessionPool::Shared => opts.parallel.then(Pool::global),
        };
        let report = run_search(&problem.program, &views, opts, pool, &self.plan_cache, None)?;
        if report.candidates.is_empty() {
            return Err(SynthError::NoLegalPlan {
                reasons: report.reasons,
            });
        }
        // The same key the plan cache uses also names the kernel's
        // on-disk artifact (plus ABI/toolchain salt added by the
        // kernel store): identical compiles reload identical binaries,
        // across processes.
        let cache_key = crate::search::plan_cache_key(&problem.program, &views, opts);
        Ok(CompiledKernel {
            program: problem.program.clone(),
            view_map: problem.views.iter().cloned().collect(),
            report,
            cache_key,
        })
    }

    /// Structure-aware selection: analyze the instance bound to
    /// `matrix`, derive the cost-model statistics from the measured
    /// structure, compile `p` against every candidate format in
    /// `formats` (or [`crate::advise::DEFAULT_ADVISOR_FORMATS`] when
    /// empty), and return the `(format, plan)` pairs ranked by
    /// predicted cost together with the feature snapshot.
    ///
    /// Each candidate compile is an ordinary [`Session::compile_with`]
    /// run — same pool, caches, budget, and plan-cache keys — so a
    /// repeated `advise` on the same instance is served warm.
    pub fn advise(
        &self,
        p: &Program,
        matrix: &str,
        t: &bernoulli_formats::Triplets<f64>,
        formats: &[&str],
    ) -> Result<crate::advise::Advice, SynthError> {
        crate::advise::advise_core(p, matrix, t, formats, |bound, stats| {
            let mut opts = self.opts.clone();
            opts.stats = stats.clone();
            Ok(self.compile_with(bound, &opts))
        })
    }

    /// Hit/miss totals of this session's whole-search plan cache.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// Hit/miss totals of this session's polyhedral memo caches.
    pub fn poly_cache_stats(&self) -> bernoulli_polyhedra::CacheStats {
        self.poly_caches.stats()
    }

    /// Drops every cached search result and polyhedral memo this
    /// session accumulated (cold-start measurements).
    pub fn clear_caches(&self) {
        self.plan_cache.clear();
        self.poly_caches.clear();
    }
}

impl Default for Session {
    fn default() -> Session {
        Session::new()
    }
}

/// Stage-3 validation shared by [`Session::bind`] and
/// [`crate::service::Service::bind`]: every bound name must be a
/// declared array, and the view's dense rank must match the array kind
/// (2 for matrices, 1 for vectors).
pub(crate) fn bind_problem(
    p: &Program,
    views: &[(&str, FormatView)],
) -> Result<BoundProblem, SynthError> {
    p.validate()?;
    for (name, view) in views {
        let decl = p.array(name).ok_or_else(|| SynthError::UnknownMatrix {
            name: name.to_string(),
        })?;
        let need = match decl.kind {
            ArrayKind::Matrix => 2,
            ArrayKind::Vector => 1,
        };
        if view.dense_attrs.len() != need {
            return Err(SynthError::Config(ConfigError(format!(
                "view {:?} for array {name:?} has {} dense attrs, \
                 but the array is declared with {need} dimension(s)",
                view.name,
                view.dense_attrs.len()
            ))));
        }
    }
    Ok(BoundProblem {
        program: p.clone(),
        views: views
            .iter()
            .map(|(n, v)| (n.to_string(), v.clone()))
            .collect(),
    })
}

/// The dependence classes of a program (stage 2 output).
#[derive(Clone, Debug)]
pub struct DepReport {
    /// Non-empty dependence classes, one per (source, destination,
    /// array) with a satisfiable constraint system.
    pub classes: Vec<DepClass>,
}

impl DepReport {
    /// Human-readable one-liners, one per class.
    pub fn describe(&self) -> Vec<String> {
        self.classes.iter().map(|c| c.describe()).collect()
    }

    pub fn len(&self) -> usize {
        self.classes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }
}

/// A validated (program, format views) pair ready to compile (stage 3
/// output). Binding is cheap; the expensive search happens in
/// [`Session::compile`].
#[derive(Clone, Debug)]
pub struct BoundProblem {
    program: Program,
    views: Vec<(String, FormatView)>,
}

impl BoundProblem {
    pub fn program(&self) -> &Program {
        &self.program
    }

    pub fn views(&self) -> &[(String, FormatView)] {
        &self.views
    }
}

/// The outcome of a successful search: ranked candidates plus the
/// search accounting, tied to the program and views they were compiled
/// for so the kernel can run or emit itself without re-supplying
/// context.
#[derive(Clone, Debug)]
pub struct CompiledKernel {
    program: Program,
    view_map: HashMap<String, FormatView>,
    report: SearchReport,
    /// Logical identity of this compile (program + views + options);
    /// also keys the on-disk kernel artifact cache.
    cache_key: String,
}

impl CompiledKernel {
    /// Assembles a kernel from a finished search; shared by
    /// [`Session::compile`] and [`crate::service::Service::compile`].
    /// Callers must have rejected empty candidate lists already
    /// ([`SynthError::NoLegalPlan`]).
    pub(crate) fn from_parts(
        program: Program,
        view_map: HashMap<String, FormatView>,
        report: SearchReport,
        cache_key: String,
    ) -> CompiledKernel {
        CompiledKernel {
            program,
            view_map,
            report,
            cache_key,
        }
    }

    /// The cheapest legal, zero-safe candidate.
    pub fn best(&self) -> &Candidate {
        // Internal invariant: `Session::compile` errors with
        // `NoLegalPlan` instead of constructing an empty kernel.
        &self.report.candidates[0]
    }

    /// The best candidate's lowered plan.
    pub fn plan(&self) -> &Plan {
        &self.best().plan
    }

    /// The best candidate's estimated cost (Fig. 11 model).
    pub fn cost(&self) -> f64 {
        self.best().cost
    }

    /// All surviving candidates, cheapest first.
    pub fn candidates(&self) -> &[Candidate] {
        &self.report.candidates
    }

    /// The full search accounting (examined/pruned counts, rejection
    /// reasons, and whether the whole result came from the plan cache).
    pub fn report(&self) -> &SearchReport {
        &self.report
    }

    /// True iff this kernel was served from the session's plan cache
    /// without searching.
    pub fn from_cache(&self) -> bool {
        self.report.plan_cache_hit
    }

    /// The program this kernel was compiled from.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The format views the kernel was compiled against.
    pub fn views(&self) -> &HashMap<String, FormatView> {
        &self.view_map
    }

    /// Executes the best plan against the environment (dynamic cursor
    /// API); unbound or mismatched operands surface as
    /// [`SynthError::Plan`].
    pub fn interpret(&self, env: &mut ExecEnv) -> Result<RunStats, SynthError> {
        Ok(run_plan(self.plan(), env)?)
    }

    /// Executes the `i`-th ranked candidate's plan (cost-model
    /// validation sweeps every candidate, not just the best).
    pub fn interpret_candidate(&self, i: usize, env: &mut ExecEnv) -> Result<RunStats, SynthError> {
        let c = self.report.candidates.get(i).ok_or_else(|| {
            SynthError::Plan(crate::interp::PlanError(format!(
                "candidate index {i} out of range ({} candidates)",
                self.report.candidates.len()
            )))
        })?;
        Ok(run_plan(&c.plan, env)?)
    }

    /// The logical cache key of this compile (program + views +
    /// options). The kernel store salts it with ABI version, generated
    /// source, and toolchain identity to name on-disk artifacts.
    pub fn cache_key(&self) -> &str {
        &self.cache_key
    }

    /// Compiles the best plan to native code at runtime and loads it:
    /// the emitted kernel is written as a self-contained cdylib crate,
    /// built with `rustc` through the default on-disk artifact store
    /// (warm artifacts skip the build entirely), and loaded behind the
    /// stable `extern "C"` ABI of [`crate::compiled`].
    pub fn load(&self) -> Result<LoadedKernel, LoadError> {
        self.load_in(&bernoulli_kernel_cache::KernelStore::default_store())
    }

    /// [`load`](CompiledKernel::load) against an explicit artifact
    /// store (tests and benchmarks point this at scratch directories).
    pub fn load_in(
        &self,
        store: &bernoulli_kernel_cache::KernelStore,
    ) -> Result<LoadedKernel, LoadError> {
        crate::compiled::load_kernel(
            &self.program,
            self.plan(),
            &self.view_map,
            &self.cache_key,
            store,
        )
    }

    /// The execution backend for this kernel: native loaded code when
    /// the host can build it, otherwise the interpreter together with
    /// the typed reason ([`LoadError`]) native loading was impossible.
    /// Never fails — degradation is part of the contract.
    pub fn backend(&self) -> KernelBackend {
        self.backend_in(&bernoulli_kernel_cache::KernelStore::default_store())
    }

    /// [`backend`](CompiledKernel::backend) against an explicit
    /// artifact store.
    pub fn backend_in(&self, store: &bernoulli_kernel_cache::KernelStore) -> KernelBackend {
        match self.load_in(store) {
            Ok(k) if k.validated() => KernelBackend::Validated(k),
            Ok(k) => KernelBackend::Compiled(k),
            Err(reason) => KernelBackend::Interpreted { reason },
        }
    }

    /// Runs the kernel through whichever backend was selected, with
    /// the *same positional call convention* on both: `params` in
    /// program order, one [`KernelArg`] per declared array. The two
    /// paths are interchangeable — the equivalence tests in
    /// `bernoulli-blas` hold them bitwise-identical.
    pub fn run_with(
        &self,
        backend: &KernelBackend,
        params: &[i64],
        args: &mut [KernelArg<'_>],
    ) -> Result<(), SynthError> {
        match backend {
            KernelBackend::Validated(k) | KernelBackend::Compiled(k) => Ok(k.run(params, args)?),
            KernelBackend::Interpreted { .. } => {
                crate::compiled::interp_positional(&self.program, self.plan(), params, args)
            }
        }
    }

    /// Specializes the best plan to a self-contained Rust module
    /// (the paper's compiler-instantiated code, Fig. 9).
    pub fn emit(&self, fn_name: &str) -> Result<String, SynthError> {
        Ok(crate::emit::emit_module(
            &self.program,
            self.plan(),
            &self.view_map,
            fn_name,
        )?)
    }

    /// Specializes the `i`-th ranked candidate's plan to a bare Rust
    /// function (no module wrapper).
    pub fn emit_candidate(&self, i: usize, fn_name: &str) -> Result<String, SynthError> {
        let c = self.report.candidates.get(i).ok_or_else(|| {
            SynthError::Emit(crate::emit::EmitError(format!(
                "candidate index {i} out of range ({} candidates)",
                self.report.candidates.len()
            )))
        })?;
        Ok(crate::emit::emit_rust(
            &self.program,
            &c.plan,
            &self.view_map,
            fn_name,
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bernoulli_formats::{Csr, SparseView, Triplets};

    const MVM: &str = "
        program mvm(M, N) {
          in matrix A[M][N];
          in vector x[N];
          inout vector y[M];
          for i in 0..M {
            for j in 0..N {
              y[i] = y[i] + A[i][j] * x[j];
            }
          }
        }
    ";

    fn csr() -> Csr {
        Csr::from_triplets(&Triplets::from_entries(
            3,
            3,
            &[(0, 0, 2.0), (1, 2, 1.0), (2, 1, 4.0)],
        ))
    }

    #[test]
    fn staged_pipeline_end_to_end() {
        let s = Session::new();
        let p = s.parse(MVM).unwrap();
        let deps = s.analyze(&p);
        assert!(!deps.is_empty(), "{:?}", deps.describe());
        let a = csr();
        let bound = s.bind(&p, &[("A", a.format_view())]).unwrap();
        let kernel = s.compile(&bound).unwrap();
        assert!(!kernel.from_cache());
        assert!(kernel.cost() > 0.0);

        let mut env = ExecEnv::new();
        env.set_param("M", 3).set_param("N", 3);
        env.bind_sparse("A", &a);
        env.bind_vec("x", vec![1.0, 2.0, 3.0]);
        env.bind_vec("y", vec![0.0; 3]);
        kernel.interpret(&mut env).unwrap();
        assert_eq!(env.take_vec("y"), vec![2.0, 3.0, 8.0]);

        let src = kernel.emit("mvm_csr").unwrap();
        assert!(src.contains("pub fn mvm_csr"), "{src}");
    }

    #[test]
    fn second_identical_compile_hits_session_plan_cache() {
        let s = Session::new();
        let p = s.parse(MVM).unwrap();
        let a = csr();
        let bound = s.bind(&p, &[("A", a.format_view())]).unwrap();
        let first = s.compile(&bound).unwrap();
        assert!(!first.from_cache());
        let second = s.compile(&bound).unwrap();
        assert!(second.from_cache(), "second identical compile must hit");
        assert_eq!(first.cost(), second.cost());
        let stats = s.plan_cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // Session caches are independent: a fresh session starts cold.
        let fresh = Session::new();
        let b2 = fresh.bind(&p, &[("A", a.format_view())]).unwrap();
        assert!(!fresh.compile(&b2).unwrap().from_cache());
        // The polyhedral work accrued to the sessions' own caches.
        let poly = s.poly_cache_stats();
        assert!(poly.empty_hits + poly.empty_misses > 0, "{poly:?}");
    }

    #[test]
    fn bind_rejects_unknown_matrix_and_rank_mismatch() {
        let s = Session::new();
        let p = s.parse(MVM).unwrap();
        let a = csr();
        match s.bind(&p, &[("B", a.format_view())]) {
            Err(SynthError::UnknownMatrix { name }) => assert_eq!(name, "B"),
            other => panic!("expected UnknownMatrix, got {other:?}"),
        }
        // A 2-d view bound to the 1-d vector x: rank disagreement.
        match s.bind(&p, &[("x", a.format_view())]) {
            Err(SynthError::Config(e)) => assert!(e.0.contains("dense attrs"), "{e}"),
            other => panic!("expected Config error, got {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_malformed_and_invalid_programs() {
        let s = Session::new();
        match s.parse("program p( {") {
            Err(SynthError::InvalidProgram(bernoulli_ir::IrError::Parse(e))) => {
                assert!(e.line >= 1)
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        // Syntactically fine, semantically invalid (undeclared array).
        match s.parse("program p(N) { for i in 0..N { z[i] = 1; } }") {
            Err(SynthError::InvalidProgram(bernoulli_ir::IrError::Validate(e))) => {
                assert!(e.0.contains("\"z\""), "{e}")
            }
            other => panic!("expected validate error, got {other:?}"),
        }
    }
}
