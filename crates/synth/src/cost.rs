//! Cost estimation for enumeration-based plans (paper §4.2, Fig. 11).
//!
//! The model follows the paper's structure: the cost of a loop is its
//! expected trip count times the cost of its body (`EnumCost`), searches
//! contribute `SearchCost` per evaluation depending on the search kind,
//! common enumerations contribute `CommonEnumCost`, and guards cost 1.
//! Trip counts come from [`WorkloadStats`]: per-matrix row/column/nonzero
//! estimates plus parameter size estimates.

use crate::config::Config;
use crate::plan::{Plan, StepKind};
use bernoulli_formats::view::SearchKind;
use bernoulli_ir::Program;
use std::collections::HashMap;

/// Workload statistics driving the cost model.
#[derive(Clone, Debug)]
pub struct WorkloadStats {
    /// Estimated value of each symbolic parameter.
    pub params: HashMap<String, f64>,
    /// Per matrix: (rows, cols, nnz) estimates.
    pub matrices: HashMap<String, (f64, f64, f64)>,
    /// Defaults used for anything not listed.
    pub default_n: f64,
    pub default_nnz_per_row: f64,
}

impl Default for WorkloadStats {
    fn default() -> Self {
        WorkloadStats {
            params: HashMap::new(),
            matrices: HashMap::new(),
            default_n: 1000.0,
            default_nnz_per_row: 10.0,
        }
    }
}

impl WorkloadStats {
    /// Derives the statistics from measured instance structure: each
    /// `(name, features)` operand contributes its exact row/column/nnz
    /// counts, `default_n` becomes the largest dimension seen (so
    /// unnamed loop parameters like `N`/`M` resolve to the instance
    /// scale), and `default_nnz_per_row` the measured mean. This is the
    /// structure-aware replacement for hand-written stats literals:
    /// every derived value is a deterministic function of the instance,
    /// so plan-cache keys stay stable across runs.
    pub fn from_features(operands: &[(&str, &bernoulli_formats::StructureFeatures)]) -> Self {
        let mut stats = WorkloadStats::default();
        let mut dim = 0.0f64;
        let mut rows = 0.0f64;
        let mut nnz = 0.0f64;
        for &(name, f) in operands {
            stats = stats.with_matrix(name, f.nrows as f64, f.ncols as f64, f.nnz as f64);
            dim = dim.max(f.nrows as f64).max(f.ncols as f64);
            rows += f.nrows as f64;
            nnz += f.nnz as f64;
        }
        if dim > 0.0 {
            stats.default_n = dim;
        }
        if rows > 0.0 {
            stats.default_nnz_per_row = (nnz / rows).max(1.0);
        }
        stats
    }

    /// Sets a parameter estimate.
    pub fn with_param(mut self, name: &str, v: f64) -> Self {
        self.params.insert(name.to_string(), v);
        self
    }

    /// Sets a matrix estimate.
    pub fn with_matrix(mut self, name: &str, rows: f64, cols: f64, nnz: f64) -> Self {
        self.matrices.insert(name.to_string(), (rows, cols, nnz));
        self
    }

    fn mat(&self, name: &str) -> (f64, f64, f64) {
        self.matrices.get(name).copied().unwrap_or((
            self.default_n,
            self.default_n,
            self.default_n * self.default_nnz_per_row,
        ))
    }

    fn param(&self, name: &str) -> f64 {
        self.params.get(name).copied().unwrap_or(self.default_n)
    }
}

/// Cost of a search by kind over a level of expected size `k`.
fn search_cost(kind: SearchKind, k: f64) -> f64 {
    match kind {
        SearchKind::Direct => 1.0,
        SearchKind::Hash => 1.5,
        SearchKind::Sorted => (k + 2.0).log2().max(1.0),
        SearchKind::Linear => (k / 2.0).max(1.0),
        SearchKind::None => f64::INFINITY,
    }
}

/// Expected number of entries enumerated at `level` of a ref's chain,
/// *per position of its parent*.
fn level_trip(cfg: &Config, stats: &WorkloadStats, ref_id: usize, level: usize) -> f64 {
    let r = &cfg.refs[ref_id];
    let (rows, cols, nnz) = stats.mat(&r.matrix);
    let chain = &r.chain;
    // Total entries enumerated at a level = nnz for the innermost level;
    // interval levels have their attr extent; outer compressed levels get
    // nnz divided by the product of inner interval extents.
    let extent = |l: usize| -> f64 {
        let lev = &chain.levels[l];
        let attr = lev.attrs.first().map(|s| s.as_str()).unwrap_or("r");
        match attr {
            "r" | "i" | "rr" => rows,
            "c" | "o" => cols,
            _ => rows,
        }
    };
    let total_at = |l: usize| -> f64 {
        if chain.levels[l].interval {
            // parent count * extent, capped by sensible magnitude
            let mut t = extent(l);
            for ll in 0..l {
                if chain.levels[ll].interval {
                    t *= extent(ll);
                } else {
                    t *= (total_at_compressed(ll, chain, nnz, &extent)).max(1.0);
                    // avoid deep recursion; one compressed ancestor is the
                    // realistic case
                    break;
                }
            }
            t
        } else {
            total_at_compressed(l, chain, nnz, &extent)
        }
    };
    fn total_at_compressed(
        l: usize,
        chain: &bernoulli_formats::view::Chain,
        nnz: f64,
        extent: &dyn Fn(usize) -> f64,
    ) -> f64 {
        // nnz divided by the extents of the inner interval levels.
        let mut t = nnz;
        for ll in (l + 1)..chain.levels.len() {
            if chain.levels[ll].interval {
                t /= extent(ll).max(1.0);
            }
        }
        t.max(1.0)
    }
    let this_total = total_at(level);
    if level == 0 {
        this_total
    } else {
        (this_total / total_at(level - 1).max(1.0)).max(1.0)
    }
}

/// A cheap admissible lower bound on [`estimate_cost`] over every plan
/// that lowering can produce for `(cfg, space, groups)` — the
/// branch-and-bound oracle of the search (S34).
///
/// Each stepped group becomes one plan step, and [`estimate_cost`]
/// multiplies the statement body (≥ 1 unit per execution) by every
/// step's subtree trip count. Whatever enumeration the lowerer picks
/// for a group, that step's subtree count is at least the *smallest*
/// trip among the group's member dimensions: a `Level` step iterates
/// its primary's trips (a member), a `MergeJoin` subtree is the min of
/// its two sides (both members), and an `Interval` walks a dense
/// extent, which the per-factor min against the parameter estimates
/// covers. So the product over stepped groups of the per-group minimum
/// trip is a true floor on the final multiplicity — and it *varies with
/// the dimension order*, which is what lets branch-and-bound fire:
/// cross-product-shaped orders get floors far above the costs of the
/// nnz-shaped orders already kept.
///
/// Conservative clamps keep the bound admissible: iteration dimensions
/// contribute 1, a `(ref, level)` already positioned by an earlier
/// group contributes 1 (it will not be re-enumerated), and degenerate
/// (non-finite) statistics return 0 — a floor that never prunes.
pub fn cost_floor(
    cfg: &Config,
    space: &crate::spaces::Space,
    groups: &crate::groups::GroupInfo,
    stats: &WorkloadStats,
) -> f64 {
    use crate::spaces::DimKind;
    let sane = stats.default_n.is_finite()
        && stats.params.values().all(|v| v.is_finite())
        && cfg.refs.iter().all(|r| {
            let (rows, cols, nnz) = stats.mat(&r.matrix);
            rows.is_finite() && cols.is_finite() && nnz.is_finite()
        });
    if !sane {
        return 0.0;
    }
    let params_min = stats.params.values().fold(f64::INFINITY, |a, &b| a.min(b));
    let mut floor = 1.0f64;
    let mut positioned: Vec<(usize, usize)> = Vec::new();
    for gi in groups.stepped_groups() {
        let members = &groups.groups[gi];
        let mut factor = f64::INFINITY;
        for &d in members {
            match space.dims[d].kind {
                DimKind::Iter { .. } => factor = 1.0,
                DimKind::Data { ref_id, dim_idx } => {
                    let level = cfg.refs[ref_id].dims[dim_idx].level;
                    if positioned.contains(&(ref_id, level)) {
                        factor = 1.0;
                    } else {
                        let t = level_trip(cfg, stats, ref_id, level).min(params_min);
                        factor = factor.min(t.max(1.0));
                    }
                }
            }
            if factor <= 1.0 {
                break;
            }
        }
        for &d in members {
            if let DimKind::Data { ref_id, dim_idx } = space.dims[d].kind {
                positioned.push((ref_id, cfg.refs[ref_id].dims[dim_idx].level));
            }
        }
        if factor.is_finite() {
            floor *= factor;
        }
    }
    floor
}

/// Estimates the cost of a plan (abstract time units).
pub fn estimate_cost(p: &Program, cfg: &Config, plan: &Plan, stats: &WorkloadStats) -> f64 {
    let _ = p;
    let mut total = 0.0;
    let mut mult = 1.0;
    for step in &plan.steps {
        let (iters, per_iter) = match &step.kind {
            StepKind::Interval { lo, hi } => {
                let span = estimate_pexpr(hi, stats) - estimate_pexpr(lo, stats);
                (span.max(1.0), 1.0)
            }
            StepKind::Level { primary, perms } => {
                let trips = level_trip(cfg, stats, primary.ref_id, primary.level);
                let perm_cost = perms.iter().filter(|p| p.is_some()).count() as f64;
                (trips, 1.0 + perm_cost)
            }
            StepKind::MergeJoin { a, b } => {
                let ka = level_trip(cfg, stats, a.ref_id, a.level);
                let kb = level_trip(cfg, stats, b.ref_id, b.level);
                // Both sides are walked once; matches bound the subtree.
                (ka + kb, 1.0)
            }
        };
        // Searches run once per iteration of this step.
        let mut s_cost = 0.0;
        for sp in &step.searches {
            let r = &cfg.refs[sp.target.ref_id];
            let k = level_trip(cfg, stats, sp.target.ref_id, sp.target.level);
            let kind = r.chain.levels[sp.target.level].search;
            let perm_extra = sp.keys.iter().filter(|(_, p)| p.is_some()).count() as f64;
            s_cost += search_cost(kind, k) + perm_extra;
        }
        total += mult * iters * (per_iter + s_cost);
        // Subtree multiplicity: for a merge join the subtree runs at most
        // min(ka, kb) times.
        let subtree_iters = match &step.kind {
            StepKind::MergeJoin { a, b } => level_trip(cfg, stats, a.ref_id, a.level)
                .min(level_trip(cfg, stats, b.ref_id, b.level)),
            _ => iters,
        };
        mult *= subtree_iters.max(1.0);
    }
    // Innermost: guards + statement executions.
    let mut body = 0.0;
    for e in &plan.execs {
        body += 1.0 + e.guards.len() as f64 * 0.5 + e.bindings.len() as f64 * 0.1;
    }
    total + mult * body
}

fn estimate_pexpr(e: &crate::plan::PExpr, stats: &WorkloadStats) -> f64 {
    use crate::plan::Atom;
    let mut acc = e.cst as f64;
    for (a, c) in &e.terms {
        let v = match a {
            Atom::Var(n) => stats.param(n),
            // A slot in a bound: mid-range heuristic.
            Atom::Slot(_) => stats.default_n / 2.0,
        };
        acc += *c as f64 * v;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_cost_ordering() {
        assert!(search_cost(SearchKind::Direct, 100.0) < search_cost(SearchKind::Sorted, 100.0));
        assert!(search_cost(SearchKind::Sorted, 100.0) < search_cost(SearchKind::Linear, 100.0));
        assert!(search_cost(SearchKind::None, 100.0).is_infinite());
    }

    #[test]
    fn derived_stats_match_instance() {
        use bernoulli_formats::{gen, StructureFeatures};
        let t = gen::banded(64, 2, 1);
        let a = StructureFeatures::of_triplets(&t);
        let s = WorkloadStats::from_features(&[("A", &a)]);
        assert_eq!(s.mat("A"), (64.0, 64.0, t.nnz() as f64));
        // Unnamed loop parameters resolve to the instance dimension.
        assert_eq!(s.param("N"), 64.0);
        assert_eq!(s.param("M"), 64.0);
        // Deterministic: same instance, identical derivation.
        let s2 = WorkloadStats::from_features(&[("A", &a)]);
        assert_eq!(s.mat("A"), s2.mat("A"));
        assert_eq!(s.default_n.to_bits(), s2.default_n.to_bits());
        assert_eq!(
            s.default_nnz_per_row.to_bits(),
            s2.default_nnz_per_row.to_bits()
        );
    }

    #[test]
    fn stats_defaults() {
        let s = WorkloadStats::default();
        assert_eq!(s.mat("A"), (1000.0, 1000.0, 10000.0));
        assert_eq!(s.param("N"), 1000.0);
        let s2 = s.with_param("N", 64.0).with_matrix("A", 64.0, 64.0, 300.0);
        assert_eq!(s2.param("N"), 64.0);
        assert_eq!(s2.mat("A"), (64.0, 64.0, 300.0));
    }
}
