//! Persistent plan cache (S38): completed whole-search results
//! serialized to disk, keyed by the in-memory plan-cache key, so a
//! restarted compile service warm-starts instead of re-searching.
//!
//! This sits beside the compiled-artifact store from S37
//! ([`bernoulli_kernel_cache`]): that one persists *machine code* keyed
//! by emitted source, this one persists the *search result* (ranked
//! candidate plans plus accounting) keyed by (program, views,
//! statistics, knobs). A warm-started service deserializes the ranked
//! plans in microseconds, promotes them into the in-memory cache, and
//! serves the request without running a single polyhedral decision.
//!
//! ## Format
//!
//! One file per key, named `plan-<fnv64(key)>.bsp`, containing a single
//! S-expression: `(bernoulli-plan-cache <version> <key> <entry> <emit>)`.
//! The serializer is hand-rolled (the workspace builds offline, no
//! serde): integers are decimal, `f64`s are written as `f`+16 hex
//! digits of their bit pattern (exact round-trip, NaN-safe), strings
//! are quoted with `\`-escapes, and every struct/enum is a positional
//! (sometimes tagged) list. `<emit>` is the best candidate's emitted
//! kernel module, stored so a warm-start can hand out source without
//! re-running the emitter and so tests can verify round-trip fidelity.
//!
//! ## Integrity
//!
//! Loads are defensive, never trusted: the version header must match,
//! the stored key must equal the requested key byte-for-byte (file
//! names are 64-bit hashes, so collisions fall back to a miss, not a
//! wrong plan), and any parse failure — truncation, corruption, a file
//! from an older layout — counts an error and behaves as a miss. The
//! cache is an optimization tier; correctness never depends on it.
//! Writes go to a unique temp file first and are atomically renamed
//! into place, so concurrent services sharing one directory only ever
//! observe complete entries.

use crate::plan::{Atom, Dir, ExecStmt, Guard, LevelRef, PExpr, Plan, PlanRef};
use crate::plan::{SearchPart, Step, StepKind, ValueSource};
use crate::search::{CachedSearch, Candidate};
use bernoulli_formats::view::FormatView;
use bernoulli_ir::{AffineExpr, LhsRef, Program, Statement, ValueExpr};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Bumped whenever the on-disk layout changes; older files are treated
/// as misses and eventually overwritten.
const FORMAT_VERSION: i64 = 1;

/// Parser recursion guard: a corrupted file must fail cleanly, not
/// overflow the stack. Real plans nest a few levels deep at most.
const MAX_DEPTH: usize = 96;

// ---------------------------------------------------------------------
// Value model + writer + parser
// ---------------------------------------------------------------------

/// The serialization value model: everything a plan contains lowers to
/// integers, bit-exact floats, strings and lists.
#[derive(Clone, Debug, PartialEq)]
enum V {
    I(i64),
    F(u64),
    S(String),
    L(Vec<V>),
}

fn write_v(out: &mut String, v: &V) {
    match v {
        V::I(i) => {
            out.push_str(&i.to_string());
        }
        V::F(bits) => {
            out.push('f');
            out.push_str(&format!("{bits:016x}"));
        }
        V::S(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    _ => out.push(c),
                }
            }
            out.push('"');
        }
        V::L(items) => {
            out.push('(');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                write_v(out, item);
            }
            out.push(')');
        }
    }
}

/// A typed, descriptive deserialization failure. Internal — the public
/// surface converts any failure into "miss".
#[derive(Debug)]
struct ParseFail(String);

impl ParseFail {
    /// The diagnostic text (kept by the store as
    /// [`PersistentPlanCache::last_error`]).
    fn message(&self) -> &str {
        &self.0
    }
}

type PResult<T> = Result<T, ParseFail>;

fn fail<T>(msg: impl Into<String>) -> PResult<T> {
    Err(ParseFail(msg.into()))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn value(&mut self, depth: usize) -> PResult<V> {
        if depth > MAX_DEPTH {
            return fail("nesting too deep");
        }
        self.skip_ws();
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let mut items = Vec::new();
                loop {
                    self.skip_ws();
                    match self.peek() {
                        Some(b')') => {
                            self.pos += 1;
                            return Ok(V::L(items));
                        }
                        Some(_) => items.push(self.value(depth + 1)?),
                        None => return fail("unterminated list"),
                    }
                }
            }
            Some(b'"') => {
                self.pos += 1;
                let mut s = String::new();
                loop {
                    match self.peek() {
                        Some(b'"') => {
                            self.pos += 1;
                            return Ok(V::S(s));
                        }
                        Some(b'\\') => {
                            self.pos += 1;
                            match self.peek() {
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                Some(b'n') => s.push('\n'),
                                _ => return fail("bad escape"),
                            }
                            self.pos += 1;
                        }
                        Some(_) => {
                            // Consume one full UTF-8 scalar.
                            let start = self.pos;
                            let mut end = start + 1;
                            while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                                end += 1;
                            }
                            match std::str::from_utf8(&self.bytes[start..end]) {
                                Ok(frag) => s.push_str(frag),
                                Err(_) => return fail("invalid utf-8 in string"),
                            }
                            self.pos = end;
                        }
                        None => return fail("unterminated string"),
                    }
                }
            }
            Some(b'f') => {
                let start = self.pos + 1;
                let end = start + 16;
                if end > self.bytes.len() {
                    return fail("truncated float");
                }
                let hex = match std::str::from_utf8(&self.bytes[start..end]) {
                    Ok(h) => h,
                    Err(_) => return fail("bad float bytes"),
                };
                match u64::from_str_radix(hex, 16) {
                    Ok(bits) => {
                        self.pos = end;
                        Ok(V::F(bits))
                    }
                    Err(_) => fail("bad float hex"),
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.pos;
                self.pos += 1;
                while self.peek().map(|c| c.is_ascii_digit()).unwrap_or(false) {
                    self.pos += 1;
                }
                let txt = match std::str::from_utf8(&self.bytes[start..self.pos]) {
                    Ok(t) => t,
                    Err(_) => return fail("bad integer bytes"),
                };
                match txt.parse::<i64>() {
                    Ok(i) => Ok(V::I(i)),
                    Err(_) => fail("bad integer"),
                }
            }
            Some(c) => fail(format!("unexpected byte {c:#x}")),
            None => fail("unexpected end of input"),
        }
    }
}

fn parse_top(s: &str) -> PResult<V> {
    let mut p = Parser::new(s);
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return fail("trailing garbage after top-level value");
    }
    Ok(v)
}

// ---------------------------------------------------------------------
// Accessor helpers for decoding
// ---------------------------------------------------------------------

fn as_list(v: &V) -> PResult<&[V]> {
    match v {
        V::L(items) => Ok(items),
        other => fail(format!("expected list, got {other:?}")),
    }
}

fn as_fixed<const N: usize>(v: &V) -> PResult<&[V; N]> {
    let items = as_list(v)?;
    match <&[V; N]>::try_from(items) {
        Ok(arr) => Ok(arr),
        Err(_) => fail(format!("expected {N}-list, got {}-list", items.len())),
    }
}

fn as_i64(v: &V) -> PResult<i64> {
    match v {
        V::I(i) => Ok(*i),
        other => fail(format!("expected int, got {other:?}")),
    }
}

fn as_usize(v: &V) -> PResult<usize> {
    let i = as_i64(v)?;
    usize::try_from(i).map_err(|_| ParseFail(format!("expected usize, got {i}")))
}

fn as_bool(v: &V) -> PResult<bool> {
    match as_i64(v)? {
        0 => Ok(false),
        1 => Ok(true),
        other => fail(format!("expected bool 0/1, got {other}")),
    }
}

fn as_f64(v: &V) -> PResult<f64> {
    match v {
        V::F(bits) => Ok(f64::from_bits(*bits)),
        other => fail(format!("expected float, got {other:?}")),
    }
}

fn as_str(v: &V) -> PResult<&str> {
    match v {
        V::S(s) => Ok(s),
        other => fail(format!("expected string, got {other:?}")),
    }
}

fn dec_vec<T>(v: &V, f: impl Fn(&V) -> PResult<T>) -> PResult<Vec<T>> {
    as_list(v)?.iter().map(f).collect()
}

fn enc_opt<T>(o: &Option<T>, f: impl Fn(&T) -> V) -> V {
    match o {
        None => V::L(vec![]),
        Some(x) => V::L(vec![f(x)]),
    }
}

fn dec_opt<T>(v: &V, f: impl Fn(&V) -> PResult<T>) -> PResult<Option<T>> {
    let items = as_list(v)?;
    match items {
        [] => Ok(None),
        [x] => Ok(Some(f(x)?)),
        _ => fail("expected 0- or 1-list for option"),
    }
}

fn enc_string(s: &str) -> V {
    V::S(s.to_string())
}

// ---------------------------------------------------------------------
// Plan-tree encoders/decoders (positional lists, tags where variants)
// ---------------------------------------------------------------------

fn enc_atom(a: &Atom) -> V {
    match a {
        Atom::Slot(i) => V::L(vec![V::S("s".into()), V::I(*i as i64)]),
        Atom::Var(n) => V::L(vec![V::S("v".into()), enc_string(n)]),
    }
}

fn dec_atom(v: &V) -> PResult<Atom> {
    let [tag, payload] = as_fixed::<2>(v)?;
    match as_str(tag)? {
        "s" => Ok(Atom::Slot(as_usize(payload)?)),
        "v" => Ok(Atom::Var(as_str(payload)?.to_string())),
        other => fail(format!("unknown atom tag {other:?}")),
    }
}

fn enc_pexpr(e: &PExpr) -> V {
    V::L(vec![
        V::L(
            e.terms
                .iter()
                .map(|(a, c)| V::L(vec![enc_atom(a), V::I(*c)]))
                .collect(),
        ),
        V::I(e.cst),
    ])
}

fn dec_pexpr(v: &V) -> PResult<PExpr> {
    let [terms, cst] = as_fixed::<2>(v)?;
    Ok(PExpr {
        terms: dec_vec(terms, |t| {
            let [a, c] = as_fixed::<2>(t)?;
            Ok((dec_atom(a)?, as_i64(c)?))
        })?,
        cst: as_i64(cst)?,
    })
}

fn enc_levelref(r: &LevelRef) -> V {
    V::L(vec![
        enc_string(&r.matrix),
        V::I(r.ref_id as i64),
        V::I(r.chain as i64),
        V::I(r.level as i64),
    ])
}

fn dec_levelref(v: &V) -> PResult<LevelRef> {
    let [matrix, ref_id, chain, level] = as_fixed::<4>(v)?;
    Ok(LevelRef {
        matrix: as_str(matrix)?.to_string(),
        ref_id: as_usize(ref_id)?,
        chain: as_usize(chain)?,
        level: as_usize(level)?,
    })
}

fn enc_pairs(pairs: &[(usize, usize)]) -> V {
    V::L(
        pairs
            .iter()
            .map(|(a, b)| V::L(vec![V::I(*a as i64), V::I(*b as i64)]))
            .collect(),
    )
}

fn dec_pairs(v: &V) -> PResult<Vec<(usize, usize)>> {
    dec_vec(v, |p| {
        let [a, b] = as_fixed::<2>(p)?;
        Ok((as_usize(a)?, as_usize(b)?))
    })
}

fn enc_searchpart(s: &SearchPart) -> V {
    V::L(vec![
        enc_levelref(&s.target),
        V::L(
            s.keys
                .iter()
                .map(|(e, perm)| V::L(vec![enc_pexpr(e), enc_opt(perm, |p| enc_string(p))]))
                .collect(),
        ),
        enc_pairs(&s.sharers),
    ])
}

fn dec_searchpart(v: &V) -> PResult<SearchPart> {
    let [target, keys, sharers] = as_fixed::<3>(v)?;
    Ok(SearchPart {
        target: dec_levelref(target)?,
        keys: dec_vec(keys, |k| {
            let [e, perm] = as_fixed::<2>(k)?;
            Ok((
                dec_pexpr(e)?,
                dec_opt(perm, |p| Ok(as_str(p)?.to_string()))?,
            ))
        })?,
        sharers: dec_pairs(sharers)?,
    })
}

fn enc_stepkind(k: &StepKind) -> V {
    match k {
        StepKind::Interval { lo, hi } => {
            V::L(vec![V::S("iv".into()), enc_pexpr(lo), enc_pexpr(hi)])
        }
        StepKind::Level { primary, perms } => V::L(vec![
            V::S("lv".into()),
            enc_levelref(primary),
            V::L(
                perms
                    .iter()
                    .map(|p| enc_opt(p, |s| enc_string(s)))
                    .collect(),
            ),
        ]),
        StepKind::MergeJoin { a, b } => {
            V::L(vec![V::S("mj".into()), enc_levelref(a), enc_levelref(b)])
        }
    }
}

fn dec_stepkind(v: &V) -> PResult<StepKind> {
    let items = as_list(v)?;
    let tag = match items.first() {
        Some(t) => as_str(t)?,
        None => return fail("empty step kind"),
    };
    match (tag, items) {
        ("iv", [_, lo, hi]) => Ok(StepKind::Interval {
            lo: dec_pexpr(lo)?,
            hi: dec_pexpr(hi)?,
        }),
        ("lv", [_, primary, perms]) => Ok(StepKind::Level {
            primary: dec_levelref(primary)?,
            perms: dec_vec(perms, |p| dec_opt(p, |s| Ok(as_str(s)?.to_string())))?,
        }),
        ("mj", [_, a, b]) => Ok(StepKind::MergeJoin {
            a: dec_levelref(a)?,
            b: dec_levelref(b)?,
        }),
        _ => fail(format!("unknown step kind {tag:?}")),
    }
}

fn enc_step(s: &Step) -> V {
    V::L(vec![
        enc_stepkind(&s.kind),
        V::I(match s.dir {
            Dir::Fwd => 0,
            Dir::Rev => 1,
        }),
        V::I(s.ordered as i64),
        V::I(s.first_slot as i64),
        V::I(s.nslots as i64),
        enc_pairs(&s.sharers),
        V::L(s.searches.iter().map(enc_searchpart).collect()),
        V::L(s.binds.iter().map(|b| enc_string(b)).collect()),
    ])
}

fn dec_step(v: &V) -> PResult<Step> {
    let [kind, dir, ordered, first_slot, nslots, sharers, searches, binds] = as_fixed::<8>(v)?;
    Ok(Step {
        kind: dec_stepkind(kind)?,
        dir: match as_i64(dir)? {
            0 => Dir::Fwd,
            1 => Dir::Rev,
            other => return fail(format!("bad dir {other}")),
        },
        ordered: as_bool(ordered)?,
        first_slot: as_usize(first_slot)?,
        nslots: as_usize(nslots)?,
        sharers: dec_pairs(sharers)?,
        searches: dec_vec(searches, dec_searchpart)?,
        binds: dec_vec(binds, |b| Ok(as_str(b)?.to_string()))?,
    })
}

fn enc_guard(g: &Guard) -> V {
    match g {
        Guard::Eq(e) => V::L(vec![V::S("eq".into()), enc_pexpr(e)]),
        Guard::Ge(e) => V::L(vec![V::S("ge".into()), enc_pexpr(e)]),
        Guard::Divides(e, d) => V::L(vec![V::S("dv".into()), enc_pexpr(e), V::I(*d)]),
    }
}

fn dec_guard(v: &V) -> PResult<Guard> {
    let items = as_list(v)?;
    let tag = match items.first() {
        Some(t) => as_str(t)?,
        None => return fail("empty guard"),
    };
    match (tag, items) {
        ("eq", [_, e]) => Ok(Guard::Eq(dec_pexpr(e)?)),
        ("ge", [_, e]) => Ok(Guard::Ge(dec_pexpr(e)?)),
        ("dv", [_, e, d]) => Ok(Guard::Divides(dec_pexpr(e)?, as_i64(d)?)),
        _ => fail(format!("unknown guard {tag:?}")),
    }
}

fn enc_source(s: &ValueSource) -> V {
    match s {
        ValueSource::Position { ref_id } => V::L(vec![V::S("pos".into()), V::I(*ref_id as i64)]),
        ValueSource::Random { ref_id } => V::L(vec![V::S("rnd".into()), V::I(*ref_id as i64)]),
    }
}

fn dec_source(v: &V) -> PResult<ValueSource> {
    let [tag, rid] = as_fixed::<2>(v)?;
    match as_str(tag)? {
        "pos" => Ok(ValueSource::Position {
            ref_id: as_usize(rid)?,
        }),
        "rnd" => Ok(ValueSource::Random {
            ref_id: as_usize(rid)?,
        }),
        other => fail(format!("unknown source {other:?}")),
    }
}

fn enc_affine(e: &AffineExpr) -> V {
    V::L(vec![
        V::L(
            e.terms()
                .map(|(n, c)| V::L(vec![enc_string(n), V::I(c)]))
                .collect(),
        ),
        V::I(e.cst()),
    ])
}

fn dec_affine(v: &V) -> PResult<AffineExpr> {
    let [terms, cst] = as_fixed::<2>(v)?;
    let pairs: Vec<(String, i64)> = dec_vec(terms, |t| {
        let [n, c] = as_fixed::<2>(t)?;
        Ok((as_str(n)?.to_string(), as_i64(c)?))
    })?;
    let borrowed: Vec<(&str, i64)> = pairs.iter().map(|(n, c)| (n.as_str(), *c)).collect();
    Ok(AffineExpr::from_terms(&borrowed, as_i64(cst)?))
}

fn enc_lhsref(l: &LhsRef) -> V {
    V::L(vec![
        enc_string(&l.array),
        V::L(l.idxs.iter().map(enc_affine).collect()),
    ])
}

fn dec_lhsref(v: &V) -> PResult<LhsRef> {
    let [array, idxs] = as_fixed::<2>(v)?;
    Ok(LhsRef {
        array: as_str(array)?.to_string(),
        idxs: dec_vec(idxs, dec_affine)?,
    })
}

fn enc_vexpr(e: &ValueExpr) -> V {
    match e {
        ValueExpr::Const(c) => V::L(vec![V::S("c".into()), V::F(c.to_bits())]),
        ValueExpr::Read(l) => V::L(vec![V::S("r".into()), enc_lhsref(l)]),
        ValueExpr::Add(a, b) => V::L(vec![V::S("+".into()), enc_vexpr(a), enc_vexpr(b)]),
        ValueExpr::Sub(a, b) => V::L(vec![V::S("-".into()), enc_vexpr(a), enc_vexpr(b)]),
        ValueExpr::Mul(a, b) => V::L(vec![V::S("*".into()), enc_vexpr(a), enc_vexpr(b)]),
        ValueExpr::Div(a, b) => V::L(vec![V::S("/".into()), enc_vexpr(a), enc_vexpr(b)]),
        ValueExpr::Neg(a) => V::L(vec![V::S("n".into()), enc_vexpr(a)]),
    }
}

fn dec_vexpr(v: &V) -> PResult<ValueExpr> {
    let items = as_list(v)?;
    let tag = match items.first() {
        Some(t) => as_str(t)?,
        None => return fail("empty value expr"),
    };
    let bin = |a: &V, b: &V| -> PResult<(Box<ValueExpr>, Box<ValueExpr>)> {
        Ok((Box::new(dec_vexpr(a)?), Box::new(dec_vexpr(b)?)))
    };
    match (tag, items) {
        ("c", [_, bits]) => Ok(ValueExpr::Const(as_f64(bits)?)),
        ("r", [_, l]) => Ok(ValueExpr::Read(dec_lhsref(l)?)),
        ("+", [_, a, b]) => bin(a, b).map(|(a, b)| ValueExpr::Add(a, b)),
        ("-", [_, a, b]) => bin(a, b).map(|(a, b)| ValueExpr::Sub(a, b)),
        ("*", [_, a, b]) => bin(a, b).map(|(a, b)| ValueExpr::Mul(a, b)),
        ("/", [_, a, b]) => bin(a, b).map(|(a, b)| ValueExpr::Div(a, b)),
        ("n", [_, a]) => Ok(ValueExpr::Neg(Box::new(dec_vexpr(a)?))),
        _ => fail(format!("unknown value expr {tag:?}")),
    }
}

fn enc_exec(e: &ExecStmt) -> V {
    V::L(vec![
        V::I(e.stmt as i64),
        V::I(e.orig as i64),
        V::L(vec![enc_lhsref(&e.body.lhs), enc_vexpr(&e.body.rhs)]),
        V::L(
            e.bindings
                .iter()
                .map(|(n, x, d)| V::L(vec![enc_string(n), enc_pexpr(x), V::I(*d)]))
                .collect(),
        ),
        V::L(e.guards.iter().map(enc_guard).collect()),
        V::L(e.sources.iter().map(|s| enc_opt(s, enc_source)).collect()),
        V::L(e.required_refs.iter().map(|r| V::I(*r as i64)).collect()),
        V::I(e.depth as i64),
        V::I(e.after as i64),
    ])
}

fn dec_exec(v: &V) -> PResult<ExecStmt> {
    let [stmt, orig, body, bindings, guards, sources, required_refs, depth, after] =
        as_fixed::<9>(v)?;
    let [lhs, rhs] = as_fixed::<2>(body)?;
    Ok(ExecStmt {
        stmt: as_usize(stmt)?,
        orig: as_usize(orig)?,
        body: Statement {
            lhs: dec_lhsref(lhs)?,
            rhs: dec_vexpr(rhs)?,
        },
        bindings: dec_vec(bindings, |b| {
            let [n, x, d] = as_fixed::<3>(b)?;
            Ok((as_str(n)?.to_string(), dec_pexpr(x)?, as_i64(d)?))
        })?,
        guards: dec_vec(guards, dec_guard)?,
        sources: dec_vec(sources, |s| dec_opt(s, dec_source))?,
        required_refs: dec_vec(required_refs, as_usize)?,
        depth: as_usize(depth)?,
        after: as_bool(after)?,
    })
}

fn enc_planref(r: &PlanRef) -> V {
    V::L(vec![
        enc_string(&r.matrix),
        V::I(r.chain as i64),
        V::I(r.levels as i64),
        V::L(r.access.iter().map(enc_pexpr).collect()),
    ])
}

fn dec_planref(v: &V) -> PResult<PlanRef> {
    let [matrix, chain, levels, access] = as_fixed::<4>(v)?;
    Ok(PlanRef {
        matrix: as_str(matrix)?.to_string(),
        chain: as_usize(chain)?,
        levels: as_usize(levels)?,
        access: dec_vec(access, dec_pexpr)?,
    })
}

fn enc_plan(p: &Plan) -> V {
    V::L(vec![
        V::L(p.steps.iter().map(enc_step).collect()),
        V::L(p.execs.iter().map(enc_exec).collect()),
        V::L(p.refs.iter().map(enc_planref).collect()),
        enc_string(&p.space_desc),
        V::I(p.nslots as i64),
        V::L(p.notes.iter().map(|n| enc_string(n)).collect()),
    ])
}

fn dec_plan(v: &V) -> PResult<Plan> {
    let [steps, execs, refs, space_desc, nslots, notes] = as_fixed::<6>(v)?;
    Ok(Plan {
        steps: dec_vec(steps, dec_step)?,
        execs: dec_vec(execs, dec_exec)?,
        refs: dec_vec(refs, dec_planref)?,
        space_desc: as_str(space_desc)?.to_string(),
        nslots: as_usize(nslots)?,
        notes: dec_vec(notes, |n| Ok(as_str(n)?.to_string()))?,
    })
}

fn enc_candidate(c: &Candidate) -> V {
    V::L(vec![
        enc_plan(&c.plan),
        V::F(c.cost.to_bits()),
        V::L(
            c.choices
                .iter()
                .map(|(m, a)| V::L(vec![enc_string(m), V::I(*a as i64)]))
                .collect(),
        ),
        V::L(c.safety_notes.iter().map(|n| enc_string(n)).collect()),
    ])
}

fn dec_candidate(v: &V) -> PResult<Candidate> {
    let [plan, cost, choices, safety_notes] = as_fixed::<4>(v)?;
    Ok(Candidate {
        plan: dec_plan(plan)?,
        cost: as_f64(cost)?,
        choices: dec_vec(choices, |c| {
            let [m, a] = as_fixed::<2>(c)?;
            Ok((as_str(m)?.to_string(), as_usize(a)?))
        })?,
        safety_notes: dec_vec(safety_notes, |n| Ok(as_str(n)?.to_string()))?,
    })
}

fn enc_entry(e: &CachedSearch) -> V {
    V::L(vec![
        V::L(e.candidates.iter().map(enc_candidate).collect()),
        V::I(e.examined as i64),
        V::I(e.pruned as i64),
        V::L(e.reasons.iter().map(|r| enc_string(r)).collect()),
    ])
}

fn dec_entry(v: &V) -> PResult<CachedSearch> {
    let [candidates, examined, pruned, reasons] = as_fixed::<4>(v)?;
    Ok(CachedSearch {
        candidates: dec_vec(candidates, dec_candidate)?,
        examined: as_usize(examined)?,
        pruned: as_usize(pruned)?,
        reasons: dec_vec(reasons, |r| Ok(as_str(r)?.to_string()))?,
    })
}

// ---------------------------------------------------------------------
// The on-disk store
// ---------------------------------------------------------------------

/// Counters of the persistent tier, mirroring the in-memory cache's
/// accounting so the service can report warm-start effectiveness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Loads that produced a usable entry.
    pub hits: u64,
    /// Loads that found no file for the key.
    pub misses: u64,
    /// Entries written (or overwritten).
    pub writes: u64,
    /// Loads that found a file but rejected it (version skew, key
    /// collision, corruption) — all behave as misses.
    pub errors: u64,
}

/// The persistent plan-cache tier: one directory of self-describing
/// entry files, shared safely between concurrent services (atomic
/// publication via temp-file + rename; readers only ever see complete
/// entries). See the module docs for format and integrity rules.
pub struct PersistentPlanCache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    errors: AtomicU64,
    /// The most recent decode rejection, kept for diagnostics (the
    /// load path itself treats every rejection as a plain miss).
    last_error: Mutex<Option<String>>,
    /// Entry-count cap enforced by [`gc`](PersistentPlanCache::gc).
    max_entries: usize,
    /// Total-size cap (bytes) enforced by [`gc`](PersistentPlanCache::gc).
    max_bytes: u64,
}

/// Default entry-count cap of [`PersistentPlanCache::new`] — generous
/// (a busy multi-tenant service stays well under it) but finite, so a
/// long-lived shared directory cannot grow without bound.
pub const DEFAULT_MAX_ENTRIES: usize = 4096;

/// Default total-size cap of [`PersistentPlanCache::new`]: 64 MiB.
pub const DEFAULT_MAX_BYTES: u64 = 64 * 1024 * 1024;

/// Uniquifies temp-file names across threads within this process; the
/// pid distinguishes processes.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl PersistentPlanCache {
    /// A store rooted at `dir` (created lazily on first write), bounded
    /// by [`DEFAULT_MAX_ENTRIES`] / [`DEFAULT_MAX_BYTES`].
    pub fn new(dir: impl Into<PathBuf>) -> PersistentPlanCache {
        PersistentPlanCache::with_limits(dir, DEFAULT_MAX_ENTRIES, DEFAULT_MAX_BYTES)
    }

    /// A store with explicit size bounds: at most `max_entries` entry
    /// files totalling at most `max_bytes` bytes, enforced oldest-first
    /// by [`gc`](PersistentPlanCache::gc) after every store.
    pub fn with_limits(
        dir: impl Into<PathBuf>,
        max_entries: usize,
        max_bytes: u64,
    ) -> PersistentPlanCache {
        PersistentPlanCache {
            dir: dir.into(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            last_error: Mutex::new(None),
            max_entries,
            max_bytes,
        }
    }

    /// The diagnostic text of the most recent rejected entry (version
    /// skew, key collision, corruption), if any load has failed.
    pub fn last_error(&self) -> Option<String> {
        self.last_error
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The directory entries live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// This store's load/write accounting.
    pub fn stats(&self) -> PersistStats {
        PersistStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }

    fn path_for(&self, key: &str) -> PathBuf {
        let h = bernoulli_kernel_cache::content_hash(key.as_bytes());
        self.dir.join(format!("plan-{h:016x}.bsp"))
    }

    /// Loads the entry stored under `key`, or `None` — on a genuine
    /// miss, a version mismatch, a key (hash) collision, or any parse
    /// failure. Never errors out: the persistent tier is advisory.
    pub(crate) fn load(&self, key: &str) -> Option<CachedSearch> {
        if bernoulli_govern::faults::fail("persist.read") {
            self.errors.fetch_add(1, Ordering::Relaxed);
            *self.last_error.lock().unwrap_or_else(|p| p.into_inner()) =
                Some("injected fault at persist.read (chaos test)".to_string());
            return None;
        }
        let text = match std::fs::read_to_string(self.path_for(key)) {
            Ok(t) => t,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode_file(&text, key) {
            Ok((entry, _emit)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry)
            }
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                *self.last_error.lock().unwrap_or_else(|p| p.into_inner()) =
                    Some(e.message().to_string());
                None
            }
        }
    }

    /// Like `load`, but also returns the stored emitted kernel source
    /// (tests use it to verify round-trip fidelity; the search path
    /// only needs the entry).
    pub fn load_with_source(&self, key: &str) -> Option<(Vec<String>, String)> {
        let text = std::fs::read_to_string(self.path_for(key)).ok()?;
        let (entry, emit) = decode_file(&text, key).ok()?;
        let plans = entry
            .candidates
            .iter()
            .map(|c| c.plan.to_string())
            .collect();
        Some((plans, emit))
    }

    /// Persists a completed (never degraded) search under `key`,
    /// including the best candidate's emitted module when emission
    /// succeeds. Failures are swallowed — a read-only or full disk
    /// degrades the warm-start, never the compile.
    pub(crate) fn store(
        &self,
        key: &str,
        entry: &CachedSearch,
        p: &Program,
        views: &HashMap<String, FormatView>,
    ) {
        let emit = entry
            .candidates
            .first()
            .and_then(|best| crate::emit::emit_module(p, &best.plan, views, "kernel").ok())
            .unwrap_or_default();
        let mut out = String::with_capacity(4096);
        write_v(
            &mut out,
            &V::L(vec![
                V::S("bernoulli-plan-cache".into()),
                V::I(FORMAT_VERSION),
                V::S(key.to_string()),
                enc_entry(entry),
                V::S(emit),
            ]),
        );
        if std::fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!(".tmp-{}-{seq}.bsp", std::process::id()));
        if std::fs::write(&tmp, &out).is_err() {
            return;
        }
        let dst = self.path_for(key);
        if std::fs::rename(&tmp, &dst).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.gc();
    }

    /// Evicts entry files, oldest modification time first, until the
    /// directory is within both the entry-count and total-byte caps.
    /// Returns how many files were removed. Runs automatically after
    /// every store; exposed so services
    /// can also sweep on a schedule (e.g. after shrinking the caps).
    ///
    /// Eviction is cooperative under concurrency: entries are published
    /// atomically, so removing one can never expose a partial file, and
    /// a concurrently re-stored entry simply reappears (newest mtime)
    /// on the next write.
    pub fn gc(&self) -> usize {
        let rd = match std::fs::read_dir(&self.dir) {
            Ok(rd) => rd,
            Err(_) => return 0,
        };
        let mut entries: Vec<(std::time::SystemTime, u64, PathBuf)> = rd
            .filter_map(|e| e.ok())
            .filter(|e| {
                e.file_name()
                    .to_str()
                    .is_some_and(|n| n.starts_with("plan-") && n.ends_with(".bsp"))
            })
            .filter_map(|e| {
                let md = e.metadata().ok()?;
                let mtime = md.modified().ok()?;
                Some((mtime, md.len(), e.path()))
            })
            .collect();
        let mut total: u64 = entries.iter().map(|(_, len, _)| len).sum();
        if entries.len() <= self.max_entries && total <= self.max_bytes {
            return 0;
        }
        // Oldest first; path tie-breaks equal timestamps so eviction
        // order is deterministic on coarse-mtime filesystems.
        entries.sort_by(|a, b| (a.0, &a.2).cmp(&(b.0, &b.2)));
        let mut removed = 0usize;
        let mut keep = entries.len();
        for (_, len, path) in &entries {
            if keep <= self.max_entries && total <= self.max_bytes {
                break;
            }
            if std::fs::remove_file(path).is_ok() {
                removed += 1;
                keep -= 1;
                total = total.saturating_sub(*len);
            }
        }
        removed
    }

    /// How many entries the directory currently holds (bench reporting).
    pub fn entry_count(&self) -> usize {
        match std::fs::read_dir(&self.dir) {
            Ok(rd) => rd
                .filter_map(|e| e.ok())
                .filter(|e| {
                    e.file_name()
                        .to_str()
                        .is_some_and(|n| n.starts_with("plan-") && n.ends_with(".bsp"))
                })
                .count(),
            Err(_) => 0,
        }
    }
}

fn decode_file(text: &str, want_key: &str) -> PResult<(CachedSearch, String)> {
    let top = parse_top(text)?;
    let [magic, version, key, entry, emit] = as_fixed::<5>(&top)?;
    if as_str(magic)? != "bernoulli-plan-cache" {
        return fail("bad magic");
    }
    if as_i64(version)? != FORMAT_VERSION {
        return fail("format version mismatch");
    }
    if as_str(key)? != want_key {
        return fail("key mismatch (hash collision or stale entry)");
    }
    Ok((dec_entry(entry)?, as_str(emit)?.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Round-trip of the raw value model; the full entry round-trip is
    // exercised end-to-end in `tests/service.rs` with real plans.
    #[test]
    fn value_model_round_trips() {
        let v = V::L(vec![
            V::I(-42),
            V::F((1.5f64).to_bits()),
            V::S("a \"quoted\"\nline with \\ slash — and unicode ∀".into()),
            V::L(vec![V::L(vec![]), V::I(7)]),
        ]);
        let mut s = String::new();
        write_v(&mut s, &v);
        let back = parse_top(&s);
        assert_eq!(back.ok().as_ref(), Some(&v));
    }

    fn fake_entry(dir: &Path, name: &str, bytes: usize) {
        assert!(std::fs::create_dir_all(dir).is_ok());
        assert!(std::fs::write(dir.join(name), "x".repeat(bytes)).is_ok());
        // Distinct mtimes even on coarse-granularity filesystems are not
        // guaranteed; gc tie-breaks by path, and the sleep orders the
        // common (fine-granularity) case.
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    #[test]
    fn gc_enforces_entry_cap_oldest_first() {
        let dir = std::env::temp_dir().join(format!("bernoulli-persist-gc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for i in 0..5 {
            fake_entry(&dir, &format!("plan-{i:016x}.bsp"), 10);
        }
        let cache = PersistentPlanCache::with_limits(&dir, 2, u64::MAX);
        assert_eq!(cache.gc(), 3);
        assert_eq!(cache.entry_count(), 2);
        // The two newest survive.
        assert!(dir.join("plan-0000000000000003.bsp").exists());
        assert!(dir.join("plan-0000000000000004.bsp").exists());
        // Within caps: a second sweep is a no-op.
        assert_eq!(cache.gc(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_enforces_byte_cap() {
        let dir =
            std::env::temp_dir().join(format!("bernoulli-persist-gcb-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for i in 0..4 {
            fake_entry(&dir, &format!("plan-{i:016x}.bsp"), 100);
        }
        // 400 bytes stored, cap 250 → evict the two oldest.
        let cache = PersistentPlanCache::with_limits(&dir, usize::MAX, 250);
        assert_eq!(cache.gc(), 2);
        assert_eq!(cache.entry_count(), 2);
        assert!(dir.join("plan-0000000000000003.bsp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_ignores_foreign_files() {
        let dir =
            std::env::temp_dir().join(format!("bernoulli-persist-gcf-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        fake_entry(&dir, "plan-00ff.bsp", 10);
        fake_entry(&dir, "README.txt", 10_000);
        let cache = PersistentPlanCache::with_limits(&dir, 1, 100);
        assert_eq!(cache.gc(), 0, "foreign files neither count nor die");
        assert!(dir.join("README.txt").exists());
        assert!(dir.join("plan-00ff.bsp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_input_fails_cleanly() {
        for bad in [
            "",
            "(",
            "(\"unterminated",
            "(1 2) trailing",
            "fdeadbeef",                  // truncated float
            "(999999999999999999999999)", // integer overflow
            "\u{1}",
        ] {
            match parse_top(bad) {
                Err(e) => assert!(!e.message().is_empty(), "input {bad:?}"),
                Ok(v) => unreachable!("input {bad:?} must fail, parsed {v:?}"),
            }
        }
        // Deep nesting is rejected, not a stack overflow.
        let deep = "(".repeat(500) + &")".repeat(500);
        assert!(parse_top(&deep).is_err());
    }
}
