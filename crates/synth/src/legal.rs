//! Legality verification and enumeration-direction inference (paper §3.1
//! problem 2 and §4.1).
//!
//! One recursive procedure per dependence class does both jobs. Walking
//! the product-space dimensions outermost-first with the class polyhedron
//! `D` in hand:
//!
//! - if the per-dimension schedule difference `δ_p = F_d(i_d) − F_s(i_s)`
//!   is identically zero on `D`, the dimension is neutral — continue;
//! - otherwise `δ_p ≥ 0` must hold everywhere on `D` (else the candidate
//!   is illegal), the dimension **must be enumerated in increasing
//!   order** (it carries part of the class), and the walk continues on
//!   `D ∧ δ_p = 0` — the part of the class not yet satisfied;
//! - if `D` is exhausted (empty), the class is satisfied;
//! - if dimensions run out with `D` non-empty, the dependent instances
//!   land on identical points and original statement order must break the
//!   tie.
//!
//! Associative-reduction self-dependences (`s = s ⊕ term`) may be
//! *relaxed* — floating-point reassociation is accepted, as every sparse
//! BLAS does — making formats with unordered enumeration (COO, JAD's flat
//! perspective) usable for MVM-style kernels.

use crate::config::Config;
use crate::embed::Embedding;
use crate::spaces::Space;
use bernoulli_ir::{DepClass, LhsRef, Program, Statement, ValueExpr};
use bernoulli_polyhedra::{Constraint, LinExpr};
use std::collections::HashMap;

/// Result of legality checking for one candidate.
#[derive(Clone, Debug)]
pub struct Legality {
    pub ok: bool,
    /// Per product-space dimension: must it be enumerated in increasing
    /// order of values?
    pub must_increase: Vec<bool>,
    /// First violation found, for diagnostics.
    pub violation: Option<String>,
}

/// Determines which dependence classes are relaxable associative
/// reductions.
pub fn relaxable_classes(p: &Program, deps: &[DepClass]) -> Vec<bool> {
    let stmts = p.statements();
    deps.iter()
        .map(|c| {
            if c.src != c.dst {
                return false;
            }
            let stmt = &stmts[c.src].stmt;
            let Some(lhs_read_idx) = assoc_update_lhs_read(stmt) else {
                return false;
            };
            // Both accesses must be the write (index 0) or the top-level
            // read of the accumulator.
            let ok_access = |a: usize| a == 0 || a == lhs_read_idx;
            ok_access(c.src_access) && ok_access(c.dst_access)
        })
        .collect()
}

/// If `stmt` is an associative update `lhs = lhs ⊕ t1 ⊕ t2 ...` (⊕ being
/// + or -) where no `tᵢ` reads the lhs array, returns the index of the
/// accumulator read within the statement's access list.
#[allow(clippy::doc_lazy_continuation)]
pub fn assoc_update_lhs_read(stmt: &Statement) -> Option<usize> {
    let mut terms: Vec<(&ValueExpr, bool)> = Vec::new();
    flatten_sum(&stmt.rhs, false, &mut terms);
    // Exactly one positive term that is literally the lhs reference.
    let mut acc_count = 0;
    for (t, neg) in &terms {
        if let ValueExpr::Read(r) = t {
            if same_ref(r, &stmt.lhs) {
                if *neg {
                    return None;
                }
                acc_count += 1;
                continue;
            }
        }
        // Any other term must not read the lhs array at all.
        if reads_array(t, &stmt.lhs.array) {
            return None;
        }
    }
    if acc_count != 1 {
        return None;
    }
    // Locate the accumulator read in access order: accesses() is
    // [write, reads in evaluation order]; find the first read equal to
    // the lhs.
    let reads = stmt.rhs.reads();
    reads
        .iter()
        .position(|r| same_ref(r, &stmt.lhs))
        .map(|k| k + 1)
}

fn same_ref(a: &LhsRef, b: &LhsRef) -> bool {
    a.array == b.array && a.idxs == b.idxs
}

fn reads_array(e: &ValueExpr, array: &str) -> bool {
    e.reads().iter().any(|r| r.array == array)
}

fn flatten_sum<'a>(e: &'a ValueExpr, neg: bool, out: &mut Vec<(&'a ValueExpr, bool)>) {
    match e {
        ValueExpr::Add(a, b) => {
            flatten_sum(a, neg, out);
            flatten_sum(b, neg, out);
        }
        ValueExpr::Sub(a, b) => {
            flatten_sum(a, neg, out);
            flatten_sum(b, !neg, out);
        }
        other => out.push((other, neg)),
    }
}

/// Checks legality of `(space, embedding)` against the program's
/// dependence classes and infers required enumeration directions.
pub fn check_legality(
    cfg: &Config,
    space: &Space,
    emb: &Embedding,
    deps: &[DepClass],
    relaxable: &[bool],
    relax_reductions: bool,
) -> Legality {
    let ndims = space.len();
    let mut must_increase = vec![false; ndims];

    for (ci, class) in deps.iter().enumerate() {
        if relax_reductions && relaxable[ci] {
            continue;
        }
        // All (source copy, destination copy) pairs of the class.
        for (sk, scopy) in cfg.stmts.iter().enumerate() {
            if scopy.orig != class.src {
                continue;
            }
            for (dk, dcopy) in cfg.stmts.iter().enumerate() {
                if dcopy.orig != class.dst {
                    continue;
                }
                if let Some(v) = walk_class(cfg, space, emb, class, sk, dk, &mut must_increase) {
                    return Legality {
                        ok: false,
                        must_increase,
                        violation: Some(format!("{}: {v}", class.describe())),
                    };
                }
            }
        }
    }
    Legality {
        ok: true,
        must_increase,
        violation: None,
    }
}

/// Walks one class for one copy pair. Returns `Some(reason)` on a
/// violation; updates `must_increase` on success.
fn walk_class(
    _cfg: &Config,
    space: &Space,
    emb: &Embedding,
    class: &DepClass,
    sk: usize,
    dk: usize,
    must_increase: &mut [bool],
) -> Option<String> {
    let sys0 = class.sys.clone();
    let n = sys0.num_vars();
    let index: HashMap<String, usize> = sys0
        .vars()
        .iter()
        .enumerate()
        .map(|(i, v)| (v.clone(), i))
        .collect();

    // δ_p as LinExpr over the class variables.
    let delta = |p: usize| -> LinExpr {
        let src = emb.at(sk, p).rename(|v| {
            if index.contains_key(v) {
                v.to_string() // parameter
            } else {
                format!("{v}@s")
            }
        });
        let dst = emb.at(dk, p).rename(|v| {
            if index.contains_key(v) {
                v.to_string()
            } else {
                format!("{v}@d")
            }
        });
        let se = src.to_linexpr(n, &index);
        let de = dst.to_linexpr(n, &index);
        &de - &se
    };

    let mut cur = sys0;
    for p in 0..space.len() {
        if cur.is_empty() {
            return None; // satisfied
        }
        let d = delta(p);
        if cur.forces_zero(&d) {
            continue;
        }
        // δ_p must be non-negative on the remaining class.
        if !cur.implies(&Constraint::ge0(d.clone())) {
            return Some(format!(
                "dimension {} ({}) can run backwards for copies S{}/S{}",
                p, space.dims[p].name, sk, dk
            ));
        }
        must_increase[p] = true;
        cur.add(Constraint::eq0(d));
    }
    if cur.is_empty() {
        return None;
    }
    // Identical embeddings on a non-empty residue: statement order must
    // break the tie, i.e. the source copy must be emitted first.
    if sk < dk {
        None
    } else {
        Some(format!(
            "dependent instances land on identical points but source copy S{sk} is not emitted before S{dk}"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::enumerate_configs;
    use crate::embed::base_embedding;
    use crate::spaces::candidate_spaces;
    use bernoulli_formats::formats::csc::csc_format_view;
    use bernoulli_formats::formats::csr::csr_format_view;
    use bernoulli_ir::{analyze, parse_program};
    use std::collections::HashMap;

    const TS: &str = r#"
        program ts(N) {
          in matrix L[N][N];
          inout vector b[N];
          for j in 0..N {
            b[j] = b[j] / L[j][j];
            for i in j+1..N {
              b[i] = b[i] - L[i][j] * b[j];
            }
          }
        }
    "#;

    const MVM: &str = r#"
        program mvm(M, N) {
          in matrix A[M][N];
          in vector x[N];
          inout vector y[M];
          for i in 0..M {
            for j in 0..N {
              y[i] = y[i] + A[i][j] * x[j];
            }
          }
        }
    "#;

    #[test]
    fn ts_csr_row_plan_is_legal_with_directions() {
        let p = parse_program(TS).unwrap();
        let deps = analyze(&p);
        let relax = relaxable_classes(&p, &deps);
        let mut views = HashMap::new();
        views.insert("L".to_string(), csr_format_view());
        let cfg = enumerate_configs(&p, &views).unwrap().remove(0);
        let space = candidate_spaces(&cfg, 4, false).remove(0);
        let emb = base_embedding(&cfg, &space);
        let leg = check_legality(&cfg, &space, &emb, &deps, &relax, true);
        assert!(leg.ok, "{:?}", leg.violation);
        // The row group (dims 0-1) and the column group (dims 2-3) must
        // run in increasing order — exactly the paper's conclusion that
        // l1r and l1c must be enumerated in increasing order.
        assert!(leg.must_increase[0] || leg.must_increase[1]);
        assert!(leg.must_increase[2] || leg.must_increase[3]);
        // Iteration dims carry nothing (they are redundant).
        assert!(!leg.must_increase[4] && !leg.must_increase[5] && !leg.must_increase[6]);
    }

    #[test]
    fn ts_csc_column_plan_is_legal() {
        // CSC enumerates columns first: the original (column) TS order.
        let p = parse_program(TS).unwrap();
        let deps = analyze(&p);
        let relax = relaxable_classes(&p, &deps);
        let mut views = HashMap::new();
        views.insert("L".to_string(), csc_format_view());
        let cfg = enumerate_configs(&p, &views).unwrap().remove(0);
        let space = candidate_spaces(&cfg, 4, false).remove(0);
        let emb = base_embedding(&cfg, &space);
        let leg = check_legality(&cfg, &space, &emb, &deps, &relax, true);
        assert!(leg.ok, "{:?}", leg.violation);
    }

    #[test]
    fn mvm_reductions_relax() {
        let p = parse_program(MVM).unwrap();
        let deps = analyze(&p);
        let relax = relaxable_classes(&p, &deps);
        assert!(!deps.is_empty());
        assert!(relax.iter().all(|&r| r), "all MVM deps are reductions");
        let mut views = HashMap::new();
        views.insert("A".to_string(), csr_format_view());
        let cfg = enumerate_configs(&p, &views).unwrap().remove(0);
        let space = candidate_spaces(&cfg, 4, false).remove(0);
        let emb = base_embedding(&cfg, &space);
        // With relaxation: no direction requirements at all.
        let leg = check_legality(&cfg, &space, &emb, &deps, &relax, true);
        assert!(leg.ok);
        assert!(leg.must_increase.iter().all(|&m| !m));
        // Without relaxation: still legal for CSR (increasing enumeration
        // required on the column group).
        let leg2 = check_legality(&cfg, &space, &emb, &deps, &relax, false);
        assert!(leg2.ok, "{:?}", leg2.violation);
        assert!(leg2.must_increase.iter().any(|&m| m));
    }

    #[test]
    fn assoc_update_detection() {
        let p = parse_program(MVM).unwrap();
        let stmts = p.statements();
        assert_eq!(assoc_update_lhs_read(&stmts[0].stmt), Some(1));
        let p2 = parse_program(TS).unwrap();
        let stmts2 = p2.statements();
        // S1: b[j] = b[j] / L[j][j] — not an associative update.
        assert_eq!(assoc_update_lhs_read(&stmts2[0].stmt), None);
        // S2: b[i] = b[i] - L[i][j]*b[j] — associative (accumulating a
        // negated product; the term reads b[j], which *is* the lhs array,
        // so it must NOT be considered relaxable).
        assert_eq!(assoc_update_lhs_read(&stmts2[1].stmt), None);
    }

    #[test]
    fn illegal_embedding_rejected() {
        // A sum-prefix program: s[i] depends on s[i-1]; embedding that
        // reverses i is illegal.
        let src = r#"
            program prefix(N) {
              inout vector s[N];
              for i in 1..N {
                s[i] = s[i] + s[i-1];
              }
            }
        "#;
        let p = parse_program(src).unwrap();
        let deps = analyze(&p);
        assert!(!deps.is_empty());
        let relax = relaxable_classes(&p, &deps);
        // s[i] += s[i-1] reads the lhs array in the term: not relaxable.
        assert!(relax.iter().all(|&r| !r));
        let cfg = enumerate_configs(&p, &HashMap::new()).unwrap().remove(0);
        let space = candidate_spaces(&cfg, 4, false).remove(0);
        // Legal with identity embedding:
        let emb = base_embedding(&cfg, &space);
        let leg = check_legality(&cfg, &space, &emb, &deps, &relax, true);
        assert!(leg.ok);
        assert!(leg.must_increase[0], "i must increase");
        // Reverse the embedding (i -> -i): illegal.
        let mut emb2 = emb.clone();
        emb2.maps[0][0] =
            &(-&bernoulli_ir::AffineExpr::var("i")) + &bernoulli_ir::AffineExpr::constant(0);
        let leg2 = check_legality(&cfg, &space, &emb2, &deps, &relax, true);
        assert!(!leg2.ok);
    }
}
