//! Embedding functions `F_k : S_k → P` (paper §3.1, problem 2).
//!
//! Every statement copy gets, for each product-space dimension, an affine
//! expression over its own loop variables (and parameters) giving the
//! coordinate at which its instances execute. Dimensions the statement
//! *owns* (its data dims and loop dims) use their defining expression;
//! foreign dimensions are filled by the **common-enumeration heuristic**
//! (§4.3): align with the matching dimension of another statement when
//! possible, else reuse the expression of the nearest preceding dimension
//! (so the statement rides along), optionally nudged by ±1 offsets to
//! place it before/after the matching enumeration when plain alignment is
//! illegal.

use crate::config::Config;
use crate::spaces::{DimKind, Space};
use bernoulli_ir::AffineExpr;

/// A set of embedding functions: `maps[k][p]` is `F_k` at dimension `p`,
/// an affine expression over statement copy `k`'s loop variables and the
/// program parameters.
#[derive(Clone, Debug)]
pub struct Embedding {
    pub maps: Vec<Vec<AffineExpr>>,
}

impl Embedding {
    /// The expression of statement copy `k` at dimension `p`.
    pub fn at(&self, k: usize, p: usize) -> &AffineExpr {
        &self.maps[k][p]
    }
}

/// Builds the base (zero-offset) embedding by pedigree matching.
pub fn base_embedding(cfg: &Config, space: &Space) -> Embedding {
    let nstmts = cfg.stmts.len();
    let mut maps: Vec<Vec<AffineExpr>> = Vec::with_capacity(nstmts);
    for k in 0..nstmts {
        let mut row: Vec<AffineExpr> = Vec::with_capacity(space.len());
        for dim in &space.dims {
            let e = match dim.kind {
                DimKind::Data { ref_id, dim_idx } => {
                    let r = &cfg.refs[ref_id];
                    if r.stmt == k {
                        // Own data dimension.
                        r.dims[dim_idx].value.clone()
                    } else {
                        foreign_expr(cfg, k, &row, ref_id, dim_idx)
                    }
                }
                DimKind::Iter { stmt, loop_idx } => {
                    if stmt == k {
                        AffineExpr::var(&cfg.stmts[k].info.loops[loop_idx].0)
                    } else {
                        iter_foreign_expr(cfg, k, &row, stmt, loop_idx)
                    }
                }
            };
            row.push(e);
        }
        maps.push(row);
    }
    Embedding { maps }
}

/// Foreign data dimension: align with this statement's own reference to
/// the same matrix — by value attribute when the chains agree, else
/// through the dense-coordinate correspondence (a diagonal chain's `i`
/// dimension matches any reference's row access, a DIA `d` dimension
/// matches `access_r - access_c`, ...). Falls back to riding along with
/// the previous dimension.
fn foreign_expr(
    cfg: &Config,
    k: usize,
    row_so_far: &[AffineExpr],
    ref_id: usize,
    dim_idx: usize,
) -> AffineExpr {
    let target = &cfg.refs[ref_id];
    let attr = &target.dims[dim_idx].attr;
    for &rid in &cfg.stmts[k].refs {
        let own = &cfg.refs[rid];
        if own.matrix == target.matrix {
            if let Some(d) = own.dims.iter().find(|d| &d.attr == attr) {
                return d.value.clone();
            }
        }
    }
    // Dense-coordinate correspondence.
    if let Some(dense_form) = crate::config::dim_value_in_dense(target, dim_idx) {
        for &rid in &cfg.stmts[k].refs {
            let own = &cfg.refs[rid];
            if own.matrix == target.matrix {
                let mut e = dense_form.clone();
                for (a, acc) in own.dense_attrs.iter().zip(&own.access) {
                    e = e.substitute(a, acc);
                }
                return e;
            }
        }
    }
    // No reference on that matrix at all: ride the owning statement's
    // expression when its loop variables are all loops shared with this
    // statement (e.g. the initialization `r[i] = b[i]` rides the row
    // dimension the accumulation binds through the shared `i` loop).
    {
        let owner = cfg.refs[ref_id].stmt;
        let expr = &cfg.refs[ref_id].dims[dim_idx].value;
        let shared = cfg.stmts[k].info.shared_loops(&cfg.stmts[owner].info);
        let shared_vars: Vec<&str> = cfg.stmts[owner].info.loops
            [..shared.min(cfg.stmts[owner].info.loops.len())]
            .iter()
            .map(|(v, _, _)| v.as_str())
            .collect();
        let all_shared = expr.vars().iter().all(|v| {
            shared_vars.contains(v) || !cfg.stmts[owner].info.loops.iter().any(|(lv, _, _)| lv == v)
        });
        if all_shared {
            return expr.clone();
        }
    }
    previous_or_zero(row_so_far)
}

/// Foreign iteration dimension: if the loop is literally shared (same
/// loop node encloses both statements), use the own variable; else ride
/// along.
fn iter_foreign_expr(
    cfg: &Config,
    k: usize,
    row_so_far: &[AffineExpr],
    stmt: usize,
    loop_idx: usize,
) -> AffineExpr {
    let own = &cfg.stmts[k].info;
    let other = &cfg.stmts[stmt].info;
    let shared = own.shared_loops(&cfg.stmts[stmt].info);
    if loop_idx < shared {
        // Same loop node: same variable name.
        return AffineExpr::var(&other.loops[loop_idx].0);
    }
    previous_or_zero(row_so_far)
}

fn previous_or_zero(row_so_far: &[AffineExpr]) -> AffineExpr {
    row_so_far
        .last()
        .cloned()
        .unwrap_or_else(|| AffineExpr::constant(0))
}

/// Yields embedding variants: the base embedding first, then single-dim
/// ±1 offset repairs of foreign dimensions (the "before or after the
/// matching enumeration" choice of §4.3), up to `max` variants.
pub fn embedding_variants(cfg: &Config, space: &Space, max: usize) -> Vec<Embedding> {
    let base = base_embedding(cfg, space);
    let mut out = vec![base.clone()];
    'outer: for k in 0..cfg.stmts.len() {
        for p in 0..space.len() {
            let owns = match space.dims[p].kind {
                DimKind::Data { ref_id, .. } => cfg.refs[ref_id].stmt == k,
                DimKind::Iter { stmt, .. } => stmt == k,
            };
            if owns {
                continue;
            }
            for off in [-1i64, 1] {
                if out.len() >= max {
                    break 'outer;
                }
                let mut v = base.clone();
                v.maps[k][p] = &v.maps[k][p] + &AffineExpr::constant(off);
                out.push(v);
            }
        }
    }
    bernoulli_trace::counter!("synth.embedding_variants", out.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::enumerate_configs;
    use crate::spaces::candidate_spaces;
    use bernoulli_formats::formats::csr::csr_format_view;
    use bernoulli_ir::parse_program;
    use std::collections::HashMap;

    const TS: &str = r#"
        program ts(N) {
          in matrix L[N][N];
          inout vector b[N];
          for j in 0..N {
            b[j] = b[j] / L[j][j];
            for i in j+1..N {
              b[i] = b[i] - L[i][j] * b[j];
            }
          }
        }
    "#;

    #[test]
    fn ts_base_embedding_matches_paper() {
        let p = parse_program(TS).unwrap();
        let mut views = HashMap::new();
        views.insert("L".to_string(), csr_format_view());
        let cfg = enumerate_configs(&p, &views).unwrap().remove(0);
        let space = candidate_spaces(&cfg, 4, false).remove(0);
        // Order: L0.r, L1.r, L0.c, L1.c, j@0, j@1, i@1.
        let emb = base_embedding(&cfg, &space);
        let j = AffineExpr::var("j");
        let i = AffineExpr::var("i");
        // S1 (k = 0): everything is j — the paper's
        // F1 = (l1r, l1r, l1c, l1c, j1, j1, j1) with l1r = l1c = j1.
        assert_eq!(emb.maps[0], vec![j.clone(); 7]);
        // S2 (k = 1): (i, i, j, j, j, j, i) — the paper's
        // F2 = (l2r, l2r, l2c, l2c, j2, j2, i2).
        assert_eq!(
            emb.maps[1],
            vec![
                i.clone(),
                i.clone(),
                j.clone(),
                j.clone(),
                j.clone(),
                j.clone(),
                i.clone()
            ]
        );
    }

    #[test]
    fn variants_include_offsets() {
        let p = parse_program(TS).unwrap();
        let mut views = HashMap::new();
        views.insert("L".to_string(), csr_format_view());
        let cfg = enumerate_configs(&p, &views).unwrap().remove(0);
        let space = candidate_spaces(&cfg, 4, false).remove(0);
        let vars = embedding_variants(&cfg, &space, 10);
        assert_eq!(vars.len(), 10);
        // First is the base; some later variant differs by ±1 somewhere.
        assert_ne!(vars[0].maps, vars[1].maps);
        let base = &vars[0];
        let v = &vars[1];
        let mut diffs = 0;
        for k in 0..2 {
            for p in 0..7 {
                if base.maps[k][p] != v.maps[k][p] {
                    diffs += 1;
                }
            }
        }
        assert_eq!(diffs, 1);
    }
}
