//! Configurations: perspective choices, statement splitting, and sparse
//! data spaces.
//!
//! A *configuration* fixes, for every sparse reference of the program, one
//! access alternative of its matrix's view (the `⊕` choice, paper §4) and
//! expands statements over aggregation chains (`∪` splits each statement
//! referencing the aggregated matrix into one copy per chain). It also
//! computes the reference's *sparse data space*: the stored attributes of
//! the chosen chain, each with an affine expression giving its value in
//! terms of the statement's loop variables (derived through the view's
//! `map` rules; `perm` rules keep the post-permutation coordinate as the
//! dimension and record the table for the runtime).

use bernoulli_formats::view::{Chain, FormatView, Order, SearchKind, Transform};
use bernoulli_ir::{AffineExpr, Program, StmtInfo};
use std::collections::HashMap;

/// One data dimension of a sparse reference.
#[derive(Clone, Debug)]
pub struct RefDim {
    /// Chain level binding this dimension.
    pub level: usize,
    /// Slot within the level's attribute tuple (for coupled levels).
    pub slot: usize,
    /// The dimension's *value* attribute (post-`perm`; e.g. `r` for JAD's
    /// row level even though the stored key is `rr`; `d` for DIA).
    pub attr: String,
    /// Dimension value as an affine function of the statement's loop
    /// variables and parameters.
    pub value: AffineExpr,
    /// Permutation table translating the stored key to the value
    /// (`value = table[key]`), when the level sits under a `perm`.
    pub perm: Option<String>,
    /// Order in which *values* of this dimension appear when the level is
    /// enumerated (a `perm` scrambles the underlying level order; trailing
    /// slots of a coupled level are ordered only lexicographically).
    pub order: Order,
    /// Search support of the underlying level (composed with the O(1)
    /// inverse permutation when `perm` is present).
    pub search: SearchKind,
    /// True when the dimension's values range over a full dense interval,
    /// making interval enumeration + search possible.
    pub interval: bool,
}

/// A sparse reference occurrence inside one statement copy, with its
/// chosen chain and sparse data space.
#[derive(Clone, Debug)]
pub struct RefInst {
    /// Global reference id within the configuration.
    pub id: usize,
    /// Owning statement copy (index into [`Config::stmts`]).
    pub stmt: usize,
    /// Matrix name.
    pub matrix: String,
    /// Index of this reference within the statement's access list
    /// (0 = the write), to locate it again at execution time.
    pub access_idx: usize,
    /// The chosen chain (with the globally-unique `chain.id` of the view).
    pub chain: Chain,
    /// Dense-coordinate access expressions (one per dense attribute).
    pub access: Vec<AffineExpr>,
    /// Names of the dense attributes, parallel to `access`.
    pub dense_attrs: Vec<String>,
    /// The sparse data dimensions, outermost level first.
    pub dims: Vec<RefDim>,
    /// Chain constraints: equalities `lhs == rhs` (both affine over the
    /// statement's loop variables) implied by accessing the matrix
    /// through this chain — e.g. a diagonal chain with `map{i |-> r,
    /// i |-> c}` forces `access_r == access_c`.
    pub constraints: Vec<(AffineExpr, AffineExpr)>,
}

/// One statement copy (statements referencing `∪` formats are duplicated
/// per chain combination; others have exactly one copy).
#[derive(Clone, Debug)]
pub struct StmtCopy {
    /// Original statement id (dependence classes refer to this).
    pub orig: usize,
    /// Which `∪` copy this is (0-based within the original statement).
    pub copy: usize,
    /// Flattened statement info (loops, body, path).
    pub info: StmtInfo,
    /// Ids of this copy's sparse references.
    pub refs: Vec<usize>,
}

/// A complete configuration: statement copies and their sparse refs.
#[derive(Clone, Debug)]
pub struct Config {
    pub stmts: Vec<StmtCopy>,
    pub refs: Vec<RefInst>,
    /// Which alternative index was chosen per reference, for reporting:
    /// `(matrix, alternative)` in reference order.
    pub choices: Vec<(String, usize)>,
}

/// Errors produced while building configurations.
#[derive(Clone, Debug, PartialEq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "configuration error: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Enumerates every configuration: the cross product of per-*reference*
/// perspective choices (paper §4: "there are two choices for each
/// reference"), with `∪` statement splitting applied.
pub fn enumerate_configs(
    p: &Program,
    views: &HashMap<String, FormatView>,
) -> Result<Vec<Config>, ConfigError> {
    let stmts = p.statements();

    // Gather raw sparse references in (statement, access) order.
    struct RawRef {
        stmt: usize,
        access_idx: usize,
        matrix: String,
        access: Vec<AffineExpr>,
        alts: Vec<Vec<Chain>>,
    }
    let mut raw: Vec<RawRef> = Vec::new();
    for (sid, s) in stmts.iter().enumerate() {
        for (aidx, (acc, _w)) in s.accesses().iter().enumerate() {
            if let Some(v) = views.get(&acc.array) {
                if acc.idxs.len() != v.dense_attrs.len() {
                    return Err(ConfigError(format!(
                        "reference {} has {} indices but view {:?} has {} dense attrs",
                        acc,
                        acc.idxs.len(),
                        v.name,
                        v.dense_attrs.len()
                    )));
                }
                raw.push(RawRef {
                    stmt: sid,
                    access_idx: aidx,
                    matrix: acc.array.clone(),
                    access: acc.idxs.clone(),
                    alts: v.alternatives(),
                });
            }
        }
    }

    // Cross product of alternative indices per reference.
    let mut combos: Vec<Vec<usize>> = vec![Vec::new()];
    for r in &raw {
        combos = combos
            .iter()
            .flat_map(|c| {
                (0..r.alts.len()).map(move |a| {
                    let mut c2 = c.clone();
                    c2.push(a);
                    c2
                })
            })
            .collect();
    }

    let mut out = Vec::with_capacity(combos.len());
    for combo in combos {
        let mut cfg = Config {
            stmts: Vec::new(),
            refs: Vec::new(),
            choices: raw
                .iter()
                .zip(&combo)
                .map(|(r, &a)| (r.matrix.clone(), a))
                .collect(),
        };
        for (sid, s) in stmts.iter().enumerate() {
            // This statement's raw refs and their chosen alternatives.
            let srefs: Vec<(usize, &RawRef, &Vec<Chain>)> = raw
                .iter()
                .enumerate()
                .filter(|(_, r)| r.stmt == sid)
                .map(|(k, r)| (k, r, &r.alts[combo[k]]))
                .collect();
            // ∪ splitting: one copy per element of the cross product of
            // chain choices within each reference's alternative.
            let mut copies: Vec<Vec<&Chain>> = vec![Vec::new()];
            for (_, _, chains) in &srefs {
                copies = copies
                    .iter()
                    .flat_map(|c| {
                        chains.iter().map(move |ch| {
                            let mut c2 = c.clone();
                            c2.push(ch);
                            c2
                        })
                    })
                    .collect();
            }
            for (copy_idx, chosen) in copies.into_iter().enumerate() {
                let stmt_index = cfg.stmts.len();
                let mut ref_ids = Vec::new();
                for ((_, r, _), chain) in srefs.iter().zip(chosen) {
                    let view = &views[&r.matrix];
                    let dims = sparse_dims(chain, view, &r.access)?;
                    let constraints = chain_constraints(chain, view, &r.access, &dims);
                    let id = cfg.refs.len();
                    cfg.refs.push(RefInst {
                        id,
                        stmt: stmt_index,
                        matrix: r.matrix.clone(),
                        access_idx: r.access_idx,
                        chain: chain.clone(),
                        access: r.access.clone(),
                        dense_attrs: view.dense_attrs.clone(),
                        dims,
                        constraints,
                    });
                    ref_ids.push(id);
                }
                cfg.stmts.push(StmtCopy {
                    orig: sid,
                    copy: copy_idx,
                    info: s.clone(),
                    refs: ref_ids,
                });
            }
        }
        out.push(cfg);
    }
    Ok(out)
}

/// Computes the sparse data space of one reference under one chain:
/// one [`RefDim`] per stored attribute of each level.
pub fn sparse_dims(
    chain: &Chain,
    view: &FormatView,
    access: &[AffineExpr],
) -> Result<Vec<RefDim>, ConfigError> {
    // Dense attribute -> its access expression.
    let mut env: HashMap<&str, AffineExpr> = HashMap::new();
    for (a, e) in view.dense_attrs.iter().zip(access) {
        env.insert(a.as_str(), e.clone());
    }
    // Apply inverse transforms to derive stored attrs affinely; record
    // perm-derived attrs separately.
    let mut permed: HashMap<&str, (&str, &str)> = HashMap::new(); // stored attr -> (table, value attr)
    for t in &chain.inv {
        match t {
            Transform::Affine { out, terms, cst } => {
                let mut e = AffineExpr::constant(*cst);
                for (a, c) in terms {
                    let Some(base) = env.get(a.as_str()) else {
                        return Err(ConfigError(format!(
                            "inverse transform for {out:?} reads unbound attr {a:?}"
                        )));
                    };
                    let scaled = base * *c;
                    e = &e + &scaled;
                }
                env.insert(out.as_str(), e);
            }
            Transform::PermUnapply { table, input, out } => {
                permed.insert(out.as_str(), (table.as_str(), input.as_str()));
            }
            Transform::PermApply { .. } => {
                return Err(ConfigError(
                    "forward perm in inverse transform list".to_string(),
                ));
            }
        }
    }

    let mut dims = Vec::new();
    for (l, level) in chain.levels.iter().enumerate() {
        for (slot, attr) in level.attrs.iter().enumerate() {
            let (value_attr, value, perm) = if let Some(&(table, post)) = permed.get(attr.as_str())
            {
                let Some(e) = env.get(post) else {
                    return Err(ConfigError(format!(
                        "post-perm attr {post:?} has no access expression"
                    )));
                };
                (post.to_string(), e.clone(), Some(table.to_string()))
            } else if let Some(e) = env.get(attr.as_str()) {
                (attr.clone(), e.clone(), None)
            } else {
                return Err(ConfigError(format!(
                    "stored attr {attr:?} is neither affine-derivable nor permuted"
                )));
            };
            // Value order: a perm scrambles; trailing slots of a coupled
            // level are ordered only conditionally on earlier slots (the
            // legality machinery treats them positionally, which is sound
            // because the slots are adjacent dims in the product space).
            let order = if perm.is_some() {
                Order::Unordered
            } else {
                level.order
            };
            dims.push(RefDim {
                level: l,
                slot,
                attr: value_attr,
                value,
                perm,
                order,
                search: level.search,
                interval: level.interval,
            });
        }
    }
    Ok(dims)
}

/// Computes the equalities a chain imposes on the access expressions:
/// for every forward `map` rule `dense = f(stored)`, substituting the
/// stored attributes' value expressions must reproduce the access
/// expression; when it does not do so *identically*, the equality becomes
/// a constraint on the statement instances that can reach stored entries
/// through this chain.
pub fn chain_constraints(
    chain: &Chain,
    view: &FormatView,
    access: &[AffineExpr],
    dims: &[RefDim],
) -> Vec<(AffineExpr, AffineExpr)> {
    let mut out = Vec::new();
    // stored attr name -> its value expression (post-perm attrs use the
    // perm output name, whose fwd rule we skip as non-affine).
    let stored: HashMap<&str, &AffineExpr> = chain
        .levels
        .iter()
        .enumerate()
        .flat_map(|(l, lev)| lev.attrs.iter().enumerate().map(move |(s, a)| (l, s, a)))
        .filter_map(|(l, s, a)| {
            dims.iter()
                .find(|d| d.level == l && d.slot == s)
                .map(|d| (a.as_str(), &d.value))
        })
        .collect();
    for t in &chain.fwd {
        if let Transform::Affine { out: o, terms, cst } = t {
            let Some(pos) = view.dense_attrs.iter().position(|a| a == o) else {
                continue;
            };
            let mut rhs = AffineExpr::constant(*cst);
            let mut ok = true;
            for (a, c) in terms {
                match stored.get(a.as_str()) {
                    Some(e) => {
                        let scaled = *e * *c;
                        rhs = &rhs + &scaled;
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok && rhs != access[pos] {
                out.push((access[pos].clone(), rhs));
            }
        }
    }
    out
}

/// Expresses a reference dimension's value as an affine function of the
/// matrix's *dense* attributes, when possible: the identity for dense
/// value attributes (`r`, `c`, `i` of a vector), or the chain's inverse
/// `map` rule (e.g. `d = r - c` for DIA). `None` for genuinely
/// non-affine dimensions.
pub fn dim_value_in_dense(r: &RefInst, dim_idx: usize) -> Option<AffineExpr> {
    let attr = &r.dims[dim_idx].attr;
    if r.dense_attrs.iter().any(|a| a == attr) {
        return Some(AffineExpr::var(attr));
    }
    for t in &r.chain.inv {
        if let Transform::Affine { out, terms, cst } = t {
            if out == attr
                && terms
                    .iter()
                    .all(|(a, _)| r.dense_attrs.iter().any(|d| d == a))
            {
                let mut e = AffineExpr::constant(*cst);
                for (a, c) in terms {
                    e.add_term(a, *c);
                }
                return Some(e);
            }
        }
    }
    None
}

/// Convenience: statement copies of a config belonging to an original
/// statement id.
pub fn copies_of(cfg: &Config, orig: usize) -> Vec<usize> {
    cfg.stmts
        .iter()
        .enumerate()
        .filter(|(_, s)| s.orig == orig)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bernoulli_formats::formats::csr::csr_format_view;
    use bernoulli_formats::formats::dia::dia_format_view;
    use bernoulli_formats::formats::diagsplit::diagsplit_format_view;
    use bernoulli_formats::formats::jad::jad_format_view;
    use bernoulli_ir::parse_program;

    const TS: &str = r#"
        program ts(N) {
          in matrix L[N][N];
          inout vector b[N];
          for j in 0..N {
            b[j] = b[j] / L[j][j];
            for i in j+1..N {
              b[i] = b[i] - L[i][j] * b[j];
            }
          }
        }
    "#;

    fn views_of(name: &str, v: FormatView) -> HashMap<String, FormatView> {
        let mut m = HashMap::new();
        m.insert(name.to_string(), v);
        m
    }

    #[test]
    fn csr_ts_single_config() {
        let p = parse_program(TS).unwrap();
        let cfgs = enumerate_configs(&p, &views_of("L", csr_format_view())).unwrap();
        assert_eq!(cfgs.len(), 1);
        let cfg = &cfgs[0];
        assert_eq!(cfg.stmts.len(), 2);
        assert_eq!(cfg.refs.len(), 2);
        // S1's ref L[j][j]: dims r=j, c=j.
        let r0 = &cfg.refs[0];
        assert_eq!(r0.dims.len(), 2);
        assert_eq!(r0.dims[0].attr, "r");
        assert!(r0.dims[0].value.is_var("j"));
        assert!(r0.dims[1].value.is_var("j"));
        // S2's ref L[i][j]: r=i, c=j.
        let r1 = &cfg.refs[1];
        assert!(r1.dims[0].value.is_var("i"));
        assert!(r1.dims[1].value.is_var("j"));
        assert!(r0.dims[0].interval); // CSR row level is an interval
        assert_eq!(r0.dims[1].search, SearchKind::Sorted);
    }

    #[test]
    fn jad_ts_four_configs() {
        // Two perspectives × two references = 4 configurations,
        // matching the paper's "four groups of product spaces".
        let p = parse_program(TS).unwrap();
        let cfgs = enumerate_configs(&p, &views_of("L", jad_format_view())).unwrap();
        assert_eq!(cfgs.len(), 4);
        // In every config both refs carry the perm on the row dim.
        for cfg in &cfgs {
            for r in &cfg.refs {
                let rdim = r.dims.iter().find(|d| d.attr == "r").unwrap();
                assert_eq!(rdim.perm.as_deref(), Some("iperm"));
                assert_eq!(rdim.order, Order::Unordered);
            }
        }
        // The hierarchical perspective yields 2 dims (r, c); the flat one
        // yields the coupled pair in a single level.
        let flat_cfg = &cfgs[0];
        let r = &flat_cfg.refs[0];
        assert_eq!(r.dims.len(), 2);
        assert_eq!(r.dims[0].level, 0);
        assert_eq!(r.dims[1].level, 0); // coupled: both in level 0
        let hier_cfg = &cfgs[3];
        let r = &hier_cfg.refs[0];
        assert_eq!(r.dims[0].level, 0);
        assert_eq!(r.dims[1].level, 1);
        assert!(r.dims[0].interval, "jad row level is an interval over rr");
    }

    #[test]
    fn dia_dims_are_mapped() {
        let p = parse_program(TS).unwrap();
        let cfgs = enumerate_configs(&p, &views_of("L", dia_format_view())).unwrap();
        assert_eq!(cfgs.len(), 1);
        let r1 = &cfgs[0].refs[1]; // S2: L[i][j]
        assert_eq!(r1.dims[0].attr, "d");
        // d = r - c = i - j
        assert_eq!(
            r1.dims[0].value,
            AffineExpr::from_terms(&[("i", 1), ("j", -1)], 0)
        );
        assert_eq!(r1.dims[1].attr, "o");
        assert!(r1.dims[1].value.is_var("j"));
    }

    #[test]
    fn diagsplit_splits_statements() {
        let p = parse_program(TS).unwrap();
        let cfgs = enumerate_configs(&p, &views_of("L", diagsplit_format_view())).unwrap();
        assert_eq!(cfgs.len(), 1); // one alternative (it's a ∪, not a ⊕)
        let cfg = &cfgs[0];
        // Each of the two statements splits into 2 copies.
        assert_eq!(cfg.stmts.len(), 4);
        assert_eq!(copies_of(cfg, 0).len(), 2);
        assert_eq!(copies_of(cfg, 1).len(), 2);
        // Diag-chain copies have the single `i` dim with value from the
        // map i = r.
        let s1_diag = &cfg.refs[cfg.stmts[copies_of(cfg, 0)[0]].refs[0]];
        assert_eq!(s1_diag.dims.len(), 1);
        assert_eq!(s1_diag.dims[0].attr, "i");
        assert!(s1_diag.dims[0].value.is_var("j"));
    }

    #[test]
    fn vector_program_no_sparse_refs() {
        let p = parse_program(
            "program scale(N) { inout vector x[N]; for i in 0..N { x[i] = x[i] * 2; } }",
        )
        .unwrap();
        let cfgs = enumerate_configs(&p, &HashMap::new()).unwrap();
        assert_eq!(cfgs.len(), 1);
        assert!(cfgs[0].refs.is_empty());
        assert_eq!(cfgs[0].stmts.len(), 1);
    }
}
