//! The enumeration-based plan: executable "pseudocode" (paper Figs. 5/8).
//!
//! A [`Plan`] is a linear nest of [`Step`]s — one per common-enumeration
//! group of non-redundant product-space dimensions — with the statement
//! instances executed at the innermost point ([`ExecStmt`]), guarded by
//! whatever match conditions were not absorbed by the enumeration. Plans
//! are both *interpreted* against real formats ([`crate::interp`]) and
//! *emitted* as specialized Rust ([`crate::emit`]).

use bernoulli_ir::Statement;
use std::fmt;

/// Enumeration direction of a step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dir {
    /// Increasing values / storage order.
    Fwd,
    /// Decreasing values (interval and reversible levels only).
    Rev,
}

/// An atom of a plan expression.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Atom {
    /// The value bound by step slot `i`.
    Slot(usize),
    /// A named program parameter or (in guards evaluated after variable
    /// binding) a statement loop variable.
    Var(String),
}

/// Affine expression over step slots, parameters and loop variables.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PExpr {
    pub terms: Vec<(Atom, i64)>,
    pub cst: i64,
}

impl PExpr {
    pub fn constant(c: i64) -> PExpr {
        PExpr {
            terms: Vec::new(),
            cst: c,
        }
    }

    pub fn slot(i: usize) -> PExpr {
        PExpr {
            terms: vec![(Atom::Slot(i), 1)],
            cst: 0,
        }
    }

    pub fn var(name: &str) -> PExpr {
        PExpr {
            terms: vec![(Atom::Var(name.to_string()), 1)],
            cst: 0,
        }
    }

    pub fn add_term(&mut self, a: Atom, c: i64) {
        if c == 0 {
            return;
        }
        if let Some(t) = self.terms.iter_mut().find(|(x, _)| *x == a) {
            t.1 += c;
            if t.1 == 0 {
                self.terms.retain(|(_, c)| *c != 0);
            }
        } else {
            self.terms.push((a, c));
        }
    }

    /// Evaluates against slot values and a variable environment.
    ///
    /// # Panics
    /// Panics on an unbound variable or out-of-range slot.
    pub fn eval(&self, slots: &[i64], vars: &std::collections::HashMap<String, i64>) -> i64 {
        let mut acc = self.cst;
        for (a, c) in &self.terms {
            let v = match a {
                Atom::Slot(i) => slots[*i],
                Atom::Var(n) => *vars
                    .get(n)
                    .unwrap_or_else(|| panic!("unbound plan variable {n:?}")),
            };
            acc += c * v;
        }
        acc
    }

    /// True if the expression references no slots or variables.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }
}

impl fmt::Display for PExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (a, c) in &self.terms {
            let name = match a {
                Atom::Slot(i) => format!("v{i}"),
                Atom::Var(n) => n.clone(),
            };
            if first {
                match c {
                    1 => write!(f, "{name}")?,
                    -1 => write!(f, "-{name}")?,
                    c => write!(f, "{c}*{name}")?,
                }
                first = false;
            } else if *c > 0 {
                if *c == 1 {
                    write!(f, " + {name}")?;
                } else {
                    write!(f, " + {c}*{name}")?;
                }
            } else if *c == -1 {
                write!(f, " - {name}")?;
            } else {
                write!(f, " - {}*{name}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.cst)?;
        } else if self.cst > 0 {
            write!(f, " + {}", self.cst)?;
        } else if self.cst < 0 {
            write!(f, " - {}", -self.cst)?;
        }
        Ok(())
    }
}

/// A reference to one level of one sparse reference's chain.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LevelRef {
    pub matrix: String,
    /// Global reference id (indexes [`crate::Config::refs`]).
    pub ref_id: usize,
    /// Chain id within the matrix's view.
    pub chain: usize,
    /// Level within the chain.
    pub level: usize,
}

impl fmt::Display for LevelRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}#{}[chain {} level {}]",
            self.matrix, self.ref_id, self.chain, self.level
        )
    }
}

/// Locating a reference's position at the current point by searching its
/// level.
#[derive(Clone, Debug)]
pub struct SearchPart {
    pub target: LevelRef,
    /// One key per attribute of the target level: the value expression
    /// and, when the level sits under a `perm`, the table whose inverse
    /// translates the value to the stored key.
    pub keys: Vec<(PExpr, Option<String>)>,
    /// Other `(ref, level)` pairs on the same matrix/chain searched with
    /// identical keys: they adopt this search's position and outcome
    /// instead of repeating it.
    pub sharers: Vec<(usize, usize)>,
}

/// How a step binds its slots.
#[derive(Clone, Debug)]
pub enum StepKind {
    /// `for v in lo..hi` (or reversed).
    Interval { lo: PExpr, hi: PExpr },
    /// Enumerate a level of the primary reference's chain. Binds one slot
    /// per level attribute; `perms[slot]` translates stored keys to
    /// values.
    Level {
        primary: LevelRef,
        perms: Vec<Option<String>>,
    },
    /// Co-enumerate two sorted single-attribute levels, binding one slot
    /// with their common keys (merge join).
    MergeJoin { a: LevelRef, b: LevelRef },
}

/// One enumeration step.
#[derive(Clone, Debug)]
pub struct Step {
    pub kind: StepKind,
    pub dir: Dir,
    /// Does the step enumerate its slot values in increasing order? Set
    /// by lowering; used by emitter transformations that need firing-
    /// order proofs (e.g. deferred pivot division).
    pub ordered: bool,
    /// First value slot bound by this step (slots are consecutive).
    pub first_slot: usize,
    /// Number of slots bound.
    pub nslots: usize,
    /// References that reuse the primary cursor's position (same matrix,
    /// same chain, shared ancestors): `(ref_id, level)`.
    pub sharers: Vec<(usize, usize)>,
    /// References located by searching once the slot values are known.
    pub searches: Vec<SearchPart>,
    /// Names of the product-space dimensions bound here (diagnostics).
    pub binds: Vec<String>,
}

/// A guard evaluated before executing a statement instance.
#[derive(Clone, Debug)]
pub enum Guard {
    /// `expr == 0`
    Eq(PExpr),
    /// `expr >= 0`
    Ge(PExpr),
    /// `expr % div == 0`
    Divides(PExpr, i64),
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Guard::Eq(e) => write!(f, "{e} == 0"),
            Guard::Ge(e) => write!(f, "{e} >= 0"),
            Guard::Divides(e, d) => write!(f, "({e}) % {d} == 0"),
        }
    }
}

/// Where a statement's sparse access gets its value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValueSource {
    /// The innermost tracked position of the reference.
    Position { ref_id: usize },
    /// Random access through the high-level API (dense coordinates).
    Random { ref_id: usize },
}

/// One statement instance executed at the innermost point.
#[derive(Clone, Debug)]
pub struct ExecStmt {
    /// Statement copy index (into the configuration).
    pub stmt: usize,
    /// Original statement id.
    pub orig: usize,
    /// The statement body (lhs and rhs), carried so plans are
    /// self-contained at execution time.
    pub body: Statement,
    /// Loop-variable bindings in evaluation order:
    /// `(var, expr, divisor)` meaning `var = expr / divisor` guarded by
    /// `expr % divisor == 0`.
    pub bindings: Vec<(String, PExpr, i64)>,
    /// Residual guards (over slots, params and bound variables).
    pub guards: Vec<Guard>,
    /// Per access index of the statement (0 = write): value source for
    /// sparse accesses; `None` entries are dense accesses.
    pub sources: Vec<Option<ValueSource>>,
    /// Sparse refs whose located position is required for this statement
    /// to execute (restriction to stored entries).
    pub required_refs: Vec<usize>,
    /// Nesting depth: the statement executes once per point of the first
    /// `depth` steps (hoisted out of deeper enumerations).
    pub depth: usize,
    /// Placement of a hoisted statement relative to the deeper steps at
    /// each point of its prefix: after (`true`) or before (`false`).
    pub after: bool,
}

/// Runtime metadata about one sparse reference.
#[derive(Clone, Debug)]
pub struct PlanRef {
    pub matrix: String,
    /// Chain id within the matrix's view.
    pub chain: usize,
    /// Number of levels of the chain.
    pub levels: usize,
    /// Dense access expressions (for random-access fallback), one PExpr
    /// per dense attribute, over the statement's loop variables.
    pub access: Vec<PExpr>,
}

/// A complete synthesized plan.
#[derive(Clone, Debug)]
pub struct Plan {
    pub steps: Vec<Step>,
    pub execs: Vec<ExecStmt>,
    /// Per global reference id: runtime metadata.
    pub refs: Vec<PlanRef>,
    /// Product-space description (diagnostics).
    pub space_desc: String,
    /// Total number of value slots.
    pub nslots: usize,
    /// Free-form notes accumulated during lowering (restrictions proven
    /// safe, guards dropped as implied, ...).
    pub notes: Vec<String>,
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "// product space: {}", self.space_desc)?;
        let mut depth = 0;
        for s in &self.steps {
            let pad = "  ".repeat(depth);
            let dir = match s.dir {
                Dir::Fwd => "increasing",
                Dir::Rev => "decreasing",
            };
            let slots: Vec<String> = (s.first_slot..s.first_slot + s.nslots)
                .map(|i| format!("v{i}"))
                .collect();
            let slots = slots.join(", ");
            match &s.kind {
                StepKind::Interval { lo, hi } => {
                    writeln!(
                        f,
                        "{pad}for {slots} = enumerate [{lo}, {hi}) {dir} {{  // binds {}",
                        s.binds.join(", ")
                    )?;
                }
                StepKind::Level { primary, perms } => {
                    let perm_note = if perms.iter().any(|p| p.is_some()) {
                        " via perm"
                    } else {
                        ""
                    };
                    writeln!(
                        f,
                        "{pad}for {slots} = enumerate {primary}{perm_note} {dir} {{  // binds {}",
                        s.binds.join(", ")
                    )?;
                }
                StepKind::MergeJoin { a, b } => {
                    writeln!(
                        f,
                        "{pad}for {slots} = merge-join {a} with {b} {{  // binds {}",
                        s.binds.join(", ")
                    )?;
                }
            }
            for sp in &s.searches {
                let keys: Vec<String> = sp
                    .keys
                    .iter()
                    .map(|(e, p)| match p {
                        Some(t) => format!("{t}^-1[{e}]"),
                        None => format!("{e}"),
                    })
                    .collect();
                writeln!(
                    f,
                    "{pad}  locate {} at key ({}) else skip dependents",
                    sp.target,
                    keys.join(", ")
                )?;
            }
            depth += 1;
        }
        let pad = "  ".repeat(depth);
        for e in &self.execs {
            let guards: Vec<String> = e.guards.iter().map(|g| g.to_string()).collect();
            let binds: Vec<String> = e
                .bindings
                .iter()
                .map(|(v, ex, d)| {
                    if *d == 1 {
                        format!("{v} = {ex}")
                    } else {
                        format!("{v} = ({ex})/{d}")
                    }
                })
                .collect();
            write!(f, "{pad}S{}.{}: ", e.orig + 1, e.stmt)?;
            if e.depth < self.steps.len() {
                write!(
                    f,
                    "[hoisted to depth {} {}] ",
                    e.depth,
                    if e.after { "after" } else { "before" }
                )?;
            }
            if !binds.is_empty() {
                write!(f, "let {}; ", binds.join(", "))?;
            }
            if !guards.is_empty() {
                write!(f, "if {} ", guards.join(" && "))?;
            }
            writeln!(f, "exec")?;
        }
        for _ in 0..self.steps.len() {
            depth -= 1;
            writeln!(f, "{}}}", "  ".repeat(depth))?;
        }
        for n in &self.notes {
            writeln!(f, "// note: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn pexpr_eval_and_display() {
        let mut e = PExpr::slot(0);
        e.add_term(Atom::Var("N".into()), -1);
        e.cst = 3;
        let mut vars = HashMap::new();
        vars.insert("N".to_string(), 10);
        assert_eq!(e.eval(&[7], &vars), 0);
        assert_eq!(e.to_string(), "v0 - N + 3");
        assert!(!e.is_constant());
        assert!(PExpr::constant(4).is_constant());
    }

    #[test]
    fn pexpr_term_merging() {
        let mut e = PExpr::slot(1);
        e.add_term(Atom::Slot(1), -1);
        assert!(e.is_constant());
        e.add_term(Atom::Slot(2), 0);
        assert!(e.terms.is_empty());
    }

    #[test]
    fn guard_display() {
        let g = Guard::Eq(PExpr::slot(0));
        assert_eq!(g.to_string(), "v0 == 0");
        let g2 = Guard::Divides(PExpr::var("x"), 2);
        assert_eq!(g2.to_string(), "(x) % 2 == 0");
    }

    #[test]
    fn plan_display_smoke() {
        let plan = Plan {
            steps: vec![Step {
                kind: StepKind::Interval {
                    lo: PExpr::constant(0),
                    hi: PExpr::var("N"),
                },
                dir: Dir::Fwd,
                ordered: true,
                first_slot: 0,
                nslots: 1,
                sharers: vec![],
                searches: vec![],
                binds: vec!["L0.r".into()],
            }],
            execs: vec![ExecStmt {
                stmt: 0,
                orig: 0,
                body: Statement {
                    lhs: bernoulli_ir::LhsRef {
                        array: "x".into(),
                        idxs: vec![bernoulli_ir::AffineExpr::var("j")],
                    },
                    rhs: bernoulli_ir::ValueExpr::Const(0.0),
                },
                bindings: vec![("j".into(), PExpr::slot(0), 1)],
                guards: vec![Guard::Ge(PExpr::slot(0))],
                sources: vec![None],
                required_refs: vec![],
                depth: 1,
                after: true,
            }],
            refs: vec![],
            space_desc: "L0.r".into(),
            nslots: 1,
            notes: vec!["test".into()],
        };
        let s = plan.to_string();
        assert!(s.contains("for v0 = enumerate [0, N) increasing"));
        assert!(s.contains("let j = v0"));
        assert!(s.contains("if v0 >= 0"));
        assert!(s.contains("// note: test"));
    }
}
