//! The multi-tenant compile service (S38): end-to-end compiles through
//! [`Service`], shared-plan-cache behavior under concurrency, typed
//! admission-control rejections with exact accounting, and warm-start
//! through the persistent plan cache across "restarts" (fresh services
//! over the same directory).

use bernoulli_formats::{Csr, SparseView, Triplets};
use bernoulli_synth::{
    CacheMode, ExecEnv, PersistentPlanCache, Service, ServiceConfig, ServiceError,
};
use std::sync::Arc;
use std::time::Duration;

const MVM: &str = r#"
    program mvm(M, N) {
      in matrix A[M][N];
      in vector x[N];
      inout vector y[M];
      for i in 0..M {
        for j in 0..N {
          y[i] = y[i] + A[i][j] * x[j];
        }
      }
    }
"#;

fn csr() -> Csr {
    Csr::from_triplets(&Triplets::from_entries(
        3,
        3,
        &[(0, 0, 2.0), (1, 2, 1.0), (2, 1, 4.0)],
    ))
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bernoulli-service-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn service_compiles_end_to_end() {
    let svc = Service::with_defaults();
    let p = svc.parse(MVM).unwrap();
    assert!(!svc.analyze(&p).is_empty());
    let a = csr();
    let bound = svc.bind(&p, &[("A", a.format_view())]).unwrap();
    let kernel = svc.compile(&bound).unwrap();
    assert!(kernel.cost() > 0.0);

    let mut env = ExecEnv::new();
    env.set_param("M", 3).set_param("N", 3);
    env.bind_sparse("A", &a);
    env.bind_vec("x", vec![1.0, 2.0, 3.0]);
    env.bind_vec("y", vec![0.0; 3]);
    kernel.interpret(&mut env).unwrap();
    assert_eq!(env.take_vec("y"), vec![2.0, 3.0, 8.0]);

    let stats = svc.stats();
    assert_eq!(stats.submitted, 1);
    assert_eq!(stats.admitted, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.peak_inflight, 1);
}

#[test]
fn concurrent_clients_share_the_plan_cache() {
    let svc = Arc::new(Service::with_defaults());
    let p = svc.parse(MVM).unwrap();
    let a = csr();
    let bound = Arc::new(svc.bind(&p, &[("A", a.format_view())]).unwrap());

    const CLIENTS: usize = 8;
    let mut handles = Vec::new();
    for _ in 0..CLIENTS {
        let svc = Arc::clone(&svc);
        let bound = Arc::clone(&bound);
        handles.push(std::thread::spawn(move || {
            let k = svc.compile(&bound).unwrap();
            (k.plan().to_string(), k.emit("kernel").unwrap())
        }));
    }
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Every client sees byte-identical output regardless of which
    // thread searched and which hit the cache.
    for r in &results[1..] {
        assert_eq!(r, &results[0]);
    }
    let pc = svc.plan_cache_stats();
    assert_eq!(pc.hits + pc.misses, CLIENTS as u64);
    assert!(pc.misses >= 1, "{pc:?}");
    let stats = svc.stats();
    assert_eq!(stats.submitted, CLIENTS as u64);
    assert_eq!(stats.completed, CLIENTS as u64);
    assert_eq!(stats.shed_overloaded + stats.shed_deadline, 0);
}

#[test]
fn isolated_and_overlay_modes_match_shared_mode_output() {
    let mut reference = None;
    for mode in [CacheMode::Shared, CacheMode::Overlay, CacheMode::Isolated] {
        let svc = Service::new(ServiceConfig {
            cache_mode: mode,
            ..ServiceConfig::default()
        });
        let p = svc.parse(MVM).unwrap();
        let bound = svc.bind(&p, &[("A", csr().format_view())]).unwrap();
        let k = svc.compile(&bound).unwrap();
        let out = (k.plan().to_string(), k.emit("kernel").unwrap());
        match &reference {
            None => reference = Some(out),
            Some(r) => assert_eq!(&out, r, "cache mode {mode:?} changed the result"),
        }
    }
}

#[test]
fn overload_and_queue_deadline_shed_with_exact_accounting() {
    let svc = Service::new(ServiceConfig {
        max_inflight: 1,
        max_queue: 0,
        ..ServiceConfig::default()
    });
    let p = svc.parse(MVM).unwrap();
    let bound = svc.bind(&p, &[("A", csr().format_view())]).unwrap();

    // Occupy the only slot, deterministically forcing the shed paths.
    let opts = svc.config().opts.clone();
    let permit = svc.admission().acquire(None).unwrap();
    match svc.compile(&bound) {
        Err(ServiceError::Overloaded { inflight, queued }) => {
            assert_eq!((inflight, queued), (1, 0));
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    match svc.compile_with(&bound, &opts, Some(Duration::from_millis(20))) {
        // max_queue = 0: even a deadline-carrying request sheds as
        // Overloaded rather than queueing.
        Err(ServiceError::Overloaded { .. }) => {}
        other => panic!("expected Overloaded, got {other:?}"),
    }
    drop(permit);

    // Queue depth 1: a request with an already-tight deadline queues,
    // then times out while the slot is held.
    let svc2 = Service::new(ServiceConfig {
        max_inflight: 1,
        max_queue: 1,
        ..ServiceConfig::default()
    });
    let bound2 = svc2.bind(&p, &[("A", csr().format_view())]).unwrap();
    let permit = svc2.admission().acquire(None).unwrap();
    let t0 = std::time::Instant::now();
    match svc2.compile_with(&bound2, &opts, Some(Duration::from_millis(40))) {
        Err(ServiceError::QueueDeadline { waited_ms }) => {
            assert!(t0.elapsed() >= Duration::from_millis(40));
            assert!(waited_ms >= 30, "waited_ms = {waited_ms}");
        }
        other => panic!("expected QueueDeadline, got {other:?}"),
    }
    drop(permit);
    // The slot is free and the abandoned ticket skipped: compiles work.
    assert!(svc2.compile(&bound2).is_ok());

    let s = svc.stats();
    assert_eq!(s.submitted, 2);
    assert_eq!(s.shed_overloaded, 2);
    assert_eq!(
        s.admitted + s.shed_overloaded + s.shed_deadline,
        s.submitted
    );
    let s2 = svc2.stats();
    assert_eq!(s2.submitted, 2);
    assert_eq!(s2.shed_deadline, 1);
    assert_eq!(s2.completed, 1);
    assert_eq!(
        s2.admitted + s2.shed_overloaded + s2.shed_deadline,
        s2.submitted
    );
}

#[test]
fn persistent_cache_warm_starts_a_fresh_service() {
    let dir = scratch_dir("warm");
    let cfg = || ServiceConfig {
        persist_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    };

    // Cold service: searches, then persists the result.
    let cold = Service::new(cfg());
    let p = cold.parse(MVM).unwrap();
    let bound = cold.bind(&p, &[("A", csr().format_view())]).unwrap();
    let k_cold = cold.compile(&bound).unwrap();
    assert!(!k_cold.report().plan_cache_hit);
    let ps = cold.persist_stats().unwrap();
    assert_eq!(ps.writes, 1, "{ps:?}");
    assert_eq!(ps.errors, 0, "{ps:?}");

    // "Restarted" service over the same directory: the search is
    // served from disk, promoted into the in-memory cache, and the
    // result is byte-identical.
    let warm = Service::new(cfg());
    let bound2 = warm.bind(&p, &[("A", csr().format_view())]).unwrap();
    let k_warm = warm.compile(&bound2).unwrap();
    assert!(k_warm.report().plan_cache_hit);
    assert!(k_warm.report().plan_cache_disk_hit);
    assert_eq!(k_warm.plan().to_string(), k_cold.plan().to_string());
    assert_eq!(k_warm.emit("f").unwrap(), k_cold.emit("f").unwrap());
    assert_eq!(k_warm.cost(), k_cold.cost());
    // A second identical compile hits the promoted in-memory entry.
    let k3 = warm.compile(&bound2).unwrap();
    assert!(k3.report().plan_cache_hit && !k3.report().plan_cache_disk_hit);

    // The stored entry round-trips the emitted kernel source exactly.
    let store = PersistentPlanCache::new(&dir);
    let (plans, emitted) = store.load_with_source(k_cold.cache_key()).unwrap();
    assert_eq!(plans[0], k_cold.plan().to_string());
    assert_eq!(emitted, k_cold.emit("kernel").unwrap());
    assert_eq!(store.last_error(), None);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn blocked_plans_persist_and_restore_through_the_service_tier() {
    use bernoulli_formats::{discover_strips, gen, Bsr, Vbr};

    let dir = scratch_dir("blocked");
    let cfg = || ServiceConfig {
        persist_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    };

    let t = gen::fem_blocked(24, 2, 2, 1.0, 7);
    let bsr = Bsr::from_triplets(&t, 2, 2);
    let (rp, cp) = discover_strips(&t);
    let vbr = Vbr::from_triplets(&t, &rp, &cp);

    for view in [bsr.format_view(), vbr.format_view()] {
        let cold = Service::new(cfg());
        let p = cold.parse(MVM).unwrap();
        let bound = cold.bind(&p, &[("A", view.clone())]).unwrap();
        let k_cold = cold.compile(&bound).unwrap();
        assert!(!k_cold.report().plan_cache_hit, "{}", view.name);

        // Restarted service over the same directory: the blocked plan
        // warm-starts from disk and is byte-identical.
        let warm = Service::new(cfg());
        let bound2 = warm.bind(&p, &[("A", view.clone())]).unwrap();
        let k_warm = warm.compile(&bound2).unwrap();
        assert!(k_warm.report().plan_cache_hit, "{}", view.name);
        assert!(k_warm.report().plan_cache_disk_hit, "{}", view.name);
        assert_eq!(k_warm.plan().to_string(), k_cold.plan().to_string());
        assert_eq!(k_warm.emit("f").unwrap(), k_cold.emit("f").unwrap());

        // The stored entry round-trips the emitted source exactly.
        let store = PersistentPlanCache::new(&dir);
        let (plans, emitted) = store.load_with_source(k_cold.cache_key()).unwrap();
        assert_eq!(plans[0], k_cold.plan().to_string());
        assert_eq!(emitted, k_cold.emit("kernel").unwrap());
        assert_eq!(store.last_error(), None);
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_persistent_entries_degrade_to_cold_compiles() {
    let dir = scratch_dir("corrupt");
    let cfg = || ServiceConfig {
        persist_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    };
    let cold = Service::new(cfg());
    let p = cold.parse(MVM).unwrap();
    let bound = cold.bind(&p, &[("A", csr().format_view())]).unwrap();
    let k_cold = cold.compile(&bound).unwrap();

    // Truncate every stored entry.
    for f in std::fs::read_dir(&dir).unwrap() {
        let path = f.unwrap().path();
        std::fs::write(&path, "(bernoulli-plan-cache 1 truncated").unwrap();
    }

    let warm = Service::new(cfg());
    let bound2 = warm.bind(&p, &[("A", csr().format_view())]).unwrap();
    let k = warm.compile(&bound2).unwrap();
    // The corrupt entry behaves as a miss: a full (correct) search ran.
    assert!(!k.report().plan_cache_hit);
    assert_eq!(k.plan().to_string(), k_cold.plan().to_string());
    let ps = warm.persist_stats().unwrap();
    assert_eq!(ps.errors, 1, "{ps:?}");

    let _ = std::fs::remove_dir_all(&dir);
}
