//! End-to-end: synthesize a plan for each (kernel, format) pair, run it
//! through the interpreter, and compare against the dense reference
//! executor (DESIGN.md property P3).

use bernoulli_formats::convert::AnyFormat;
use bernoulli_formats::{gen, Triplets};
use bernoulli_ir::{parse_program, run_dense, DenseEnv, Program};
use bernoulli_synth::{run_plan, synthesize, ExecEnv, SynthOptions};

const TS: &str = r#"
    program ts(N) {
      in matrix L[N][N];
      inout vector b[N];
      for j in 0..N {
        b[j] = b[j] / L[j][j];
        for i in j+1..N {
          b[i] = b[i] - L[i][j] * b[j];
        }
      }
    }
"#;

const MVM: &str = r#"
    program mvm(M, N) {
      in matrix A[M][N];
      in vector x[N];
      inout vector y[M];
      for i in 0..M {
        for j in 0..N {
          y[i] = y[i] + A[i][j] * x[j];
        }
      }
    }
"#;

fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

/// Runs TS on the given format of a lower-triangular matrix and compares
/// with the dense reference.
fn check_ts(format: &str, t: &Triplets<f64>) {
    let n = t.nrows();
    let p: Program = parse_program(TS).unwrap();
    let f = AnyFormat::from_triplets(format, t);
    let view = f.as_view().format_view();

    let synth = synthesize(&p, &[("L", view)], &SynthOptions::default())
        .unwrap_or_else(|e| panic!("{format}: synthesis failed: {e}"));

    // Reference.
    let dense = bernoulli_formats::Dense::from_triplets(t);
    let b0 = gen::dense_vector(n, 7);
    let mut env = DenseEnv::new()
        .param("N", n as i64)
        .vector("b", b0.clone())
        .matrix("L", &dense);
    run_dense(&p, &mut env).unwrap();
    let expect = env.take_vector("b");

    // Synthesized plan.
    let mut penv = ExecEnv::new();
    penv.set_param("N", n as i64);
    penv.bind_vec("b", b0);
    penv.bind_sparse("L", f.as_view());
    run_plan(&synth.plan, &mut penv)
        .unwrap_or_else(|e| panic!("{format}: plan failed: {e}\nplan:\n{}", synth.plan));
    let got = penv.take_vec("b");

    assert!(
        close(&expect, &got, 1e-9),
        "{format}: mismatch\nexpect {:?}\ngot    {:?}\nplan:\n{}",
        &expect[..expect.len().min(8)],
        &got[..got.len().min(8)],
        synth.plan
    );
}

fn check_mvm(format: &str, t: &Triplets<f64>) {
    let (m, n) = (t.nrows(), t.ncols());
    let p: Program = parse_program(MVM).unwrap();
    let f = AnyFormat::from_triplets(format, t);
    let view = f.as_view().format_view();

    let synth = synthesize(&p, &[("A", view)], &SynthOptions::default())
        .unwrap_or_else(|e| panic!("{format}: synthesis failed: {e}"));

    let dense = bernoulli_formats::Dense::from_triplets(t);
    let x = gen::dense_vector(n, 3);
    let y0 = vec![0.0; m];
    let mut env = DenseEnv::new()
        .param("M", m as i64)
        .param("N", n as i64)
        .vector("x", x.clone())
        .vector("y", y0.clone())
        .matrix("A", &dense);
    run_dense(&p, &mut env).unwrap();
    let expect = env.take_vector("y");

    let mut penv = ExecEnv::new();
    penv.set_param("M", m as i64);
    penv.set_param("N", n as i64);
    penv.bind_vec("x", x);
    penv.bind_vec("y", y0);
    penv.bind_sparse("A", f.as_view());
    run_plan(&synth.plan, &mut penv)
        .unwrap_or_else(|e| panic!("{format}: plan failed: {e}\nplan:\n{}", synth.plan));
    let got = penv.take_vec("y");

    assert!(
        close(&expect, &got, 1e-9),
        "{format}: mismatch\nexpect {:?}\ngot    {:?}\nplan:\n{}",
        &expect[..expect.len().min(8)],
        &got[..got.len().min(8)],
        synth.plan
    );
}

fn lower_tri_workload() -> Triplets<f64> {
    gen::structurally_symmetric(24, 110, 8, 42).lower_triangle_full_diag(1.5)
}

fn square_workload() -> Triplets<f64> {
    gen::structurally_symmetric(20, 96, 7, 11)
}

#[test]
fn ts_csr() {
    check_ts("csr", &lower_tri_workload());
}

#[test]
fn ts_csc() {
    check_ts("csc", &lower_tri_workload());
}

#[test]
fn ts_jad() {
    check_ts("jad", &lower_tri_workload());
}

#[test]
fn ts_dia() {
    check_ts("dia", &lower_tri_workload());
}

#[test]
fn ts_diagsplit() {
    check_ts("diagsplit", &lower_tri_workload());
}

#[test]
fn ts_ell() {
    check_ts("ell", &lower_tri_workload());
}

#[test]
fn ts_dense_format() {
    check_ts("dense", &lower_tri_workload());
}

#[test]
fn mvm_all_formats() {
    let t = square_workload();
    for fmt in [
        "csr",
        "csc",
        "coo",
        "dia",
        "ell",
        "jad",
        "dense",
        "diagsplit",
    ] {
        check_mvm(fmt, &t);
    }
}

#[test]
fn mvm_rectangular() {
    let t = gen::random_sparse(15, 9, 40, 5);
    for fmt in ["csr", "csc", "coo", "ell", "dense"] {
        check_mvm(fmt, &t);
    }
}

#[test]
fn ts_small_and_degenerate() {
    // 1x1 and 2x2 systems.
    let t1 = Triplets::from_entries(1, 1, &[(0, 0, 4.0)]);
    check_ts("csr", &t1);
    check_ts("jad", &t1);
    let t2 = Triplets::from_entries(2, 2, &[(0, 0, 2.0), (1, 0, 1.0), (1, 1, 4.0)]);
    for fmt in ["csr", "csc", "jad", "dia", "diagsplit", "ell"] {
        check_ts(fmt, &t2);
    }
}

#[test]
fn mvm_empty_matrix() {
    // All-zero matrix: y must stay zero.
    let t = Triplets::new(6, 6);
    for fmt in ["csr", "csc", "coo", "ell"] {
        check_mvm(fmt, &t);
    }
}

/// The Fig. 11 cost model must rank the data-centric CSR plan ahead of
/// the iteration-centric fallback when both are in the candidate set.
#[test]
fn cost_model_prefers_data_centric() {
    use bernoulli_synth::synthesize_all;
    let p = parse_program(MVM).unwrap();
    let t = gen::random_sparse(64, 64, 400, 7);
    let f = AnyFormat::from_triplets("csr", &t);
    let opts = SynthOptions {
        include_iteration_centric: true,
        stats: bernoulli_synth::WorkloadStats::default()
            .with_param("M", 64.0)
            .with_param("N", 64.0)
            .with_matrix("A", 64.0, 64.0, 400.0),
        ..SynthOptions::default()
    };
    let (cands, _, _) = synthesize_all(&p, &[("A", f.as_view().format_view())], &opts).unwrap();
    assert!(cands.len() >= 2, "need both plan families");
    use bernoulli_synth::plan::StepKind;
    let is_data_centric = |plan: &bernoulli_synth::Plan| {
        plan.steps
            .iter()
            .any(|s| matches!(s.kind, StepKind::Level { .. }))
    };
    // The cheapest candidate walks the storage; some candidate in the
    // list is the dense fallback and must cost more.
    assert!(is_data_centric(&cands[0].plan), "{}", cands[0].plan);
    let fallback = cands.iter().find(|c| !is_data_centric(&c.plan));
    if let Some(fb) = fallback {
        assert!(fb.cost > cands[0].cost);
    }
}
