//! Session-level resource governance: op budgets and deadlines degrade
//! the search gracefully (best-so-far or baseline plan, never a wrong
//! one), cancellation stops it with a typed error, and a generous
//! budget changes nothing.

use bernoulli_formats::{Csr, SparseView, Triplets};
use bernoulli_synth::interp::ExecEnv;
use bernoulli_synth::{BudgetError, Session, SynthError};
use std::sync::Mutex;
use std::time::Duration;

/// The installed budget is process-wide; compiles under different
/// budgets must not overlap.
static SLOT: Mutex<()> = Mutex::new(());

const MVM: &str = "
    program mvm(M, N) {
      in matrix A[M][N];
      in vector x[N];
      inout vector y[M];
      for i in 0..M {
        for j in 0..N {
          y[i] = y[i] + A[i][j] * x[j];
        }
      }
    }
";

fn csr() -> Csr {
    Csr::from_triplets(&Triplets::from_entries(
        3,
        3,
        &[(0, 0, 2.0), (0, 2, 5.0), (1, 2, 1.0), (2, 1, 4.0)],
    ))
}

/// y = A*x computed densely — the ground truth every degraded plan must
/// still reproduce.
fn reference() -> Vec<f64> {
    let a = [[2.0, 0.0, 5.0], [0.0, 0.0, 1.0], [0.0, 4.0, 0.0]];
    let x = [1.0, 2.0, 3.0];
    (0..3)
        .map(|i| (0..3).map(|j| a[i][j] * x[j]).sum())
        .collect()
}

fn run_kernel(kernel: &bernoulli_synth::CompiledKernel, a: &Csr) -> Vec<f64> {
    let mut env = ExecEnv::new();
    env.set_param("M", 3).set_param("N", 3);
    env.bind_sparse("A", a);
    env.bind_vec("x", vec![1.0, 2.0, 3.0]);
    env.bind_vec("y", vec![0.0; 3]);
    kernel.interpret(&mut env).unwrap();
    env.take_vec("y")
}

#[test]
fn starved_op_budget_degrades_to_a_correct_plan() {
    let _lock = SLOT.lock().unwrap_or_else(|e| e.into_inner());
    let s = Session::new().with_op_budget(40);
    let p = s.parse(MVM).unwrap();
    let a = csr();
    let bound = s.bind(&p, &[("A", a.format_view())]).unwrap();
    let kernel = s.compile(&bound).unwrap();
    let report = kernel.report();
    assert!(report.degraded, "40 ops cannot complete the search");
    assert!(
        matches!(report.budget, Some(BudgetError::Ops { .. })),
        "{:?}",
        report.budget
    );
    // The degraded plan is still fully verified — it must compute the
    // right answer, not just exist.
    assert_eq!(run_kernel(&kernel, &a), reference());
}

#[test]
fn zero_deadline_degrades_to_a_correct_plan() {
    let _lock = SLOT.lock().unwrap_or_else(|e| e.into_inner());
    let s = Session::new().with_deadline(Duration::ZERO);
    let p = s.parse(MVM).unwrap();
    let a = csr();
    let bound = s.bind(&p, &[("A", a.format_view())]).unwrap();
    let kernel = s.compile(&bound).unwrap();
    let report = kernel.report();
    assert!(report.degraded);
    assert!(
        matches!(report.budget, Some(BudgetError::Deadline { .. })),
        "{:?}",
        report.budget
    );
    assert_eq!(run_kernel(&kernel, &a), reference());
}

#[test]
fn degraded_results_are_not_plan_cached() {
    let _lock = SLOT.lock().unwrap_or_else(|e| e.into_inner());
    let s = Session::new().with_op_budget(40);
    let p = s.parse(MVM).unwrap();
    let a = csr();
    let bound = s.bind(&p, &[("A", a.format_view())]).unwrap();
    assert!(s.compile(&bound).unwrap().report().degraded);
    let second = s.compile(&bound).unwrap();
    assert!(!second.from_cache(), "degraded result must not be cached");
    let stats = s.plan_cache_stats();
    assert_eq!(stats.hits, 0, "{stats:?}");
}

#[test]
fn cancellation_yields_typed_error_not_fallback() {
    let _lock = SLOT.lock().unwrap_or_else(|e| e.into_inner());
    let s = Session::new();
    let tok = s.cancel_token();
    tok.cancel();
    let p = s.parse(MVM).unwrap();
    let a = csr();
    let bound = s.bind(&p, &[("A", a.format_view())]).unwrap();
    match s.compile(&bound) {
        Err(SynthError::Deadline {
            cause: BudgetError::Cancelled,
            ..
        }) => {}
        other => panic!("expected cancelled Deadline error, got {other:?}"),
    }
    // The session itself is not poisoned concept-wise: a new session
    // (fresh, uncancelled) compiles the same problem fine.
    let fresh = Session::new();
    let b2 = fresh.bind(&p, &[("A", a.format_view())]).unwrap();
    assert!(!fresh.compile(&b2).unwrap().report().degraded);
}

#[test]
fn generous_budget_matches_unbudgeted_search() {
    let _lock = SLOT.lock().unwrap_or_else(|e| e.into_inner());
    let p_src = MVM;
    let a = csr();

    let unbudgeted = Session::new();
    let p = unbudgeted.parse(p_src).unwrap();
    let b1 = unbudgeted.bind(&p, &[("A", a.format_view())]).unwrap();
    let k1 = unbudgeted.compile(&b1).unwrap();

    let budgeted = Session::new()
        .with_op_budget(500_000_000)
        .with_deadline(Duration::from_secs(600));
    let b2 = budgeted.bind(&p, &[("A", a.format_view())]).unwrap();
    let k2 = budgeted.compile(&b2).unwrap();

    assert!(!k2.report().degraded);
    assert_eq!(k2.report().budget, None);
    assert_eq!(k2.report().skipped_configs, 0);
    assert_eq!(k1.cost(), k2.cost());
    assert_eq!(k1.report().examined, k2.report().examined);
    assert_eq!(run_kernel(&k2, &a), reference());
}
