//! Search-driver robustness and caching tests (S34): degenerate cost
//! models must not panic, the whole-search plan cache must serve a
//! second identical call entirely from memory, and rejection reasons
//! must stay deduplicated and bounded.

use bernoulli_formats::convert::AnyFormat;
use bernoulli_formats::{gen, Triplets};
use bernoulli_ir::{parse_program, Program};
use bernoulli_synth::{
    plan_cache_clear, plan_cache_stats, synthesize_all_report, SynthOptions, WorkloadStats,
};
use std::sync::Mutex;

const TS: &str = r#"
    program ts(N) {
      in matrix L[N][N];
      inout vector b[N];
      for j in 0..N {
        b[j] = b[j] / L[j][j];
        for i in j+1..N {
          b[i] = b[i] - L[i][j] * b[j];
        }
      }
    }
"#;

const MVM: &str = r#"
    program mvm(M, N) {
      in matrix A[M][N];
      in vector x[N];
      inout vector y[M];
      for i in 0..M {
        for j in 0..N {
          y[i] = y[i] + A[i][j] * x[j];
        }
      }
    }
"#;

/// The plan cache is process-global and this binary's tests run
/// concurrently, so the test that asserts on its hit/miss counters
/// takes this lock; every other test here disables `cache_plans`.
static PLAN_CACHE_LOCK: Mutex<()> = Mutex::new(());

fn lower_triangular(n: usize) -> Triplets<f64> {
    let dense = gen::random_sparse(n, n, 4 * n, 11);
    let mut t = Triplets::new(n, n);
    for &(i, j, v) in dense.entries() {
        if j < i {
            t.push(i, j, v);
        }
    }
    for i in 0..n {
        t.push(i, i, 2.0 + i as f64);
    }
    t
}

fn ts_on(
    format: &str,
) -> (
    Program,
    Vec<(&'static str, bernoulli_formats::view::FormatView)>,
) {
    let p = parse_program(TS).unwrap();
    let t = lower_triangular(16);
    let view = AnyFormat::from_triplets(format, &t).as_view().format_view();
    (p, vec![("L", view)])
}

/// Regression: candidate ranking used `partial_cmp(..).unwrap()`, which
/// panics the moment a degenerate cost model produces a non-finite
/// cost. With `total_cmp` the search must complete, rank NaN costs
/// last, and never let the (equally NaN-poisoned) cost floor prune.
#[test]
fn degenerate_stats_do_not_panic() {
    let p = parse_program(MVM).unwrap();
    let t = gen::random_sparse(12, 12, 40, 3);
    let view = AnyFormat::from_triplets("csr", &t).as_view().format_view();

    let mut stats = WorkloadStats {
        default_n: f64::NAN,
        ..WorkloadStats::default()
    };
    stats.params.insert("N".to_string(), f64::NAN);
    let opts = SynthOptions {
        stats,
        cache_plans: false,
        ..SynthOptions::default()
    };
    let rep = synthesize_all_report(&p, &[("A", view)], &opts).unwrap();
    assert!(
        !rep.candidates.is_empty(),
        "NaN statistics still admit structurally legal plans"
    );
    // Every cost is NaN-poisoned, yet nothing was pruned on their
    // account: the floor degrades to the never-pruning value.
    assert_eq!(rep.pruned, 0, "a non-finite floor must never prune");
    // A finite-cost candidate can never rank below a NaN one.
    let first_nan = rep.candidates.iter().position(|c| c.cost.is_nan());
    if let Some(k) = first_nan {
        assert!(
            rep.candidates[k..].iter().all(|c| c.cost.is_nan()),
            "NaN costs must sort after all finite costs"
        );
    }
}

/// The second identical synthesis call must be served 100% from the
/// plan cache: one more hit, no more misses, and byte-identical
/// results.
#[test]
fn plan_cache_second_identical_call_is_pure_hit() {
    let _g = PLAN_CACHE_LOCK.lock().unwrap();
    plan_cache_clear();

    let (p, views) = ts_on("csr");
    let opts = SynthOptions {
        stats: WorkloadStats::default()
            .with_param("N", 1072.0)
            .with_matrix("L", 1072.0, 1072.0, 6758.0),
        ..SynthOptions::default()
    };

    let first = synthesize_all_report(&p, &views, &opts).unwrap();
    assert!(!first.plan_cache_hit, "cold call cannot hit the cache");
    let cold = plan_cache_stats();
    assert_eq!((cold.hits, cold.misses), (0, 1));

    let second = synthesize_all_report(&p, &views, &opts).unwrap();
    assert!(second.plan_cache_hit, "identical call must hit the cache");
    let warm = plan_cache_stats();
    assert_eq!((warm.hits, warm.misses), (1, 1), "second call: pure hit");
    assert!((warm.hit_rate() - 0.5).abs() < 1e-12);

    assert_eq!(first.examined, second.examined);
    assert_eq!(first.candidates.len(), second.candidates.len());
    for (a, b) in first.candidates.iter().zip(&second.candidates) {
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        assert_eq!(a.plan.to_string(), b.plan.to_string());
        assert_eq!(a.choices, b.choices);
        assert_eq!(a.safety_notes, b.safety_notes);
    }

    // A changed knob (or statistics) is a different key — no false hit.
    let other = SynthOptions {
        keep: 7,
        ..opts.clone()
    };
    let third = synthesize_all_report(&p, &views, &other).unwrap();
    assert!(!third.plan_cache_hit, "different knobs must miss");

    plan_cache_clear();
    let reset = plan_cache_stats();
    assert_eq!((reset.hits, reset.misses), (0, 0));
}

/// Rejection reasons are deduplicated and capped: a search that rejects
/// dozens of embeddings for the same reason reports it once.
#[test]
fn rejection_reasons_are_deduplicated_and_capped() {
    let (p, views) = ts_on("jad");
    let opts = SynthOptions {
        stats: WorkloadStats::default()
            .with_param("N", 1072.0)
            .with_matrix("L", 1072.0, 1072.0, 6758.0),
        cache_plans: false,
        ..SynthOptions::default()
    };
    let rep = synthesize_all_report(&p, &views, &opts).unwrap();
    assert!(
        rep.examined > rep.candidates.len(),
        "ts/jad rejects embeddings, so reasons have something to record"
    );
    for (i, r) in rep.reasons.iter().enumerate() {
        assert!(
            !rep.reasons[i + 1..].contains(r),
            "duplicate rejection reason: {r}"
        );
    }
    assert!(rep.reasons.len() <= 16, "reasons are capped");
}
