//! Property-based end-to-end: on random sparse patterns, every
//! synthesized plan agrees with the dense reference executor for MVM and
//! TS across a representative set of formats (DESIGN.md P3/P4 as a
//! randomized property).

use bernoulli_formats::convert::AnyFormat;
use bernoulli_formats::Triplets;
use bernoulli_ir::{parse_program, run_dense, DenseEnv, Program};
use bernoulli_synth::{run_plan, synthesize, ExecEnv, SynthOptions};
use proptest::prelude::*;

fn mvm_spec() -> Program {
    parse_program(
        r#"program mvm(M, N) {
             in matrix A[M][N]; in vector x[N]; inout vector y[M];
             for i in 0..M { for j in 0..N {
               y[i] = y[i] + A[i][j] * x[j];
             } }
           }"#,
    )
    .unwrap()
}

fn ts_spec() -> Program {
    parse_program(
        r#"program ts(N) {
             in matrix L[N][N]; inout vector b[N];
             for j in 0..N {
               b[j] = b[j] / L[j][j];
               for i in j+1..N {
                 b[i] = b[i] - L[i][j] * b[j];
               }
             }
           }"#,
    )
    .unwrap()
}

/// Random square matrix with distinct positions and non-zero values.
fn arb_matrix(n: usize, max_nnz: usize) -> impl Strategy<Value = Triplets<f64>> {
    proptest::collection::btree_set((0..n, 0..n), 0..=max_nnz).prop_map(move |pos| {
        let entries: Vec<(usize, usize, f64)> = pos
            .into_iter()
            .enumerate()
            .map(|(k, (r, c))| (r, c, 0.25 + (k % 7) as f64))
            .collect();
        Triplets::from_entries(n, n, &entries)
    })
}

fn arb_vec(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-4.0f64..4.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mvm_random_patterns(t in arb_matrix(9, 30), x in arb_vec(9)) {
        let spec = mvm_spec();
        let n = t.nrows();
        let dense = bernoulli_formats::Dense::from_triplets(&t);
        let mut env = DenseEnv::new()
            .param("M", n as i64)
            .param("N", n as i64)
            .vector("x", x.clone())
            .vector("y", vec![0.0; n])
            .matrix("A", &dense);
        run_dense(&spec, &mut env).unwrap();
        let expect = env.take_vector("y");

        for fmt in ["csr", "coo", "dia", "jad", "ell"] {
            let f = AnyFormat::from_triplets(fmt, &t);
            let s = synthesize(&spec, &[("A", f.as_view().format_view())], &SynthOptions::default())
                .unwrap_or_else(|e| panic!("{fmt}: {e}"));
            let mut penv = ExecEnv::new();
            penv.set_param("M", n as i64);
            penv.set_param("N", n as i64);
            penv.bind_vec("x", x.clone());
            penv.bind_vec("y", vec![0.0; n]);
            penv.bind_sparse("A", f.as_view());
            run_plan(&s.plan, &mut penv).unwrap();
            let got = penv.take_vec("y");
            for (i, (a, b)) in got.iter().zip(&expect).enumerate() {
                prop_assert!(
                    (a - b).abs() <= 1e-9 * (1.0 + b.abs()),
                    "{fmt} element {i}: {a} vs {b}\nplan:\n{}", s.plan
                );
            }
        }
    }

    #[test]
    fn ts_random_lower_triangles(t in arb_matrix(8, 24), b0 in arb_vec(8)) {
        let l = t.lower_triangle_full_diag(2.0);
        let spec = ts_spec();
        let n = l.nrows();
        let dense = bernoulli_formats::Dense::from_triplets(&l);
        let mut env = DenseEnv::new()
            .param("N", n as i64)
            .vector("b", b0.clone())
            .matrix("L", &dense);
        run_dense(&spec, &mut env).unwrap();
        let expect = env.take_vector("b");

        for fmt in ["csr", "csc", "jad", "dia"] {
            let f = AnyFormat::from_triplets(fmt, &l);
            let s = synthesize(&spec, &[("L", f.as_view().format_view())], &SynthOptions::default())
                .unwrap_or_else(|e| panic!("{fmt}: {e}"));
            let mut penv = ExecEnv::new();
            penv.set_param("N", n as i64);
            penv.bind_vec("b", b0.clone());
            penv.bind_sparse("L", f.as_view());
            run_plan(&s.plan, &mut penv).unwrap();
            let got = penv.take_vec("b");
            for (i, (a, b)) in got.iter().zip(&expect).enumerate() {
                prop_assert!(
                    (a - b).abs() <= 1e-8 * (1.0 + b.abs()),
                    "{fmt} element {i}: {a} vs {b}\nplan:\n{}", s.plan
                );
            }
        }
    }
}
