//! The structure-aware advisor: ranking, determinism, plan-cache reuse,
//! instance-derived view annotations, and execution of advised kernels.

use bernoulli_formats::{gen, AnyFormat, StructureFeatures};
use bernoulli_ir::parse_program;
use bernoulli_synth::{view_for_features, ExecEnv, Service, ServiceConfig, Session, SynthError};

const MVM: &str = r#"
    program mvm(M, N) {
      in matrix A[M][N];
      in vector x[N];
      inout vector y[M];
      for i in 0..M {
        for j in 0..N {
          y[i] = y[i] + A[i][j] * x[j];
        }
      }
    }
"#;

#[test]
fn advise_ranks_and_runs() {
    let session = Session::new();
    let p = parse_program(MVM).unwrap();
    let t = gen::structurally_symmetric(128, 1100, 16, 3);
    let advice = session
        .advise(&p, "A", &t, &["coo", "csr", "csc", "ell", "jad"])
        .unwrap();

    // Every scored candidate, ranked by predicted cost.
    assert!(!advice.ranked.is_empty());
    for w in advice.ranked.windows(2) {
        assert!(w[0].predicted_cost <= w[1].predicted_cost);
    }
    assert_eq!(
        advice.best().predicted_cost,
        advice.ranked[0].predicted_cost
    );

    // The features snapshot describes the instance.
    assert_eq!((advice.features.nrows, advice.features.ncols), (128, 128));
    assert_eq!(advice.features.nnz, t.nnz());

    // The chosen kernel executes correctly on the chosen format.
    let n = t.nrows();
    let best = advice.best();
    let f = AnyFormat::<f64>::try_from_triplets(&best.format, &t).unwrap();
    let x = gen::dense_vector(n, 5);
    let mut env = ExecEnv::new();
    env.set_param("M", n as i64).set_param("N", n as i64);
    env.bind_sparse("A", f.as_view());
    env.bind_vec("x", x.clone());
    env.bind_vec("y", vec![0.0; n]);
    best.kernel.interpret(&mut env).unwrap();
    let y = env.take_vec("y");
    let dense = t.to_dense_rows();
    for r in 0..n {
        let want: f64 = (0..n).map(|c| dense[r][c] * x[c]).sum();
        assert!((y[r] - want).abs() <= 1e-9 * (1.0 + want.abs()), "row {r}");
    }
}

#[test]
fn advise_is_deterministic_and_cache_warm() {
    let session = Session::new();
    let p = parse_program(MVM).unwrap();
    let t = gen::banded(96, 4, 11);
    let a1 = session.advise(&p, "A", &t, &[]).unwrap();
    let a2 = session.advise(&p, "A", &t, &[]).unwrap();
    let order1: Vec<&str> = a1.ranked.iter().map(|e| e.format.as_str()).collect();
    let order2: Vec<&str> = a2.ranked.iter().map(|e| e.format.as_str()).collect();
    assert_eq!(order1, order2, "ranking is deterministic");
    // Derived stats are deterministic, so the second advise hits the
    // session's plan cache for every candidate.
    assert!(
        a2.ranked.iter().all(|e| e.from_cache),
        "second advise should be all plan-cache hits"
    );
}

#[test]
fn structure_flows_into_views() {
    // A lower-triangular instance with a full diagonal earns the r >= c
    // bound and the FullDiagonal guarantee; a general one earns neither.
    let lower = gen::can_1072_like().lower_triangle_full_diag(1.0);
    let lf = StructureFeatures::of_triplets(&lower);
    let v = view_for_features("csr", &lf).unwrap();
    assert!(!v.bounds.is_empty(), "lower-triangular bound expected");
    assert!(!v.guarantees.is_empty(), "FullDiagonal expected");

    let general = gen::random_sparse(64, 64, 400, 9);
    let gf = StructureFeatures::of_triplets(&general);
    let v = view_for_features("csr", &gf).unwrap();
    assert!(v.bounds.is_empty());
    assert!(v.guarantees.is_empty());
}

#[test]
fn advise_unknown_matrix_is_fatal() {
    let session = Session::new();
    let p = parse_program(MVM).unwrap();
    let t = gen::banded(16, 1, 1);
    match session.advise(&p, "B", &t, &["csr"]) {
        Err(SynthError::UnknownMatrix { name }) => assert_eq!(name, "B"),
        other => panic!("expected UnknownMatrix, got {other:?}"),
    }
}

#[test]
fn advise_unknown_format_is_skipped() {
    let session = Session::new();
    let p = parse_program(MVM).unwrap();
    let t = gen::banded(32, 2, 2);
    let advice = session
        .advise(&p, "A", &t, &["csr", "nosuchformat"])
        .unwrap();
    assert_eq!(advice.ranked.len(), 1);
    assert_eq!(advice.skipped.len(), 1);
    assert_eq!(advice.skipped[0].0, "nosuchformat");
}

#[test]
fn service_advise_matches_session() {
    let service = Service::new(ServiceConfig::default());
    let session = Session::new();
    let p = parse_program(MVM).unwrap();
    let t = gen::poisson2d(12);
    let from_service = service.advise(&p, "A", &t, &[]).unwrap();
    let from_session = session.advise(&p, "A", &t, &[]).unwrap();
    let s1: Vec<&str> = from_service
        .ranked
        .iter()
        .map(|e| e.format.as_str())
        .collect();
    let s2: Vec<&str> = from_session
        .ranked
        .iter()
        .map(|e| e.format.as_str())
        .collect();
    assert_eq!(s1, s2, "service and session agree on the ranking");
    assert_eq!(from_service.best().format, from_session.best().format);
}
