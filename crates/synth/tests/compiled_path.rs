//! End-to-end tests of the compiled-kernel path: synthesize → generate
//! a self-contained cdylib crate → build with `rustc` → dlopen → run,
//! plus the artifact-cache and ranged-entry contracts.
//!
//! Every test that needs a real compiler probes for one first and
//! skips (with a notice) when the host has none — the interpreter
//! fallback is covered separately so CI without rustc still exercises
//! the whole surface.

use bernoulli_formats::{Csr, Ell, SparseView, Triplets};
use bernoulli_synth::compiled::{KernelArg, KernelBackend};
use bernoulli_synth::{kernel_cache_stats, KernelStore, Session};

const MVM: &str = "
    program mvm(M, N) {
      in matrix A[M][N];
      in vector x[N];
      inout vector y[M];
      for i in 0..M {
        for j in 0..N {
          y[i] = y[i] + A[i][j] * x[j];
        }
      }
    }
";

fn rustc_available() -> bool {
    bernoulli_kernel_cache::rustc_info().is_ok()
}

fn scratch_store(tag: &str) -> KernelStore {
    let dir = std::env::temp_dir().join(format!("bernoulli-kc-test-{tag}-{}", std::process::id()));
    KernelStore::at(dir)
}

fn triplets(n: usize) -> Triplets<f64> {
    let mut entries = Vec::new();
    for i in 0..n {
        entries.push((i, i, 2.0 + i as f64));
        if i + 1 < n {
            entries.push((i, i + 1, -1.0));
        }
        if i >= 1 {
            entries.push((i, i - 1, 0.5));
        }
    }
    Triplets::from_entries(n, n, &entries)
}

fn compile_mvm(view: bernoulli_formats::FormatView) -> bernoulli_synth::CompiledKernel {
    let s = Session::new();
    let p = s.parse(MVM).expect("spec parses");
    let bound = s.bind(&p, &[("A", view)]).expect("binds");
    s.compile(&bound).expect("compiles")
}

#[test]
fn loaded_csr_mvm_matches_interpreter_bitwise() {
    if !rustc_available() {
        eprintln!("SKIP loaded_csr_mvm_matches_interpreter_bitwise: no rustc on host");
        return;
    }
    let n = 64;
    let a = Csr::from_triplets(&triplets(n));
    let k = compile_mvm(a.format_view());
    let store = scratch_store("csr");
    let loaded = k.load_in(&store).expect("loads");
    assert!(loaded.supports_ranged(), "csr mvm splits by rows");

    let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
    let mut y_native = vec![0.25; n];
    let mut y_interp = y_native.clone();

    let mut args = [
        KernelArg::Csr(&a),
        KernelArg::In(&x),
        KernelArg::Out(&mut y_native),
    ];
    loaded
        .run(&[n as i64, n as i64], &mut args)
        .expect("native run");

    let mut args = [
        KernelArg::Csr(&a),
        KernelArg::In(&x),
        KernelArg::Out(&mut y_interp),
    ];
    let backend = KernelBackend::Interpreted {
        reason: bernoulli_synth::LoadError::Emit(bernoulli_synth::EmitError("forced".into())),
    };
    k.run_with(&backend, &[n as i64, n as i64], &mut args)
        .expect("interp run");

    assert_eq!(
        y_native, y_interp,
        "native and interpreter must agree bitwise"
    );
}

#[test]
fn ranged_entry_composes_to_full_range() {
    if !rustc_available() {
        eprintln!("SKIP ranged_entry_composes_to_full_range: no rustc on host");
        return;
    }
    let n = 50;
    let a = Csr::from_triplets(&triplets(n));
    let k = compile_mvm(a.format_view());
    let store = scratch_store("ranged");
    let loaded = k.load_in(&store).expect("loads");

    let x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
    let mut y_full = vec![0.0; n];
    let mut y_split = vec![0.0; n];

    let mut args = [
        KernelArg::Csr(&a),
        KernelArg::In(&x),
        KernelArg::Out(&mut y_full),
    ];
    loaded.run(&[n as i64, n as i64], &mut args).expect("full");

    // Two disjoint bands must compose to the full result.
    for (lo, hi) in [(0i64, 17i64), (17, n as i64)] {
        let mut args = [
            KernelArg::Csr(&a),
            KernelArg::In(&x),
            KernelArg::Out(&mut y_split),
        ];
        loaded
            .run_range(&[n as i64, n as i64], &mut args, lo, hi)
            .expect("band");
    }
    assert_eq!(y_full, y_split);
}

#[test]
fn loaded_ell_mvm_matches_interpreter() {
    if !rustc_available() {
        eprintln!("SKIP loaded_ell_mvm_matches_interpreter: no rustc on host");
        return;
    }
    let n = 40;
    let a = Ell::from_triplets(&triplets(n));
    let k = compile_mvm(a.format_view());
    let store = scratch_store("ell");
    let loaded = k.load_in(&store).expect("loads");

    let x: Vec<f64> = (0..n).map(|i| (i as f64) * 0.125 - 1.0).collect();
    let mut y_native = vec![0.0; n];
    let mut y_interp = vec![0.0; n];

    let mut args = [
        KernelArg::Ell(&a),
        KernelArg::In(&x),
        KernelArg::Out(&mut y_native),
    ];
    loaded
        .run(&[n as i64, n as i64], &mut args)
        .expect("native");

    let mut env = bernoulli_synth::ExecEnv::new();
    env.set_param("M", n as i64).set_param("N", n as i64);
    env.bind_sparse("A", &a);
    env.bind_vec("x", x.clone());
    env.bind_vec("y", vec![0.0; n]);
    k.interpret(&mut env).expect("interp");
    y_interp.copy_from_slice(&env.take_vec("y"));

    assert_eq!(y_native, y_interp);
}

#[test]
fn second_load_hits_artifact_cache() {
    if !rustc_available() {
        eprintln!("SKIP second_load_hits_artifact_cache: no rustc on host");
        return;
    }
    let a = Csr::from_triplets(&triplets(8));
    let k = compile_mvm(a.format_view());
    let store = scratch_store("warm");
    let cold = k.load_in(&store).expect("cold load");
    assert!(!cold.from_cache(), "first load must compile");
    let before = kernel_cache_stats();
    let warm = k.load_in(&store).expect("warm load");
    assert!(warm.from_cache(), "second load must reuse the artifact");
    let after = kernel_cache_stats();
    assert!(after.hits > before.hits, "warm load counts as a cache hit");
    assert_eq!(
        after.compiles, before.compiles,
        "warm load must not invoke rustc"
    );
}

#[test]
fn call_arity_is_checked() {
    if !rustc_available() {
        eprintln!("SKIP call_arity_is_checked: no rustc on host");
        return;
    }
    let a = Csr::from_triplets(&triplets(8));
    let k = compile_mvm(a.format_view());
    let store = scratch_store("arity");
    let loaded = k.load_in(&store).expect("loads");
    let x = vec![0.0; 8];
    let mut args = [KernelArg::Csr(&a), KernelArg::In(&x)];
    let err = loaded.run(&[8, 8], &mut args).expect_err("missing output");
    assert!(
        matches!(err, bernoulli_synth::KernelCallError::Mismatch { .. }),
        "{err:?}"
    );
}

/// Tests below mutate or depend on the process-wide validation switch
/// and memo; they serialize on this lock so the cargo test harness's
/// thread pool cannot interleave them.
static VALIDATION: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn fresh_load_passes_differential_validation() {
    let _lock = VALIDATION.lock().unwrap_or_else(|e| e.into_inner());
    if !rustc_available() {
        eprintln!("SKIP fresh_load_passes_differential_validation: no rustc on host");
        return;
    }
    let a = Csr::from_triplets(&triplets(16));
    let k = compile_mvm(a.format_view());
    let store = scratch_store("validate");
    // A correct kernel must come back with `Validated` provenance: the
    // differential probe against the interpreter ran and agreed.
    let backend = k.backend_in(&store);
    assert!(
        matches!(backend, KernelBackend::Validated(_)),
        "expected Validated provenance, got {backend:?}"
    );
    assert!(backend.is_validated() && backend.is_compiled());
    // The memo makes the second load skip the probe yet keep the
    // provenance.
    let again = k.backend_in(&store);
    assert!(again.is_validated(), "{again:?}");
}

#[test]
fn validation_switch_downgrades_provenance_only() {
    let _lock = VALIDATION.lock().unwrap_or_else(|e| e.into_inner());
    if !rustc_available() {
        eprintln!("SKIP validation_switch_downgrades_provenance_only: no rustc on host");
        return;
    }
    let a = Csr::from_triplets(&triplets(12));
    let k = compile_mvm(a.format_view());
    let store = scratch_store("valswitch");
    bernoulli_synth::set_kernel_validation(false);
    bernoulli_synth::clear_kernel_validation_memo();
    let backend = k.backend_in(&store);
    bernoulli_synth::set_kernel_validation(true);
    // Still a native kernel — just without the Validated badge.
    assert!(
        matches!(backend, KernelBackend::Compiled(_)),
        "expected unvalidated Compiled provenance, got {backend:?}"
    );
    assert!(backend.is_compiled() && !backend.is_validated());
}

#[test]
fn quarantined_artifact_is_refused_and_reserved_by_interpreter() {
    let _lock = VALIDATION.lock().unwrap_or_else(|e| e.into_inner());
    if !rustc_available() {
        eprintln!("SKIP quarantined_artifact_is_refused_and_reserved_by_interpreter: no rustc");
        return;
    }
    let n = 16;
    let a = Csr::from_triplets(&triplets(n));
    let k = compile_mvm(a.format_view());
    let store = scratch_store("requarantine");
    let loaded = k.load_in(&store).expect("loads");
    let artifact = loaded.artifact_path().to_path_buf();
    drop(loaded);

    // Quarantine through the same public API the ABI-breach path uses.
    store.quarantine(&artifact);
    let backend = k.backend_in(&store);
    match &backend {
        KernelBackend::Interpreted {
            reason:
                bernoulli_synth::LoadError::Cache(bernoulli_synth::KernelCacheError::Quarantined {
                    ..
                }),
        } => {}
        other => panic!("expected Quarantined fallback, got {other:?}"),
    }
    // The degraded backend still serves correct answers.
    let x: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
    let mut y = vec![0.0; n];
    let mut args = [
        KernelArg::Csr(&a),
        KernelArg::In(&x),
        KernelArg::Out(&mut y),
    ];
    k.run_with(&backend, &[n as i64, n as i64], &mut args)
        .expect("interpreter re-serve");
    let mut y_ref = vec![0.0; n];
    let mut args = [
        KernelArg::Csr(&a),
        KernelArg::In(&x),
        KernelArg::Out(&mut y_ref),
    ];
    let interp = KernelBackend::Interpreted {
        reason: bernoulli_synth::LoadError::Emit(bernoulli_synth::EmitError("forced".into())),
    };
    k.run_with(&interp, &[n as i64, n as i64], &mut args)
        .expect("reference interpreter run");
    assert_eq!(y, y_ref);

    // Lifting the quarantine restores the native path.
    store.clear_quarantine();
    let healed = k.backend_in(&store);
    assert!(healed.is_compiled(), "{healed:?}");
}
