//! Fault-injected pool chaos: worker threads are killed at the
//! `pool.worker` site and the pool must neither deadlock nor corrupt
//! results — dead workers are respawned on the next submission.
#![cfg(feature = "faults")]

use bernoulli_govern::faults;
use bernoulli_pool::Pool;
use std::sync::Mutex;

/// The fault table is process-global; these tests must not interleave.
static FAULTS: Mutex<()> = Mutex::new(());

#[test]
fn dead_workers_are_respawned() {
    let _lock = FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    let items: Vec<u64> = (0..256).collect();
    let want: Vec<u64> = items.iter().map(|&x| x + 1).collect();
    let pool = Pool::new(4);
    // Kill two worker threads as they pick up the first job. Worker
    // death is not a job failure: the surviving lanes drain every
    // chunk, so the map still completes with correct results.
    faults::configure("pool.worker=panic#2");
    let got = pool.par_map(&items, |&x| x + 1);
    assert_eq!(got, want);
    faults::clear();
    // The next submission finds the dead workers' channels closed,
    // respawns them in place, and runs at full fan-out.
    for _ in 0..3 {
        let got = pool.par_map(&items, |&x| x + 1);
        assert_eq!(got, want);
    }
}

#[test]
fn pool_survives_persistent_worker_deaths() {
    let _lock = FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    let items: Vec<u64> = (0..128).collect();
    let want: Vec<u64> = items.iter().map(|&x| x * 7).collect();
    let pool = Pool::new(3);
    // Every worker dies on every job it receives; the submitter lane
    // alone keeps the pool live, and each submission respawns workers
    // that immediately die again. No deadlock, no wrong answers.
    faults::configure("pool.worker=panic");
    for _ in 0..4 {
        let got = pool.par_map(&items, |&x| x * 7);
        assert_eq!(got, want);
    }
    faults::clear();
    // With the fault disarmed the pool heals completely.
    let got = pool.par_map(&items, |&x| x * 7);
    assert_eq!(got, want);
}
