//! Pool recovery: a panicking job must poison only itself. Subsequent
//! jobs on the same pool run to completion at every pool size, and
//! their results are byte-identical to those of an untouched pool.

use bernoulli_pool::{Pool, PoolError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

const SIZES: &[usize] = &[1, 2, 3, 4, 8];

fn reference(items: &[u64]) -> Vec<u64> {
    items.iter().map(|&x| x.wrapping_mul(x) ^ 0x5a5a).collect()
}

#[test]
fn panicking_job_leaves_pool_usable_at_every_size() {
    let items: Vec<u64> = (0..301).collect();
    let want = reference(&items);
    for &n in SIZES {
        let pool = Pool::new(n);
        for round in 0..3 {
            let err = pool
                .try_par_map(&items, |&x| {
                    if x % 37 == round {
                        panic!("round {round} item {x}");
                    }
                    x
                })
                .unwrap_err();
            let PoolError::JobPanicked { message } = err;
            assert!(message.contains(&format!("round {round}")), "{message}");
            // Recovery: the very next job must succeed with results
            // identical to the untouched reference.
            let got = pool.par_map(&items, |&x| x.wrapping_mul(x) ^ 0x5a5a);
            assert_eq!(got, want, "nthreads={n} round={round}");
        }
    }
}

#[test]
fn unwinding_run_leaves_pool_usable_at_every_size() {
    for &n in SIZES {
        let pool = Pool::new(n);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(64, &|c| {
                if c == 11 {
                    panic!("chunk 11 down");
                }
            });
        }));
        assert!(result.is_err(), "nthreads={n}");
        let sum = AtomicU64::new(0);
        pool.run(64, &|c| {
            sum.fetch_add(c as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 64 * 63 / 2, "nthreads={n}");
    }
}

#[test]
fn determinism_holds_after_recovery() {
    // The same map on pools of different sizes — some freshly poisoned,
    // some untouched — must agree byte-for-byte.
    let items: Vec<u64> = (0..513).collect();
    let want = reference(&items);
    for &n in SIZES {
        let poisoned = Pool::new(n);
        let _ = poisoned.try_par_map(&items, |&x| {
            if x == 100 {
                panic!("poison");
            }
            x
        });
        let fresh = Pool::new(n);
        let got_poisoned = poisoned.par_map(&items, |&x| x.wrapping_mul(x) ^ 0x5a5a);
        let got_fresh = fresh.par_map(&items, |&x| x.wrapping_mul(x) ^ 0x5a5a);
        assert_eq!(got_poisoned, want, "poisoned pool, nthreads={n}");
        assert_eq!(got_fresh, want, "fresh pool, nthreads={n}");
    }
}

#[test]
fn try_scope_matches_scope() {
    for &n in SIZES {
        let pool = Pool::new(n);
        let out: Vec<AtomicU64> = (0..40).map(|_| AtomicU64::new(0)).collect();
        pool.try_scope(40, |c| {
            out[c].store(c as u64 + 1, Ordering::Relaxed);
        })
        .unwrap();
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.load(Ordering::Relaxed), i as u64 + 1, "nthreads={n}");
        }
    }
}
