//! Reusable compute pool: persistent workers with scoped, chunk-stealing
//! execution and a deterministic parallel map.
//!
//! Hoisted out of `bernoulli-blas::par` (S32) so that both the generated
//! kernels *and* the synthesizer's search (S34) share one process-wide
//! set of worker threads. The original `crossbeam::scope` design spawned
//! fresh OS threads on every kernel call — tens of microseconds of
//! overhead against kernels that finish in ten. This pool spawns its
//! workers once (lazily, on first parallel call), parks them on
//! channels, and broadcasts each job to every worker; a job is a
//! borrowed closure plus an atomic chunk counter, so workers *steal
//! chunks*, not rows, and load imbalance between chunks self-corrects.
//!
//! Three entry points, from rawest to most convenient:
//!
//! - [`Pool::run`] — `f(chunk)` for every `chunk in 0..nchunks` through
//!   a `&dyn Fn` (object-safe core; no allocation per call);
//! - [`Pool::scope`] — the same with a generic closure;
//! - [`Pool::par_map`] — maps a slice to a `Vec` of results whose order
//!   matches the input order regardless of which worker computed what,
//!   so callers get **deterministic** output for free.
//!
//! Borrowed data is safe for the same reason `std::thread::scope` is:
//! [`Pool::run`] does not return until every worker has finished the
//! job (a latch counts them down), so the erased-lifetime closure and
//! everything it borrows strictly outlive its use. Determinism is *not*
//! scheduling-dependent: every consumer built on the pool writes either
//! to chunk-disjoint output slots or to per-chunk partial buffers that
//! the caller reduces in fixed chunk order.
//!
//! The pool size comes from `BERNOULLI_THREADS`, falling back to
//! [`std::thread::available_parallelism`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Environment variable overriding the worker-pool size.
pub const THREADS_ENV: &str = "BERNOULLI_THREADS";

/// Counts outstanding workers for one job; the submitting thread blocks
/// on it until the count reaches zero.
struct Latch {
    remaining: Mutex<usize>,
    all_done: Condvar,
    poisoned: AtomicBool,
}

impl Latch {
    fn new(count: usize) -> Latch {
        Latch {
            remaining: Mutex::new(count),
            all_done: Condvar::new(),
            poisoned: AtomicBool::new(false),
        }
    }

    fn count_down(&self) {
        let mut left = self.remaining.lock().unwrap();
        *left -= 1;
        if *left == 0 {
            self.all_done.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = self.remaining.lock().unwrap();
        while *left > 0 {
            left = self.all_done.wait(left).unwrap();
        }
    }
}

/// One broadcast unit of work: chunks `0..nchunks` of a borrowed
/// `Fn(usize)`, claimed through a shared counter.
struct Job {
    /// Borrowed closure with its lifetime erased; valid until `latch`
    /// releases the submitter (see module docs for the soundness
    /// argument).
    func: *const (dyn Fn(usize) + Sync),
    next_chunk: Arc<AtomicUsize>,
    nchunks: usize,
    latch: Arc<Latch>,
}

// SAFETY: `func` points at a `Sync` closure that the submitting thread
// keeps alive until every worker has counted down `latch`, which happens
// strictly after the last dereference.
unsafe impl Send for Job {}

impl Job {
    /// Claims and runs chunks until the shared counter is exhausted.
    /// `is_worker` distinguishes pool workers from the submitting lane
    /// for the steal accounting: the submitter owns the job, so every
    /// chunk a worker claims counts as stolen.
    fn run_chunks(&self, is_worker: bool) {
        let func = unsafe { &*self.func };
        let busy = bernoulli_trace::timer!("par.pool.busy");
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut executed = 0u64;
            loop {
                let chunk = self.next_chunk.fetch_add(1, Ordering::Relaxed);
                if chunk >= self.nchunks {
                    break;
                }
                func(chunk);
                executed += 1;
            }
            executed
        }));
        drop(busy);
        match result {
            Ok(executed) => {
                if is_worker {
                    bernoulli_trace::counter!("par.pool.chunks_stolen", executed);
                    if executed > 0 {
                        bernoulli_trace::counter!("par.pool.workers_engaged");
                    }
                }
            }
            Err(_) => self.latch.poisoned.store(true, Ordering::Release),
        }
    }
}

/// A persistent pool of parked worker threads.
pub struct Pool {
    workers: Vec<Sender<Job>>,
}

impl Pool {
    /// Builds a pool executing on `nthreads` lanes: `nthreads - 1`
    /// parked workers plus the submitting thread itself.
    pub fn new(nthreads: usize) -> Pool {
        let nworkers = nthreads.max(1) - 1;
        let workers = (0..nworkers)
            .map(|k| {
                let (tx, rx) = channel::<Job>();
                std::thread::Builder::new()
                    .name(format!("bernoulli-par-{k}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job.run_chunks(true);
                            // Fold this job's trace events in *before*
                            // releasing the latch, so a snapshot taken
                            // right after `run` returns sees them.
                            bernoulli_trace::flush_local();
                            job.latch.count_down();
                        }
                    })
                    .expect("spawning pool worker");
                tx
            })
            .collect();
        Pool { workers }
    }

    /// The process-wide pool, created on first use with
    /// [`default_threads`] lanes.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| Pool::new(default_threads()))
    }

    /// Number of execution lanes (workers + the submitting thread).
    pub fn nthreads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Executes `f(chunk)` for every `chunk in 0..nchunks`, distributing
    /// chunks over the pool's lanes, and returns when all chunks are
    /// done. The submitting thread participates, so `run` makes progress
    /// even on a pool with zero workers.
    ///
    /// # Panics
    /// Propagates a panic (as `"pool worker panicked"`) if any chunk
    /// panicked on a worker; chunks running on the submitting thread
    /// propagate their panic payload directly.
    pub fn run(&self, nchunks: usize, f: &(dyn Fn(usize) + Sync)) {
        if nchunks == 0 {
            return;
        }
        bernoulli_trace::counter!("par.pool.jobs");
        bernoulli_trace::counter!("par.pool.chunks", nchunks);
        bernoulli_trace::span!("par.pool.wall");
        if nchunks == 1 || self.workers.is_empty() {
            bernoulli_trace::counter!("par.pool.jobs_inline");
            for chunk in 0..nchunks {
                f(chunk);
            }
            return;
        }
        // Erase the borrow lifetime; `latch.wait()` below restores the
        // invariant that `f` outlives all uses.
        let func = unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                f as *const _,
            )
        };
        let fanout = self.workers.len().min(nchunks - 1);
        let latch = Arc::new(Latch::new(fanout));
        let next_chunk = Arc::new(AtomicUsize::new(0));
        for tx in &self.workers[..fanout] {
            let job = Job {
                func,
                next_chunk: Arc::clone(&next_chunk),
                nchunks,
                latch: Arc::clone(&latch),
            };
            // A send only fails if the worker died, which only happens
            // on pool teardown at process exit.
            tx.send(job).expect("pool worker disappeared");
        }
        // The submitting thread is a lane too.
        let own = Job {
            func,
            next_chunk,
            nchunks,
            latch: Arc::clone(&latch),
        };
        own.run_chunks(false);
        latch.wait();
        if latch.poisoned.load(Ordering::Acquire) {
            panic!("pool worker panicked");
        }
    }

    /// Generic form of [`Pool::run`]: executes `f(chunk)` for every
    /// `chunk in 0..nchunks` without requiring the caller to build a
    /// `&dyn` reference.
    pub fn scope<F: Fn(usize) + Sync>(&self, nchunks: usize, f: F) {
        self.run(nchunks, &f);
    }

    /// Applies `f` to every element of `items` on the pool and collects
    /// the results **in input order** — the output is a pure function of
    /// `items` and `f`, independent of the pool size and of scheduling,
    /// which is what lets the synthesis search fan out per-configuration
    /// work and still return byte-identical rankings.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        // One mutex per slot: never contended (each chunk writes its own
        // slot exactly once), so the lock cost is a single uncontended
        // atomic per item — negligible against per-item work coarse
        // enough to be worth scheduling.
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        self.run(items.len(), &|i| {
            *slots[i].lock().unwrap() = Some(f(&items[i]));
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().unwrap().expect("pool chunk completed"))
            .collect()
    }
}

/// Pool size: `BERNOULLI_THREADS` if set (minimum 1), else the host's
/// available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_chunk_exactly_once() {
        let pool = Pool::new(4);
        for nchunks in [0usize, 1, 2, 3, 64, 1000] {
            let hits: Vec<AtomicU64> = (0..nchunks).map(|_| AtomicU64::new(0)).collect();
            pool.run(nchunks, &|c| {
                hits[c].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "nchunks = {nchunks}"
            );
        }
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = Pool::new(1);
        assert_eq!(pool.nthreads(), 1);
        let sum = AtomicU64::new(0);
        pool.run(10, &|c| {
            sum.fetch_add(c as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn borrowed_data_visible_after_run() {
        let pool = Pool::new(3);
        let input: Vec<u64> = (0..100).collect();
        let out: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        pool.run(100, &|c| {
            out[c].store(input[c] * 2, Ordering::Relaxed);
        });
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.load(Ordering::Relaxed), 2 * i as u64);
        }
    }

    #[test]
    fn scope_accepts_generic_closures() {
        let pool = Pool::new(2);
        let out: Vec<AtomicU64> = (0..32).map(|_| AtomicU64::new(0)).collect();
        let base = 7u64;
        pool.scope(32, |c| {
            out[c].store(base + c as u64, Ordering::Relaxed);
        });
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.load(Ordering::Relaxed), 7 + i as u64);
        }
    }

    #[test]
    fn par_map_preserves_input_order() {
        for nthreads in [1usize, 2, 4, 8] {
            let pool = Pool::new(nthreads);
            let items: Vec<u64> = (0..257).collect();
            let got = pool.par_map(&items, |&x| x * x + 1);
            let want: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
            assert_eq!(got, want, "nthreads = {nthreads}");
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let pool = Pool::new(4);
        let empty: Vec<u32> = Vec::new();
        assert!(pool.par_map(&empty, |&x| x).is_empty());
        assert_eq!(pool.par_map(&[41u32], |&x| x + 1), vec![42]);
    }

    #[test]
    fn par_map_with_non_copy_results() {
        let pool = Pool::new(3);
        let items: Vec<usize> = (0..50).collect();
        let got = pool.par_map(&items, |&n| vec![n; n % 5]);
        for (n, v) in items.iter().zip(&got) {
            assert_eq!(v.len(), n % 5);
            assert!(v.iter().all(|x| x == n));
        }
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = Pool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, &|c| {
                if c % 2 == 1 {
                    panic!("chunk {c} failed");
                }
            });
        }));
        assert!(result.is_err());
        // The pool stays usable after a panicked job.
        let sum = AtomicU64::new(0);
        pool.run(8, &|c| {
            sum.fetch_add(c as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 28);
    }

    #[test]
    fn global_pool_is_shared() {
        let a = Pool::global() as *const Pool;
        let b = Pool::global() as *const Pool;
        assert_eq!(a, b);
        assert!(Pool::global().nthreads() >= 1);
    }
}
