//! Reusable compute pool: persistent workers with scoped, chunk-stealing
//! execution and a deterministic parallel map.
//!
//! Hoisted out of `bernoulli-blas::par` (S32) so that both the generated
//! kernels *and* the synthesizer's search (S34) share one process-wide
//! set of worker threads. The original `crossbeam::scope` design spawned
//! fresh OS threads on every kernel call — tens of microseconds of
//! overhead against kernels that finish in ten. This pool spawns its
//! workers once (lazily, on first parallel call), parks them on
//! channels, and broadcasts each job to every worker; a job is a
//! borrowed closure plus an atomic chunk counter, so workers *steal
//! chunks*, not rows, and load imbalance between chunks self-corrects.
//!
//! Three entry points, from rawest to most convenient:
//!
//! - [`Pool::run`] — `f(chunk)` for every `chunk in 0..nchunks` through
//!   a `&dyn Fn` (object-safe core; no allocation per call);
//! - [`Pool::scope`] — the same with a generic closure;
//! - [`Pool::par_map`] — maps a slice to a `Vec` of results whose order
//!   matches the input order regardless of which worker computed what,
//!   so callers get **deterministic** output for free.
//!
//! Each has a `try_` twin ([`Pool::try_run`], [`Pool::try_scope`],
//! [`Pool::try_par_map`]) reporting a panicking chunk as
//! [`PoolError::JobPanicked`] (payload preserved) instead of unwinding.
//! A panic poisons only its own job: the pool stays healthy, and a
//! worker thread that dies outright is respawned on the next
//! submission.
//!
//! Borrowed data is safe for the same reason `std::thread::scope` is:
//! [`Pool::run`] does not return until every worker has finished the
//! job (a latch counts them down), so the erased-lifetime closure and
//! everything it borrows strictly outlive its use. Determinism is *not*
//! scheduling-dependent: every consumer built on the pool writes either
//! to chunk-disjoint output slots or to per-chunk partial buffers that
//! the caller reduces in fixed chunk order.
//!
//! The pool size comes from `BERNOULLI_THREADS`, falling back to
//! [`std::thread::available_parallelism`].

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, SendError, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Environment variable overriding the worker-pool size.
pub const THREADS_ENV: &str = "BERNOULLI_THREADS";

/// Typed failure of a parallel job: some chunk panicked. The panic is
/// contained to that job — the pool itself stays healthy (dead workers
/// are respawned on the next submission) and the panic payload is
/// preserved in `message`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PoolError {
    /// A chunk of the submitted job panicked; `message` is the panic
    /// payload (when it was a string, as `panic!` payloads usually are).
    JobPanicked { message: String },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::JobPanicked { message } => {
                write!(f, "parallel job panicked: {message}")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// Best-effort extraction of the human-readable panic message.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Counts outstanding workers for one job; the submitting thread blocks
/// on it until the count reaches zero. Also carries the job's failure
/// state: the `poisoned` flag plus the first captured panic payload.
struct Latch {
    remaining: Mutex<usize>,
    all_done: Condvar,
    poisoned: AtomicBool,
    payload: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Latch {
    fn new(count: usize) -> Latch {
        Latch {
            remaining: Mutex::new(count),
            all_done: Condvar::new(),
            poisoned: AtomicBool::new(false),
            payload: Mutex::new(None),
        }
    }

    fn count_down(&self) {
        let mut left = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
        *left -= 1;
        if *left == 0 {
            self.all_done.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
        while *left > 0 {
            left = self.all_done.wait(left).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Marks the job failed, keeping the *first* panic payload.
    fn record_panic(&self, p: Box<dyn Any + Send>) {
        let mut slot = self.payload.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(p);
        }
        drop(slot);
        self.poisoned.store(true, Ordering::Release);
    }

    /// Takes the failure payload after [`Latch::wait`] returned.
    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        if !self.poisoned.load(Ordering::Acquire) {
            return None;
        }
        let taken = self
            .payload
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        Some(taken.unwrap_or_else(|| Box::new("pool worker panicked".to_string())))
    }
}

/// One broadcast unit of work: chunks `0..nchunks` of a borrowed
/// `Fn(usize)`, claimed through a shared counter.
struct Job {
    /// Borrowed closure with its lifetime erased; valid until `latch`
    /// releases the submitter (see module docs for the soundness
    /// argument).
    func: *const (dyn Fn(usize) + Sync),
    next_chunk: Arc<AtomicUsize>,
    nchunks: usize,
    latch: Arc<Latch>,
    /// Whether dropping this job releases one latch share. True for the
    /// copies sent to workers, false for the submitter's own lane.
    counts_down: bool,
}

/// The latch share is released by `Drop`, not by the worker loop, so
/// every way a worker-bound job can end — chunks drained, the worker
/// thread unwinding mid-job, or the job sitting unconsumed in a dead
/// worker's channel when the receiver is dropped — counts down exactly
/// once and the submitter can never deadlock.
impl Drop for Job {
    fn drop(&mut self) {
        if self.counts_down {
            self.latch.count_down();
        }
    }
}

// SAFETY: `func` points at a `Sync` closure that the submitting thread
// keeps alive until every worker has counted down `latch`, which happens
// strictly after the last dereference.
unsafe impl Send for Job {}

impl Job {
    /// Claims and runs chunks until the shared counter is exhausted.
    /// `is_worker` distinguishes pool workers from the submitting lane
    /// for the steal accounting: the submitter owns the job, so every
    /// chunk a worker claims counts as stolen.
    fn run_chunks(&self, is_worker: bool) {
        let func = unsafe { &*self.func };
        let busy = bernoulli_trace::timer!("par.pool.busy");
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut executed = 0u64;
            loop {
                let chunk = self.next_chunk.fetch_add(1, Ordering::Relaxed);
                if chunk >= self.nchunks {
                    break;
                }
                func(chunk);
                executed += 1;
            }
            executed
        }));
        drop(busy);
        match result {
            Ok(executed) => {
                if is_worker {
                    bernoulli_trace::counter!("par.pool.chunks_stolen", executed);
                    if executed > 0 {
                        bernoulli_trace::counter!("par.pool.workers_engaged");
                    }
                }
            }
            Err(p) => self.latch.record_panic(p),
        }
    }
}

/// One worker thread's submission endpoint. The sender sits behind a
/// mutex so a submitter that finds the worker dead (its receiver
/// dropped) can respawn it in place.
struct WorkerSlot {
    id: usize,
    tx: Mutex<Sender<Job>>,
}

/// Spawns worker `k`'s thread and returns its job channel.
fn spawn_worker(k: usize) -> Sender<Job> {
    let (tx, rx) = channel::<Job>();
    std::thread::Builder::new()
        .name(format!("bernoulli-par-{k}"))
        .spawn(move || {
            while let Ok(job) = rx.recv() {
                // If the injected fault kills this thread, the job's
                // `Drop` still releases its latch share and the other
                // lanes drain the chunk counter; the next submission
                // respawns us.
                bernoulli_govern::faults::hit("pool.worker");
                job.run_chunks(true);
                // Fold this job's trace events in *before* the job drop
                // releases the latch, so a snapshot taken right after
                // `run` returns sees them.
                bernoulli_trace::flush_local();
            }
        })
        .expect("spawning pool worker");
    tx
}

/// A persistent pool of parked worker threads.
pub struct Pool {
    workers: Vec<WorkerSlot>,
}

impl Pool {
    /// Builds a pool executing on `nthreads` lanes: `nthreads - 1`
    /// parked workers plus the submitting thread itself.
    pub fn new(nthreads: usize) -> Pool {
        let nworkers = nthreads.max(1) - 1;
        let workers = (0..nworkers)
            .map(|k| WorkerSlot {
                id: k,
                tx: Mutex::new(spawn_worker(k)),
            })
            .collect();
        Pool { workers }
    }

    /// The process-wide pool, created on first use with
    /// [`default_threads`] lanes.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| Pool::new(default_threads()))
    }

    /// Number of execution lanes (workers + the submitting thread).
    pub fn nthreads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Executes `f(chunk)` for every `chunk in 0..nchunks`, distributing
    /// chunks over the pool's lanes, and returns when all chunks are
    /// done. The submitting thread participates, so `run` makes progress
    /// even on a pool with zero workers.
    ///
    /// # Panics
    /// Re-raises the panic of the first failing chunk with its original
    /// payload (wherever the chunk ran). The pool itself survives: the
    /// failed job's chunks are abandoned but later submissions run
    /// normally. Use [`Pool::try_run`] for a typed error instead.
    pub fn run(&self, nchunks: usize, f: &(dyn Fn(usize) + Sync)) {
        if let Err(p) = self.run_inner(nchunks, f) {
            resume_unwind(p);
        }
    }

    /// [`Pool::run`] with a chunk panic reported as
    /// [`PoolError::JobPanicked`] instead of resuming the unwind.
    pub fn try_run(&self, nchunks: usize, f: &(dyn Fn(usize) + Sync)) -> Result<(), PoolError> {
        self.run_inner(nchunks, f).map_err(|p| {
            bernoulli_trace::counter!("par.pool.jobs_panicked");
            PoolError::JobPanicked {
                message: panic_message(p.as_ref()),
            }
        })
    }

    /// The shared execution core: runs the job to completion and
    /// reports the first chunk panic as the raw payload.
    fn run_inner(
        &self,
        nchunks: usize,
        f: &(dyn Fn(usize) + Sync),
    ) -> Result<(), Box<dyn Any + Send>> {
        if nchunks == 0 {
            return Ok(());
        }
        bernoulli_trace::counter!("par.pool.jobs");
        bernoulli_trace::counter!("par.pool.chunks", nchunks);
        bernoulli_trace::span!("par.pool.wall");
        if nchunks == 1 || self.workers.is_empty() {
            bernoulli_trace::counter!("par.pool.jobs_inline");
            return catch_unwind(AssertUnwindSafe(|| {
                for chunk in 0..nchunks {
                    f(chunk);
                }
            }));
        }
        // Erase the borrow lifetime; `latch.wait()` below restores the
        // invariant that `f` outlives all uses.
        let func = unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                f as *const _,
            )
        };
        let fanout = self.workers.len().min(nchunks - 1);
        let latch = Arc::new(Latch::new(fanout));
        let next_chunk = Arc::new(AtomicUsize::new(0));
        for slot in &self.workers[..fanout] {
            let job = Job {
                func,
                next_chunk: Arc::clone(&next_chunk),
                nchunks,
                latch: Arc::clone(&latch),
                counts_down: true,
            };
            let mut tx = slot.tx.lock().unwrap_or_else(|e| e.into_inner());
            if let Err(SendError(job)) = tx.send(job) {
                // The worker died (its receiver is gone) — this only
                // happens when a fault killed the thread mid-loop.
                // Respawn it in place and hand it the job.
                bernoulli_trace::counter!("par.pool.workers_respawned");
                *tx = spawn_worker(slot.id);
                tx.send(job).expect("freshly spawned pool worker");
            }
        }
        // The submitting thread is a lane too.
        let own = Job {
            func,
            next_chunk,
            nchunks,
            latch: Arc::clone(&latch),
            counts_down: false,
        };
        own.run_chunks(false);
        latch.wait();
        match latch.take_panic() {
            Some(p) => Err(p),
            None => Ok(()),
        }
    }

    /// Generic form of [`Pool::run`]: executes `f(chunk)` for every
    /// `chunk in 0..nchunks` without requiring the caller to build a
    /// `&dyn` reference.
    pub fn scope<F: Fn(usize) + Sync>(&self, nchunks: usize, f: F) {
        self.run(nchunks, &f);
    }

    /// [`Pool::scope`] with a chunk panic reported as
    /// [`PoolError::JobPanicked`].
    pub fn try_scope<F: Fn(usize) + Sync>(&self, nchunks: usize, f: F) -> Result<(), PoolError> {
        self.try_run(nchunks, &f)
    }

    /// Applies `f` to every element of `items` on the pool and collects
    /// the results **in input order** — the output is a pure function of
    /// `items` and `f`, independent of the pool size and of scheduling,
    /// which is what lets the synthesis search fan out per-configuration
    /// work and still return byte-identical rankings.
    ///
    /// # Panics
    /// Re-raises the first per-item panic with its original payload;
    /// see [`Pool::try_par_map`] for the typed-error form.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        match self.par_map_inner(items, f) {
            Ok(v) => v,
            Err(p) => resume_unwind(p),
        }
    }

    /// [`Pool::par_map`] with a per-item panic reported as
    /// [`PoolError::JobPanicked`]: the job's results are discarded, but
    /// the pool (and the process) stays up.
    pub fn try_par_map<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>, PoolError>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.par_map_inner(items, f).map_err(|p| {
            bernoulli_trace::counter!("par.pool.jobs_panicked");
            PoolError::JobPanicked {
                message: panic_message(p.as_ref()),
            }
        })
    }

    fn par_map_inner<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>, Box<dyn Any + Send>>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        // One mutex per slot: never contended (each chunk writes its own
        // slot exactly once), so the lock cost is a single uncontended
        // atomic per item — negligible against per-item work coarse
        // enough to be worth scheduling.
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        self.run_inner(items.len(), &|i| {
            *slots[i].lock().unwrap() = Some(f(&items[i]));
        })?;
        Ok(slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("pool chunk completed")
            })
            .collect())
    }
}

/// Pool size: `BERNOULLI_THREADS` if set (minimum 1), else the host's
/// available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_chunk_exactly_once() {
        let pool = Pool::new(4);
        for nchunks in [0usize, 1, 2, 3, 64, 1000] {
            let hits: Vec<AtomicU64> = (0..nchunks).map(|_| AtomicU64::new(0)).collect();
            pool.run(nchunks, &|c| {
                hits[c].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "nchunks = {nchunks}"
            );
        }
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = Pool::new(1);
        assert_eq!(pool.nthreads(), 1);
        let sum = AtomicU64::new(0);
        pool.run(10, &|c| {
            sum.fetch_add(c as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn borrowed_data_visible_after_run() {
        let pool = Pool::new(3);
        let input: Vec<u64> = (0..100).collect();
        let out: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        pool.run(100, &|c| {
            out[c].store(input[c] * 2, Ordering::Relaxed);
        });
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.load(Ordering::Relaxed), 2 * i as u64);
        }
    }

    #[test]
    fn scope_accepts_generic_closures() {
        let pool = Pool::new(2);
        let out: Vec<AtomicU64> = (0..32).map(|_| AtomicU64::new(0)).collect();
        let base = 7u64;
        pool.scope(32, |c| {
            out[c].store(base + c as u64, Ordering::Relaxed);
        });
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.load(Ordering::Relaxed), 7 + i as u64);
        }
    }

    #[test]
    fn par_map_preserves_input_order() {
        for nthreads in [1usize, 2, 4, 8] {
            let pool = Pool::new(nthreads);
            let items: Vec<u64> = (0..257).collect();
            let got = pool.par_map(&items, |&x| x * x + 1);
            let want: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
            assert_eq!(got, want, "nthreads = {nthreads}");
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let pool = Pool::new(4);
        let empty: Vec<u32> = Vec::new();
        assert!(pool.par_map(&empty, |&x| x).is_empty());
        assert_eq!(pool.par_map(&[41u32], |&x| x + 1), vec![42]);
    }

    #[test]
    fn par_map_with_non_copy_results() {
        let pool = Pool::new(3);
        let items: Vec<usize> = (0..50).collect();
        let got = pool.par_map(&items, |&n| vec![n; n % 5]);
        for (n, v) in items.iter().zip(&got) {
            assert_eq!(v.len(), n % 5);
            assert!(v.iter().all(|x| x == n));
        }
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = Pool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, &|c| {
                if c % 2 == 1 {
                    panic!("chunk {c} failed");
                }
            });
        }));
        // The original payload is preserved through the pool.
        let payload = result.unwrap_err();
        assert!(panic_message(payload.as_ref()).contains("failed"));
        // The pool stays usable after a panicked job.
        let sum = AtomicU64::new(0);
        pool.run(8, &|c| {
            sum.fetch_add(c as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 28);
    }

    #[test]
    fn try_run_reports_typed_error() {
        let pool = Pool::new(4);
        let err = pool
            .try_run(16, &|c| {
                if c == 3 {
                    panic!("boom at {c}");
                }
            })
            .unwrap_err();
        let PoolError::JobPanicked { message } = err;
        assert!(message.contains("boom"), "{message}");
        // Typed failure on the inline path too.
        let solo = Pool::new(1);
        let err = solo.try_run(4, &|_| panic!("inline boom")).unwrap_err();
        assert!(err.to_string().contains("inline boom"), "{err}");
        solo.try_run(4, &|_| {}).unwrap();
    }

    #[test]
    fn try_par_map_recovers_and_stays_deterministic() {
        for nthreads in [1usize, 2, 4, 8] {
            let pool = Pool::new(nthreads);
            let items: Vec<u64> = (0..64).collect();
            let err = pool
                .try_par_map(&items, |&x| {
                    if x == 17 {
                        panic!("item {x} exploded");
                    }
                    x * 3
                })
                .unwrap_err();
            assert!(err.to_string().contains("exploded"), "nthreads={nthreads}");
            // Subsequent maps on the same pool produce the exact same
            // bytes as an untouched pool would.
            let got = pool.try_par_map(&items, |&x| x * 3).unwrap();
            let want: Vec<u64> = items.iter().map(|&x| x * 3).collect();
            assert_eq!(got, want, "nthreads = {nthreads}");
        }
    }

    #[test]
    fn global_pool_is_shared() {
        let a = Pool::global() as *const Pool;
        let b = Pool::global() as *const Pool;
        assert_eq!(a, b);
        assert!(Pool::global().nthreads() >= 1);
    }
}
