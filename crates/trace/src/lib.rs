//! Structured tracing and metrics for the synthesis pipeline and the
//! parallel runtime.
//!
//! The synthesizer makes many silent decisions (embedding selection,
//! redundant-dimension elimination, join-strategy choice) and the
//! parallel runtime has equally invisible behavior (chunk stealing,
//! pool utilization). This crate gives both a shared vocabulary:
//! named **counter** and **timer** series, recorded through macros that
//! cost nothing when the `enabled` feature is off.
//!
//! # Model
//!
//! A *series* is identified by a `&'static str` name, lowercase and
//! dot-separated by convention (`subsystem.metric`, e.g.
//! `polyhedra.emptiness_tests`, `par.pool.chunks_stolen`). Each series
//! accumulates `{count, sum, max}`:
//!
//! - **counters** ([`counter!`]) add an integer delta per event
//!   (`sum` is the running total, `count` the number of events);
//! - **timers** ([`span!`] / [`timer!`]) add elapsed nanoseconds per
//!   scope (`sum` is total ns, `mean()` the per-scope average).
//!
//! Events land in a **thread-local buffer** (no synchronization on the
//! hot path) and are folded into a process-global registry when the
//! thread exits, when [`flush_local`] is called (the worker pool does
//! this at the end of every job), or when [`snapshot`] is taken by the
//! reporting thread. `bench`'s `experiments -- trace` serializes the
//! snapshot through its `report` JSON writer as `BENCH_trace.json`.
//!
//! # Zero cost when disabled
//!
//! With the `enabled` feature off (the default), [`ENABLED`] is a
//! `const false`: every macro expands to an `if false { ... }` the
//! optimizer deletes, [`SpanGuard`] is a zero-sized type with an empty
//! `Drop`, and [`snapshot`] returns an empty vector. The tests at the
//! bottom of this file assert both properties (guard size and a timing
//! bound on ten million disabled counter events).
//!
//! ```
//! bernoulli_trace::counter!("doc.events");
//! bernoulli_trace::counter!("doc.bytes", 128usize);
//! {
//!     bernoulli_trace::span!("doc.scope");
//!     // ... traced work ...
//! }
//! // Disabled build: empty. Enabled build: the three series above.
//! let series = bernoulli_trace::snapshot();
//! assert_eq!(series.is_empty(), !bernoulli_trace::ENABLED);
//! ```

/// `true` iff the crate was compiled with the `enabled` feature.
///
/// The macros branch on this constant — not on `#[cfg]` at the call
/// site — so instrumented crates never need feature gates of their own
/// and the disabled path still type-checks every operand.
pub const ENABLED: bool = cfg!(feature = "enabled");

/// What a series measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Integer deltas; `sum` is the running total.
    Counter,
    /// Elapsed scopes; `sum` is total nanoseconds.
    Timer,
}

impl Kind {
    /// Lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Timer => "timer",
        }
    }
}

/// Accumulated statistics of one named series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Series {
    pub kind: Kind,
    /// Number of recorded events (increments or closed scopes).
    pub count: u64,
    /// Total of all deltas (counter units or nanoseconds).
    pub sum: f64,
    /// Largest single delta.
    pub max: f64,
}

// `new`/`add`/`merge` are only reachable from `imp` (and tests) in the
// enabled build; keep them compiled either way so the type's behavior
// can't drift between the two modes.
#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
impl Series {
    fn new(kind: Kind) -> Series {
        Series {
            kind,
            count: 0,
            sum: 0.0,
            max: 0.0,
        }
    }

    fn add(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v > self.max {
            self.max = v;
        }
    }

    fn merge(&mut self, other: &Series) {
        self.count += other.count;
        self.sum += other.sum;
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Average delta per event (0 for an empty series).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[cfg(feature = "enabled")]
mod imp {
    use super::{Kind, Series};
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    type Registry = HashMap<&'static str, Series>;

    fn global() -> MutexGuard<'static, Registry> {
        static G: OnceLock<Mutex<Registry>> = OnceLock::new();
        // A poisoned registry only means a traced thread panicked; the
        // counts themselves stay meaningful.
        match G.get_or_init(|| Mutex::new(HashMap::new())).lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Thread-local buffer, folded into the global registry on drop so
    /// short-lived threads lose nothing.
    struct LocalBuf(RefCell<Registry>);

    impl Drop for LocalBuf {
        fn drop(&mut self) {
            flush_map(self.0.get_mut());
        }
    }

    thread_local! {
        static LOCAL: LocalBuf = LocalBuf(RefCell::new(HashMap::new()));
    }

    fn flush_map(map: &mut Registry) {
        if map.is_empty() {
            return;
        }
        let mut g = global();
        for (name, s) in map.drain() {
            g.entry(name).and_modify(|t| t.merge(&s)).or_insert(s);
        }
    }

    pub fn record(name: &'static str, kind: Kind, v: f64) {
        // try_with: recording during thread teardown is silently dropped
        // rather than panicking.
        let _ = LOCAL.try_with(|l| {
            l.0.borrow_mut()
                .entry(name)
                .or_insert_with(|| Series::new(kind))
                .add(v);
        });
    }

    pub fn flush_local() {
        let _ = LOCAL.try_with(|l| flush_map(&mut l.0.borrow_mut()));
    }

    pub fn snapshot() -> Vec<(&'static str, Series)> {
        flush_local();
        let g = global();
        let mut v: Vec<(&'static str, Series)> = g.iter().map(|(k, s)| (*k, *s)).collect();
        v.sort_by_key(|&(k, _)| k);
        v
    }

    pub fn reset() {
        let _ = LOCAL.try_with(|l| l.0.borrow_mut().clear());
        global().clear();
    }
}

/// Adds `delta` to the counter series `name`. Prefer the [`counter!`]
/// macro, which compiles to nothing when tracing is disabled.
#[inline]
pub fn record_counter(name: &'static str, delta: u64) {
    #[cfg(feature = "enabled")]
    imp::record(name, Kind::Counter, delta as f64);
    #[cfg(not(feature = "enabled"))]
    let _ = (name, delta);
}

/// Adds `ns` nanoseconds to the timer series `name`. Prefer [`span!`]
/// or [`timer!`].
#[inline]
pub fn record_timer_ns(name: &'static str, ns: u64) {
    #[cfg(feature = "enabled")]
    imp::record(name, Kind::Timer, ns as f64);
    #[cfg(not(feature = "enabled"))]
    let _ = (name, ns);
}

/// Folds this thread's buffered events into the global registry.
///
/// Long-lived threads that record but never exit (worker pools) should
/// call this at job boundaries; [`snapshot`] flushes the calling thread
/// automatically.
#[inline]
pub fn flush_local() {
    #[cfg(feature = "enabled")]
    imp::flush_local();
}

/// All series recorded so far, sorted by name. Flushes the calling
/// thread's buffer first. Empty when tracing is disabled.
pub fn snapshot() -> Vec<(&'static str, Series)> {
    #[cfg(feature = "enabled")]
    {
        imp::snapshot()
    }
    #[cfg(not(feature = "enabled"))]
    {
        Vec::new()
    }
}

/// Clears the global registry and the calling thread's buffer (other
/// threads' unflushed buffers are unaffected; the pool flushes its
/// workers at the end of every job, so between jobs they hold nothing).
pub fn reset() {
    #[cfg(feature = "enabled")]
    imp::reset();
}

/// Scope timer: measures from construction to drop and records the
/// elapsed nanoseconds under `name`. Zero-sized and inert when tracing
/// is disabled.
pub struct SpanGuard {
    #[cfg(feature = "enabled")]
    name: &'static str,
    #[cfg(feature = "enabled")]
    start: std::time::Instant,
}

impl SpanGuard {
    #[inline]
    pub fn new(name: &'static str) -> SpanGuard {
        #[cfg(feature = "enabled")]
        {
            SpanGuard {
                name,
                start: std::time::Instant::now(),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = name;
            SpanGuard {}
        }
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        record_timer_ns(self.name, self.start.elapsed().as_nanos() as u64);
    }
}

/// Increments a counter series: `counter!("name")` adds 1,
/// `counter!("name", delta)` adds `delta` (any integer type; cast to
/// `u64`). Compiles to nothing when tracing is disabled — the delta
/// expression is never evaluated.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::counter!($name, 1u64)
    };
    ($name:expr, $delta:expr) => {
        if $crate::ENABLED {
            $crate::record_counter($name, ($delta) as u64);
        }
    };
}

/// Times the rest of the enclosing scope under a timer series:
/// `span!("name");` binds a hidden [`SpanGuard`] dropped at scope end.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _trace_span = $crate::SpanGuard::new($name);
    };
}

/// Expression form of [`span!`]: returns the [`SpanGuard`] so the
/// caller controls its lifetime (`let t = timer!("name"); ...; drop(t)`).
#[macro_export]
macro_rules! timer {
    ($name:expr) => {
        $crate::SpanGuard::new($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // ---- Both modes -------------------------------------------------

    #[test]
    fn enabled_constant_matches_feature() {
        assert_eq!(ENABLED, cfg!(feature = "enabled"));
    }

    #[test]
    fn series_mean_and_kind_names() {
        let mut s = Series::new(Kind::Counter);
        assert_eq!(s.mean(), 0.0);
        s.add(3.0);
        s.add(5.0);
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 8.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean(), 4.0);
        assert_eq!(Kind::Counter.name(), "counter");
        assert_eq!(Kind::Timer.name(), "timer");
    }

    // ---- Disabled mode: the zero-cost contract ----------------------

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_guard_is_zero_sized() {
        assert_eq!(std::mem::size_of::<SpanGuard>(), 0);
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_path_records_nothing() {
        counter!("test.counter");
        counter!("test.weighted", 17usize);
        {
            span!("test.span");
        }
        let _t = timer!("test.timer");
        drop(_t);
        flush_local();
        assert!(snapshot().is_empty());
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_delta_is_never_evaluated() {
        fn boom() -> u64 {
            panic!("delta must not be evaluated when disabled");
        }
        counter!("test.lazy", boom());
    }

    /// The timing half of the zero-cost assertion: ten million disabled
    /// counter events must be indistinguishable from an empty loop
    /// (well under a second even in debug builds); any path that
    /// touched a map or a lock would blow this bound by orders of
    /// magnitude.
    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_counters_cost_nothing() {
        let t0 = std::time::Instant::now();
        for i in 0..10_000_000u64 {
            counter!("test.hot", i);
        }
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(1),
            "disabled tracing not compiled out: {:?}",
            t0.elapsed()
        );
    }

    // ---- Enabled mode -----------------------------------------------
    //
    // The registry is process-global, so the enabled tests run as one
    // function to avoid cross-test interference.

    #[cfg(feature = "enabled")]
    #[test]
    fn enabled_end_to_end() {
        reset();

        // Counters accumulate count/sum/max.
        counter!("t.events");
        counter!("t.events");
        counter!("t.bytes", 100usize);
        counter!("t.bytes", 28u64);
        // Timers record non-zero elapsed time.
        {
            span!("t.scope");
            std::hint::black_box(0);
        }
        let snap = snapshot();
        let get = |name: &str| -> Series {
            snap.iter()
                .find(|(n, _)| *n == name)
                .unwrap_or_else(|| panic!("missing series {name}"))
                .1
        };
        assert_eq!(get("t.events").count, 2);
        assert_eq!(get("t.events").sum, 2.0);
        assert_eq!(get("t.bytes").count, 2);
        assert_eq!(get("t.bytes").sum, 128.0);
        assert_eq!(get("t.bytes").max, 100.0);
        assert_eq!(get("t.scope").kind, Kind::Timer);
        assert_eq!(get("t.scope").count, 1);

        // Snapshot is sorted by name.
        let names: Vec<&str> = snap.iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);

        // Exiting threads fold their buffers in without explicit flush.
        std::thread::spawn(|| {
            counter!("t.cross_thread", 7u32);
        })
        .join()
        .unwrap();
        let snap = snapshot();
        assert!(snap
            .iter()
            .any(|(n, s)| *n == "t.cross_thread" && s.sum == 7.0));

        // Reset clears everything.
        reset();
        assert!(snapshot().is_empty());
    }
}
