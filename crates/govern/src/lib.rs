//! Resource governance for the Bernoulli compiler: compute budgets,
//! wall-clock deadlines, cooperative cancellation, and (feature-gated)
//! fault injection for chaos testing.
//!
//! The polyhedral decision procedures at the heart of synthesis
//! (Fourier–Motzkin elimination, Farkas projection) have worst-case
//! exponential blowup, and the search fans out over many candidate
//! configurations. Production polyhedral libraries bound this with an
//! operation budget on the context (cf. isl's `max_operations`); this
//! crate provides the same idea as a standalone, dependency-free layer:
//!
//! - [`Budget`] — an operation-count ceiling, an optional wall-clock
//!   deadline, and a [`CancelToken`], all checked cooperatively via
//!   [`Budget::charge`] / [`Budget::check`]. Exhaustion is *sticky*: once
//!   a budget trips, every later check reports the same typed cause.
//! - a per-thread **installed budget** slot ([`install_scoped`],
//!   [`current`]) so deeply-nested library code can observe the active
//!   budget without threading it through every signature — the same
//!   pattern as `bernoulli-polyhedra`'s cache slot. The slot is
//!   thread-local so concurrent compiles never govern each other; the
//!   search layer re-installs the submitting thread's budget inside
//!   every pool job it fans out.
//! - [`faults`] — named fault-injection sites (panic / delay / budget
//!   starvation), compiled to no-ops unless the `faults` feature is on.
//!
//! Checking cost: [`Budget::charge`] is one relaxed `fetch_add` plus a
//! compare; the clock and the cancel flag are only consulted when the
//! accumulated operation count crosses a stride boundary
//! ([`DEADLINE_STRIDE`]), keeping the happy-path overhead well under the
//! 2% bar the benchmarks enforce.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many charged operations may elapse between wall-clock / cancel
/// checks. Power of two so the boundary test is cheap.
pub const DEADLINE_STRIDE: u64 = 1024;

// Sticky exhaustion causes (stored in `Budget::cause`).
const CAUSE_NONE: u8 = 0;
const CAUSE_OPS: u8 = 1;
const CAUSE_DEADLINE: u8 = 2;
const CAUSE_CANCELLED: u8 = 3;

/// Why a [`Budget`] stopped the computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetError {
    /// The operation-count ceiling was reached.
    Ops { used: u64, limit: u64 },
    /// The wall-clock deadline passed.
    Deadline { elapsed_ms: u64, limit_ms: u64 },
    /// The associated [`CancelToken`] was cancelled.
    Cancelled,
}

impl std::fmt::Display for BudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetError::Ops { used, limit } => {
                write!(f, "operation budget exhausted ({used} of {limit} ops)")
            }
            BudgetError::Deadline {
                elapsed_ms,
                limit_ms,
            } => write!(f, "deadline exceeded ({elapsed_ms}ms of {limit_ms}ms)"),
            BudgetError::Cancelled => write!(f, "cancelled by caller"),
        }
    }
}

impl std::error::Error for BudgetError {}

/// A cheaply-clonable cooperative cancellation flag. Cancelling is
/// irrevocable for the budgets observing the token.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation; every budget holding this token trips at
    /// its next check.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// A compute budget: operation ceiling + optional deadline + cancel
/// token. Thread-safe; one budget may be charged concurrently from all
/// pool workers.
#[derive(Debug)]
pub struct Budget {
    max_ops: Option<u64>,
    deadline: Option<Instant>,
    limit: Option<Duration>,
    start: Instant,
    cancel: Option<CancelToken>,
    ops: AtomicU64,
    cause: AtomicU8,
}

impl Default for Budget {
    fn default() -> Budget {
        Budget::unlimited()
    }
}

impl Budget {
    /// A budget with no limits (still observes a cancel token if one is
    /// attached later via [`Budget::with_cancel`]).
    pub fn unlimited() -> Budget {
        Budget {
            max_ops: None,
            deadline: None,
            limit: None,
            start: Instant::now(),
            cancel: None,
            ops: AtomicU64::new(0),
            cause: AtomicU8::new(CAUSE_NONE),
        }
    }

    /// Caps the number of abstract operations charged via
    /// [`Budget::charge`].
    pub fn with_max_ops(mut self, max_ops: u64) -> Budget {
        self.max_ops = Some(max_ops);
        self
    }

    /// Arms a wall-clock deadline `limit` from *now*.
    pub fn with_deadline(mut self, limit: Duration) -> Budget {
        self.start = Instant::now();
        self.deadline = Some(self.start + limit);
        self.limit = Some(limit);
        self
    }

    /// Attaches a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Budget {
        self.cancel = Some(token);
        self
    }

    /// Operations charged so far.
    pub fn ops_used(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// The sticky exhaustion cause, if the budget has tripped.
    pub fn exceeded(&self) -> Option<BudgetError> {
        self.error_for(self.cause.load(Ordering::Acquire))
    }

    fn error_for(&self, cause: u8) -> Option<BudgetError> {
        match cause {
            CAUSE_NONE => None,
            CAUSE_OPS => Some(BudgetError::Ops {
                used: self.ops_used(),
                limit: self.max_ops.unwrap_or(0),
            }),
            CAUSE_DEADLINE => Some(BudgetError::Deadline {
                elapsed_ms: self.start.elapsed().as_millis() as u64,
                limit_ms: self.limit.unwrap_or(Duration::ZERO).as_millis() as u64,
            }),
            _ => Some(BudgetError::Cancelled),
        }
    }

    fn trip(&self, cause: u8) -> BudgetError {
        // First cause wins; later checks keep reporting it.
        let _ = self
            .cause
            .compare_exchange(CAUSE_NONE, cause, Ordering::AcqRel, Ordering::Acquire);
        self.error_for(self.cause.load(Ordering::Acquire))
            .expect("tripped budget has a cause")
    }

    /// Forces the budget into the exhausted state (used by the fault
    /// injector to simulate starvation).
    pub fn starve(&self) {
        let _ = self.trip(CAUSE_OPS);
    }

    /// Charges `n` abstract operations. The clock and cancel flag are
    /// only consulted when the running total crosses a
    /// [`DEADLINE_STRIDE`] boundary; the op ceiling is exact.
    pub fn charge(&self, n: u64) -> Result<(), BudgetError> {
        if let Some(err) = self.exceeded() {
            return Err(err);
        }
        let before = self.ops.fetch_add(n, Ordering::Relaxed);
        let used = before.saturating_add(n);
        if let Some(limit) = self.max_ops {
            if used > limit {
                return Err(self.trip(CAUSE_OPS));
            }
        }
        if before / DEADLINE_STRIDE != used / DEADLINE_STRIDE {
            self.check_time()?;
        }
        Ok(())
    }

    /// Checks the deadline and the cancel token *now* (plus any sticky
    /// cause), without charging operations. Use at coarse boundaries
    /// (per search configuration, per embedding).
    pub fn check(&self) -> Result<(), BudgetError> {
        if let Some(err) = self.exceeded() {
            return Err(err);
        }
        self.check_time()
    }

    fn check_time(&self) -> Result<(), BudgetError> {
        if let Some(tok) = &self.cancel {
            if tok.is_cancelled() {
                return Err(self.trip(CAUSE_CANCELLED));
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(self.trip(CAUSE_DEADLINE));
            }
        }
        Ok(())
    }
}

// Per-thread installed budget, observed by library code that has no
// budget parameter (polyhedra, search inner loops, pool workers). This
// slot is deliberately thread-local rather than process-wide: the
// compile service runs many sessions concurrently, and a process-wide
// slot would let one request's budget govern (or cancel) another's
// work. The search layer captures the submitting thread's budget and
// re-installs it inside every pool job, so worker threads still observe
// the budget of the compile they are working for.
thread_local! {
    static CURRENT: std::cell::RefCell<Option<Arc<Budget>>> =
        const { std::cell::RefCell::new(None) };
}

/// The budget installed on the current thread, if any.
pub fn current() -> Option<Arc<Budget>> {
    CURRENT.with(|slot| slot.borrow().clone())
}

/// Installs `budget` on the current thread (replacing any previous one)
/// and returns the previous occupant. Prefer [`install_scoped`].
pub fn install(budget: Option<Arc<Budget>>) -> Option<Arc<Budget>> {
    CURRENT.with(|slot| std::mem::replace(&mut *slot.borrow_mut(), budget))
}

/// Installs `budget` for the lifetime of the returned guard; the
/// previous budget (possibly none) is restored on drop. The
/// installation is per-thread, so concurrent compiles on different
/// threads are fully isolated from each other's budgets. Code that
/// fans work out to a pool must capture [`current`] before submitting
/// and re-install it inside each job (the synthesis search does this)
/// — a bare pool worker thread has no installed budget of its own.
pub fn install_scoped(budget: Option<Arc<Budget>>) -> ScopedBudget {
    ScopedBudget {
        prev: install(budget),
    }
}

/// Guard restoring the previously installed budget (see
/// [`install_scoped`]).
pub struct ScopedBudget {
    prev: Option<Arc<Budget>>,
}

impl Drop for ScopedBudget {
    fn drop(&mut self) {
        install(self.prev.take());
    }
}

/// Charges `n` operations against the installed budget; a no-op `Ok`
/// when no budget is installed.
pub fn charge(n: u64) -> Result<(), BudgetError> {
    match current() {
        Some(b) => b.charge(n),
        None => Ok(()),
    }
}

/// Checks the installed budget's deadline/cancel state; a no-op `Ok`
/// when no budget is installed.
pub fn check() -> Result<(), BudgetError> {
    match current() {
        Some(b) => b.check(),
        None => Ok(()),
    }
}

/// Fault injection for chaos testing: named sites scattered through the
/// pool, the polyhedral layer, and the search call [`faults::hit`]; a
/// fault table (configured programmatically or via the
/// `BERNOULLI_FAULTS` environment variable) decides whether the site
/// panics, sleeps, or starves the installed budget. Without the
/// `faults` feature every site compiles to an empty inline function.
#[cfg(feature = "faults")]
pub mod faults {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    use std::time::Duration;

    /// What an armed site does when hit.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    enum Action {
        /// Panic with a message naming the site.
        Panic,
        /// Sleep for the given number of milliseconds.
        DelayMs(u64),
        /// Force the installed budget into the exhausted state.
        Starve,
        /// Make the site report an injected failure as its own *typed*
        /// error (observed through [`fail`]; sites that only call
        /// [`hit`] ignore it).
        Fail,
    }

    #[derive(Debug)]
    struct Fault {
        action: Action,
        /// How many more hits fire (`u64::MAX` = unlimited).
        remaining: u64,
    }

    fn table() -> &'static Mutex<HashMap<String, Fault>> {
        static TABLE: OnceLock<Mutex<HashMap<String, Fault>>> = OnceLock::new();
        TABLE.get_or_init(|| {
            let spec = std::env::var("BERNOULLI_FAULTS").unwrap_or_default();
            Mutex::new(parse(&spec))
        })
    }

    /// Parses a fault spec: comma-separated `site=action` entries where
    /// `action` is `panic`, `delay:<ms>`, or `starve`, optionally
    /// suffixed `#<n>` to fire only the first `n` hits. Example:
    /// `pool.worker=panic#1,polyhedra.fm=delay:5`.
    fn parse(spec: &str) -> HashMap<String, Fault> {
        let mut out = HashMap::new();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let Some((site, action)) = entry.split_once('=') else {
                continue;
            };
            let (action, remaining) = match action.split_once('#') {
                Some((a, n)) => (a, n.parse().unwrap_or(1)),
                None => (action, u64::MAX),
            };
            let action = if action == "panic" {
                Action::Panic
            } else if action == "starve" {
                Action::Starve
            } else if action == "fail" {
                Action::Fail
            } else if let Some(ms) = action.strip_prefix("delay:") {
                Action::DelayMs(ms.parse().unwrap_or(1))
            } else {
                continue;
            };
            out.insert(site.trim().to_string(), Fault { action, remaining });
        }
        out
    }

    /// Replaces the fault table with the given spec (see the grammar on
    /// the parser). Tests use this to arm and disarm sites.
    pub fn configure(spec: &str) {
        *table().lock().unwrap_or_else(|e| e.into_inner()) = parse(spec);
    }

    /// Disarms every site.
    pub fn clear() {
        configure("");
    }

    /// Consumes one hit of the site's armed fault, if any.
    fn take(site: &str) -> Option<Action> {
        let mut map = table().lock().unwrap_or_else(|e| e.into_inner());
        match map.get_mut(site) {
            Some(f) if f.remaining > 0 => {
                if f.remaining != u64::MAX {
                    f.remaining -= 1;
                }
                Some(f.action)
            }
            _ => None,
        }
    }

    /// A named fault-injection site. Panics, sleeps, or starves the
    /// installed budget if the site is armed; otherwise does nothing.
    /// A `fail` arming is ignored here — only sites that observe
    /// [`fail`] can surface it as a typed error.
    pub fn hit(site: &str) {
        match take(site) {
            None | Some(Action::Fail) => {}
            Some(Action::Panic) => panic!("injected fault at {site}"),
            Some(Action::DelayMs(ms)) => std::thread::sleep(Duration::from_millis(ms)),
            Some(Action::Starve) => {
                if let Some(b) = super::current() {
                    b.starve();
                }
            }
        }
    }

    /// A named fault-injection site for code paths that report injected
    /// faults as their own *typed* errors instead of panicking: returns
    /// `true` when the site is armed with the `fail` action (the caller
    /// must then take its documented failure path). Other armings
    /// (panic/delay/starve) behave exactly as [`hit`] and return
    /// `false`.
    pub fn fail(site: &str) -> bool {
        match take(site) {
            None => false,
            Some(Action::Fail) => true,
            Some(Action::Panic) => panic!("injected fault at {site}"),
            Some(Action::DelayMs(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
                false
            }
            Some(Action::Starve) => {
                if let Some(b) = super::current() {
                    b.starve();
                }
                false
            }
        }
    }
}

/// No-op fault sites (the `faults` feature is off).
#[cfg(not(feature = "faults"))]
pub mod faults {
    /// Disabled fault site: compiles to nothing.
    #[inline(always)]
    pub fn hit(_site: &str) {}

    /// Disabled typed-error fault site: compiles to `false`.
    #[inline(always)]
    pub fn fail(_site: &str) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The budget slot is thread-local, so tests that install budgets
    /// no longer interfere across threads; the lock is kept only to
    /// document the historical hazard and guard same-thread reentry.
    static SLOT: Mutex<()> = Mutex::new(());

    #[test]
    fn unlimited_budget_never_trips() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            b.charge(17).unwrap();
        }
        b.check().unwrap();
        assert_eq!(b.exceeded(), None);
        assert_eq!(b.ops_used(), 170_000);
    }

    #[test]
    fn op_ceiling_is_exact_and_sticky() {
        let b = Budget::unlimited().with_max_ops(100);
        b.charge(60).unwrap();
        b.charge(40).unwrap(); // exactly at the limit is fine
        let err = b.charge(1).unwrap_err();
        assert!(matches!(
            err,
            BudgetError::Ops {
                used: 101,
                limit: 100
            }
        ));
        // Sticky: both check() and charge() keep failing.
        assert!(b.check().is_err());
        assert!(b.charge(0).is_err());
        assert!(matches!(b.exceeded(), Some(BudgetError::Ops { .. })));
    }

    #[test]
    fn deadline_trips_at_stride_boundary() {
        let b = Budget::unlimited().with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        // Small charges inside one stride don't consult the clock...
        b.charge(1).unwrap();
        // ...but a stride-crossing charge does.
        let err = b.charge(DEADLINE_STRIDE).unwrap_err();
        assert!(matches!(err, BudgetError::Deadline { .. }));
    }

    #[test]
    fn check_sees_deadline_immediately() {
        let b = Budget::unlimited().with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        assert!(matches!(b.check(), Err(BudgetError::Deadline { .. })));
    }

    #[test]
    fn cancel_token_trips_checks() {
        let tok = CancelToken::new();
        let b = Budget::unlimited().with_cancel(tok.clone());
        b.check().unwrap();
        assert!(!tok.is_cancelled());
        tok.cancel();
        assert_eq!(b.check(), Err(BudgetError::Cancelled));
        assert_eq!(b.exceeded(), Some(BudgetError::Cancelled));
    }

    #[test]
    fn starve_marks_ops_exhaustion() {
        let b = Budget::unlimited();
        b.starve();
        assert!(matches!(b.exceeded(), Some(BudgetError::Ops { .. })));
    }

    #[test]
    fn scoped_install_restores_previous() {
        let _lock = SLOT.lock().unwrap_or_else(|e| e.into_inner());
        let outer = Arc::new(Budget::unlimited().with_max_ops(7));
        let _g = install_scoped(Some(Arc::clone(&outer)));
        {
            let inner = Arc::new(Budget::unlimited().with_max_ops(9));
            let _g2 = install_scoped(Some(Arc::clone(&inner)));
            assert!(Arc::ptr_eq(&current().unwrap(), &inner));
        }
        assert!(Arc::ptr_eq(&current().unwrap(), &outer));
    }

    #[test]
    fn installs_are_thread_local() {
        let mine = Arc::new(Budget::unlimited().with_max_ops(5));
        let _g = install_scoped(Some(Arc::clone(&mine)));
        // A freshly spawned thread sees no budget, and installing one
        // there does not disturb this thread's installation.
        std::thread::spawn(|| {
            assert!(current().is_none());
            let theirs = Arc::new(Budget::unlimited().with_max_ops(11));
            let _h = install_scoped(Some(Arc::clone(&theirs)));
            assert!(Arc::ptr_eq(&current().unwrap(), &theirs));
        })
        .join()
        .unwrap();
        assert!(Arc::ptr_eq(&current().unwrap(), &mine));
    }

    #[test]
    fn free_functions_are_noops_without_budget() {
        let _lock = SLOT.lock().unwrap_or_else(|e| e.into_inner());
        let _g = install_scoped(None);
        charge(1_000_000).unwrap();
        check().unwrap();
    }

    #[test]
    fn errors_display() {
        let b = Budget::unlimited().with_max_ops(1);
        let e = b.charge(2).unwrap_err();
        assert!(e.to_string().contains("operation budget"));
        assert!(BudgetError::Cancelled.to_string().contains("cancelled"));
        let d = BudgetError::Deadline {
            elapsed_ms: 12,
            limit_ms: 10,
        };
        assert!(d.to_string().contains("deadline"));
    }
}
