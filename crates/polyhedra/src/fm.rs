//! Fourier–Motzkin elimination.

use crate::{Constraint, ConstraintKind, LinExpr, System};
use bernoulli_govern::{Budget, BudgetError};

/// Eliminates variable `j` from the system, returning a system over the
/// remaining variables (renumbered; variable names preserved).
///
/// The projection is exact over the rationals. An equality involving `j`
/// is used for exact Gaussian substitution when available, which both
/// avoids the quadratic lower×upper combination and keeps the result
/// tight for integers whenever the equality has a ±1 coefficient on `j`.
/// Memoized wrapper over the raw elimination: results are cached
/// process-wide under an *exact* `(rows-in-order, column)` key — not the
/// canonical one — because the row order of the projection feeds
/// downstream guard simplification and must be byte-identical to an
/// uncached run. Rows carry no variable names, so structurally identical
/// systems over different index names share one entry; the survivor
/// names are re-attached from `sys` on a hit.
pub fn eliminate_var(sys: &System, j: usize) -> System {
    match try_eliminate_var(sys, j) {
        Ok(s) => s,
        // Internal invariant: synthesis-built systems only ever eliminate
        // columns they created; a caller-supplied index goes through
        // `try_eliminate_var`.
        Err(e) => panic!("eliminate_var: {e}"),
    }
}

/// [`eliminate_var`] with the out-of-range column reported as a
/// [`PolyError`](crate::PolyError) instead of a panic — the entry point
/// for callers whose column index is not statically known to be valid.
/// Also observes the installed compute budget
/// ([`bernoulli_govern::current`]), reporting exhaustion as
/// [`PolyError::BudgetExhausted`](crate::PolyError::BudgetExhausted).
pub fn try_eliminate_var(sys: &System, j: usize) -> Result<System, crate::PolyError> {
    if j >= sys.num_vars() {
        return Err(crate::PolyError::VarOutOfRange {
            index: j,
            nvars: sys.num_vars(),
        });
    }
    let budget = bernoulli_govern::current();
    Ok(eliminate_core(sys, j, budget.as_deref())?)
}

/// The memoized elimination step: cache hits are free (and still served
/// after a budget has tripped — a memoized proof costs nothing); misses
/// charge the budget in proportion to the combination work. Results are
/// stored only on fully-completed eliminations, so a budget-truncated
/// run never pollutes the memo.
pub(crate) fn eliminate_core(
    sys: &System,
    j: usize,
    budget: Option<&Budget>,
) -> Result<System, BudgetError> {
    bernoulli_trace::counter!("polyhedra.fm_eliminations");
    bernoulli_govern::faults::hit("polyhedra.fm");
    let key = crate::cache::fm_key(sys, j);
    if let Some(rows) = crate::cache::fm_lookup(&key) {
        bernoulli_trace::counter!("polyhedra.cache.fm_hits");
        let mut vars = sys.vars().to_vec();
        vars.remove(j);
        return Ok(System::from_parts(vars, rows));
    }
    bernoulli_trace::counter!("polyhedra.cache.fm_misses");
    let out = eliminate_var_uncached(sys, j, budget)?;
    crate::cache::fm_store(key, out.constraints().to_vec());
    Ok(out)
}

fn eliminate_var_uncached(
    sys: &System,
    j: usize,
    budget: Option<&Budget>,
) -> Result<System, BudgetError> {
    if let Some(b) = budget {
        // One explicit deadline/cancel check per elimination: `charge`
        // only consults the clock at stride crossings, which a small
        // decision may never reach, but cancellation must still be
        // prompt.
        b.check()?;
        b.charge(sys.constraints().len() as u64 + 1)?;
    }
    // Prefer substitution through an equality with the smallest |coeff|.
    let eq_idx = sys
        .constraints()
        .iter()
        .enumerate()
        .filter(|(_, c)| c.kind == ConstraintKind::Eq && !c.expr.coeffs[j].is_zero())
        .min_by_key(|(_, c)| c.expr.coeffs[j].abs())
        .map(|(i, _)| i);

    let mut out = System::from_parts(sys.vars().to_vec(), Vec::new());

    if let Some(ei) = eq_idx {
        let eq = &sys.constraints()[ei];
        let a = eq.expr.coeffs[j];
        // From eq: x_j = -(rest)/a.  Substitute into every other row:
        // row' = row - (row_j / a) * eq.
        for (i, c) in sys.constraints().iter().enumerate() {
            if i == ei {
                continue;
            }
            let cj = c.expr.coeffs[j];
            let mut e = c.expr.clone();
            if !cj.is_zero() {
                e.add_scaled(&eq.expr, -(cj / a));
            }
            debug_assert!(e.coeffs[j].is_zero());
            out.add(Constraint {
                expr: e,
                kind: c.kind,
            });
        }
        out.drop_var_column(j);
        return Ok(out);
    }

    // Pure inequality case: combine each lower bound with each upper bound.
    let mut lowers: Vec<&LinExpr> = Vec::new(); // coeff_j > 0: a_j x_j >= -(rest)
    let mut uppers: Vec<&LinExpr> = Vec::new(); // coeff_j < 0
    for c in sys.constraints() {
        debug_assert!(c.kind == ConstraintKind::Ge || c.expr.coeffs[j].is_zero());
        let s = c.expr.coeffs[j].signum();
        if s == 0 {
            out.add(c.clone());
        } else if s > 0 {
            lowers.push(&c.expr);
        } else {
            uppers.push(&c.expr);
        }
    }
    // The quadratic lower×upper combination is where Fourier–Motzkin
    // blows up; charge its full output size before doing the work.
    if let Some(b) = budget {
        b.charge((lowers.len() * uppers.len()) as u64)?;
    }
    for lo in &lowers {
        for up in &uppers {
            // lo: a x_j + L >= 0 (a>0)  =>  x_j >= -L/a
            // up: -b x_j + U >= 0 (b>0) =>  x_j <= U/b
            // combine: b*L + a*U >= 0
            let a = lo.coeffs[j];
            let b = -up.coeffs[j];
            let mut e = LinExpr::zero(sys.num_vars());
            e.add_scaled(lo, b);
            e.add_scaled(up, a);
            debug_assert!(e.coeffs[j].is_zero());
            out.add(Constraint::ge0(e));
        }
    }
    out.drop_var_column(j);

    // Cheap redundancy pruning: drop ≥-rows strictly dominated by another
    // row with identical variable coefficients but a larger constant.
    prune_dominated(&mut out);
    Ok(out)
}

/// Removes `e ≥ 0` rows made redundant by another row with the same
/// variable coefficients and a weaker constant.
fn prune_dominated(sys: &mut System) {
    let cons = sys.constraints().to_vec();
    let mut keep: Vec<bool> = vec![true; cons.len()];
    for (i, a) in cons.iter().enumerate() {
        if a.kind != ConstraintKind::Ge {
            continue;
        }
        for (k, b) in cons.iter().enumerate() {
            if i == k || !keep[i] || b.kind != ConstraintKind::Ge {
                continue;
            }
            if a.expr.coeffs == b.expr.coeffs {
                // Same normal vector: the row with the *larger* constant is
                // weaker. Keep the tighter one; break ties by index.
                let redundant =
                    a.expr.cst > b.expr.cst || (a.expr.cst == b.expr.cst && i > k && keep[k]);
                if redundant {
                    keep[i] = false;
                }
            }
        }
    }
    let filtered: Vec<Constraint> = cons
        .into_iter()
        .zip(&keep)
        .filter_map(|(c, &k)| k.then_some(c))
        .collect();
    *sys = System::from_parts(sys.vars().to_vec(), Vec::new());
    for c in filtered {
        sys.raw_push(c);
    }
}

/// Computes exact integer bounds of variable `j` over the system by
/// projecting away every other variable. Returns `(lo, hi)` where either
/// side is `None` when unbounded. Returns `None` overall when the system
/// is empty.
pub fn variable_bounds(sys: &System, j: usize) -> Option<(Option<i128>, Option<i128>)> {
    if sys.is_empty() {
        return None;
    }
    let drop: Vec<usize> = (0..sys.num_vars()).filter(|&k| k != j).collect();
    let proj = sys.project_out(&drop);
    debug_assert_eq!(proj.num_vars(), 1);
    let mut lo: Option<i128> = None;
    let mut hi: Option<i128> = None;
    for c in proj.constraints() {
        let a = c.expr.coeffs[0];
        let b = c.expr.cst;
        match c.kind {
            ConstraintKind::Ge => {
                if a.is_positive() {
                    // a x + b >= 0 => x >= -b/a
                    let bound = (-b / a).ceil();
                    lo = Some(lo.map_or(bound, |l: i128| l.max(bound)));
                } else if a.is_negative() {
                    let bound = (-b / a).floor();
                    hi = Some(hi.map_or(bound, |h: i128| h.min(bound)));
                }
            }
            ConstraintKind::Eq => {
                if !a.is_zero() {
                    let v = -b / a;
                    if v.is_integer() {
                        lo = Some(lo.map_or(v.numer(), |l: i128| l.max(v.numer())));
                        hi = Some(hi.map_or(v.numer(), |h: i128| h.min(v.numer())));
                    }
                }
            }
        }
    }
    Some((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn eliminate_middle_var() {
        // 0 <= i <= 4, i <= k <= i + 2, k == j  — eliminate k.
        let mut s = System::new(names(&["i", "k", "j"]));
        let (i, k, j) = (LinExpr::var(3, 0), LinExpr::var(3, 1), LinExpr::var(3, 2));
        s.add_bounds(0, 0, 4);
        s.add_ge(&k, &i);
        s.add_ge(&(&i + &LinExpr::constant(3, 2)), &k);
        s.add_eq(&k, &j);
        let p = eliminate_var(&s, 1);
        assert_eq!(p.vars(), &["i".to_string(), "j".to_string()]);
        assert!(p.contains_int(&[0, 0]));
        assert!(p.contains_int(&[0, 2]));
        assert!(!p.contains_int(&[0, 3]));
        assert!(!p.contains_int(&[-1, 0]));
    }

    #[test]
    fn elimination_with_inequalities_only() {
        // x <= y, y <= z; eliminating y gives x <= z.
        let mut s = System::new(names(&["x", "y", "z"]));
        let (x, y, z) = (LinExpr::var(3, 0), LinExpr::var(3, 1), LinExpr::var(3, 2));
        s.add_ge(&y, &x);
        s.add_ge(&z, &y);
        let p = eliminate_var(&s, 1);
        assert!(p.contains_int(&[1, 5]));
        assert!(!p.contains_int(&[5, 1]));
    }

    #[test]
    fn bounds_extraction() {
        let mut s = System::new(names(&["i", "j"]));
        s.add_bounds(0, 2, 9);
        let (i, j) = (LinExpr::var(2, 0), LinExpr::var(2, 1));
        s.add_ge(&j, &i); // j >= i >= 2
        s.add_ge(&LinExpr::constant(2, 20), &j);
        let (lo, hi) = variable_bounds(&s, 1).unwrap();
        assert_eq!(lo, Some(2));
        assert_eq!(hi, Some(20));
        let (lo_i, hi_i) = variable_bounds(&s, 0).unwrap();
        assert_eq!((lo_i, hi_i), (Some(2), Some(9)));
    }

    #[test]
    fn bounds_of_empty_system() {
        let mut s = System::new(names(&["i"]));
        s.add_bounds(0, 5, 3);
        assert!(variable_bounds(&s, 0).is_none());
    }

    #[test]
    fn unbounded_side() {
        let mut s = System::new(names(&["i"]));
        let i = LinExpr::var(1, 0);
        s.add_ge(&i, &LinExpr::constant(1, 3));
        let (lo, hi) = variable_bounds(&s, 0).unwrap();
        assert_eq!(lo, Some(3));
        assert_eq!(hi, None);
    }
}
