//! Memoization of the polyhedral decision procedures (S34).
//!
//! The synthesizer re-runs Fourier–Motzkin eliminations and emptiness /
//! implication tests on *structurally identical* constraint systems for
//! every (configuration, order, embedding) triple it examines — 37
//! triples for TS-on-JAD alone — and again for every repeated synthesis
//! request. This module gives [`System::is_empty`] and
//! [`eliminate_var`](crate::eliminate_var) a process-wide, sharded memo
//! cache:
//!
//! - **Emptiness** is keyed by the [`CanonicalKey`] of the system —
//!   constraints gcd-normalized to primitive integer rows,
//!   sign-canonicalized equalities, sorted — so the cached answer is
//!   shared across constraint insertion orders, positive scalings and
//!   variable *renamings* (the key stores coefficients, not names).
//!   [`System::implies`] is memoized through the same cache, since it
//!   decides `self ∧ ¬c` emptiness.
//! - **FM elimination** is keyed by the exact constraint sequence plus
//!   the eliminated column, because the *order* of the resulting rows
//!   must be byte-identical to an uncached run (downstream guard
//!   simplification walks them in order). The cached value is the row
//!   set of the projected system; variable names are re-attached from
//!   the caller's system, so structurally identical systems over
//!   different index names still share one entry.
//!
//! Both caches are sharded 16 ways to keep the parallel search's
//! threads off each other's locks, capped per shard (a full shard is
//! simply cleared — memoization is an optimization, never a correctness
//! dependency), and instrumented twice over: `counter!` series
//! (`polyhedra.cache.{empty,fm}_{hits,misses}`) for trace builds, and
//! always-on atomics surfaced through [`cache_stats`] so the benchmark
//! harness can report hit rates without the `trace` feature.

use crate::system::{Constraint, ConstraintKind, System};
use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

const NSHARDS: usize = 16;
/// Per-shard entry cap; a shard that fills up is cleared wholesale.
/// 16 shards × 4096 entries bounds each cache to ~64k systems.
const SHARD_CAP: usize = 4096;

/// One constraint as a hashable integer row:
/// `(kind, [(numer, denom); nvars], (cst numer, cst denom))`.
type Row = (u8, Vec<(i128, i128)>, (i128, i128));

/// Canonical, name-free form of a [`System`] — the emptiness cache key.
///
/// Two systems get equal keys iff they have the same variable count and
/// the same *set* of gcd-normalized constraints, regardless of the
/// order constraints were added in, of positive per-constraint scaling
/// (and sign for equalities), and of what the variables are called.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CanonicalKey {
    nvars: usize,
    rows: Vec<Row>,
}

fn raw_row(c: &Constraint) -> Row {
    let kind = match c.kind {
        ConstraintKind::Ge => 0u8,
        ConstraintKind::Eq => 1u8,
    };
    let coeffs = c
        .expr
        .coeffs
        .iter()
        .map(|r| (r.numer(), r.denom()))
        .collect();
    (kind, coeffs, (c.expr.cst.numer(), c.expr.cst.denom()))
}

fn canonical_row(c: &Constraint) -> Row {
    // `System::add` already normalizes rows to primitive integers, but
    // canonicalize defensively so keys never depend on how a system was
    // assembled.
    let mut e = c.expr.clone();
    e.normalize_primitive();
    if c.kind == ConstraintKind::Eq {
        // An equality is invariant under negation; fix the sign so the
        // first nonzero coefficient (or the constant) is positive.
        let lead = e
            .coeffs
            .iter()
            .find(|r| !r.is_zero())
            .copied()
            .unwrap_or(e.cst);
        if lead.is_negative() {
            for x in e.coeffs.iter_mut() {
                *x = -*x;
            }
            e.cst = -e.cst;
        }
    }
    raw_row(&Constraint {
        expr: e,
        kind: c.kind,
    })
}

/// Canonical cache key of a system (see [`CanonicalKey`]).
pub fn canonical_key(sys: &System) -> CanonicalKey {
    let mut rows: Vec<Row> = sys.constraints().iter().map(canonical_row).collect();
    rows.sort_unstable();
    rows.dedup();
    CanonicalKey {
        nvars: sys.num_vars(),
        rows,
    }
}

/// Exact-sequence key for one FM elimination: `(nvars, rows in system
/// order, eliminated column)`. Deliberately *not* sorted — the cached
/// result's row order must match what the uncached computation would
/// have produced for this input order.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) struct FmKey {
    nvars: usize,
    rows: Vec<Row>,
    j: usize,
}

pub(crate) fn fm_key(sys: &System, j: usize) -> FmKey {
    FmKey {
        nvars: sys.num_vars(),
        rows: sys.constraints().iter().map(raw_row).collect(),
        j,
    }
}

/// A hash-sharded memo map with always-on hit/miss accounting.
struct ShardedCache<K, V> {
    shards: Vec<Mutex<HashMap<K, V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + Hash, V: Clone> ShardedCache<K, V> {
    fn new() -> ShardedCache<K, V> {
        ShardedCache {
            shards: (0..NSHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, k: &K) -> &Mutex<HashMap<K, V>> {
        let mut h = DefaultHasher::new();
        k.hash(&mut h);
        &self.shards[(h.finish() as usize) % NSHARDS]
    }

    /// Poison-tolerant lock: a panic mid-insert leaves at worst a
    /// missing memo entry, never a wrong one.
    fn lock<'a>(m: &'a Mutex<HashMap<K, V>>) -> std::sync::MutexGuard<'a, HashMap<K, V>> {
        match m.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    fn lookup(&self, k: &K) -> Option<V> {
        let got = Self::lock(self.shard(k)).get(k).cloned();
        match got {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn store(&self, k: K, v: V) {
        let mut g = Self::lock(self.shard(&k));
        if g.len() >= SHARD_CAP {
            g.clear();
        }
        g.insert(k, v);
    }

    fn clear(&self) {
        for s in &self.shards {
            Self::lock(s).clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    fn counts(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// One session's worth of polyhedral memo state: the emptiness cache
/// and the FM-elimination cache, with their hit/miss accounting.
///
/// The process keeps a *current* instance that [`System::is_empty`] and
/// [`eliminate_var`](crate::eliminate_var) consult; it defaults to a
/// process-wide shared instance, and a compiler session that wants
/// explicit warm/cold ownership can [`install`] its own for the duration
/// of a search. Memoization is pure — whichever instance is current,
/// results are identical; only hit rates differ.
pub struct PolyCaches {
    empty: ShardedCache<CanonicalKey, bool>,
    fm: ShardedCache<FmKey, Vec<Constraint>>,
}

impl PolyCaches {
    /// A fresh, empty pair of memo caches.
    pub fn new() -> PolyCaches {
        PolyCaches {
            empty: ShardedCache::new(),
            fm: ShardedCache::new(),
        }
    }

    /// Hit/miss totals accumulated by *this* instance.
    pub fn stats(&self) -> CacheStats {
        let (eh, em) = self.empty.counts();
        let (fh, fm) = self.fm.counts();
        CacheStats {
            empty_hits: eh,
            empty_misses: em,
            fm_hits: fh,
            fm_misses: fm,
        }
    }

    /// Drops every memoized result and zeroes this instance's counts.
    pub fn clear(&self) {
        self.empty.clear();
        self.fm.clear();
    }
}

impl Default for PolyCaches {
    fn default() -> Self {
        PolyCaches::new()
    }
}

/// The slot the decision procedures read. An `RwLock<Arc<..>>` rather
/// than a plain static: installing is rare (once per session compile),
/// while lookups are constant — readers only clone an `Arc`.
fn current_slot() -> &'static RwLock<Arc<PolyCaches>> {
    static C: OnceLock<RwLock<Arc<PolyCaches>>> = OnceLock::new();
    C.get_or_init(|| RwLock::new(Arc::new(PolyCaches::new())))
}

fn current() -> Arc<PolyCaches> {
    match current_slot().read() {
        Ok(g) => Arc::clone(&g),
        Err(poison) => Arc::clone(&poison.into_inner()),
    }
}

/// Makes `caches` the instance the decision procedures consult and
/// returns the previously-installed one (so a scoped caller can restore
/// it). Installation is process-global: concurrent sessions that
/// interleave installs only affect each other's hit *rates*, never
/// results — the caches are pure memoization.
pub fn install(caches: Arc<PolyCaches>) -> Arc<PolyCaches> {
    let mut g = match current_slot().write() {
        Ok(g) => g,
        Err(poison) => poison.into_inner(),
    };
    std::mem::replace(&mut g, caches)
}

/// [`install`]s `caches` and restores the previous instance when
/// dropped (panic-safe — the restore runs during unwinding too).
pub struct ScopedCaches {
    prev: Option<Arc<PolyCaches>>,
}

/// Installs `caches` for the lifetime of the returned guard.
pub fn install_scoped(caches: Arc<PolyCaches>) -> ScopedCaches {
    ScopedCaches {
        prev: Some(install(caches)),
    }
}

impl Drop for ScopedCaches {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            install(prev);
        }
    }
}

pub(crate) fn empty_lookup(k: &CanonicalKey) -> Option<bool> {
    current().empty.lookup(k)
}

pub(crate) fn empty_store(k: CanonicalKey, v: bool) {
    current().empty.store(k, v);
}

pub(crate) fn fm_lookup(k: &FmKey) -> Option<Vec<Constraint>> {
    current().fm.lookup(k)
}

pub(crate) fn fm_store(k: FmKey, v: Vec<Constraint>) {
    current().fm.store(k, v);
}

/// Hit/miss totals of the polyhedral memo caches since process start
/// (or the last [`clear_caches`]). Always available — the counts do not
/// depend on the `trace` feature.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub empty_hits: u64,
    pub empty_misses: u64,
    pub fm_hits: u64,
    pub fm_misses: u64,
}

impl CacheStats {
    /// Hit fraction of the emptiness cache (0 when unused).
    pub fn empty_hit_rate(&self) -> f64 {
        let total = self.empty_hits + self.empty_misses;
        if total == 0 {
            0.0
        } else {
            self.empty_hits as f64 / total as f64
        }
    }

    /// Hit fraction of the FM-elimination cache (0 when unused).
    pub fn fm_hit_rate(&self) -> f64 {
        let total = self.fm_hits + self.fm_misses;
        if total == 0 {
            0.0
        } else {
            self.fm_hits as f64 / total as f64
        }
    }
}

/// Current hit/miss totals of the *currently installed* caches.
pub fn cache_stats() -> CacheStats {
    current().stats()
}

/// Drops every memoized result of the currently installed caches and
/// zeroes their hit/miss counts. Benchmarks call this to measure
/// cold-cache behavior; correctness never depends on it.
pub fn clear_caches() {
    current().clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinExpr;
    use bernoulli_numeric::Rational;

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    /// The caches are process-global and sibling tests in this crate run
    /// `is_empty` concurrently, so stats-sensitive tests serialize on
    /// this lock and only assert monotone (>=) properties — concurrent
    /// activity can add hits/misses but, with no other caller of
    /// `clear_caches`, never remove them.
    fn stats_lock() -> std::sync::MutexGuard<'static, ()> {
        static L: Mutex<()> = Mutex::new(());
        match L.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// 0 <= i <= 9, i <= j, built with `add` calls in the given order.
    fn box_sys(order: &[usize]) -> System {
        let mut s = System::new(names(&["i", "j"]));
        let i = LinExpr::var(2, 0);
        let j = LinExpr::var(2, 1);
        let cons = [
            Constraint::ge0(i.clone()),
            Constraint::ge0(&LinExpr::constant(2, 9) - &i),
            Constraint::ge0(&j - &i),
        ];
        for &k in order {
            s.add(cons[k].clone());
        }
        s
    }

    #[test]
    fn key_invariant_under_constraint_permutation() {
        let a = box_sys(&[0, 1, 2]);
        let b = box_sys(&[2, 0, 1]);
        let c = box_sys(&[1, 2, 0]);
        assert_eq!(a.canonical_key(), b.canonical_key());
        assert_eq!(a.canonical_key(), c.canonical_key());
    }

    #[test]
    fn key_invariant_under_scaling() {
        // 2i - 4 >= 0 normalizes to i - 2 >= 0.
        let mut a = System::new(names(&["i"]));
        let two_i = &LinExpr::var(1, 0) * Rational::int(2);
        a.add(Constraint::ge0(&two_i - &LinExpr::constant(1, 4)));
        let mut b = System::new(names(&["i"]));
        b.add(Constraint::ge0(
            &LinExpr::var(1, 0) - &LinExpr::constant(1, 2),
        ));
        assert_eq!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn key_invariant_under_equality_negation() {
        // i - j = 0 and j - i = 0 are the same constraint.
        let mut a = System::new(names(&["i", "j"]));
        a.add(Constraint::eq0(&LinExpr::var(2, 0) - &LinExpr::var(2, 1)));
        let mut b = System::new(names(&["i", "j"]));
        b.add(Constraint::eq0(&LinExpr::var(2, 1) - &LinExpr::var(2, 0)));
        assert_eq!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn key_invariant_under_variable_renaming_only() {
        let a = box_sys(&[0, 1, 2]);
        let mut b = System::new(names(&["p", "q"]));
        let p = LinExpr::var(2, 0);
        let q = LinExpr::var(2, 1);
        b.add(Constraint::ge0(p.clone()));
        b.add(Constraint::ge0(&LinExpr::constant(2, 9) - &p));
        b.add(Constraint::ge0(&q - &p));
        assert_eq!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn distinct_systems_get_distinct_keys() {
        let a = box_sys(&[0, 1, 2]);
        let mut b = box_sys(&[0, 1, 2]);
        b.add(Constraint::ge0(
            &LinExpr::constant(2, 100) - &LinExpr::var(2, 1),
        ));
        assert_ne!(a.canonical_key(), b.canonical_key());
        // A >= constraint is not the same as its equality counterpart.
        let mut c = System::new(names(&["i"]));
        c.add(Constraint::ge0(LinExpr::var(1, 0)));
        let mut d = System::new(names(&["i"]));
        d.add(Constraint::eq0(LinExpr::var(1, 0)));
        assert_ne!(c.canonical_key(), d.canonical_key());
    }

    #[test]
    fn memoized_emptiness_matches_fresh_and_counts_hits() {
        let _g = stats_lock();
        let mut nonempty = box_sys(&[0, 1, 2]);
        assert!(!nonempty.is_empty());
        let base = cache_stats();
        // Same constraints, different insertion order and names: the
        // second query must hit the entry the first one populated.
        let mut renamed = System::new(names(&["a", "b"]));
        let a = LinExpr::var(2, 0);
        let b = LinExpr::var(2, 1);
        renamed.add(Constraint::ge0(&b - &a));
        renamed.add(Constraint::ge0(a.clone()));
        renamed.add(Constraint::ge0(&LinExpr::constant(2, 9) - &a));
        assert!(!renamed.is_empty());
        let after = cache_stats();
        assert!(after.empty_hits > base.empty_hits, "{base:?} -> {after:?}");

        // A genuinely different (empty) system misses, then hits, and the
        // memoized verdict matches the fresh one.
        nonempty.add(Constraint::ge0(
            &LinExpr::var(2, 0) - &LinExpr::constant(2, 50),
        ));
        assert!(nonempty.is_empty());
        assert!(nonempty.is_empty());
        let fin = cache_stats();
        assert!(
            fin.empty_misses > after.empty_misses,
            "{after:?} -> {fin:?}"
        );
        assert!(fin.empty_hits > after.empty_hits, "{after:?} -> {fin:?}");
        assert!(fin.empty_hit_rate() > 0.0);
    }

    #[test]
    fn clear_resets_stats() {
        let _g = stats_lock();
        let s = box_sys(&[0, 1, 2]);
        assert!(!s.is_empty());
        assert!(!s.is_empty());
        clear_caches();
        // Rebuilding from zero: the identical query misses again.
        let before = cache_stats();
        assert!(!s.is_empty());
        let after = cache_stats();
        assert!(after.empty_misses > before.empty_misses);
    }

    #[test]
    fn scoped_install_isolates_stats_and_restores() {
        let _g = stats_lock();
        let s = box_sys(&[0, 1, 2]);
        assert!(!s.is_empty()); // warm the default instance
        let mine = Arc::new(PolyCaches::new());
        {
            let _scope = install_scoped(Arc::clone(&mine));
            // Fresh instance: the identical query misses (cold), then hits.
            assert!(!s.is_empty());
            assert!(!s.is_empty());
            let st = mine.stats();
            assert!(st.empty_misses >= 1, "{st:?}");
            assert!(st.empty_hits >= 1, "{st:?}");
            // The process-wide view reports the installed instance
            // (monotone — sibling tests may be querying concurrently).
            let global = cache_stats();
            assert!(global.empty_hits >= st.empty_hits);
            assert!(global.empty_misses >= st.empty_misses);
        }
        // Guard dropped: queries accrue to the default instance again
        // (monotone assert — sibling tests may also be querying).
        let before = cache_stats();
        assert!(!s.is_empty());
        let after = cache_stats();
        assert!(
            after.empty_hits + after.empty_misses > before.empty_hits + before.empty_misses,
            "{before:?} -> {after:?}"
        );
    }

    #[test]
    fn fm_cache_returns_byte_identical_systems() {
        let _g = stats_lock();
        let s = box_sys(&[0, 1, 2]);
        let cold = crate::eliminate_var(&s, 0);
        let base = cache_stats();
        let warm = crate::eliminate_var(&s, 0);
        assert_eq!(cold, warm);
        assert_eq!(cold.vars(), warm.vars());
        let stats = cache_stats();
        assert!(
            stats.fm_hits > base.fm_hits,
            "second elimination must hit: {base:?} -> {stats:?}"
        );
        assert!(stats.fm_hit_rate() > 0.0);
    }
}
