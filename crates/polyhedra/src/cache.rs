//! Memoization of the polyhedral decision procedures (S34).
//!
//! The synthesizer re-runs Fourier–Motzkin eliminations and emptiness /
//! implication tests on *structurally identical* constraint systems for
//! every (configuration, order, embedding) triple it examines — 37
//! triples for TS-on-JAD alone — and again for every repeated synthesis
//! request. This module gives [`System::is_empty`] and
//! [`eliminate_var`](crate::eliminate_var) a process-wide, sharded memo
//! cache:
//!
//! - **Emptiness** is keyed by the [`CanonicalKey`] of the system —
//!   constraints gcd-normalized to primitive integer rows,
//!   sign-canonicalized equalities, sorted — so the cached answer is
//!   shared across constraint insertion orders, positive scalings and
//!   variable *renamings* (the key stores coefficients, not names).
//!   [`System::implies`] is memoized through the same cache, since it
//!   decides `self ∧ ¬c` emptiness.
//! - **FM elimination** is keyed by the exact constraint sequence plus
//!   the eliminated column, because the *order* of the resulting rows
//!   must be byte-identical to an uncached run (downstream guard
//!   simplification walks them in order). The cached value is the row
//!   set of the projected system; variable names are re-attached from
//!   the caller's system, so structurally identical systems over
//!   different index names still share one entry.
//!
//! Both caches are sharded 16 ways to keep the parallel search's
//! threads off each other's locks, capped per shard (a full shard is
//! simply cleared — memoization is an optimization, never a correctness
//! dependency), and instrumented twice over: `counter!` series
//! (`polyhedra.cache.{empty,fm}_{hits,misses}`) for trace builds, and
//! always-on atomics surfaced through [`cache_stats`] so the benchmark
//! harness can report hit rates without the `trace` feature.
//!
//! ## Cache tiers (S38)
//!
//! The caches are organized for a *multi-tenant* compile service:
//!
//! - By default every thread reads and writes one process-wide
//!   [`shared_tier`], so concurrent compiles of structurally similar
//!   programs amortize each other's polyhedral work.
//! - A compile that wants isolation installs its own [`PolyCaches`] on
//!   its thread — fully isolated ([`install_scoped`]) or as a tiered
//!   overlay over the shared tier ([`install_overlay_scoped`]).
//!   Installation is **thread-local**; concurrent compiles on other
//!   threads are unaffected. Pool fan-out captures the submitting
//!   thread's view with [`cache_context`] and re-installs it inside
//!   each job with [`install_context_scoped`].
//! - [`cache_stats`] / [`clear_caches`] act on the current thread's
//!   view; snapshots and clears are coherent against concurrent
//!   compiles (no lookup is ever half-counted or split across a clear).

use crate::system::{Constraint, ConstraintKind, System};
use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

const NSHARDS: usize = 16;
/// Per-shard entry cap; a shard that fills up is cleared wholesale.
/// 16 shards × 4096 entries bounds each cache to ~64k systems.
const SHARD_CAP: usize = 4096;

/// One constraint as a hashable integer row:
/// `(kind, [(numer, denom); nvars], (cst numer, cst denom))`.
type Row = (u8, Vec<(i128, i128)>, (i128, i128));

/// Canonical, name-free form of a [`System`] — the emptiness cache key.
///
/// Two systems get equal keys iff they have the same variable count and
/// the same *set* of gcd-normalized constraints, regardless of the
/// order constraints were added in, of positive per-constraint scaling
/// (and sign for equalities), and of what the variables are called.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CanonicalKey {
    nvars: usize,
    rows: Vec<Row>,
}

fn raw_row(c: &Constraint) -> Row {
    let kind = match c.kind {
        ConstraintKind::Ge => 0u8,
        ConstraintKind::Eq => 1u8,
    };
    let coeffs = c
        .expr
        .coeffs
        .iter()
        .map(|r| (r.numer(), r.denom()))
        .collect();
    (kind, coeffs, (c.expr.cst.numer(), c.expr.cst.denom()))
}

fn canonical_row(c: &Constraint) -> Row {
    // `System::add` already normalizes rows to primitive integers, but
    // canonicalize defensively so keys never depend on how a system was
    // assembled.
    let mut e = c.expr.clone();
    e.normalize_primitive();
    if c.kind == ConstraintKind::Eq {
        // An equality is invariant under negation; fix the sign so the
        // first nonzero coefficient (or the constant) is positive.
        let lead = e
            .coeffs
            .iter()
            .find(|r| !r.is_zero())
            .copied()
            .unwrap_or(e.cst);
        if lead.is_negative() {
            for x in e.coeffs.iter_mut() {
                *x = -*x;
            }
            e.cst = -e.cst;
        }
    }
    raw_row(&Constraint {
        expr: e,
        kind: c.kind,
    })
}

/// Canonical cache key of a system (see [`CanonicalKey`]).
pub fn canonical_key(sys: &System) -> CanonicalKey {
    let mut rows: Vec<Row> = sys.constraints().iter().map(canonical_row).collect();
    rows.sort_unstable();
    rows.dedup();
    CanonicalKey {
        nvars: sys.num_vars(),
        rows,
    }
}

/// Exact-sequence key for one FM elimination: `(nvars, rows in system
/// order, eliminated column)`. Deliberately *not* sorted — the cached
/// result's row order must match what the uncached computation would
/// have produced for this input order.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) struct FmKey {
    nvars: usize,
    rows: Vec<Row>,
    j: usize,
}

pub(crate) fn fm_key(sys: &System, j: usize) -> FmKey {
    FmKey {
        nvars: sys.num_vars(),
        rows: sys.constraints().iter().map(raw_row).collect(),
        j,
    }
}

/// A hash-sharded memo map with always-on hit/miss accounting.
///
/// Coherence: every lookup/store holds the `gate` read lock for its
/// full duration (map operation *and* counter update), while `stats`
/// and `clear` take the write lock. A stats snapshot or a clear
/// therefore observes a quiescent point: no lookup is ever half-counted
/// (map consulted but counter not yet bumped, or vice versa), and a
/// clear returns counts that exactly cover the lookups completed before
/// it — lookups that start afterwards accrue to the fresh epoch. The
/// read lock is uncontended in steady state (one atomic op), so the hot
/// path stays cheap.
struct ShardedCache<K, V> {
    gate: RwLock<()>,
    shards: Vec<Mutex<HashMap<K, V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + Hash, V: Clone> ShardedCache<K, V> {
    fn new() -> ShardedCache<K, V> {
        ShardedCache {
            gate: RwLock::new(()),
            shards: (0..NSHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, k: &K) -> &Mutex<HashMap<K, V>> {
        let mut h = DefaultHasher::new();
        k.hash(&mut h);
        &self.shards[(h.finish() as usize) % NSHARDS]
    }

    /// Poison-tolerant lock: a panic mid-insert leaves at worst a
    /// missing memo entry, never a wrong one.
    fn lock<'a>(m: &'a Mutex<HashMap<K, V>>) -> std::sync::MutexGuard<'a, HashMap<K, V>> {
        match m.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    fn read_gate(&self) -> std::sync::RwLockReadGuard<'_, ()> {
        match self.gate.read() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    fn write_gate(&self) -> std::sync::RwLockWriteGuard<'_, ()> {
        match self.gate.write() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    fn lookup(&self, k: &K) -> Option<V> {
        let _coherent = self.read_gate();
        let got = Self::lock(self.shard(k)).get(k).cloned();
        match got {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn store(&self, k: K, v: V) {
        let _coherent = self.read_gate();
        let mut g = Self::lock(self.shard(&k));
        if g.len() >= SHARD_CAP {
            g.clear();
        }
        g.insert(k, v);
    }

    /// Drops every entry, zeroes the counters, and returns the counts
    /// that were accumulated up to this coherent point.
    fn clear(&self) -> (u64, u64) {
        let _coherent = self.write_gate();
        for s in &self.shards {
            Self::lock(s).clear();
        }
        (
            self.hits.swap(0, Ordering::Relaxed),
            self.misses.swap(0, Ordering::Relaxed),
        )
    }

    fn counts(&self) -> (u64, u64) {
        let _coherent = self.write_gate();
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// One compile's (or the whole process's) worth of polyhedral memo
/// state: the emptiness cache and the FM-elimination cache, with their
/// hit/miss accounting.
///
/// The decision procedures consult a two-tier arrangement:
///
/// - a **process-wide shared tier** ([`shared_tier`]) that every thread
///   reads and writes by default — this is what lets a multi-tenant
///   compile service amortize polyhedral work across structurally
///   similar requests, and
/// - an optional **per-thread installed instance**: fully isolated
///   ([`install_scoped`], the historical per-session behavior) or a
///   tiered *overlay* ([`install_overlay_scoped`]) whose misses fall
///   through to the shared tier and whose stores write through to both.
///
/// Memoization is pure — whichever instances are consulted, results are
/// identical; only hit rates differ.
pub struct PolyCaches {
    empty: ShardedCache<CanonicalKey, bool>,
    fm: ShardedCache<FmKey, Vec<Constraint>>,
}

impl PolyCaches {
    /// A fresh, empty pair of memo caches.
    pub fn new() -> PolyCaches {
        PolyCaches {
            empty: ShardedCache::new(),
            fm: ShardedCache::new(),
        }
    }

    /// Hit/miss totals accumulated by *this* instance. Each cache's
    /// (hits, misses) pair is snapshotted at a coherent point — no
    /// in-flight lookup is half-counted — though the emptiness and FM
    /// pairs are two separate snapshots.
    pub fn stats(&self) -> CacheStats {
        let (eh, em) = self.empty.counts();
        let (fh, fm) = self.fm.counts();
        CacheStats {
            empty_hits: eh,
            empty_misses: em,
            fm_hits: fh,
            fm_misses: fm,
        }
    }

    /// Drops every memoized result, zeroes this instance's counts, and
    /// returns the counts accumulated up to the clear. Lookups racing
    /// with the clear are attributed to exactly one side: the returned
    /// snapshot or the fresh epoch, never both, never neither.
    pub fn clear(&self) -> CacheStats {
        let (eh, em) = self.empty.clear();
        let (fh, fm) = self.fm.clear();
        CacheStats {
            empty_hits: eh,
            empty_misses: em,
            fm_hits: fh,
            fm_misses: fm,
        }
    }
}

impl Default for PolyCaches {
    fn default() -> Self {
        PolyCaches::new()
    }
}

/// The process-wide shared cache tier: what every thread consults when
/// nothing is installed, and the fall-through/write-through target of
/// tiered overlays. Concurrently readable by design — lookups take one
/// shard mutex plus an uncontended read gate.
pub fn shared_tier() -> &'static Arc<PolyCaches> {
    static TIER: OnceLock<Arc<PolyCaches>> = OnceLock::new();
    TIER.get_or_init(|| Arc::new(PolyCaches::new()))
}

/// What the current thread has installed, if anything.
#[derive(Clone)]
enum Installed {
    /// All lookups and stores go to this instance only.
    Isolated(Arc<PolyCaches>),
    /// Overlay-first lookup falling through to the shared tier;
    /// stores write through to both.
    Tiered(Arc<PolyCaches>),
}

thread_local! {
    static CURRENT: RefCell<Option<Installed>> = const { RefCell::new(None) };
}

/// A capture of the current thread's cache installation, for handing
/// the same view to pool worker threads: the search layer snapshots a
/// [`cache_context`] before fanning out and re-installs it (via
/// [`install_context_scoped`]) inside every job, so workers attribute
/// their polyhedral work to the submitting compile's caches.
#[derive(Clone)]
pub struct CacheContext {
    installed: Option<Installed>,
}

/// Snapshot the current thread's installation (possibly "nothing
/// installed", meaning the shared tier).
pub fn cache_context() -> CacheContext {
    CacheContext {
        installed: CURRENT.with(|slot| slot.borrow().clone()),
    }
}

/// Guard restoring the current thread's previous installation on drop
/// (panic-safe — the restore runs during unwinding too).
pub struct ScopedCaches {
    prev: Option<Installed>,
}

impl Drop for ScopedCaches {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|slot| *slot.borrow_mut() = prev);
    }
}

fn install_mode(mode: Option<Installed>) -> ScopedCaches {
    ScopedCaches {
        prev: CURRENT.with(|slot| std::mem::replace(&mut *slot.borrow_mut(), mode)),
    }
}

/// Installs `caches` as the current thread's *isolated* instance for
/// the lifetime of the returned guard: every lookup and store on this
/// thread goes to `caches` alone, never the shared tier. This is the
/// historical per-session scoping, kept for cold-cache measurement and
/// tenant isolation.
pub fn install_scoped(caches: Arc<PolyCaches>) -> ScopedCaches {
    install_mode(Some(Installed::Isolated(caches)))
}

/// Installs `overlay` as a *tiered* overlay for the lifetime of the
/// returned guard: lookups try the overlay first and fall through to
/// the process-wide shared tier (back-filling the overlay on a tier
/// hit); stores write through to both. A compile gets the isolation of
/// its own stats/ownership while still profiting from — and feeding —
/// the shared tier.
pub fn install_overlay_scoped(overlay: Arc<PolyCaches>) -> ScopedCaches {
    install_mode(Some(Installed::Tiered(overlay)))
}

/// Re-installs a captured [`CacheContext`] on the current thread for
/// the lifetime of the returned guard (see [`cache_context`]).
pub fn install_context_scoped(ctx: &CacheContext) -> ScopedCaches {
    install_mode(ctx.installed.clone())
}

pub(crate) fn empty_lookup(k: &CanonicalKey) -> Option<bool> {
    CURRENT.with(|slot| match &*slot.borrow() {
        None => shared_tier().empty.lookup(k),
        Some(Installed::Isolated(c)) => c.empty.lookup(k),
        Some(Installed::Tiered(o)) => match o.empty.lookup(k) {
            Some(v) => Some(v),
            None => {
                let v = shared_tier().empty.lookup(k)?;
                o.empty.store(k.clone(), v);
                Some(v)
            }
        },
    })
}

pub(crate) fn empty_store(k: CanonicalKey, v: bool) {
    CURRENT.with(|slot| match &*slot.borrow() {
        None => shared_tier().empty.store(k, v),
        Some(Installed::Isolated(c)) => c.empty.store(k, v),
        Some(Installed::Tiered(o)) => {
            o.empty.store(k.clone(), v);
            shared_tier().empty.store(k, v);
        }
    });
}

pub(crate) fn fm_lookup(k: &FmKey) -> Option<Vec<Constraint>> {
    CURRENT.with(|slot| match &*slot.borrow() {
        None => shared_tier().fm.lookup(k),
        Some(Installed::Isolated(c)) => c.fm.lookup(k),
        Some(Installed::Tiered(o)) => match o.fm.lookup(k) {
            Some(v) => Some(v),
            None => {
                let v = shared_tier().fm.lookup(k)?;
                o.fm.store(k.clone(), v.clone());
                Some(v)
            }
        },
    })
}

pub(crate) fn fm_store(k: FmKey, v: Vec<Constraint>) {
    CURRENT.with(|slot| match &*slot.borrow() {
        None => shared_tier().fm.store(k, v),
        Some(Installed::Isolated(c)) => c.fm.store(k, v),
        Some(Installed::Tiered(o)) => {
            o.fm.store(k.clone(), v.clone());
            shared_tier().fm.store(k, v);
        }
    });
}

/// Hit/miss totals of the polyhedral memo caches since process start
/// (or the last [`clear_caches`]). Always available — the counts do not
/// depend on the `trace` feature.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub empty_hits: u64,
    pub empty_misses: u64,
    pub fm_hits: u64,
    pub fm_misses: u64,
}

impl CacheStats {
    /// Hit fraction of the emptiness cache (0 when unused).
    pub fn empty_hit_rate(&self) -> f64 {
        let total = self.empty_hits + self.empty_misses;
        if total == 0 {
            0.0
        } else {
            self.empty_hits as f64 / total as f64
        }
    }

    /// Hit fraction of the FM-elimination cache (0 when unused).
    pub fn fm_hit_rate(&self) -> f64 {
        let total = self.fm_hits + self.fm_misses;
        if total == 0 {
            0.0
        } else {
            self.fm_hits as f64 / total as f64
        }
    }
}

/// Hit/miss totals of the caches the *current thread* is using: its
/// installed instance (isolated) or overlay (tiered) if one is
/// installed, otherwise the process-wide shared tier. Snapshots are
/// coherent per cache — a concurrent clear or compile on another thread
/// never yields a half-counted lookup (see the per-shard gating) —
/// but note that with no installation this reads the shared tier, which
/// other threads may be feeding concurrently.
pub fn cache_stats() -> CacheStats {
    CURRENT.with(|slot| match &*slot.borrow() {
        None => shared_tier().stats(),
        Some(Installed::Isolated(c)) | Some(Installed::Tiered(c)) => c.stats(),
    })
}

/// Drops every memoized result of the caches the current thread is
/// using (same resolution as [`cache_stats`]) and zeroes their hit/miss
/// counts, returning the counts accumulated up to the clear. Safe while
/// other threads compile: each racing lookup lands entirely before the
/// clear (counted in the returned snapshot, possibly served from the
/// dropped entries) or entirely after (counted in the fresh epoch) —
/// never split. Benchmarks call this to measure cold-cache behavior;
/// correctness never depends on it.
pub fn clear_caches() -> CacheStats {
    CURRENT.with(|slot| match &*slot.borrow() {
        None => shared_tier().clear(),
        Some(Installed::Isolated(c)) | Some(Installed::Tiered(c)) => c.clear(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinExpr;
    use bernoulli_numeric::Rational;

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    /// The shared tier is process-global and sibling tests in this crate
    /// run `is_empty` concurrently, so stats-sensitive tests serialize on
    /// this lock and only assert monotone (>=) properties — concurrent
    /// activity can add hits/misses but, with no other caller of
    /// `clear_caches`, never remove them. (Tests that install their own
    /// instance are immune: installation is thread-local.)
    fn stats_lock() -> std::sync::MutexGuard<'static, ()> {
        static L: Mutex<()> = Mutex::new(());
        match L.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// 0 <= i <= 9, i <= j, built with `add` calls in the given order.
    fn box_sys(order: &[usize]) -> System {
        let mut s = System::new(names(&["i", "j"]));
        let i = LinExpr::var(2, 0);
        let j = LinExpr::var(2, 1);
        let cons = [
            Constraint::ge0(i.clone()),
            Constraint::ge0(&LinExpr::constant(2, 9) - &i),
            Constraint::ge0(&j - &i),
        ];
        for &k in order {
            s.add(cons[k].clone());
        }
        s
    }

    #[test]
    fn key_invariant_under_constraint_permutation() {
        let a = box_sys(&[0, 1, 2]);
        let b = box_sys(&[2, 0, 1]);
        let c = box_sys(&[1, 2, 0]);
        assert_eq!(a.canonical_key(), b.canonical_key());
        assert_eq!(a.canonical_key(), c.canonical_key());
    }

    #[test]
    fn key_invariant_under_scaling() {
        // 2i - 4 >= 0 normalizes to i - 2 >= 0.
        let mut a = System::new(names(&["i"]));
        let two_i = &LinExpr::var(1, 0) * Rational::int(2);
        a.add(Constraint::ge0(&two_i - &LinExpr::constant(1, 4)));
        let mut b = System::new(names(&["i"]));
        b.add(Constraint::ge0(
            &LinExpr::var(1, 0) - &LinExpr::constant(1, 2),
        ));
        assert_eq!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn key_invariant_under_equality_negation() {
        // i - j = 0 and j - i = 0 are the same constraint.
        let mut a = System::new(names(&["i", "j"]));
        a.add(Constraint::eq0(&LinExpr::var(2, 0) - &LinExpr::var(2, 1)));
        let mut b = System::new(names(&["i", "j"]));
        b.add(Constraint::eq0(&LinExpr::var(2, 1) - &LinExpr::var(2, 0)));
        assert_eq!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn key_invariant_under_variable_renaming_only() {
        let a = box_sys(&[0, 1, 2]);
        let mut b = System::new(names(&["p", "q"]));
        let p = LinExpr::var(2, 0);
        let q = LinExpr::var(2, 1);
        b.add(Constraint::ge0(p.clone()));
        b.add(Constraint::ge0(&LinExpr::constant(2, 9) - &p));
        b.add(Constraint::ge0(&q - &p));
        assert_eq!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn distinct_systems_get_distinct_keys() {
        let a = box_sys(&[0, 1, 2]);
        let mut b = box_sys(&[0, 1, 2]);
        b.add(Constraint::ge0(
            &LinExpr::constant(2, 100) - &LinExpr::var(2, 1),
        ));
        assert_ne!(a.canonical_key(), b.canonical_key());
        // A >= constraint is not the same as its equality counterpart.
        let mut c = System::new(names(&["i"]));
        c.add(Constraint::ge0(LinExpr::var(1, 0)));
        let mut d = System::new(names(&["i"]));
        d.add(Constraint::eq0(LinExpr::var(1, 0)));
        assert_ne!(c.canonical_key(), d.canonical_key());
    }

    #[test]
    fn memoized_emptiness_matches_fresh_and_counts_hits() {
        let _g = stats_lock();
        let mut nonempty = box_sys(&[0, 1, 2]);
        assert!(!nonempty.is_empty());
        let base = cache_stats();
        // Same constraints, different insertion order and names: the
        // second query must hit the entry the first one populated.
        let mut renamed = System::new(names(&["a", "b"]));
        let a = LinExpr::var(2, 0);
        let b = LinExpr::var(2, 1);
        renamed.add(Constraint::ge0(&b - &a));
        renamed.add(Constraint::ge0(a.clone()));
        renamed.add(Constraint::ge0(&LinExpr::constant(2, 9) - &a));
        assert!(!renamed.is_empty());
        let after = cache_stats();
        assert!(after.empty_hits > base.empty_hits, "{base:?} -> {after:?}");

        // A genuinely different (empty) system misses, then hits, and the
        // memoized verdict matches the fresh one.
        nonempty.add(Constraint::ge0(
            &LinExpr::var(2, 0) - &LinExpr::constant(2, 50),
        ));
        assert!(nonempty.is_empty());
        assert!(nonempty.is_empty());
        let fin = cache_stats();
        assert!(
            fin.empty_misses > after.empty_misses,
            "{after:?} -> {fin:?}"
        );
        assert!(fin.empty_hits > after.empty_hits, "{after:?} -> {fin:?}");
        assert!(fin.empty_hit_rate() > 0.0);
    }

    #[test]
    fn clear_resets_stats() {
        let _g = stats_lock();
        let s = box_sys(&[0, 1, 2]);
        assert!(!s.is_empty());
        assert!(!s.is_empty());
        clear_caches();
        // Rebuilding from zero: the identical query misses again.
        let before = cache_stats();
        assert!(!s.is_empty());
        let after = cache_stats();
        assert!(after.empty_misses > before.empty_misses);
    }

    #[test]
    fn scoped_install_isolates_stats_and_restores() {
        let _g = stats_lock();
        let s = box_sys(&[0, 1, 2]);
        assert!(!s.is_empty()); // warm the default instance
        let mine = Arc::new(PolyCaches::new());
        {
            let _scope = install_scoped(Arc::clone(&mine));
            // Fresh instance: the identical query misses (cold), then hits.
            assert!(!s.is_empty());
            assert!(!s.is_empty());
            let st = mine.stats();
            assert!(st.empty_misses >= 1, "{st:?}");
            assert!(st.empty_hits >= 1, "{st:?}");
            // The process-wide view reports the installed instance
            // (monotone — sibling tests may be querying concurrently).
            let global = cache_stats();
            assert!(global.empty_hits >= st.empty_hits);
            assert!(global.empty_misses >= st.empty_misses);
        }
        // Guard dropped: queries accrue to the default instance again
        // (monotone assert — sibling tests may also be querying).
        let before = cache_stats();
        assert!(!s.is_empty());
        let after = cache_stats();
        assert!(
            after.empty_hits + after.empty_misses > before.empty_hits + before.empty_misses,
            "{before:?} -> {after:?}"
        );
    }

    #[test]
    fn installs_are_thread_local() {
        let mine = Arc::new(PolyCaches::new());
        let _scope = install_scoped(Arc::clone(&mine));
        let s = box_sys(&[0, 1, 2]);
        assert!(!s.is_empty());
        let st = mine.stats();
        assert!(st.empty_hits + st.empty_misses >= 1);
        // Another thread sees no installation: its queries go to the
        // shared tier, not to `mine`.
        let before = mine.stats();
        let other = std::thread::spawn(move || {
            let s = box_sys(&[2, 0, 1]);
            assert!(!s.is_empty());
        });
        assert!(other.join().is_ok(), "helper thread failed");
        assert_eq!(mine.stats(), before, "other thread must not touch mine");
    }

    #[test]
    fn overlay_falls_through_to_shared_tier_and_backfills() {
        let _g = stats_lock();
        // Warm the shared tier with this system's emptiness verdict.
        let s = box_sys(&[0, 1, 2]);
        assert!(!s.is_empty());

        let overlay = Arc::new(PolyCaches::new());
        let _scope = install_overlay_scoped(Arc::clone(&overlay));
        let tier_before = shared_tier().stats();
        // Cold overlay: the lookup misses the overlay, falls through to
        // the warm tier, and back-fills the overlay.
        assert!(!s.is_empty());
        let st = overlay.stats();
        assert!(st.empty_misses >= 1, "{st:?}");
        let tier_after = shared_tier().stats();
        assert!(
            tier_after.empty_hits > tier_before.empty_hits,
            "fall-through must hit the tier: {tier_before:?} -> {tier_after:?}"
        );
        // Back-filled: the identical query now hits the overlay.
        assert!(!s.is_empty());
        let st2 = overlay.stats();
        assert!(st2.empty_hits > st.empty_hits, "{st:?} -> {st2:?}");
    }

    #[test]
    fn overlay_stores_write_through_to_shared_tier() {
        let _g = stats_lock();
        // A system unique to this test (distinctive constant) so the
        // tier cannot already hold its verdict.
        let mut s = System::new(names(&["i"]));
        s.add(Constraint::ge0(
            &LinExpr::var(1, 0) - &LinExpr::constant(1, 7717),
        ));
        let overlay = Arc::new(PolyCaches::new());
        {
            let _scope = install_overlay_scoped(Arc::clone(&overlay));
            assert!(!s.is_empty()); // decides + stores through to both
        }
        // Overlay gone: the verdict must have reached the shared tier.
        let tier_before = shared_tier().stats();
        assert!(!s.is_empty());
        let tier_after = shared_tier().stats();
        assert!(
            tier_after.empty_hits > tier_before.empty_hits,
            "write-through entry must serve the tier: {tier_before:?} -> {tier_after:?}"
        );
    }

    #[test]
    fn clear_returns_dropped_counts() {
        let caches = Arc::new(PolyCaches::new());
        let _scope = install_scoped(Arc::clone(&caches));
        let s = box_sys(&[0, 1, 2]);
        assert!(!s.is_empty()); // miss + store
        assert!(!s.is_empty()); // hit
        let dropped = clear_caches();
        assert!(dropped.empty_hits >= 1, "{dropped:?}");
        assert!(dropped.empty_misses >= 1, "{dropped:?}");
        let now = caches.stats();
        assert_eq!(now, CacheStats::default(), "{now:?}");
    }

    /// The satellite fix: stats snapshots and clears taken while other
    /// threads compile must be coherent. Worker threads hammer one
    /// instance with lookups/stores while the main thread repeatedly
    /// clears it; every completed lookup must be accounted exactly once
    /// — in some clear's returned snapshot or in the final stats.
    #[test]
    fn clear_and_stats_are_coherent_under_concurrent_lookups() {
        use std::sync::atomic::AtomicBool;
        const THREADS: usize = 4;
        const ITERS: usize = 3_000;

        let caches = Arc::new(PolyCaches::new());
        let stop = Arc::new(AtomicBool::new(false));
        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                let caches = Arc::clone(&caches);
                std::thread::spawn(move || {
                    let _scope = install_scoped(Arc::clone(&caches));
                    for i in 0..ITERS {
                        let key = CanonicalKey {
                            nvars: 1,
                            rows: vec![(0, vec![(1, 1)], ((t * ITERS + i % 64) as i128, 1))],
                        };
                        empty_store(key.clone(), true);
                        let _ = empty_lookup(&key);
                    }
                    ITERS as u64 // completed lookups on this thread
                })
            })
            .collect();

        // Concurrently clear while the workers run, accumulating the
        // returned snapshots.
        let mut accounted = 0u64;
        while !stop.load(Ordering::Relaxed) {
            let dropped = caches.clear();
            accounted += dropped.empty_hits + dropped.empty_misses;
            if workers.iter().all(|w| w.is_finished()) {
                stop.store(true, Ordering::Relaxed);
            }
            std::thread::yield_now();
        }
        let performed: u64 = workers
            .into_iter()
            .map(|w| w.join().unwrap_or_else(|_| unreachable!("worker panicked")))
            .sum();
        let fin = caches.stats();
        accounted += fin.empty_hits + fin.empty_misses;
        assert_eq!(
            accounted, performed,
            "every lookup must be counted exactly once across clears"
        );
    }

    #[test]
    fn fm_cache_returns_byte_identical_systems() {
        let _g = stats_lock();
        let s = box_sys(&[0, 1, 2]);
        let cold = crate::eliminate_var(&s, 0);
        let base = cache_stats();
        let warm = crate::eliminate_var(&s, 0);
        assert_eq!(cold, warm);
        assert_eq!(cold.vars(), warm.vars());
        let stats = cache_stats();
        assert!(
            stats.fm_hits > base.fm_hits,
            "second elimination must hit: {base:?} -> {stats:?}"
        );
        assert!(stats.fm_hit_rate() > 0.0);
    }
}
