//! Farkas' lemma: characterizing affine functions non-negative over a
//! polyhedron.
//!
//! The affine form of Farkas' lemma states: an affine function
//! `ψ(x) = c·x + d` is non-negative at every point of a non-empty
//! polyhedron `P = { x : aᵢ·x + bᵢ ≥ 0, i = 1..m }` **iff** there exist
//! multipliers `λ₀, λᵢ ≥ 0` with
//!
//! ```text
//!   ψ(x) ≡ λ₀ + Σᵢ λᵢ (aᵢ·x + bᵢ)      (identically in x)
//! ```
//!
//! The paper (§3.1, problem 2, following Feautrier) uses this to compute
//! the set of all legal embedding functions: the per-dimension differences
//! `F_d(i_d) − F_s(i_s)` have coefficients that are affine in the unknown
//! embedding parameters `u`, and requiring them non-negative over a
//! dependence polyhedron becomes — after matching coefficients of each `x`
//! and eliminating the `λ`s with Fourier–Motzkin — a plain linear system
//! over `u`.

use crate::{Constraint, ConstraintKind, LinExpr, System};
use bernoulli_numeric::Rational;

/// Computes the conditions on unknowns `u` under which the symbolic affine
/// function
///
/// ```text
///   ψ(x) = Σⱼ coeff_in_u[j](u) · xⱼ  +  cst_in_u(u)
/// ```
///
/// is non-negative at every point of the polyhedron `p` (over variables
/// `x`). The result is a [`System`] over the `u` variables.
///
/// `coeff_in_u` must have one entry per variable of `p`; each entry and
/// `cst_in_u` are affine expressions over a common `u` variable list
/// (`u_names`).
///
/// Equalities of `p` are handled by splitting into two inequalities, which
/// corresponds to an unconstrained-sign multiplier.
///
/// If the installed compute budget runs out during multiplier
/// elimination this degrades **conservatively**, returning a
/// contradictory system over `u` (no embedding accepted — the caller
/// rejects the candidate rather than accepting an unproven one); use
/// [`try_farkas_nonneg_conditions`] to observe the exhaustion as a
/// typed error instead.
pub fn farkas_nonneg_conditions(
    p: &System,
    coeff_in_u: &[LinExpr],
    cst_in_u: &LinExpr,
    u_names: &[String],
) -> System {
    try_farkas_nonneg_conditions(p, coeff_in_u, cst_in_u, u_names).unwrap_or_else(|_| {
        // Conservative: a single false row over u — empty condition set.
        let mut none = System::new(u_names.to_vec());
        none.add(Constraint::ge0(LinExpr::constant(u_names.len(), -1)));
        none
    })
}

/// [`farkas_nonneg_conditions`] with budget exhaustion reported as
/// [`PolyError`](crate::PolyError) instead of the conservative
/// contradiction fallback.
pub fn try_farkas_nonneg_conditions(
    p: &System,
    coeff_in_u: &[LinExpr],
    cst_in_u: &LinExpr,
    u_names: &[String],
) -> Result<System, crate::PolyError> {
    bernoulli_trace::counter!("polyhedra.farkas_calls");
    bernoulli_trace::span!("polyhedra.farkas");
    bernoulli_govern::faults::hit("polyhedra.farkas");
    let nx = p.num_vars();
    assert_eq!(coeff_in_u.len(), nx, "one ψ coefficient per x variable");
    let nu = u_names.len();
    for e in coeff_in_u.iter().chain(std::iter::once(cst_in_u)) {
        assert_eq!(e.num_vars(), nu, "ψ coefficients must range over u");
    }

    // Split equalities into pairs of inequalities so every multiplier is
    // sign-constrained.
    let mut rows: Vec<LinExpr> = Vec::new();
    for c in p.constraints() {
        match c.kind {
            ConstraintKind::Ge => rows.push(c.expr.clone()),
            ConstraintKind::Eq => {
                rows.push(c.expr.clone());
                rows.push(-&c.expr);
            }
        }
    }
    let m = rows.len();

    // Combined variable space: [u_0..u_{nu-1}, λ_0, λ_1..λ_m].
    let mut vars: Vec<String> = u_names.to_vec();
    vars.push("lam0".to_string());
    for i in 0..m {
        vars.push(format!("lam{}", i + 1));
    }
    let total = nu + 1 + m;
    let mut sys = System::new(vars);

    let lam0 = nu;
    let lam = |i: usize| nu + 1 + i;

    // λ ≥ 0.
    sys.add(Constraint::ge0(LinExpr::var(total, lam0)));
    for i in 0..m {
        sys.add(Constraint::ge0(LinExpr::var(total, lam(i))));
    }

    // Coefficient matching per x variable: coeff_in_u[j](u) = Σᵢ λᵢ aᵢⱼ.
    for j in 0..nx {
        let mut e = coeff_in_u[j].widened(total);
        for (i, row) in rows.iter().enumerate() {
            let a = row.coeffs[j];
            if !a.is_zero() {
                e.add_scaled(&LinExpr::var(total, lam(i)), -a);
            }
        }
        sys.add(Constraint::eq0(e));
    }
    // Constant matching: cst_in_u(u) = λ₀ + Σᵢ λᵢ bᵢ.
    {
        let mut e = cst_in_u.widened(total);
        e.add_scaled(&LinExpr::var(total, lam0), -Rational::ONE);
        for (i, row) in rows.iter().enumerate() {
            if !row.cst.is_zero() {
                e.add_scaled(&LinExpr::var(total, lam(i)), -row.cst);
            }
        }
        sys.add(Constraint::eq0(e));
    }

    // Eliminate all multipliers, leaving conditions over u alone — the
    // budget-heavy step: one projection per multiplier.
    let drop: Vec<usize> = (nu..total).collect();
    sys.try_project_out(&drop)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    /// ψ(x) = u0·x + u1 over P = {0 ≤ x ≤ 10}: ψ ≥ 0 on P iff
    /// u1 ≥ 0 and 10·u0 + u1 ≥ 0 (non-negativity at both vertices).
    #[test]
    fn interval_conditions() {
        let mut p = System::new(names(&["x"]));
        p.add_bounds(0, 0, 10);
        let u = names(&["u0", "u1"]);
        let coeff = vec![LinExpr::var(2, 0)];
        let cst = LinExpr::var(2, 1);
        let cond = farkas_nonneg_conditions(&p, &coeff, &cst, &u);
        // Check a few points of u-space against ground truth.
        let truth = |u0: i128, u1: i128| (0..=10).all(|x| u0 * x + u1 >= 0);
        for u0 in -3..=3 {
            for u1 in -3..=30 {
                let sat = cond.contains_int(&[u0, u1]);
                assert_eq!(sat, truth(u0, u1), "u0={u0} u1={u1}\n{cond:?}");
            }
        }
    }

    /// Over P = {x = y}, ψ(x,y) = u0·x − u0·y is identically zero, hence
    /// non-negative for every u0.
    #[test]
    fn equality_polyhedron() {
        let mut p = System::new(names(&["x", "y"]));
        p.add_eq(&LinExpr::var(2, 0), &LinExpr::var(2, 1));
        let u = names(&["u0"]);
        let coeff = vec![LinExpr::var(1, 0), -&LinExpr::var(1, 0)];
        let cst = LinExpr::zero(1);
        let cond = farkas_nonneg_conditions(&p, &coeff, &cst, &u);
        for u0 in -5..=5 {
            assert!(cond.contains_int(&[u0]), "u0={u0}");
        }
    }

    /// Feautrier's classic: over the dependence polyhedron
    /// {1 ≤ j ≤ N, j = j'} of the triangular-solve example, the schedule
    /// difference must be representable; here we simply check that a
    /// strictly violated function is excluded.
    #[test]
    fn violation_excluded() {
        // P = {x >= 1}; ψ(x) = u0 - x can never be >= 0 on all of P for any
        // finite u0... but Farkas over rationals with unbounded P: there is
        // no λ with -1 = λ·1 and λ >= 0, so the condition system is empty.
        let mut p = System::new(names(&["x"]));
        p.add_ge(&LinExpr::var(1, 0), &LinExpr::constant(1, 1));
        let u = names(&["u0"]);
        let coeff = vec![LinExpr::constant(1, -1)]; // coefficient of x is -1
        let cst = LinExpr::var(1, 0); // constant is u0
        let cond = farkas_nonneg_conditions(&p, &coeff, &cst, &u);
        assert!(cond.is_empty(), "{cond:?}");
    }

    /// ψ independent of u: constant 1 over any P is accepted; constant -1
    /// is rejected.
    #[test]
    fn constant_functions() {
        let mut p = System::new(names(&["x"]));
        p.add_bounds(0, 0, 3);
        let u: Vec<String> = vec![];
        let ok = farkas_nonneg_conditions(&p, &[LinExpr::zero(0)], &LinExpr::constant(0, 1), &u);
        assert!(!ok.is_empty());
        let bad = farkas_nonneg_conditions(&p, &[LinExpr::zero(0)], &LinExpr::constant(0, -1), &u);
        assert!(bad.is_empty());
    }
}
