//! Systems of affine constraints (polyhedra) over named integer variables.

use crate::fm::eliminate_core;
use crate::{LinExpr, PolyError};
use bernoulli_govern::{Budget, BudgetError};
use bernoulli_numeric::Rational;
use std::fmt;

/// The sense of a [`Constraint`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum ConstraintKind {
    /// `expr ≥ 0`
    Ge,
    /// `expr = 0`
    Eq,
}

/// A single affine constraint `expr ≥ 0` or `expr = 0`.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub struct Constraint {
    pub expr: LinExpr,
    pub kind: ConstraintKind,
}

impl Constraint {
    /// `expr ≥ 0`
    pub fn ge0(expr: LinExpr) -> Constraint {
        Constraint {
            expr,
            kind: ConstraintKind::Ge,
        }
    }

    /// `expr = 0`
    pub fn eq0(expr: LinExpr) -> Constraint {
        Constraint {
            expr,
            kind: ConstraintKind::Eq,
        }
    }

    /// True iff the constraint holds at the integer point.
    pub fn holds_int(&self, point: &[i128]) -> bool {
        let v = self.expr.eval_int(point);
        match self.kind {
            ConstraintKind::Ge => !v.is_negative(),
            ConstraintKind::Eq => v.is_zero(),
        }
    }
}

/// A conjunction of affine constraints over an ordered list of named
/// integer variables.
///
/// Variable order matters: Fourier–Motzkin and the Farkas machinery refer
/// to variables by index, and clients (dependence analysis, legality
/// checks) keep parallel bookkeeping about which index is which.
#[derive(Clone, PartialEq, Eq)]
pub struct System {
    vars: Vec<String>,
    cons: Vec<Constraint>,
}

impl System {
    /// Creates a system with the given variable names and no constraints
    /// (the universe).
    pub fn new(vars: Vec<String>) -> System {
        System {
            vars,
            cons: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Variable names, in index order.
    pub fn vars(&self) -> &[String] {
        &self.vars
    }

    /// Index of a variable by name.
    pub fn var_index(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == name)
    }

    /// Appends a fresh variable, returning its index. Existing constraints
    /// are widened with a zero coefficient.
    pub fn add_var(&mut self, name: impl Into<String>) -> usize {
        self.vars.push(name.into());
        let n = self.vars.len();
        for c in &mut self.cons {
            c.expr = c.expr.widened(n);
        }
        n - 1
    }

    /// The constraints of the system.
    pub fn constraints(&self) -> &[Constraint] {
        &self.cons
    }

    /// Adds a constraint, normalizing it to a primitive integer row and
    /// tightening `≥` constants by integer rounding (valid because all
    /// variables are integral). Trivially-true rows are dropped.
    pub fn add(&mut self, mut c: Constraint) {
        assert_eq!(c.expr.num_vars(), self.num_vars(), "dimension mismatch");
        c.expr.normalize_primitive();
        if c.kind == ConstraintKind::Ge && !c.expr.is_constant() {
            // With integer variables, a·x + c ≥ 0 where g = gcd(a) can be
            // tightened to (a/g)·x + ⌊c/g⌋ ≥ 0.
            let g = c
                .expr
                .coeffs
                .iter()
                .fold(0i128, |acc, &x| bernoulli_numeric::gcd(acc, x.numer()));
            if g > 1 {
                let inv = Rational::new(1, g);
                for x in c.expr.coeffs.iter_mut() {
                    *x *= inv;
                }
                c.expr.cst = Rational::int((c.expr.cst * inv).floor());
            } else {
                c.expr.cst = Rational::int(c.expr.cst.floor());
            }
        }
        if c.expr.is_constant() {
            let ok = match c.kind {
                ConstraintKind::Ge => !c.expr.cst.is_negative(),
                ConstraintKind::Eq => c.expr.cst.is_zero(),
            };
            if ok {
                return; // trivially true; keep the system small
            }
            // Trivially false: record it so emptiness is immediate.
        }
        if !self.cons.contains(&c) {
            self.cons.push(c);
        }
    }

    /// Convenience: adds `lhs ≥ rhs`.
    pub fn add_ge(&mut self, lhs: &LinExpr, rhs: &LinExpr) {
        self.add(Constraint::ge0(lhs - rhs));
    }

    /// Convenience: adds `lhs = rhs`.
    pub fn add_eq(&mut self, lhs: &LinExpr, rhs: &LinExpr) {
        self.add(Constraint::eq0(lhs - rhs));
    }

    /// Convenience: adds `lo ≤ var ≤ hi` for integer literals.
    pub fn add_bounds(&mut self, var: usize, lo: i128, hi: i128) {
        let n = self.num_vars();
        let v = LinExpr::var(n, var);
        self.add_ge(&v, &LinExpr::constant(n, lo));
        self.add_ge(&LinExpr::constant(n, hi), &v);
    }

    /// True iff the integer point satisfies every constraint.
    pub fn contains_int(&self, point: &[i128]) -> bool {
        self.cons.iter().all(|c| c.holds_int(point))
    }

    /// True iff the system has an obviously-false constant constraint.
    pub fn has_contradiction(&self) -> bool {
        self.cons.iter().any(|c| {
            c.expr.is_constant()
                && match c.kind {
                    ConstraintKind::Ge => c.expr.cst.is_negative(),
                    ConstraintKind::Eq => !c.expr.cst.is_zero(),
                }
        })
    }

    /// Decides emptiness by eliminating every variable with
    /// Fourier–Motzkin.
    ///
    /// Exact over the rationals; the integer tightening applied by [`Self::add`]
    /// makes it exact for the integer polyhedra produced by the loop nests
    /// we handle. `true` means *definitely empty*.
    ///
    /// Results are memoized process-wide by [`Self::canonical_key`] (see
    /// [`crate::cache`]): repeated queries on structurally identical
    /// systems — regardless of constraint order, scaling, or variable
    /// names — skip the elimination entirely.
    ///
    /// If the installed compute budget runs out mid-decision this
    /// degrades **conservatively** to `false` ("possibly nonempty"),
    /// which only ever makes a client reject a legal candidate, never
    /// accept an illegal one; use [`Self::try_is_empty`] to observe the
    /// exhaustion as a typed error instead.
    pub fn is_empty(&self) -> bool {
        self.try_is_empty().unwrap_or(false)
    }

    /// [`Self::is_empty`] with budget exhaustion reported as
    /// [`PolyError::BudgetExhausted`] instead of the conservative
    /// fallback. Memoized answers are still served for free after a
    /// budget has tripped; budget-truncated decisions are never stored.
    pub fn try_is_empty(&self) -> Result<bool, PolyError> {
        bernoulli_trace::counter!("polyhedra.emptiness_tests");
        bernoulli_trace::span!("polyhedra.emptiness");
        if self.has_contradiction() {
            return Ok(true);
        }
        if self.cons.is_empty() {
            return Ok(false); // the universe; not worth a cache entry
        }
        let key = crate::cache::canonical_key(self);
        if let Some(v) = crate::cache::empty_lookup(&key) {
            bernoulli_trace::counter!("polyhedra.cache.empty_hits");
            return Ok(v);
        }
        bernoulli_trace::counter!("polyhedra.cache.empty_misses");
        let budget = bernoulli_govern::current();
        let v = self.is_empty_uncached(budget.as_deref())?;
        crate::cache::empty_store(key, v);
        Ok(v)
    }

    /// The full Fourier–Motzkin emptiness decision, bypassing the memo
    /// cache (the per-step [`eliminate_core`] calls still use the FM
    /// memo, which is keyed exactly and reproduces identical rows).
    fn is_empty_uncached(&self, budget: Option<&Budget>) -> Result<bool, BudgetError> {
        let mut cur = self.clone();
        // Eliminate variables one at a time, preferring variables that
        // appear in few constraints (cheap heuristic against FM blowup).
        while cur.num_vars() > 0 {
            if cur.has_contradiction() {
                return Ok(true);
            }
            if let Some(b) = budget {
                b.charge(cur.cons.len() as u64 + 1)?;
            }
            let n = cur.num_vars();
            let best = (0..n)
                .min_by_key(|&j| {
                    let (mut lo, mut hi) = (0usize, 0usize);
                    for c in &cur.cons {
                        let s = c.expr.coeffs[j].signum();
                        if s > 0 {
                            lo += 1;
                        } else if s < 0 {
                            hi += 1;
                        }
                    }
                    lo * hi
                })
                // `num_vars() > 0` keeps the range nonempty; column 0
                // is an arbitrary (unreachable) fallback, not a panic.
                .unwrap_or(0);
            cur = eliminate_core(&cur, best, budget)?;
        }
        Ok(cur.has_contradiction())
    }

    /// The canonical, name-free memo-cache key of this system:
    /// constraints as gcd-normalized integer rows, equalities
    /// sign-canonicalized, sorted and deduplicated. Equal keys ⟹ equal
    /// integer point sets up to variable renaming; permuting or
    /// (positively) rescaling constraints never changes the key.
    pub fn canonical_key(&self) -> crate::cache::CanonicalKey {
        crate::cache::canonical_key(self)
    }

    /// True iff `c` holds at every integer point of the system.
    ///
    /// Implemented as emptiness of `self ∧ ¬c`; for a `≥` constraint over
    /// integer points, `¬(e ≥ 0)` is `-e - 1 ≥ 0`.
    ///
    /// On budget exhaustion this degrades conservatively to `false`
    /// ("not provably implied"); see [`Self::is_empty`] and use
    /// [`Self::try_implies`] for the typed error.
    pub fn implies(&self, c: &Constraint) -> bool {
        self.try_implies(c).unwrap_or(false)
    }

    /// [`Self::implies`] with budget exhaustion reported as
    /// [`PolyError::BudgetExhausted`].
    pub fn try_implies(&self, c: &Constraint) -> Result<bool, PolyError> {
        bernoulli_trace::counter!("polyhedra.implication_tests");
        match c.kind {
            ConstraintKind::Ge => {
                let mut neg = self.clone();
                let e = &(-&c.expr) - &LinExpr::constant(self.num_vars(), 1);
                neg.add(Constraint::ge0(e));
                neg.try_is_empty()
            }
            ConstraintKind::Eq => Ok(self.try_implies(&Constraint::ge0(c.expr.clone()))?
                && self.try_implies(&Constraint::ge0(-&c.expr))?),
        }
    }

    /// True iff `expr` is identically zero over the system (i.e. the system
    /// implies `expr = 0`).
    pub fn forces_zero(&self, expr: &LinExpr) -> bool {
        self.implies(&Constraint::eq0(expr.clone()))
    }

    /// Projects the system onto the variables *not* listed in `drop`
    /// (eliminating the listed ones), renumbering the survivors in order.
    /// Runs to completion regardless of any installed budget; use
    /// [`Self::try_project_out`] for the budgeted variant.
    pub fn project_out(&self, drop: &[usize]) -> System {
        match self.project_out_inner(drop, None) {
            Ok(s) => s,
            Err(_) => unreachable!("unbudgeted projection cannot be cut short"),
        }
    }

    /// [`Self::project_out`] observing the installed compute budget,
    /// with exhaustion reported as [`PolyError::BudgetExhausted`].
    pub fn try_project_out(&self, drop: &[usize]) -> Result<System, PolyError> {
        let budget = bernoulli_govern::current();
        Ok(self.project_out_inner(drop, budget.as_deref())?)
    }

    fn project_out_inner(
        &self,
        drop: &[usize],
        budget: Option<&Budget>,
    ) -> Result<System, BudgetError> {
        let mut cur = self.clone();
        // Eliminate from the highest index down so indices stay valid.
        let mut sorted: Vec<usize> = drop.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for &j in sorted.iter().rev() {
            cur = eliminate_core(&cur, j, budget)?;
        }
        Ok(cur)
    }

    /// Removes a variable index from the variable list and every
    /// constraint, *assuming* its coefficient is zero everywhere.
    /// Used by [`crate::eliminate_var`] after combination.
    pub(crate) fn drop_var_column(&mut self, j: usize) {
        for c in &mut self.cons {
            debug_assert!(c.expr.coeffs[j].is_zero());
            c.expr.coeffs.remove(j);
        }
        self.vars.remove(j);
    }

    pub(crate) fn raw_push(&mut self, c: Constraint) {
        self.cons.push(c);
    }

    pub(crate) fn from_parts(vars: Vec<String>, cons: Vec<Constraint>) -> System {
        System { vars, cons }
    }
}

impl fmt::Debug for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "System over [{}] {{", self.vars.join(", "))?;
        for c in &self.cons {
            let op = match c.kind {
                ConstraintKind::Ge => ">= 0",
                ConstraintKind::Eq => "= 0",
            };
            writeln!(f, "  {} {}", c.expr.display_with(&self.vars), op)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn contains_and_bounds() {
        let mut s = System::new(names(&["i", "j"]));
        s.add_bounds(0, 0, 10);
        s.add_bounds(1, 0, 10);
        // i < j  <=>  j - i - 1 >= 0
        let e = &(&LinExpr::var(2, 1) - &LinExpr::var(2, 0)) + &LinExpr::constant(2, -1);
        s.add(Constraint::ge0(e));
        assert!(s.contains_int(&[2, 5]));
        assert!(!s.contains_int(&[5, 2]));
        assert!(!s.contains_int(&[5, 5]));
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_by_contradiction() {
        let mut s = System::new(names(&["i"]));
        s.add_bounds(0, 0, 10);
        s.add_bounds(0, 20, 30);
        assert!(s.is_empty());
    }

    #[test]
    fn empty_via_equalities() {
        let mut s = System::new(names(&["i", "j"]));
        // i = j, i >= j + 1 : empty
        s.add(Constraint::eq0(&LinExpr::var(2, 0) - &LinExpr::var(2, 1)));
        let e = &(&LinExpr::var(2, 0) - &LinExpr::var(2, 1)) + &LinExpr::constant(2, -1);
        s.add(Constraint::ge0(e));
        assert!(s.is_empty());
    }

    #[test]
    fn integer_tightening() {
        // 2i >= 1 and 2i <= 1 has the rational point i = 1/2 but no integer
        // point; tightening must detect emptiness.
        let mut s = System::new(names(&["i"]));
        let two_i = &LinExpr::var(1, 0) * bernoulli_numeric::Rational::int(2);
        s.add(Constraint::ge0(&two_i - &LinExpr::constant(1, 1)));
        s.add(Constraint::ge0(&LinExpr::constant(1, 1) - &two_i));
        assert!(s.is_empty());
    }

    #[test]
    fn implies_simple() {
        let mut s = System::new(names(&["i"]));
        s.add_bounds(0, 5, 10);
        // i >= 5 implies i >= 3
        let c = Constraint::ge0(&LinExpr::var(1, 0) - &LinExpr::constant(1, 3));
        assert!(s.implies(&c));
        // but not i >= 7
        let c2 = Constraint::ge0(&LinExpr::var(1, 0) - &LinExpr::constant(1, 7));
        assert!(!s.implies(&c2));
    }

    #[test]
    fn forces_zero() {
        let mut s = System::new(names(&["i", "j"]));
        s.add(Constraint::eq0(&LinExpr::var(2, 0) - &LinExpr::var(2, 1)));
        s.add_bounds(0, 0, 100);
        let diff = &LinExpr::var(2, 0) - &LinExpr::var(2, 1);
        assert!(s.forces_zero(&diff));
        assert!(!s.forces_zero(&LinExpr::var(2, 0)));
    }

    #[test]
    fn project_out_keeps_shadow() {
        // {(i,j) : 0<=i<=3, i<=j<=i+1} projected onto j gives 0<=j<=4.
        let mut s = System::new(names(&["i", "j"]));
        s.add_bounds(0, 0, 3);
        let (i, j) = (LinExpr::var(2, 0), LinExpr::var(2, 1));
        s.add_ge(&j, &i);
        s.add_ge(&(&i + &LinExpr::constant(2, 1)), &j);
        let p = s.project_out(&[0]);
        assert_eq!(p.num_vars(), 1);
        for jv in 0..=4 {
            assert!(p.contains_int(&[jv]), "j={jv} should be in projection");
        }
        assert!(!p.contains_int(&[5]));
        assert!(!p.contains_int(&[-1]));
    }

    #[test]
    fn add_var_widens() {
        let mut s = System::new(names(&["i"]));
        s.add_bounds(0, 0, 5);
        let j = s.add_var("j");
        assert_eq!(j, 1);
        assert_eq!(s.num_vars(), 2);
        assert!(s.contains_int(&[3, 999]));
        assert_eq!(s.var_index("j"), Some(1));
    }

    #[test]
    fn trivially_true_dropped() {
        let mut s = System::new(names(&["i"]));
        s.add(Constraint::ge0(LinExpr::constant(1, 5)));
        assert!(s.constraints().is_empty());
        s.add(Constraint::eq0(LinExpr::constant(1, 0)));
        assert!(s.constraints().is_empty());
    }

    #[test]
    fn universe_nonempty() {
        let s = System::new(names(&["a", "b", "c"]));
        assert!(!s.is_empty());
    }
}
