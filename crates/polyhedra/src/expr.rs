//! Affine expressions over a fixed, ordered variable list.

use bernoulli_numeric::Rational;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// An affine expression `Σ coeffs[i]·x_i + cst` over the variables of some
/// [`crate::System`] (the expression itself only knows the variable count;
/// names live in the system).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct LinExpr {
    /// One coefficient per variable of the owning system.
    pub coeffs: Vec<Rational>,
    /// Constant term.
    pub cst: Rational,
}

impl LinExpr {
    /// The zero expression over `n` variables.
    pub fn zero(n: usize) -> LinExpr {
        LinExpr {
            coeffs: vec![Rational::ZERO; n],
            cst: Rational::ZERO,
        }
    }

    /// The constant expression `c` over `n` variables.
    pub fn constant(n: usize, c: impl Into<Rational>) -> LinExpr {
        LinExpr {
            coeffs: vec![Rational::ZERO; n],
            cst: c.into(),
        }
    }

    /// The single variable `x_i` over `n` variables.
    pub fn var(n: usize, i: usize) -> LinExpr {
        let mut e = LinExpr::zero(n);
        e.coeffs[i] = Rational::ONE;
        e
    }

    /// Number of variables this expression ranges over.
    pub fn num_vars(&self) -> usize {
        self.coeffs.len()
    }

    /// True iff every coefficient and the constant are zero.
    pub fn is_zero(&self) -> bool {
        self.cst.is_zero() && self.coeffs.iter().all(|c| c.is_zero())
    }

    /// True iff every variable coefficient is zero (constant expression).
    pub fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|c| c.is_zero())
    }

    /// Evaluates the expression at an integer point.
    pub fn eval_int(&self, point: &[i128]) -> Rational {
        assert_eq!(point.len(), self.coeffs.len(), "dimension mismatch");
        self.coeffs
            .iter()
            .zip(point)
            .map(|(&c, &x)| c * Rational::int(x))
            .sum::<Rational>()
            + self.cst
    }

    /// Evaluates the expression at a rational point.
    pub fn eval(&self, point: &[Rational]) -> Rational {
        assert_eq!(point.len(), self.coeffs.len(), "dimension mismatch");
        self.coeffs
            .iter()
            .zip(point)
            .map(|(&c, &x)| c * x)
            .sum::<Rational>()
            + self.cst
    }

    /// Adds `k · other` in place.
    pub fn add_scaled(&mut self, other: &LinExpr, k: Rational) {
        assert_eq!(self.coeffs.len(), other.coeffs.len(), "dimension mismatch");
        for (a, &b) in self.coeffs.iter_mut().zip(&other.coeffs) {
            *a += k * b;
        }
        self.cst += k * other.cst;
    }

    /// Returns the expression with variables appended so it ranges over
    /// `n` variables (new variables get zero coefficients).
    pub fn widened(&self, n: usize) -> LinExpr {
        assert!(n >= self.coeffs.len());
        let mut coeffs = self.coeffs.clone();
        coeffs.resize(n, Rational::ZERO);
        LinExpr {
            coeffs,
            cst: self.cst,
        }
    }

    /// Scales all denominators away and divides by the content, producing
    /// a primitive integer expression with the same sign everywhere.
    ///
    /// Returns the scale factor applied (always positive).
    pub fn normalize_primitive(&mut self) -> Rational {
        use bernoulli_numeric::{gcd, lcm};
        let mut den_lcm = 1i128;
        for c in self.coeffs.iter().chain(std::iter::once(&self.cst)) {
            den_lcm = lcm(den_lcm, c.denom());
        }
        if den_lcm == 0 {
            den_lcm = 1;
        }
        let mut g = 0i128;
        for c in self.coeffs.iter().chain(std::iter::once(&self.cst)) {
            g = gcd(g, (*c * Rational::int(den_lcm)).numer());
        }
        if g == 0 {
            g = 1;
        }
        let scale = Rational::new(den_lcm, g);
        for c in self.coeffs.iter_mut() {
            *c *= scale;
        }
        self.cst *= scale;
        scale
    }

    /// Renders the expression given variable names (debug/pretty printing).
    pub fn display_with<'a>(&'a self, names: &'a [String]) -> impl fmt::Display + 'a {
        struct D<'a>(&'a LinExpr, &'a [String]);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let mut first = true;
                for (i, &c) in self.0.coeffs.iter().enumerate() {
                    if c.is_zero() {
                        continue;
                    }
                    let name = self.1.get(i).map(|s| s.as_str()).unwrap_or("?");
                    if first {
                        if c == Rational::ONE {
                            write!(f, "{name}")?;
                        } else if c == -Rational::ONE {
                            write!(f, "-{name}")?;
                        } else {
                            write!(f, "{c}*{name}")?;
                        }
                        first = false;
                    } else if c.is_positive() {
                        if c == Rational::ONE {
                            write!(f, " + {name}")?;
                        } else {
                            write!(f, " + {c}*{name}")?;
                        }
                    } else if -c == Rational::ONE {
                        write!(f, " - {name}")?;
                    } else {
                        write!(f, " - {}*{name}", -c)?;
                    }
                }
                if first {
                    write!(f, "{}", self.0.cst)?;
                } else if self.0.cst.is_positive() {
                    write!(f, " + {}", self.0.cst)?;
                } else if self.0.cst.is_negative() {
                    write!(f, " - {}", -self.0.cst)?;
                }
                Ok(())
            }
        }
        D(self, names)
    }
}

impl fmt::Debug for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LinExpr(")?;
        for (i, c) in self.coeffs.iter().enumerate() {
            if !c.is_zero() {
                write!(f, "{c}*x{i} ")?;
            }
        }
        write!(f, "+ {})", self.cst)
    }
}

impl Add for &LinExpr {
    type Output = LinExpr;
    fn add(self, rhs: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        out.add_scaled(rhs, Rational::ONE);
        out
    }
}

impl Sub for &LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        out.add_scaled(rhs, -Rational::ONE);
        out
    }
}

impl Neg for &LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        let mut out = LinExpr::zero(self.coeffs.len());
        out.add_scaled(self, -Rational::ONE);
        out
    }
}

impl Mul<Rational> for &LinExpr {
    type Output = LinExpr;
    fn mul(self, k: Rational) -> LinExpr {
        let mut out = LinExpr::zero(self.coeffs.len());
        out.add_scaled(self, k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128) -> Rational {
        Rational::int(n)
    }

    #[test]
    fn construction_and_eval() {
        let n = 3;
        let x0 = LinExpr::var(n, 0);
        let x2 = LinExpr::var(n, 2);
        let e = &(&x0 + &x2) + &LinExpr::constant(n, 5);
        assert_eq!(e.eval_int(&[1, 100, 2]), r(8));
        assert!(!e.is_zero());
        assert!(!e.is_constant());
        assert!(LinExpr::constant(n, 7).is_constant());
        assert!(LinExpr::zero(n).is_zero());
    }

    #[test]
    fn arithmetic() {
        let n = 2;
        let x = LinExpr::var(n, 0);
        let y = LinExpr::var(n, 1);
        let e = &(&x * r(2)) - &y;
        assert_eq!(e.eval_int(&[3, 1]), r(5));
        let ne = -&e;
        assert_eq!(ne.eval_int(&[3, 1]), r(-5));
    }

    #[test]
    fn normalize_primitive() {
        let mut e = LinExpr {
            coeffs: vec![Rational::new(1, 2), Rational::new(3, 2)],
            cst: Rational::new(5, 2),
        };
        e.normalize_primitive();
        assert_eq!(e.coeffs, vec![r(1), r(3)]);
        assert_eq!(e.cst, r(5));

        let mut e2 = LinExpr {
            coeffs: vec![r(4), r(8)],
            cst: r(12),
        };
        e2.normalize_primitive();
        assert_eq!(e2.coeffs, vec![r(1), r(2)]);
        assert_eq!(e2.cst, r(3));
    }

    #[test]
    fn widened_preserves_semantics() {
        let e = LinExpr::var(2, 1);
        let w = e.widened(4);
        assert_eq!(w.num_vars(), 4);
        assert_eq!(w.eval_int(&[0, 7, 9, 9]), r(7));
    }

    #[test]
    fn display() {
        let names: Vec<String> = ["i", "j"].iter().map(|s| s.to_string()).collect();
        let n = 2;
        let e = &(&LinExpr::var(n, 0) - &(&LinExpr::var(n, 1) * r(2))) + &LinExpr::constant(n, -1);
        assert_eq!(format!("{}", e.display_with(&names)), "i - 2*j - 1");
        let z = LinExpr::zero(n);
        assert_eq!(format!("{}", z.display_with(&names)), "0");
    }
}
