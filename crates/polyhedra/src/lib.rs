//! Linear inequality systems and the decision procedures the Bernoulli
//! restructuring framework needs.
//!
//! The paper expresses dependence classes as systems of affine inequalities
//! `D(i_s, i_d)ᵀ + d ≥ 0` (paper §3) and needs three capabilities on top of
//! them:
//!
//! 1. **Emptiness / implication tests** — to verify that a candidate set of
//!    embedding functions never enumerates a dependence destination before
//!    its source (paper §3.1, problem 2), and to drive the recursive
//!    enumeration-direction rule (paper §4.1).
//! 2. **Projection** — to eliminate existentially-quantified variables, the
//!    workhorse being Fourier–Motzkin elimination ([`eliminate_var`]).
//! 3. **Farkas' lemma** — to characterize *all* affine functions that are
//!    non-negative over a polyhedron, which yields the space of legal
//!    embeddings (paper §3.1, citing Feautrier).
//!
//! All variables are integer-valued loop indices or symbolic size
//! parameters; every derived constraint is normalized to a primitive
//! integer row, and constants are tightened by integer division, giving an
//! "Omega-lite" test that is exact on the polyhedra produced by affine
//! loop nests of the sizes we handle (and conservative in general: it may
//! report a rationally-nonempty / integer-empty set as nonempty, which only
//! ever makes the compiler *reject* a legal candidate, never accept an
//! illegal one).

#![allow(clippy::needless_range_loop)]
pub mod cache;
mod expr;
mod farkas;
mod fm;
mod system;

pub use cache::{
    cache_context, cache_stats, clear_caches, install_context_scoped, install_overlay_scoped,
    install_scoped, shared_tier, CacheContext, CacheStats, PolyCaches, ScopedCaches,
};
pub use expr::LinExpr;
pub use farkas::{farkas_nonneg_conditions, try_farkas_nonneg_conditions};
pub use fm::{eliminate_var, try_eliminate_var, variable_bounds};
pub use system::{Constraint, ConstraintKind, System};

// Budget types are part of this crate's fallible API surface
// (`PolyError::BudgetExhausted` wraps a cause); re-export them so
// callers need not depend on `bernoulli-govern` directly.
pub use bernoulli_govern::{Budget, BudgetError, CancelToken};

/// Errors a caller can trigger through the polyhedral API (as opposed
/// to internal invariants, which still panic with a message naming the
/// invariant).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PolyError {
    /// A variable (column) index beyond the system's variable count.
    VarOutOfRange { index: usize, nvars: usize },
    /// The installed compute [`Budget`] ran out mid-decision. The
    /// infallible query wrappers ([`System::is_empty`],
    /// [`System::implies`], [`farkas_nonneg_conditions`]) degrade
    /// conservatively instead of surfacing this — see their docs.
    BudgetExhausted(BudgetError),
}

impl std::fmt::Display for PolyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolyError::VarOutOfRange { index, nvars } => {
                write!(
                    f,
                    "variable index {index} out of range (system has {nvars} variables)"
                )
            }
            PolyError::BudgetExhausted(cause) => {
                write!(f, "polyhedral decision aborted: {cause}")
            }
        }
    }
}

impl std::error::Error for PolyError {}

impl From<BudgetError> for PolyError {
    fn from(e: BudgetError) -> PolyError {
        bernoulli_trace::counter!("polyhedra.budget_exhausted");
        PolyError::BudgetExhausted(e)
    }
}

/// Brute-force enumeration of the integer points of `sys` inside the box
/// `lo..=hi` on every variable. Exponential; intended for tests and for the
/// dynamic dependence-order validation harness only.
pub fn enumerate_box_points(sys: &System, lo: i128, hi: i128) -> Vec<Vec<i128>> {
    let n = sys.num_vars();
    let mut out = Vec::new();
    let mut point = vec![lo; n];
    loop {
        if sys.contains_int(&point) {
            out.push(point.clone());
        }
        // Odometer increment.
        let mut k = 0;
        loop {
            if k == n {
                return out;
            }
            point[k] += 1;
            if point[k] <= hi {
                break;
            }
            point[k] = lo;
            k += 1;
        }
    }
}
