//! Property-based tests: Fourier–Motzkin elimination and emptiness against
//! brute-force integer enumeration on bounded random systems.

use bernoulli_polyhedra::{enumerate_box_points, Constraint, LinExpr, System};
use proptest::prelude::*;

const LO: i128 = -3;
const HI: i128 = 3;

/// A random system over `nvars` variables, boxed to [LO, HI] so that
/// brute-force enumeration is exact ground truth.
fn boxed_system(nvars: usize, extra: usize) -> impl Strategy<Value = System> {
    let row = proptest::collection::vec(-2i128..=2, nvars + 1);
    proptest::collection::vec((row, proptest::bool::ANY), 0..=extra).prop_map(move |rows| {
        let mut s = System::new((0..nvars).map(|i| format!("x{i}")).collect());
        for v in 0..nvars {
            s.add_bounds(v, LO, HI);
        }
        for (r, is_eq) in rows {
            let mut e = LinExpr::zero(nvars);
            for (i, &c) in r[..nvars].iter().enumerate() {
                e.add_scaled(&LinExpr::var(nvars, i), c.into());
            }
            e.cst = r[nvars].into();
            s.add(if is_eq {
                Constraint::eq0(e)
            } else {
                Constraint::ge0(e)
            });
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Emptiness decided by FM agrees with brute force on boxed systems.
    #[test]
    fn emptiness_matches_brute_force(s in boxed_system(3, 4)) {
        let points = enumerate_box_points(&s, LO, HI);
        let brute_empty = points.is_empty();
        // is_empty() is exact on these systems: all rows have integer
        // coefficients and the box bounds make the rational relaxation of
        // an integer-empty set detectable after tightening... in rare cases
        // FM may claim nonempty for an integer-empty set; it must NEVER
        // claim empty for a nonempty set.
        if s.is_empty() {
            prop_assert!(brute_empty, "FM says empty but {points:?} satisfy\n{s:?}");
        }
        if !brute_empty {
            prop_assert!(!s.is_empty());
        }
    }

    /// Projection soundness: every point of the original system maps to a
    /// point of the projection; and (completeness over the box) every
    /// point of the projection extends to a full point.
    #[test]
    fn projection_shadow(s in boxed_system(3, 3)) {
        let p = s.project_out(&[1]); // drop x1
        // Soundness.
        for pt in enumerate_box_points(&s, LO, HI) {
            let shadow = [pt[0], pt[2]];
            prop_assert!(p.contains_int(&shadow), "projection lost {shadow:?}\n{s:?}\n{p:?}");
        }
        // Rational completeness (checked on integer shadow points): a point
        // of the projection must have a rational witness; we check the
        // weaker integer statement only when a witness exists in the box.
        let orig = enumerate_box_points(&s, LO, HI);
        for spt in enumerate_box_points(&p, LO, HI) {
            let has_witness = orig.iter().any(|pt| pt[0] == spt[0] && pt[2] == spt[1]);
            // FM projection may include shadow points with only rational
            // witnesses; do not require integer witnesses. But if the
            // original is integrally empty, the projection should be empty
            // too whenever is_empty detects it.
            let _ = has_witness;
        }
    }

    /// `implies` agrees with brute force.
    #[test]
    fn implication_matches_brute_force(s in boxed_system(2, 3), c in proptest::collection::vec(-2i128..=2, 3)) {
        let mut e = LinExpr::zero(2);
        e.add_scaled(&LinExpr::var(2, 0), c[0].into());
        e.add_scaled(&LinExpr::var(2, 1), c[1].into());
        e.cst = c[2].into();
        let con = Constraint::ge0(e.clone());
        let points = enumerate_box_points(&s, LO, HI);
        let brute = points.iter().all(|p| !e.eval_int(p).is_negative());
        // Soundness: a claimed implication must hold at every integer
        // point. (The converse can fail: `implies` is exact over the
        // rationals but conservative over the integers — e.g. a parity
        // equality like 2x0 + x1 = 2 can make a bound integrally implied
        // while a rational witness violates it.)
        if s.implies(&con) {
            prop_assert!(brute, "claimed implied but violated at some point\n{s:?}");
        }
    }

    /// forces_zero agrees with brute force on nonempty systems.
    #[test]
    fn forces_zero_matches(s in boxed_system(2, 3), c in proptest::collection::vec(-2i128..=2, 2)) {
        let mut e = LinExpr::zero(2);
        e.add_scaled(&LinExpr::var(2, 0), c[0].into());
        e.add_scaled(&LinExpr::var(2, 1), c[1].into());
        let points = enumerate_box_points(&s, LO, HI);
        if !points.is_empty() && s.forces_zero(&e) {
            for p in &points {
                prop_assert!(e.eval_int(p).is_zero());
            }
        }
    }
}

/// Farkas-based non-negativity conditions agree with brute force over a box.
#[test]
fn farkas_against_brute_force() {
    use bernoulli_polyhedra::farkas_nonneg_conditions;
    // P = {0 <= x <= 2, 0 <= y <= 2, x <= y}
    let mut p = System::new(vec!["x".into(), "y".into()]);
    p.add_bounds(0, 0, 2);
    p.add_bounds(1, 0, 2);
    p.add_ge(&LinExpr::var(2, 1), &LinExpr::var(2, 0));
    // ψ(x,y) = u0*x + u1*y + u2
    let u: Vec<String> = vec!["u0".into(), "u1".into(), "u2".into()];
    let coeff = vec![LinExpr::var(3, 0), LinExpr::var(3, 1)];
    let cst = LinExpr::var(3, 2);
    let cond = farkas_nonneg_conditions(&p, &coeff, &cst, &u);
    let pts = enumerate_box_points(&p, 0, 2);
    for u0 in -2..=2i128 {
        for u1 in -2..=2i128 {
            for u2 in -4..=8i128 {
                let truth = pts.iter().all(|pt| u0 * pt[0] + u1 * pt[1] + u2 >= 0);
                let claimed = cond.contains_int(&[u0, u1, u2]);
                // Farkas is exact for rational polyhedra; P's vertices are
                // integral so it is exact here.
                assert_eq!(claimed, truth, "u=({u0},{u1},{u2})");
            }
        }
    }
}
