//! Budgeted polyhedral decisions: an installed [`Budget`] bounds the
//! worst-case blowup of Fourier–Motzkin elimination, exhaustion
//! surfaces as a typed [`PolyError::BudgetExhausted`], and the
//! infallible entry points degrade *conservatively* (reject, never
//! accept) when the budget is spent.

use bernoulli_polyhedra::{
    install_scoped, Budget, BudgetError, CancelToken, LinExpr, PolyCaches, PolyError, System,
};
use std::sync::{Arc, Mutex};

/// The installed budget and the memo caches are process-wide; these
/// tests must not interleave with each other.
static SLOT: Mutex<()> = Mutex::new(());

fn names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("x{i}")).collect()
}

/// A dense difference system: `|x_i - x_j| <= 10` for every pair plus
/// box bounds. Eliminating variables from this keeps the constraint
/// count quadratic at every step — a worst-case-ish FM workload that is
/// still fast unbudgeted at this size.
fn adversarial(nvars: usize) -> System {
    let mut s = System::new(names(nvars));
    for i in 0..nvars {
        s.add_bounds(i, 0, 100);
    }
    for i in 0..nvars {
        for j in (i + 1)..nvars {
            let xi = LinExpr::var(nvars, i);
            let xj = LinExpr::var(nvars, j);
            let ten = LinExpr::constant(nvars, 10);
            s.add_ge(&(&xi + &ten), &xj); // x_j - x_i <= 10
            s.add_ge(&(&xj + &ten), &xi); // x_i - x_j <= 10
        }
    }
    s
}

#[test]
fn tiny_op_budget_trips_with_typed_error() {
    let _lock = SLOT.lock().unwrap_or_else(|e| e.into_inner());
    let _caches = install_scoped(Arc::new(PolyCaches::new()));
    let sys = adversarial(8);

    let budget = Arc::new(Budget::unlimited().with_max_ops(200));
    let _b = bernoulli_govern::install_scoped(Some(Arc::clone(&budget)));
    match sys.try_is_empty() {
        Err(PolyError::BudgetExhausted(BudgetError::Ops { used, limit })) => {
            assert_eq!(limit, 200);
            assert!(used > limit, "used {used} must exceed limit {limit}");
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
    // Sticky: later decisions under the same budget fail immediately
    // without burning more work.
    let before = budget.ops_used();
    assert!(sys.try_is_empty().is_err());
    assert!(budget.ops_used() <= before + 1);
}

#[test]
fn infallible_entry_points_degrade_conservatively() {
    let _lock = SLOT.lock().unwrap_or_else(|e| e.into_inner());
    let _caches = install_scoped(Arc::new(PolyCaches::new()));
    // This system is *contradictory* (x0 in [5,3]), but the budget is
    // far too small to prove it. The conservative answers must all be
    // the rejecting ones: "not known empty", "implication not proven".
    let mut sys = adversarial(8);
    sys.add_bounds(0, 5, 3);

    let budget = Arc::new(Budget::unlimited().with_max_ops(50));
    let _b = bernoulli_govern::install_scoped(Some(Arc::clone(&budget)));
    assert!(!sys.is_empty(), "spent budget must degrade to non-empty");
    let c = bernoulli_polyhedra::Constraint::ge0(LinExpr::var(8, 0));
    assert!(!sys.implies(&c), "spent budget must degrade to not-implied");
}

#[test]
fn unbudgeted_decision_is_unaffected() {
    let _lock = SLOT.lock().unwrap_or_else(|e| e.into_inner());
    let _caches = install_scoped(Arc::new(PolyCaches::new()));
    let _b = bernoulli_govern::install_scoped(None);
    let sys = adversarial(8);
    assert!(!sys.try_is_empty().unwrap());
    let mut contra = adversarial(6);
    contra.add_bounds(0, 5, 3);
    assert!(contra.try_is_empty().unwrap());
}

#[test]
fn cancellation_aborts_elimination() {
    let _lock = SLOT.lock().unwrap_or_else(|e| e.into_inner());
    let _caches = install_scoped(Arc::new(PolyCaches::new()));
    let tok = CancelToken::new();
    tok.cancel(); // cancelled before the work even starts
    let budget = Arc::new(Budget::unlimited().with_cancel(tok));
    let _b = bernoulli_govern::install_scoped(Some(Arc::clone(&budget)));
    let sys = adversarial(8);
    match sys.try_is_empty() {
        Err(PolyError::BudgetExhausted(BudgetError::Cancelled)) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
}

#[test]
fn memo_hits_are_served_after_exhaustion() {
    let _lock = SLOT.lock().unwrap_or_else(|e| e.into_inner());
    let _caches = install_scoped(Arc::new(PolyCaches::new()));
    let sys = adversarial(6);
    // Warm the memo without any budget installed...
    {
        let _b = bernoulli_govern::install_scoped(None);
        assert!(!sys.try_is_empty().unwrap());
    }
    // ...then ask again under an already-exhausted budget: the cached
    // proof costs nothing and must still be served.
    let budget = Arc::new(Budget::unlimited().with_max_ops(1));
    budget.starve();
    let _b = bernoulli_govern::install_scoped(Some(Arc::clone(&budget)));
    assert!(!sys.try_is_empty().unwrap());
}
