//! Runtime kernel compilation and on-disk artifact caching.
//!
//! The synthesizer's emitter produces Rust source; this crate turns that
//! source into *running machine code* at runtime: it drives `rustc` to a
//! `cdylib`, caches the built shared object on disk keyed by everything
//! the binary depends on (source text, compiler version, target triple,
//! optimization flags), and loads it through a minimal `dlopen` wrapper.
//! A warm cache — including a *restarted process* — skips the compile
//! entirely and loads in microseconds.
//!
//! Design constraints:
//!
//! - **No external crates.** Dynamic loading uses the `dlopen`/`dlsym`/
//!   `dlclose` symbols the platform C runtime already links on Unix
//!   (`std` itself depends on them); on other platforms every entry
//!   point returns [`KernelCacheError::Unsupported`] so callers can fall
//!   back to their interpreter.
//! - **Typed failures.** A missing compiler, a failed build, a missing
//!   symbol — each is a distinct [`KernelCacheError`] variant; nothing
//!   on these paths panics.
//! - **Observable.** Hits/misses/compiles are counted process-wide
//!   ([`stats`]) and mirrored as `kernel.*` trace counters when the
//!   `trace` feature is enabled.
//!
//! The cache directory defaults to `bernoulli-kernel-cache` under the
//! system temp dir and is overridable with `BERNOULLI_KERNEL_CACHE`
//! (CI lanes point this at a persisted directory to carry artifacts
//! across runs). `BERNOULLI_RUSTC` overrides the compiler binary, which
//! doubles as the fallback-path test hook: pointing it at a nonexistent
//! file makes every build report [`KernelCacheError::CompilerUnavailable`].

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Environment variable overriding the `rustc` binary used for kernel
/// builds (also the test hook for the no-compiler fallback path).
pub const RUSTC_ENV: &str = "BERNOULLI_RUSTC";

/// Environment variable overriding the artifact cache directory.
pub const CACHE_DIR_ENV: &str = "BERNOULLI_KERNEL_CACHE";

/// Why a kernel could not be compiled, cached, or loaded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KernelCacheError {
    /// No usable `rustc` on this host (not in `PATH`, or the
    /// `BERNOULLI_RUSTC` override does not run).
    CompilerUnavailable { detail: String },
    /// `rustc` ran and rejected the kernel source.
    CompileFailed { stderr: String },
    /// Filesystem trouble around the cache directory.
    Io { detail: String },
    /// The built artifact exists but the dynamic loader refused it.
    LoadFailed { detail: String },
    /// The library loaded but does not export the requested symbol.
    SymbolMissing { symbol: String },
    /// Dynamic loading is not implemented for this platform.
    Unsupported { detail: String },
}

impl std::fmt::Display for KernelCacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelCacheError::CompilerUnavailable { detail } => {
                write!(f, "no usable rustc for kernel compilation: {detail}")
            }
            KernelCacheError::CompileFailed { stderr } => {
                write!(f, "kernel compilation failed: {stderr}")
            }
            KernelCacheError::Io { detail } => write!(f, "kernel cache I/O error: {detail}"),
            KernelCacheError::LoadFailed { detail } => {
                write!(f, "loading kernel artifact failed: {detail}")
            }
            KernelCacheError::SymbolMissing { symbol } => {
                write!(f, "kernel artifact exports no symbol {symbol:?}")
            }
            KernelCacheError::Unsupported { detail } => {
                write!(f, "runtime kernel loading unsupported here: {detail}")
            }
        }
    }
}

impl std::error::Error for KernelCacheError {}

/// The compiler identity every cached artifact is keyed under.
#[derive(Clone, Debug)]
pub struct RustcInfo {
    /// The binary that was probed (`rustc` or the `BERNOULLI_RUSTC`
    /// override).
    pub binary: String,
    /// Full `rustc -vV` version line, e.g. `rustc 1.75.0 (…)`.
    pub version: String,
    /// Host target triple reported by `rustc -vV`.
    pub triple: String,
}

/// Probes the kernel compiler once per process (memoized, including the
/// failure). The binary is `$BERNOULLI_RUSTC` when set, else `rustc`
/// from `PATH`.
pub fn rustc_info() -> Result<&'static RustcInfo, KernelCacheError> {
    static INFO: OnceLock<Result<RustcInfo, KernelCacheError>> = OnceLock::new();
    INFO.get_or_init(probe_rustc).as_ref().map_err(Clone::clone)
}

fn probe_rustc() -> Result<RustcInfo, KernelCacheError> {
    let binary = std::env::var(RUSTC_ENV).unwrap_or_else(|_| "rustc".to_string());
    let out = Command::new(&binary).arg("-vV").output().map_err(|e| {
        KernelCacheError::CompilerUnavailable {
            detail: format!("running {binary:?} -vV: {e}"),
        }
    })?;
    if !out.status.success() {
        return Err(KernelCacheError::CompilerUnavailable {
            detail: format!("{binary:?} -vV exited with {}", out.status),
        });
    }
    let text = String::from_utf8_lossy(&out.stdout);
    let mut version = String::new();
    let mut triple = String::new();
    for line in text.lines() {
        if let Some(h) = line.strip_prefix("host: ") {
            triple = h.trim().to_string();
        } else if version.is_empty() && line.starts_with("rustc ") {
            version = line.trim().to_string();
        }
    }
    if version.is_empty() || triple.is_empty() {
        return Err(KernelCacheError::CompilerUnavailable {
            detail: format!("unparseable {binary:?} -vV output: {text:?}"),
        });
    }
    Ok(RustcInfo {
        binary,
        version,
        triple,
    })
}

/// Hit/miss/compile totals of the process-wide artifact cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCacheStats {
    /// Builds served from an existing on-disk artifact.
    pub hits: u64,
    /// Builds that had to invoke `rustc`.
    pub misses: u64,
    /// Successful `rustc` invocations.
    pub compiles: u64,
    /// Failed `rustc` invocations (bad source or I/O).
    pub errors: u64,
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static COMPILES: AtomicU64 = AtomicU64::new(0);
static ERRORS: AtomicU64 = AtomicU64::new(0);

/// Process-lifetime artifact-cache totals (all [`KernelStore`]s).
pub fn stats() -> KernelCacheStats {
    KernelCacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        compiles: COMPILES.load(Ordering::Relaxed),
        errors: ERRORS.load(Ordering::Relaxed),
    }
}

/// Resets the process-wide totals (benchmark isolation).
pub fn stats_reset() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    COMPILES.store(0, Ordering::Relaxed);
    ERRORS.store(0, Ordering::Relaxed);
}

/// A compiled artifact on disk, ready to [`Library::open`].
#[derive(Clone, Debug)]
pub struct Artifact {
    /// Path of the built shared object.
    pub path: PathBuf,
    /// True when the artifact was already on disk (no `rustc` run).
    pub from_cache: bool,
}

/// A directory of compiled kernel artifacts.
///
/// Artifacts are content-addressed: the file name is a 64-bit FNV-1a
/// hash over the caller's logical key, the full kernel source, the
/// compiler version/target triple, and the optimization flags — any
/// change to any of them lands in a different file, so stale artifacts
/// can never be loaded (they are merely never referenced again).
#[derive(Clone, Debug)]
pub struct KernelStore {
    dir: PathBuf,
}

/// Optimization flags baked into every kernel build (and its cache
/// key). Deliberately the generic target, not `target-cpu=native`:
/// on the irregular CSR workloads the host-tuned code generation was
/// measured ~2x *slower* than generic (gather-heavy vectorization of
/// short, variable-length rows), and generic artifacts also stay
/// valid if the cache directory migrates between hosts.
const RUSTC_FLAGS: &[&str] = &[
    "--edition=2021",
    "--crate-type=cdylib",
    "-C",
    "opt-level=3",
    "-C",
    "codegen-units=1",
    "-C",
    "debuginfo=0",
];

impl KernelStore {
    /// The store at the default location: `$BERNOULLI_KERNEL_CACHE`, or
    /// `bernoulli-kernel-cache` under the system temp directory.
    pub fn default_store() -> KernelStore {
        let dir = std::env::var_os(CACHE_DIR_ENV)
            .map(PathBuf::from)
            .unwrap_or_else(|| std::env::temp_dir().join("bernoulli-kernel-cache"));
        KernelStore { dir }
    }

    /// A store rooted at an explicit directory (created on first build).
    pub fn at(dir: impl Into<PathBuf>) -> KernelStore {
        KernelStore { dir: dir.into() }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The artifact path a (key, source) pair would cache under, if the
    /// compiler is usable (the hash covers compiler identity).
    pub fn artifact_path(&self, key: &str, source: &str) -> Result<PathBuf, KernelCacheError> {
        let info = rustc_info()?;
        let mut h = Fnv::new();
        h.write(key.as_bytes());
        h.write(b"\x00");
        h.write(source.as_bytes());
        h.write(b"\x00");
        h.write(info.version.as_bytes());
        h.write(b"\x00");
        h.write(info.triple.as_bytes());
        for f in RUSTC_FLAGS {
            h.write(b"\x00");
            h.write(f.as_bytes());
        }
        let ext = std::env::consts::DLL_EXTENSION;
        Ok(self.dir.join(format!("k{:016x}.{ext}", h.finish())))
    }

    /// Returns the cached artifact for (key, source), compiling it
    /// first when absent. Concurrent builders race benignly: each
    /// compiles to a private temp file and the final `rename` is
    /// atomic, so the winner's bytes are the ones every loader sees.
    pub fn get_or_build(&self, key: &str, source: &str) -> Result<Artifact, KernelCacheError> {
        let path = self.artifact_path(key, source)?;
        if path.is_file() {
            HITS.fetch_add(1, Ordering::Relaxed);
            bernoulli_trace::counter!("kernel.cache_hits");
            return Ok(Artifact {
                path,
                from_cache: true,
            });
        }
        MISSES.fetch_add(1, Ordering::Relaxed);
        bernoulli_trace::counter!("kernel.cache_misses");
        self.build(key, source, &path)?;
        Ok(Artifact {
            path,
            from_cache: false,
        })
    }

    fn build(&self, key: &str, source: &str, path: &Path) -> Result<(), KernelCacheError> {
        bernoulli_trace::span!("kernel.compile");
        let info = rustc_info()?;
        std::fs::create_dir_all(&self.dir).map_err(|e| KernelCacheError::Io {
            detail: format!("creating {:?}: {e}", self.dir),
        })?;
        let pid = std::process::id();
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("kernel");
        let src_path = self.dir.join(format!("{stem}.{pid}.rs"));
        let tmp_out = self.dir.join(format!("{stem}.{pid}.tmp"));
        let cleanup = |p: &Path| {
            let _ = std::fs::remove_file(p);
        };
        std::fs::write(&src_path, source).map_err(|e| KernelCacheError::Io {
            detail: format!("writing {src_path:?}: {e}"),
        })?;
        let out = Command::new(&info.binary)
            .args(RUSTC_FLAGS)
            .arg(format!("--crate-name={stem}"))
            .arg("-o")
            .arg(&tmp_out)
            .arg(&src_path)
            .output();
        let out = match out {
            Ok(o) => o,
            Err(e) => {
                cleanup(&src_path);
                ERRORS.fetch_add(1, Ordering::Relaxed);
                return Err(KernelCacheError::CompilerUnavailable {
                    detail: format!("running {:?}: {e}", info.binary),
                });
            }
        };
        if !out.status.success() {
            cleanup(&src_path);
            cleanup(&tmp_out);
            ERRORS.fetch_add(1, Ordering::Relaxed);
            bernoulli_trace::counter!("kernel.compile_errors");
            let mut stderr = String::from_utf8_lossy(&out.stderr).to_string();
            const MAX: usize = 4000;
            if stderr.len() > MAX {
                let mut cut = MAX;
                while !stderr.is_char_boundary(cut) {
                    cut -= 1;
                }
                stderr.truncate(cut);
                stderr.push_str(" …[truncated]");
            }
            return Err(KernelCacheError::CompileFailed { stderr });
        }
        // Keep the source next to the artifact for debuggability; the
        // rename publishes the artifact atomically.
        let _ = std::fs::rename(&src_path, path.with_extension("rs"));
        let meta = format!("{}\n{}\n{key}\n", info.version, info.triple);
        let _ = std::fs::write(path.with_extension("meta"), meta);
        std::fs::rename(&tmp_out, path).map_err(|e| {
            cleanup(&tmp_out);
            KernelCacheError::Io {
                detail: format!("publishing {path:?}: {e}"),
            }
        })?;
        COMPILES.fetch_add(1, Ordering::Relaxed);
        bernoulli_trace::counter!("kernel.compiles");
        Ok(())
    }
}

/// FNV-1a, 64-bit: tiny, stable across processes (unlike `DefaultHasher`,
/// whose output is explicitly unspecified between runs — useless for
/// naming on-disk artifacts).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Stable 64-bit content hash (FNV-1a) — exposed so callers can build
/// logical cache keys from large inputs without embedding them whole.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.write(bytes);
    h.finish()
}

// ---------------------------------------------------------------------
// Dynamic loading
// ---------------------------------------------------------------------

#[cfg(unix)]
mod dl {
    use std::os::raw::{c_char, c_int, c_void};

    // The C runtime's dynamic loader. `std` already links the symbols
    // on every Unix target, so no extra dependency is introduced.
    extern "C" {
        pub fn dlopen(filename: *const c_char, flags: c_int) -> *mut c_void;
        pub fn dlsym(handle: *mut c_void, symbol: *const c_char) -> *mut c_void;
        pub fn dlclose(handle: *mut c_void) -> c_int;
        pub fn dlerror() -> *mut c_char;
    }

    pub const RTLD_NOW: c_int = 2;

    /// The most recent `dlerror()` message, if any.
    pub fn last_error() -> String {
        // Safety: dlerror returns either null or a NUL-terminated string
        // owned by the loader, valid until the next dl* call on this
        // thread.
        unsafe {
            let p = dlerror();
            if p.is_null() {
                "unknown dl error".to_string()
            } else {
                std::ffi::CStr::from_ptr(p).to_string_lossy().into_owned()
            }
        }
    }
}

/// A loaded shared object. The handle stays open for the lifetime of
/// the value (function pointers resolved from it are only valid while
/// it — or a clone of the owning `Arc` — is alive) and is closed on
/// drop.
#[derive(Debug)]
pub struct Library {
    #[cfg(unix)]
    handle: *mut std::os::raw::c_void,
    path: PathBuf,
}

// Safety: the handle is an opaque token; `dlsym`/`dlclose` are
// thread-safe per POSIX, and the library exposes no interior mutability.
unsafe impl Send for Library {}
unsafe impl Sync for Library {}

impl Library {
    /// Opens a shared object with immediate symbol resolution.
    #[cfg(unix)]
    pub fn open(path: &Path) -> Result<Library, KernelCacheError> {
        let cpath = std::ffi::CString::new(path.as_os_str().as_encoded_bytes()).map_err(|_| {
            KernelCacheError::LoadFailed {
                detail: format!("path {path:?} contains a NUL byte"),
            }
        })?;
        // Safety: cpath is a valid NUL-terminated string; RTLD_NOW is a
        // valid mode.
        let handle = unsafe { dl::dlopen(cpath.as_ptr(), dl::RTLD_NOW) };
        if handle.is_null() {
            return Err(KernelCacheError::LoadFailed {
                detail: dl::last_error(),
            });
        }
        Ok(Library {
            handle,
            path: path.to_path_buf(),
        })
    }

    /// Unsupported off-Unix: callers fall back to their interpreter.
    #[cfg(not(unix))]
    pub fn open(path: &Path) -> Result<Library, KernelCacheError> {
        let _ = path;
        Err(KernelCacheError::Unsupported {
            detail: "dlopen-based loading is only wired up for Unix targets".to_string(),
        })
    }

    /// Resolves an exported symbol to a raw address.
    ///
    /// The address is only meaningful while this `Library` is alive;
    /// callers transmuting it to a function pointer must keep the
    /// library (or its owning `Arc`) alive for as long as the pointer.
    #[cfg(unix)]
    pub fn symbol(&self, name: &str) -> Result<*const (), KernelCacheError> {
        let cname = std::ffi::CString::new(name).map_err(|_| KernelCacheError::SymbolMissing {
            symbol: name.to_string(),
        })?;
        // Safety: handle is a live dlopen handle; cname is NUL-terminated.
        let p = unsafe { dl::dlsym(self.handle, cname.as_ptr()) };
        if p.is_null() {
            return Err(KernelCacheError::SymbolMissing {
                symbol: name.to_string(),
            });
        }
        Ok(p as *const ())
    }

    #[cfg(not(unix))]
    pub fn symbol(&self, name: &str) -> Result<*const (), KernelCacheError> {
        Err(KernelCacheError::SymbolMissing {
            symbol: name.to_string(),
        })
    }

    /// The artifact this library was loaded from.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for Library {
    fn drop(&mut self) {
        #[cfg(unix)]
        // Safety: handle came from dlopen and is closed exactly once.
        unsafe {
            dl::dlclose(self.handle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_hash_is_stable_and_input_sensitive() {
        // FNV-1a reference value for "a".
        assert_eq!(content_hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(content_hash(b"kernel-1"), content_hash(b"kernel-2"));
    }

    #[test]
    fn open_missing_artifact_is_a_typed_error() {
        let err = Library::open(Path::new("/nonexistent/bernoulli-kernel.so"))
            .expect_err("missing file must not open");
        match err {
            KernelCacheError::LoadFailed { .. } | KernelCacheError::Unsupported { .. } => {}
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn store_paths_are_deterministic_and_distinct() {
        // Only meaningful when a compiler is present (the hash covers
        // its identity); skip quietly otherwise.
        let Ok(_) = rustc_info() else { return };
        let s = KernelStore::at("/tmp/bernoulli-kc-test");
        let a = s.artifact_path("k1", "fn a() {}").unwrap();
        let b = s.artifact_path("k1", "fn a() {}").unwrap();
        let c = s.artifact_path("k1", "fn b() {}").unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn compile_failure_is_typed_and_counted() {
        let Ok(_) = rustc_info() else { return };
        let dir = std::env::temp_dir().join(format!("bernoulli-kc-fail-{}", std::process::id()));
        let s = KernelStore::at(&dir);
        let before = stats().errors;
        let err = s
            .get_or_build("bad", "this is not rust")
            .expect_err("garbage source must fail");
        assert!(
            matches!(err, KernelCacheError::CompileFailed { .. }),
            "{err:?}"
        );
        assert!(stats().errors > before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn build_load_call_roundtrip_and_warm_hit() {
        let Ok(_) = rustc_info() else { return };
        let dir = std::env::temp_dir().join(format!("bernoulli-kc-ok-{}", std::process::id()));
        let s = KernelStore::at(&dir);
        let src =
            "#[no_mangle]\npub extern \"C\" fn kc_test_add(a: i64, b: i64) -> i64 { a + b }\n";
        let a1 = s.get_or_build("roundtrip", src).unwrap();
        assert!(!a1.from_cache);
        let a2 = s.get_or_build("roundtrip", src).unwrap();
        assert!(a2.from_cache, "second build must hit the artifact cache");
        let lib = Library::open(&a1.path).unwrap();
        let sym = lib.symbol("kc_test_add").unwrap();
        // Safety: the symbol was just built with exactly this signature,
        // and `lib` outlives the call.
        let f: extern "C" fn(i64, i64) -> i64 = unsafe { std::mem::transmute(sym) };
        assert_eq!(f(20, 22), 42);
        assert!(lib.symbol("no_such_symbol").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
