//! Runtime kernel compilation and on-disk artifact caching.
//!
//! The synthesizer's emitter produces Rust source; this crate turns that
//! source into *running machine code* at runtime: it drives `rustc` to a
//! `cdylib`, caches the built shared object on disk keyed by everything
//! the binary depends on (source text, compiler version, target triple,
//! optimization flags), and loads it through a minimal `dlopen` wrapper.
//! A warm cache — including a *restarted process* — skips the compile
//! entirely and loads in microseconds.
//!
//! Design constraints:
//!
//! - **No external crates.** Dynamic loading uses the `dlopen`/`dlsym`/
//!   `dlclose` symbols the platform C runtime already links on Unix
//!   (`std` itself depends on them); on other platforms every entry
//!   point returns [`KernelCacheError::Unsupported`] so callers can fall
//!   back to their interpreter.
//! - **Typed failures.** A missing compiler, a failed build, a missing
//!   symbol — each is a distinct [`KernelCacheError`] variant; nothing
//!   on these paths panics.
//! - **Observable.** Hits/misses/compiles are counted process-wide
//!   ([`stats`]) and mirrored as `kernel.*` trace counters when the
//!   `trace` feature is enabled.
//! - **Self-healing.** Every artifact is published with a checksum
//!   sidecar and verified on warm hits: a truncated or bit-rotted
//!   shared object is a typed [`KernelCacheError::Corrupt`], evicted,
//!   and rebuilt — never dlopened. Artifacts that misbehave *after*
//!   loading (failed differential validation, bad ABI status) can be
//!   [`KernelStore::quarantine`]d: they are evicted and never rebuilt
//!   or re-loaded until the compiler identity changes. The `rustc`
//!   child runs under a wall-clock timeout (killed and reaped on
//!   expiry), transient failures are retried with backoff, and a
//!   per-store circuit breaker short-circuits to
//!   [`KernelCacheError::CircuitOpen`] after repeated infrastructure
//!   failures so callers fall back to their interpreter without paying
//!   full `rustc` latency per request. Concurrent builders of the same
//!   artifact are coalesced: one compiles, the rest wait and share the
//!   result (or the leader's typed error).
//!
//! The cache directory defaults to `bernoulli-kernel-cache` under the
//! system temp dir and is overridable with `BERNOULLI_KERNEL_CACHE`
//! (CI lanes point this at a persisted directory to carry artifacts
//! across runs). `BERNOULLI_RUSTC` overrides the compiler binary, which
//! doubles as the fallback-path test hook: pointing it at a nonexistent
//! file makes every build report [`KernelCacheError::CompilerUnavailable`].
//! `BERNOULLI_RUSTC_TIMEOUT_MS` overrides the default 60 s build
//! timeout. With the `faults` feature, the `kernel.rustc` and
//! `kernel.dlopen` sites of [`bernoulli_govern::faults`] inject typed
//! failures into the build and load paths for chaos testing.

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Environment variable overriding the `rustc` binary used for kernel
/// builds (also the test hook for the no-compiler fallback path).
pub const RUSTC_ENV: &str = "BERNOULLI_RUSTC";

/// Environment variable overriding the artifact cache directory.
pub const CACHE_DIR_ENV: &str = "BERNOULLI_KERNEL_CACHE";

/// Environment variable overriding the `rustc` wall-clock timeout, in
/// milliseconds ([`DEFAULT_BUILD_TIMEOUT`] otherwise).
pub const RUSTC_TIMEOUT_ENV: &str = "BERNOULLI_RUSTC_TIMEOUT_MS";

/// Default wall-clock ceiling on one `rustc` child. Generous — kernel
/// crates build in well under a second — so only a wedged compiler or
/// a saturated host ever trips it.
pub const DEFAULT_BUILD_TIMEOUT: Duration = Duration::from_secs(60);

/// Build attempts per [`KernelStore::get_or_build`] call: transient
/// failures (spawn errors, I/O trouble, timeouts) are retried with
/// backoff this many times in total before the typed error surfaces.
const BUILD_ATTEMPTS: u32 = 3;

/// Consecutive *infrastructure* build failures (timeouts, I/O, a
/// vanished compiler — not source rejections) that trip a store's
/// circuit breaker.
const BREAKER_TRIP: u32 = 3;

/// How long a tripped breaker short-circuits builds before letting one
/// probe attempt through (half-open).
const BREAKER_COOLDOWN: Duration = Duration::from_secs(10);

/// Why a kernel could not be compiled, cached, or loaded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KernelCacheError {
    /// No usable `rustc` on this host (not in `PATH`, or the
    /// `BERNOULLI_RUSTC` override does not run).
    CompilerUnavailable { detail: String },
    /// `rustc` ran and rejected the kernel source.
    CompileFailed { stderr: String },
    /// The `rustc` child exceeded the wall-clock build timeout and was
    /// killed (and reaped).
    Timeout { ms: u64 },
    /// Filesystem trouble around the cache directory.
    Io { detail: String },
    /// An on-disk artifact failed checksum verification against its
    /// sidecar (truncated, bit-rotted, or the sidecar is missing). The
    /// artifact is evicted; the caller's build transparently rebuilds.
    Corrupt { detail: String },
    /// The artifact is on the store's quarantine list (it previously
    /// failed differential validation or returned a bad ABI status)
    /// and will not be rebuilt or re-loaded until the compiler
    /// identity changes.
    Quarantined { artifact: String },
    /// The store's circuit breaker is open after repeated
    /// infrastructure build failures; the build was short-circuited so
    /// the caller can fall back to its interpreter without paying
    /// `rustc` latency.
    CircuitOpen { failures: u32 },
    /// The built artifact exists but the dynamic loader refused it.
    LoadFailed { detail: String },
    /// The library loaded but does not export the requested symbol.
    SymbolMissing { symbol: String },
    /// Dynamic loading is not implemented for this platform.
    Unsupported { detail: String },
}

impl std::fmt::Display for KernelCacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelCacheError::CompilerUnavailable { detail } => {
                write!(f, "no usable rustc for kernel compilation: {detail}")
            }
            KernelCacheError::CompileFailed { stderr } => {
                write!(f, "kernel compilation failed: {stderr}")
            }
            KernelCacheError::Timeout { ms } => {
                write!(
                    f,
                    "kernel compilation timed out after {ms} ms (rustc killed)"
                )
            }
            KernelCacheError::Io { detail } => write!(f, "kernel cache I/O error: {detail}"),
            KernelCacheError::Corrupt { detail } => {
                write!(f, "kernel artifact failed checksum verification: {detail}")
            }
            KernelCacheError::Quarantined { artifact } => {
                write!(
                    f,
                    "kernel artifact {artifact} is quarantined (failed validation \
                     or returned a bad ABI status under this compiler)"
                )
            }
            KernelCacheError::CircuitOpen { failures } => {
                write!(
                    f,
                    "kernel build circuit breaker open after {failures} consecutive \
                     infrastructure failures; build short-circuited"
                )
            }
            KernelCacheError::LoadFailed { detail } => {
                write!(f, "loading kernel artifact failed: {detail}")
            }
            KernelCacheError::SymbolMissing { symbol } => {
                write!(f, "kernel artifact exports no symbol {symbol:?}")
            }
            KernelCacheError::Unsupported { detail } => {
                write!(f, "runtime kernel loading unsupported here: {detail}")
            }
        }
    }
}

impl std::error::Error for KernelCacheError {}

/// The compiler identity every cached artifact is keyed under.
#[derive(Clone, Debug)]
pub struct RustcInfo {
    /// The binary that was probed (`rustc` or the `BERNOULLI_RUSTC`
    /// override).
    pub binary: String,
    /// Full `rustc -vV` version line, e.g. `rustc 1.75.0 (…)`.
    pub version: String,
    /// Host target triple reported by `rustc -vV`.
    pub triple: String,
}

/// Probes the kernel compiler once per process (memoized, including the
/// failure). The binary is `$BERNOULLI_RUSTC` when set, else `rustc`
/// from `PATH`.
pub fn rustc_info() -> Result<&'static RustcInfo, KernelCacheError> {
    static INFO: OnceLock<Result<RustcInfo, KernelCacheError>> = OnceLock::new();
    INFO.get_or_init(probe_rustc).as_ref().map_err(Clone::clone)
}

fn probe_rustc() -> Result<RustcInfo, KernelCacheError> {
    let binary = std::env::var(RUSTC_ENV).unwrap_or_else(|_| "rustc".to_string());
    let out = Command::new(&binary).arg("-vV").output().map_err(|e| {
        KernelCacheError::CompilerUnavailable {
            detail: format!("running {binary:?} -vV: {e}"),
        }
    })?;
    if !out.status.success() {
        return Err(KernelCacheError::CompilerUnavailable {
            detail: format!("{binary:?} -vV exited with {}", out.status),
        });
    }
    let text = String::from_utf8_lossy(&out.stdout);
    let mut version = String::new();
    let mut triple = String::new();
    for line in text.lines() {
        if let Some(h) = line.strip_prefix("host: ") {
            triple = h.trim().to_string();
        } else if version.is_empty() && line.starts_with("rustc ") {
            version = line.trim().to_string();
        }
    }
    if version.is_empty() || triple.is_empty() {
        return Err(KernelCacheError::CompilerUnavailable {
            detail: format!("unparseable {binary:?} -vV output: {text:?}"),
        });
    }
    Ok(RustcInfo {
        binary,
        version,
        triple,
    })
}

/// Hit/miss/compile totals of the process-wide artifact cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCacheStats {
    /// Builds served from an existing on-disk artifact.
    pub hits: u64,
    /// Builds that had to invoke `rustc`.
    pub misses: u64,
    /// Successful `rustc` invocations.
    pub compiles: u64,
    /// Failed `rustc` invocations (bad source or I/O).
    pub errors: u64,
    /// Warm hits whose artifact failed checksum verification (evicted
    /// and rebuilt).
    pub corrupt: u64,
    /// Artifacts placed on a quarantine list.
    pub quarantined: u64,
    /// Build attempts retried after a transient failure.
    pub retries: u64,
    /// Builds served by waiting on another in-flight build of the same
    /// artifact instead of compiling (single-flight coalescing).
    pub coalesced: u64,
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static COMPILES: AtomicU64 = AtomicU64::new(0);
static ERRORS: AtomicU64 = AtomicU64::new(0);
static CORRUPT: AtomicU64 = AtomicU64::new(0);
static QUARANTINED: AtomicU64 = AtomicU64::new(0);
static RETRIES: AtomicU64 = AtomicU64::new(0);
static COALESCED: AtomicU64 = AtomicU64::new(0);

/// Process-lifetime artifact-cache totals (all [`KernelStore`]s).
pub fn stats() -> KernelCacheStats {
    KernelCacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        compiles: COMPILES.load(Ordering::Relaxed),
        errors: ERRORS.load(Ordering::Relaxed),
        corrupt: CORRUPT.load(Ordering::Relaxed),
        quarantined: QUARANTINED.load(Ordering::Relaxed),
        retries: RETRIES.load(Ordering::Relaxed),
        coalesced: COALESCED.load(Ordering::Relaxed),
    }
}

/// Resets the process-wide totals (benchmark isolation).
pub fn stats_reset() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    COMPILES.store(0, Ordering::Relaxed);
    ERRORS.store(0, Ordering::Relaxed);
    CORRUPT.store(0, Ordering::Relaxed);
    QUARANTINED.store(0, Ordering::Relaxed);
    RETRIES.store(0, Ordering::Relaxed);
    COALESCED.store(0, Ordering::Relaxed);
}

/// Artifacts whose checksum has verified clean this process (paths).
/// Verification runs once per artifact per process; warm loads after
/// the first skip the re-read, keeping the steady-state hit path at
/// its original cost.
fn verified() -> &'static Mutex<HashSet<PathBuf>> {
    static V: OnceLock<Mutex<HashSet<PathBuf>>> = OnceLock::new();
    V.get_or_init(|| Mutex::new(HashSet::new()))
}

/// One in-flight build per artifact path (single-flight coalescing).
struct Flight {
    state: Mutex<Option<Result<(), KernelCacheError>>>,
    cv: Condvar,
}

fn flights() -> &'static Mutex<HashMap<PathBuf, Arc<Flight>>> {
    static F: OnceLock<Mutex<HashMap<PathBuf, Arc<Flight>>>> = OnceLock::new();
    F.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Per-directory circuit-breaker state (process-wide: stores are cheap
/// value types, so the breaker must outlive any one instance).
struct Breaker {
    consecutive: u32,
    open_until: Option<Instant>,
}

fn breakers() -> &'static Mutex<HashMap<PathBuf, Breaker>> {
    static B: OnceLock<Mutex<HashMap<PathBuf, Breaker>>> = OnceLock::new();
    B.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A compiled artifact on disk, ready to [`Library::open`].
#[derive(Clone, Debug)]
pub struct Artifact {
    /// Path of the built shared object.
    pub path: PathBuf,
    /// True when the artifact was already on disk (no `rustc` run).
    pub from_cache: bool,
}

/// A directory of compiled kernel artifacts.
///
/// Artifacts are content-addressed: the file name is a 64-bit FNV-1a
/// hash over the caller's logical key, the full kernel source, the
/// compiler version/target triple, and the optimization flags — any
/// change to any of them lands in a different file, so stale artifacts
/// can never be loaded (they are merely never referenced again).
#[derive(Clone, Debug)]
pub struct KernelStore {
    dir: PathBuf,
    timeout: Duration,
}

/// Optimization flags baked into every kernel build (and its cache
/// key). Deliberately the generic target, not `target-cpu=native`:
/// on the irregular CSR workloads the host-tuned code generation was
/// measured ~2x *slower* than generic (gather-heavy vectorization of
/// short, variable-length rows), and generic artifacts also stay
/// valid if the cache directory migrates between hosts.
const RUSTC_FLAGS: &[&str] = &[
    "--edition=2021",
    "--crate-type=cdylib",
    "-C",
    "opt-level=3",
    "-C",
    "codegen-units=1",
    "-C",
    "debuginfo=0",
];

impl KernelStore {
    /// The store at the default location: `$BERNOULLI_KERNEL_CACHE`, or
    /// `bernoulli-kernel-cache` under the system temp directory.
    pub fn default_store() -> KernelStore {
        let dir = std::env::var_os(CACHE_DIR_ENV)
            .map(PathBuf::from)
            .unwrap_or_else(|| std::env::temp_dir().join("bernoulli-kernel-cache"));
        KernelStore {
            dir,
            timeout: env_timeout(),
        }
    }

    /// A store rooted at an explicit directory (created on first build).
    pub fn at(dir: impl Into<PathBuf>) -> KernelStore {
        KernelStore {
            dir: dir.into(),
            timeout: env_timeout(),
        }
    }

    /// Same store, with an explicit `rustc` wall-clock timeout (tests
    /// use this instead of racing on the process environment).
    pub fn with_timeout(mut self, timeout: Duration) -> KernelStore {
        self.timeout = timeout;
        self
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The artifact path a (key, source) pair would cache under, if the
    /// compiler is usable (the hash covers compiler identity).
    pub fn artifact_path(&self, key: &str, source: &str) -> Result<PathBuf, KernelCacheError> {
        let info = rustc_info()?;
        let mut h = Fnv::new();
        h.write(key.as_bytes());
        h.write(b"\x00");
        h.write(source.as_bytes());
        h.write(b"\x00");
        h.write(info.version.as_bytes());
        h.write(b"\x00");
        h.write(info.triple.as_bytes());
        for f in RUSTC_FLAGS {
            h.write(b"\x00");
            h.write(f.as_bytes());
        }
        let ext = std::env::consts::DLL_EXTENSION;
        Ok(self.dir.join(format!("k{:016x}.{ext}", h.finish())))
    }

    /// Returns the cached artifact for (key, source), compiling it
    /// first when absent. Warm hits are verified against the checksum
    /// sidecar (once per artifact per process); a corrupt artifact is
    /// evicted and transparently rebuilt. Quarantined artifacts are
    /// refused outright. Concurrent builders of the same artifact are
    /// coalesced: one invokes `rustc`, the rest wait and share the
    /// outcome (publication itself is an atomic `rename`, so even
    /// cross-process races stay benign).
    pub fn get_or_build(&self, key: &str, source: &str) -> Result<Artifact, KernelCacheError> {
        let path = self.artifact_path(key, source)?;
        if self.is_quarantined(&path) {
            QUARANTINED.fetch_add(1, Ordering::Relaxed);
            bernoulli_trace::counter!("kernel.quarantine_refusals");
            return Err(KernelCacheError::Quarantined {
                artifact: path.display().to_string(),
            });
        }
        if path.is_file() {
            match self.verify(&path) {
                Ok(()) => {
                    HITS.fetch_add(1, Ordering::Relaxed);
                    bernoulli_trace::counter!("kernel.cache_hits");
                    return Ok(Artifact {
                        path,
                        from_cache: true,
                    });
                }
                Err(KernelCacheError::Corrupt { .. }) => {
                    // Evicted by verify(); fall through to a rebuild.
                }
                Err(e) => return Err(e),
            }
        }
        MISSES.fetch_add(1, Ordering::Relaxed);
        bernoulli_trace::counter!("kernel.cache_misses");
        self.build_coalesced(key, source, &path)?;
        Ok(Artifact {
            path,
            from_cache: false,
        })
    }

    /// Verifies an on-disk artifact against its checksum sidecar.
    ///
    /// Success is memoized per path for the life of the process, so the
    /// steady-state warm-load path pays the artifact re-read exactly
    /// once. On failure (missing sidecar, length or hash mismatch) the
    /// artifact and its sidecars are evicted and a typed
    /// [`KernelCacheError::Corrupt`] is returned.
    pub fn verify(&self, path: &Path) -> Result<(), KernelCacheError> {
        if lock(verified()).contains(path) {
            return Ok(());
        }
        let detail = match check_sidecar(path) {
            Ok(()) => {
                lock(verified()).insert(path.to_path_buf());
                return Ok(());
            }
            Err(d) => d,
        };
        CORRUPT.fetch_add(1, Ordering::Relaxed);
        bernoulli_trace::counter!("kernel.corrupt_evictions");
        evict(path);
        Err(KernelCacheError::Corrupt { detail })
    }

    // --- quarantine -------------------------------------------------

    fn quarantine_file(&self) -> PathBuf {
        self.dir.join("quarantine.list")
    }

    /// The quarantine list's header line: a fingerprint of the compiler
    /// identity. A list written under a different rustc is stale —
    /// artifact hashes cover compiler identity, so the named artifacts
    /// can never be produced again — and is ignored (then overwritten).
    fn rustc_fingerprint() -> Option<String> {
        let info = rustc_info().ok()?;
        let mut h = Fnv::new();
        h.write(info.version.as_bytes());
        h.write(b"\x00");
        h.write(info.triple.as_bytes());
        Some(format!("rustc:{:016x}", h.finish()))
    }

    fn quarantine_stems(&self) -> Vec<String> {
        let Some(fp) = Self::rustc_fingerprint() else {
            return Vec::new();
        };
        let Ok(text) = std::fs::read_to_string(self.quarantine_file()) else {
            return Vec::new();
        };
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(fp.as_str()) {
            return Vec::new(); // stale compiler identity
        }
        lines
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .map(String::from)
            .collect()
    }

    /// True when the artifact is on this store's quarantine list under
    /// the current compiler identity.
    pub fn is_quarantined(&self, path: &Path) -> bool {
        let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
            return false;
        };
        self.quarantine_stems().iter().any(|s| s == stem)
    }

    /// Quarantines an artifact: evicts it from disk and records it in
    /// the store's persisted quarantine list so it is never rebuilt or
    /// re-loaded until the compiler identity changes. Callers invoke
    /// this when a *loaded* kernel misbehaves (failed differential
    /// validation, bad ABI status) — checksum corruption is handled
    /// automatically by [`KernelStore::verify`].
    pub fn quarantine(&self, path: &Path) {
        let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
            return;
        };
        let Some(fp) = Self::rustc_fingerprint() else {
            return;
        };
        let mut stems = self.quarantine_stems();
        if !stems.iter().any(|s| s == stem) {
            stems.push(stem.to_string());
            QUARANTINED.fetch_add(1, Ordering::Relaxed);
            bernoulli_trace::counter!("kernel.quarantines");
        }
        let mut text = fp;
        for s in &stems {
            text.push('\n');
            text.push_str(s);
        }
        text.push('\n');
        let _ = std::fs::create_dir_all(&self.dir);
        let _ = std::fs::write(self.quarantine_file(), text);
        evict(path);
        lock(verified()).remove(path);
    }

    /// Clears the store's quarantine list (test isolation).
    pub fn clear_quarantine(&self) {
        let _ = std::fs::remove_file(self.quarantine_file());
    }

    // --- circuit breaker --------------------------------------------

    /// True when this store's circuit breaker is currently open.
    pub fn breaker_tripped(&self) -> bool {
        let mut map = lock(breakers());
        match map.get_mut(&self.dir) {
            Some(b) => match b.open_until {
                Some(t) => Instant::now() < t,
                None => false,
            },
            None => false,
        }
    }

    /// Resets this store's circuit breaker (test isolation).
    pub fn breaker_reset(&self) {
        lock(breakers()).remove(&self.dir);
    }

    /// Returns an error when the breaker is open. After the cooldown the
    /// breaker goes half-open: exactly one build is let through as a
    /// probe (the next failure re-trips, a success resets).
    fn breaker_check(&self) -> Result<(), KernelCacheError> {
        let mut map = lock(breakers());
        let Some(b) = map.get_mut(&self.dir) else {
            return Ok(());
        };
        if let Some(t) = b.open_until {
            if Instant::now() < t {
                return Err(KernelCacheError::CircuitOpen {
                    failures: b.consecutive,
                });
            }
            b.open_until = None; // half-open: admit one probe
        }
        Ok(())
    }

    fn breaker_failure(&self) {
        let mut map = lock(breakers());
        let b = map.entry(self.dir.clone()).or_insert(Breaker {
            consecutive: 0,
            open_until: None,
        });
        b.consecutive += 1;
        if b.consecutive >= BREAKER_TRIP {
            b.open_until = Some(Instant::now() + BREAKER_COOLDOWN);
            bernoulli_trace::counter!("kernel.breaker_trips");
        }
    }

    fn breaker_success(&self) {
        lock(breakers()).remove(&self.dir);
    }

    // --- building ---------------------------------------------------

    /// Single-flight wrapper around [`KernelStore::build`]: concurrent
    /// builders of the same artifact path share one `rustc` run. The
    /// leader publishes its outcome (typed error included) to every
    /// waiter; a panicking leader publishes an `Io` error rather than
    /// wedging followers.
    fn build_coalesced(
        &self,
        key: &str,
        source: &str,
        path: &Path,
    ) -> Result<(), KernelCacheError> {
        let (flight, leader) = {
            let mut map = lock(flights());
            match map.get(path) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Arc::new(Flight {
                        state: Mutex::new(None),
                        cv: Condvar::new(),
                    });
                    map.insert(path.to_path_buf(), Arc::clone(&f));
                    (f, true)
                }
            }
        };
        if !leader {
            COALESCED.fetch_add(1, Ordering::Relaxed);
            bernoulli_trace::counter!("kernel.builds_coalesced");
            let mut state = lock(&flight.state);
            while state.is_none() {
                state = flight.cv.wait(state).unwrap_or_else(|e| e.into_inner());
            }
            return state.clone().expect("flight state set before notify");
        }
        // Leader. The guard guarantees followers are released (with an
        // error) even if build() panics.
        struct FlightGuard<'a> {
            flight: &'a Flight,
            path: &'a Path,
            done: bool,
        }
        impl FlightGuard<'_> {
            fn publish(&mut self, r: Result<(), KernelCacheError>) {
                lock(flights()).remove(self.path);
                *lock(&self.flight.state) = Some(r);
                self.flight.cv.notify_all();
                self.done = true;
            }
        }
        impl Drop for FlightGuard<'_> {
            fn drop(&mut self) {
                if !self.done {
                    self.publish(Err(KernelCacheError::Io {
                        detail: "kernel build leader panicked".to_string(),
                    }));
                }
            }
        }
        let mut guard = FlightGuard {
            flight: &flight,
            path,
            done: false,
        };
        let result = self.build(key, source, path);
        guard.publish(result.clone());
        result
    }

    /// Builds with breaker short-circuit, bounded retry with backoff
    /// for transient failures, and failure classification:
    ///
    /// - `CompileFailed` is a deterministic source rejection — no
    ///   retry, and it does *not* count toward the breaker.
    /// - `Timeout` / `Io` are transient infrastructure failures —
    ///   retried with backoff, then counted toward the breaker.
    /// - `CompilerUnavailable` is memoized by [`rustc_info`] and costs
    ///   nothing to re-report — no retry, no breaker (the breaker
    ///   exists to avoid paying `rustc` latency, which this path never
    ///   does).
    fn build(&self, key: &str, source: &str, path: &Path) -> Result<(), KernelCacheError> {
        self.breaker_check()?;
        let mut attempt = 0;
        loop {
            attempt += 1;
            let err = match self.build_once(key, source, path) {
                Ok(()) => {
                    self.breaker_success();
                    return Ok(());
                }
                Err(e) => e,
            };
            let transient = matches!(
                err,
                KernelCacheError::Timeout { .. } | KernelCacheError::Io { .. }
            );
            if transient && attempt < BUILD_ATTEMPTS {
                RETRIES.fetch_add(1, Ordering::Relaxed);
                bernoulli_trace::counter!("kernel.build_retries");
                std::thread::sleep(Duration::from_millis(10 * (1 << (attempt - 1))));
                continue;
            }
            ERRORS.fetch_add(1, Ordering::Relaxed);
            if transient {
                self.breaker_failure();
            }
            return Err(err);
        }
    }

    fn build_once(&self, key: &str, source: &str, path: &Path) -> Result<(), KernelCacheError> {
        bernoulli_trace::span!("kernel.compile");
        if bernoulli_govern::faults::fail("kernel.rustc") {
            return Err(KernelCacheError::Io {
                detail: "injected fault at kernel.rustc (chaos test)".to_string(),
            });
        }
        let info = rustc_info()?;
        std::fs::create_dir_all(&self.dir).map_err(|e| KernelCacheError::Io {
            detail: format!("creating {:?}: {e}", self.dir),
        })?;
        let pid = std::process::id();
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("kernel");
        let src_path = self.dir.join(format!("{stem}.{pid}.rs"));
        let tmp_out = self.dir.join(format!("{stem}.{pid}.tmp"));
        let cleanup = |p: &Path| {
            let _ = std::fs::remove_file(p);
        };
        std::fs::write(&src_path, source).map_err(|e| KernelCacheError::Io {
            detail: format!("writing {src_path:?}: {e}"),
        })?;
        let mut child = match Command::new(&info.binary)
            .args(RUSTC_FLAGS)
            .arg(format!("--crate-name={stem}"))
            .arg("-o")
            .arg(&tmp_out)
            .arg(&src_path)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
        {
            Ok(c) => c,
            Err(e) => {
                cleanup(&src_path);
                return Err(KernelCacheError::CompilerUnavailable {
                    detail: format!("running {:?}: {e}", info.binary),
                });
            }
        };
        // Drain stderr on a helper thread so a chatty compiler can
        // never deadlock against a full pipe while we poll for exit.
        let stderr_pipe = child.stderr.take();
        let drain = std::thread::spawn(move || {
            let mut buf = Vec::new();
            if let Some(mut pipe) = stderr_pipe {
                use std::io::Read;
                let _ = pipe.read_to_end(&mut buf);
            }
            buf
        });
        let deadline = Instant::now() + self.timeout;
        let status = loop {
            match child.try_wait() {
                Ok(Some(status)) => break status,
                Ok(None) => {
                    if Instant::now() >= deadline {
                        // Kill and reap: wait() after kill() collects
                        // the zombie even when the kill races exit.
                        let _ = child.kill();
                        let _ = child.wait();
                        let _ = drain.join();
                        cleanup(&src_path);
                        cleanup(&tmp_out);
                        bernoulli_trace::counter!("kernel.build_timeouts");
                        return Err(KernelCacheError::Timeout {
                            ms: self.timeout.as_millis() as u64,
                        });
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    let _ = drain.join();
                    cleanup(&src_path);
                    cleanup(&tmp_out);
                    return Err(KernelCacheError::Io {
                        detail: format!("waiting on rustc: {e}"),
                    });
                }
            }
        };
        let stderr_bytes = drain.join().unwrap_or_default();
        if !status.success() {
            cleanup(&src_path);
            cleanup(&tmp_out);
            bernoulli_trace::counter!("kernel.compile_errors");
            let mut stderr = String::from_utf8_lossy(&stderr_bytes).to_string();
            const MAX: usize = 4000;
            if stderr.len() > MAX {
                let mut cut = MAX;
                while !stderr.is_char_boundary(cut) {
                    cut -= 1;
                }
                stderr.truncate(cut);
                stderr.push_str(" …[truncated]");
            }
            return Err(KernelCacheError::CompileFailed { stderr });
        }
        // Checksum the built bytes and publish the sidecar *before* the
        // artifact itself: a loader that sees the artifact always sees
        // its sidecar too.
        let bytes = std::fs::read(&tmp_out).map_err(|e| {
            cleanup(&src_path);
            cleanup(&tmp_out);
            KernelCacheError::Io {
                detail: format!("reading built artifact {tmp_out:?}: {e}"),
            }
        })?;
        let sum = format!("{:016x} {}\n", content_hash(&bytes), bytes.len());
        std::fs::write(sidecar_path(path), sum).map_err(|e| {
            cleanup(&src_path);
            cleanup(&tmp_out);
            KernelCacheError::Io {
                detail: format!("writing checksum sidecar for {path:?}: {e}"),
            }
        })?;
        // Keep the source next to the artifact for debuggability; the
        // rename publishes the artifact atomically.
        let _ = std::fs::rename(&src_path, path.with_extension("rs"));
        let meta = format!("{}\n{}\n{key}\n", info.version, info.triple);
        let _ = std::fs::write(path.with_extension("meta"), meta);
        std::fs::rename(&tmp_out, path).map_err(|e| {
            cleanup(&tmp_out);
            KernelCacheError::Io {
                detail: format!("publishing {path:?}: {e}"),
            }
        })?;
        lock(verified()).insert(path.to_path_buf());
        COMPILES.fetch_add(1, Ordering::Relaxed);
        bernoulli_trace::counter!("kernel.compiles");
        Ok(())
    }
}

/// The `rustc` wall-clock timeout from `BERNOULLI_RUSTC_TIMEOUT_MS`, or
/// [`DEFAULT_BUILD_TIMEOUT`].
fn env_timeout() -> Duration {
    std::env::var(RUSTC_TIMEOUT_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(DEFAULT_BUILD_TIMEOUT)
}

/// The checksum sidecar next to an artifact: `<stem>.sum`, containing
/// `"{fnv64:016x} {byte_len}\n"` over the artifact bytes.
fn sidecar_path(path: &Path) -> PathBuf {
    path.with_extension("sum")
}

/// Compares an artifact against its sidecar. `Err(detail)` on any
/// mismatch (including an unreadable artifact or missing sidecar).
fn check_sidecar(path: &Path) -> Result<(), String> {
    let sum = std::fs::read_to_string(sidecar_path(path))
        .map_err(|e| format!("{path:?}: missing/unreadable checksum sidecar: {e}"))?;
    let mut parts = sum.split_whitespace();
    let (Some(want_hash), Some(want_len)) = (parts.next(), parts.next()) else {
        return Err(format!("{path:?}: malformed checksum sidecar {sum:?}"));
    };
    let bytes = std::fs::read(path).map_err(|e| format!("{path:?}: unreadable artifact: {e}"))?;
    if want_len != bytes.len().to_string() {
        return Err(format!(
            "{path:?}: length mismatch (sidecar says {want_len}, artifact is {})",
            bytes.len()
        ));
    }
    let got = format!("{:016x}", content_hash(&bytes));
    if want_hash != got {
        return Err(format!(
            "{path:?}: content hash mismatch (sidecar {want_hash}, artifact {got})"
        ));
    }
    Ok(())
}

/// Removes an artifact and all its sidecars from disk.
fn evict(path: &Path) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(sidecar_path(path));
    let _ = std::fs::remove_file(path.with_extension("meta"));
    let _ = std::fs::remove_file(path.with_extension("rs"));
    lock(verified()).remove(path);
}

/// FNV-1a, 64-bit: tiny, stable across processes (unlike `DefaultHasher`,
/// whose output is explicitly unspecified between runs — useless for
/// naming on-disk artifacts).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Stable 64-bit content hash (FNV-1a) — exposed so callers can build
/// logical cache keys from large inputs without embedding them whole.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.write(bytes);
    h.finish()
}

// ---------------------------------------------------------------------
// Dynamic loading
// ---------------------------------------------------------------------

#[cfg(unix)]
mod dl {
    use std::os::raw::{c_char, c_int, c_void};

    // The C runtime's dynamic loader. `std` already links the symbols
    // on every Unix target, so no extra dependency is introduced.
    extern "C" {
        pub fn dlopen(filename: *const c_char, flags: c_int) -> *mut c_void;
        pub fn dlsym(handle: *mut c_void, symbol: *const c_char) -> *mut c_void;
        pub fn dlclose(handle: *mut c_void) -> c_int;
        pub fn dlerror() -> *mut c_char;
    }

    pub const RTLD_NOW: c_int = 2;

    /// The most recent `dlerror()` message, if any.
    pub fn last_error() -> String {
        // Safety: dlerror returns either null or a NUL-terminated string
        // owned by the loader, valid until the next dl* call on this
        // thread.
        unsafe {
            let p = dlerror();
            if p.is_null() {
                "unknown dl error".to_string()
            } else {
                std::ffi::CStr::from_ptr(p).to_string_lossy().into_owned()
            }
        }
    }
}

/// A loaded shared object. The handle stays open for the lifetime of
/// the value (function pointers resolved from it are only valid while
/// it — or a clone of the owning `Arc` — is alive) and is closed on
/// drop.
#[derive(Debug)]
pub struct Library {
    #[cfg(unix)]
    handle: *mut std::os::raw::c_void,
    path: PathBuf,
}

// Safety: the handle is an opaque token; `dlsym`/`dlclose` are
// thread-safe per POSIX, and the library exposes no interior mutability.
unsafe impl Send for Library {}
unsafe impl Sync for Library {}

impl Library {
    /// Opens a shared object with immediate symbol resolution.
    #[cfg(unix)]
    pub fn open(path: &Path) -> Result<Library, KernelCacheError> {
        if bernoulli_govern::faults::fail("kernel.dlopen") {
            return Err(KernelCacheError::LoadFailed {
                detail: "injected fault at kernel.dlopen (chaos test)".to_string(),
            });
        }
        let cpath = std::ffi::CString::new(path.as_os_str().as_encoded_bytes()).map_err(|_| {
            KernelCacheError::LoadFailed {
                detail: format!("path {path:?} contains a NUL byte"),
            }
        })?;
        // Safety: cpath is a valid NUL-terminated string; RTLD_NOW is a
        // valid mode.
        let handle = unsafe { dl::dlopen(cpath.as_ptr(), dl::RTLD_NOW) };
        if handle.is_null() {
            return Err(KernelCacheError::LoadFailed {
                detail: dl::last_error(),
            });
        }
        Ok(Library {
            handle,
            path: path.to_path_buf(),
        })
    }

    /// Unsupported off-Unix: callers fall back to their interpreter.
    #[cfg(not(unix))]
    pub fn open(path: &Path) -> Result<Library, KernelCacheError> {
        let _ = path;
        Err(KernelCacheError::Unsupported {
            detail: "dlopen-based loading is only wired up for Unix targets".to_string(),
        })
    }

    /// Resolves an exported symbol to a raw address.
    ///
    /// The address is only meaningful while this `Library` is alive;
    /// callers transmuting it to a function pointer must keep the
    /// library (or its owning `Arc`) alive for as long as the pointer.
    #[cfg(unix)]
    pub fn symbol(&self, name: &str) -> Result<*const (), KernelCacheError> {
        let cname = std::ffi::CString::new(name).map_err(|_| KernelCacheError::SymbolMissing {
            symbol: name.to_string(),
        })?;
        // Safety: handle is a live dlopen handle; cname is NUL-terminated.
        let p = unsafe { dl::dlsym(self.handle, cname.as_ptr()) };
        if p.is_null() {
            return Err(KernelCacheError::SymbolMissing {
                symbol: name.to_string(),
            });
        }
        Ok(p as *const ())
    }

    #[cfg(not(unix))]
    pub fn symbol(&self, name: &str) -> Result<*const (), KernelCacheError> {
        Err(KernelCacheError::SymbolMissing {
            symbol: name.to_string(),
        })
    }

    /// The artifact this library was loaded from.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for Library {
    fn drop(&mut self) {
        #[cfg(unix)]
        // Safety: handle came from dlopen and is closed exactly once.
        unsafe {
            dl::dlclose(self.handle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_hash_is_stable_and_input_sensitive() {
        // FNV-1a reference value for "a".
        assert_eq!(content_hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(content_hash(b"kernel-1"), content_hash(b"kernel-2"));
    }

    #[test]
    fn open_missing_artifact_is_a_typed_error() {
        let err = Library::open(Path::new("/nonexistent/bernoulli-kernel.so"))
            .expect_err("missing file must not open");
        match err {
            KernelCacheError::LoadFailed { .. } | KernelCacheError::Unsupported { .. } => {}
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn store_paths_are_deterministic_and_distinct() {
        // Only meaningful when a compiler is present (the hash covers
        // its identity); skip quietly otherwise.
        let Ok(_) = rustc_info() else { return };
        let s = KernelStore::at("/tmp/bernoulli-kc-test");
        let a = s.artifact_path("k1", "fn a() {}").unwrap();
        let b = s.artifact_path("k1", "fn a() {}").unwrap();
        let c = s.artifact_path("k1", "fn b() {}").unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn compile_failure_is_typed_and_counted() {
        let Ok(_) = rustc_info() else { return };
        let dir = std::env::temp_dir().join(format!("bernoulli-kc-fail-{}", std::process::id()));
        let s = KernelStore::at(&dir);
        let before = stats().errors;
        let err = s
            .get_or_build("bad", "this is not rust")
            .expect_err("garbage source must fail");
        assert!(
            matches!(err, KernelCacheError::CompileFailed { .. }),
            "{err:?}"
        );
        assert!(stats().errors > before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    const ADD_SRC: &str =
        "#[no_mangle]\npub extern \"C\" fn kc_test_add2(a: i64, b: i64) -> i64 { a + b }\n";

    #[test]
    fn corrupt_artifact_is_evicted_and_rebuilt() {
        let Ok(_) = rustc_info() else { return };
        let dir = std::env::temp_dir().join(format!("bernoulli-kc-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = KernelStore::at(&dir);
        let a = s.get_or_build("corrupt", ADD_SRC).unwrap();
        assert!(!a.from_cache);
        // Truncate the artifact behind the cache's back and clear the
        // in-process verification memo (a fresh process would start
        // with it empty).
        std::fs::write(&a.path, b"garbage").unwrap();
        lock(verified()).remove(&a.path);
        let before = stats().corrupt;
        let again = s.get_or_build("corrupt", ADD_SRC).unwrap();
        assert!(
            !again.from_cache,
            "corrupt artifact must be rebuilt, not served"
        );
        assert!(stats().corrupt > before);
        // The rebuilt artifact must verify and load.
        s.verify(&again.path).unwrap();
        let lib = Library::open(&again.path).unwrap();
        assert!(lib.symbol("kc_test_add2").is_ok());
        drop(lib);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_reports_typed_corrupt_error() {
        let Ok(_) = rustc_info() else { return };
        let dir = std::env::temp_dir().join(format!("bernoulli-kc-verify-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = KernelStore::at(&dir);
        let a = s.get_or_build("verify", ADD_SRC).unwrap();
        s.verify(&a.path).unwrap();
        std::fs::write(&a.path, b"truncated").unwrap();
        lock(verified()).remove(&a.path);
        let err = s.verify(&a.path).expect_err("tampered artifact must fail");
        assert!(matches!(err, KernelCacheError::Corrupt { .. }), "{err:?}");
        assert!(!a.path.exists(), "corrupt artifact must be evicted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_blocks_rebuild_until_compiler_changes() {
        let Ok(_) = rustc_info() else { return };
        let dir = std::env::temp_dir().join(format!("bernoulli-kc-quar-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = KernelStore::at(&dir);
        let a = s.get_or_build("quar", ADD_SRC).unwrap();
        s.quarantine(&a.path);
        assert!(!a.path.exists(), "quarantined artifact must be evicted");
        assert!(s.is_quarantined(&a.path));
        let err = s
            .get_or_build("quar", ADD_SRC)
            .expect_err("quarantined artifact must not be rebuilt");
        assert!(
            matches!(err, KernelCacheError::Quarantined { .. }),
            "{err:?}"
        );
        // A quarantine list written under a different compiler identity
        // is stale and ignored.
        let listing = std::fs::read_to_string(s.quarantine_file()).unwrap();
        let stale = listing.replacen("rustc:", "rustc:0", 1);
        std::fs::write(s.quarantine_file(), stale).unwrap();
        assert!(!s.is_quarantined(&a.path));
        let rebuilt = s.get_or_build("quar", ADD_SRC).unwrap();
        assert!(!rebuilt.from_cache);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn build_timeout_kills_rustc_and_is_typed() {
        let Ok(_) = rustc_info() else { return };
        let dir = std::env::temp_dir().join(format!("bernoulli-kc-tmo-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = KernelStore::at(&dir).with_timeout(Duration::from_millis(1));
        s.breaker_reset();
        let err = s
            .get_or_build("tmo", ADD_SRC)
            .expect_err("1 ms is not enough to build anything");
        assert!(
            matches!(err, KernelCacheError::Timeout { ms: 1 }),
            "{err:?}"
        );
        // Timeouts are infrastructure failures: retried (BUILD_ATTEMPTS
        // total), then counted toward the breaker, which trips after
        // BREAKER_TRIP consecutive failures.
        for _ in 1..BREAKER_TRIP {
            let _ = s.get_or_build("tmo", ADD_SRC);
        }
        assert!(s.breaker_tripped());
        let err = s
            .get_or_build("tmo", ADD_SRC)
            .expect_err("open breaker must short-circuit");
        assert!(
            matches!(err, KernelCacheError::CircuitOpen { .. }),
            "{err:?}"
        );
        // A healthy store with the same directory recovers after reset.
        s.breaker_reset();
        let ok = KernelStore::at(&dir).get_or_build("tmo", ADD_SRC).unwrap();
        assert!(!ok.from_cache);
        s.breaker_reset();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_builds_of_one_artifact_coalesce() {
        let Ok(_) = rustc_info() else { return };
        let dir = std::env::temp_dir().join(format!("bernoulli-kc-flight-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let compiles_before = stats().compiles;
        let s = KernelStore::at(&dir);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let s = s.clone();
                    scope.spawn(move || s.get_or_build("flight", ADD_SRC))
                })
                .collect();
            for h in handles {
                h.join().unwrap().unwrap();
            }
        });
        assert_eq!(
            stats().compiles - compiles_before,
            1,
            "8 concurrent builders must share exactly one rustc run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn build_load_call_roundtrip_and_warm_hit() {
        let Ok(_) = rustc_info() else { return };
        let dir = std::env::temp_dir().join(format!("bernoulli-kc-ok-{}", std::process::id()));
        let s = KernelStore::at(&dir);
        let src =
            "#[no_mangle]\npub extern \"C\" fn kc_test_add(a: i64, b: i64) -> i64 { a + b }\n";
        let a1 = s.get_or_build("roundtrip", src).unwrap();
        assert!(!a1.from_cache);
        let a2 = s.get_or_build("roundtrip", src).unwrap();
        assert!(a2.from_cache, "second build must hit the artifact cache");
        let lib = Library::open(&a1.path).unwrap();
        let sym = lib.symbol("kc_test_add").unwrap();
        // Safety: the symbol was just built with exactly this signature,
        // and `lib` outlives the call.
        let f: extern "C" fn(i64, i64) -> i64 = unsafe { std::mem::transmute(sym) };
        assert_eq!(f(20, 22), 42);
        assert!(lib.symbol("no_such_symbol").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
