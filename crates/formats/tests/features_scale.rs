//! Property tests for the structure analyzer on degenerate inputs, and
//! the pinning tests for `gen::scale`'s structure preservation.

use bernoulli_formats::{gen, AnyFormat, StructureFeatures, Triplets};

#[test]
fn empty_matrix_features() {
    let f = StructureFeatures::of_triplets(&Triplets::<f64>::new(8, 8));
    assert_eq!((f.nrows, f.ncols, f.nnz), (8, 8, 0));
    assert_eq!(f.density, 0.0);
    assert_eq!(f.bandwidth, 0);
    assert_eq!(f.profile, 0.0);
    assert_eq!(f.symmetry, 1.0, "no off-diagonal entries: vacuously 1");
    assert_eq!(f.diag_fill, 0.0);
    assert!(f.lower_triangular && f.upper_triangular);
    assert_eq!(f.level_depth, 0);
    assert!(!f.full_diagonal());
}

#[test]
fn zero_shape_features() {
    let f = StructureFeatures::of_triplets(&Triplets::<f64>::new(0, 0));
    assert_eq!((f.nrows, f.ncols, f.nnz), (0, 0, 0));
    assert_eq!(f.density, 0.0);
    assert_eq!(f.diag_fill, 1.0, "vacuous diagonal");
    assert_eq!(f.level_depth, 0);
}

#[test]
fn single_row_features() {
    let t = Triplets::from_entries(1, 6, &[(0, 1, 1.0), (0, 4, 2.0)]);
    let f = StructureFeatures::of_triplets(&t);
    assert_eq!((f.nrows, f.ncols, f.nnz), (1, 6, 2));
    assert_eq!(f.bandwidth, 4);
    assert_eq!(f.profile, 4.0, "span of columns 1..=4");
    assert_eq!(f.max_row_nnz, 2);
    assert!(f.upper_triangular && !f.lower_triangular);
    assert_eq!(f.level_depth, 1, "one nonempty row, no lower deps");
}

#[test]
fn single_col_features() {
    let t = Triplets::from_entries(6, 1, &[(1, 0, 1.0), (4, 0, 2.0)]);
    let f = StructureFeatures::of_triplets(&t);
    assert_eq!((f.nrows, f.ncols, f.nnz), (6, 1, 2));
    assert_eq!(f.bandwidth, 4);
    assert!(f.lower_triangular && !f.upper_triangular);
    assert_eq!(f.avg_row_nnz, 2.0 / 6.0);
}

#[test]
fn fully_dense_features() {
    let n = 12;
    let mut t = Triplets::new(n, n);
    for r in 0..n {
        for c in 0..n {
            t.push(r, c, (r * n + c + 1) as f64);
        }
    }
    let f = StructureFeatures::of_triplets(&t);
    assert_eq!(f.density, 1.0);
    assert_eq!(f.bandwidth, n - 1);
    assert_eq!(f.profile, n as f64);
    assert_eq!(f.symmetry, 1.0);
    assert!(f.full_diagonal());
    assert!(!f.lower_triangular && !f.upper_triangular);
    // A dense matrix is perfectly blocked at the largest probed shape.
    assert!(f.block.r > 1 && (f.block_score() - 1.0).abs() < 1e-12);
    assert_eq!(f.level_depth, n, "every row depends on every earlier row");
}

#[test]
fn pure_diagonal_features() {
    let n = 9;
    let mut t = Triplets::new(n, n);
    for i in 0..n {
        t.push(i, i, 2.0);
    }
    let f = StructureFeatures::of_triplets(&t);
    assert_eq!(f.bandwidth, 0);
    assert_eq!(f.profile, 1.0);
    assert_eq!(f.symmetry, 1.0);
    assert!(f.full_diagonal());
    assert!(f.lower_triangular && f.upper_triangular);
    assert_eq!(f.level_depth, 1, "no cross-row dependencies");
}

#[test]
fn features_agree_across_formats() {
    let t = gen::structurally_symmetric(96, 700, 12, 21);
    let base = StructureFeatures::of_triplets(&t);
    for name in ["coo", "csr", "csc", "ell", "jad"] {
        let f = AnyFormat::<f64>::try_from_triplets(name, &t).unwrap();
        assert_eq!(
            StructureFeatures::of_format(&f),
            base,
            "features must not depend on the storage format ({name})"
        );
    }
}

/// `gen::scale` must preserve the selection-driving features within
/// tolerance. Checked at 10x and 100x on a can_1072-style symmetric
/// seed, and at 10x on a FEM-blocked seed (block profile).
#[test]
fn scale_preserves_structure() {
    let seed = gen::structurally_symmetric(200, 2400, 24, 7);
    let base = StructureFeatures::of_triplets(&seed);
    for factor in [10usize, 100] {
        let big = gen::scale(&seed, factor, 40);
        let f = StructureFeatures::of_triplets(&big);
        assert_eq!((f.nrows, f.ncols), (200 * factor, 200 * factor));
        assert_eq!(f.bandwidth, base.bandwidth, "bandwidth at {factor}x");
        assert_eq!(f.symmetry, base.symmetry, "symmetry at {factor}x");
        assert_eq!(f.diag_fill, base.diag_fill, "diag fill at {factor}x");
        assert_eq!((f.block.r, f.block.c), (base.block.r, base.block.c));
        assert!(
            (f.block_score() - base.block_score()).abs() <= 0.05,
            "block score at {factor}x: {} vs {}",
            f.block_score(),
            base.block_score()
        );
        // Coupling adds at most a thin band per boundary.
        let replicated = seed.nnz() * factor;
        assert!(f.nnz >= replicated && f.nnz <= replicated + replicated / 10);
    }
}

#[test]
fn scale_preserves_blocked_profile() {
    let seed = gen::fem_blocked(256, 4, 3, 1.0, 11);
    let base = StructureFeatures::of_triplets(&seed);
    assert_eq!((base.block.r, base.block.c), (4, 4));
    let big = gen::scale(&seed, 10, 5);
    let f = StructureFeatures::of_triplets(&big);
    assert_eq!(f.bandwidth, base.bandwidth);
    assert_eq!((f.block.r, f.block.c), (4, 4), "block shape survives 10x");
    assert!(
        (f.block_score() - base.block_score()).abs() <= 0.05,
        "block score: {} vs {}",
        f.block_score(),
        base.block_score()
    );
}

#[test]
fn scale_preserves_triangularity() {
    let seed = gen::can_1072_like().lower_triangle_full_diag(1.0);
    let big = gen::scale(&seed, 10, 3);
    let f = StructureFeatures::of_triplets(&big);
    assert!(f.lower_triangular, "lower coupling only on a lower seed");
    assert!(f.full_diagonal());
}

#[test]
fn scale_identity_and_determinism() {
    let seed = gen::banded(50, 2, 9);
    let one = gen::scale(&seed, 1, 77);
    let mut norm = seed.clone();
    norm.normalize();
    assert_eq!(one, norm, "factor 1 is the identity");
    assert_eq!(gen::scale(&seed, 10, 77), gen::scale(&seed, 10, 77));
}
