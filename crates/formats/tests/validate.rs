//! Structural validation of untrusted format instances: every
//! `from_triplets` product passes, every corruption a deserializer
//! could produce is caught with a typed [`FormatError`] instead of an
//! out-of-bounds panic later.

use bernoulli_formats::{AnyFormat, Csc, Csr, Dia, Ell, FormatError, Jad, Triplets};

fn sample() -> Triplets<f64> {
    Triplets::from_entries(
        4,
        5,
        &[
            (0, 0, 2.0),
            (0, 3, 7.0),
            (1, 1, 3.0),
            (2, 2, 4.0),
            (2, 4, -1.0),
            (3, 0, 6.0),
            (3, 3, 5.0),
        ],
    )
}

fn assert_invalid(r: Result<(), FormatError>, format: &str, needle: &str) {
    match r {
        Err(FormatError::Invalid { format: f, reason }) => {
            assert_eq!(f, format);
            assert!(reason.contains(needle), "reason {reason:?} vs {needle:?}");
        }
        other => panic!("expected Invalid({format}), got {other:?}"),
    }
}

#[test]
fn constructed_formats_validate() {
    let t = sample();
    for &name in bernoulli_formats::FORMAT_NAMES {
        if name == "diagsplit" {
            continue; // square-only
        }
        let f = AnyFormat::<f64>::from_triplets(name, &t);
        f.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn csr_corruptions_are_caught() {
    let good = Csr::from_triplets(&sample());
    good.validate().unwrap();

    let mut m = good.clone();
    m.rowptr[3] = m.rowptr[2] - 1; // non-monotone
    assert_invalid(m.validate(), "csr", "decreases");

    let mut m = good.clone();
    m.colind[0] = 99; // column out of range
    assert_invalid(m.validate(), "csr", ">= ncols");

    let mut m = good.clone();
    *m.rowptr.last_mut().unwrap() += 4; // claims entries past storage
    assert_invalid(m.validate(), "csr", "storage length");

    let mut m = good.clone();
    m.rowptr.pop(); // wrong pointer count
    assert_invalid(m.validate(), "csr", "nrows + 1");

    let mut m = good;
    m.colind.swap(0, 1); // row 0 columns out of order
    assert_invalid(m.validate(), "csr", "increasing");
}

#[test]
fn csc_corruptions_are_caught() {
    let good = Csc::from_triplets(&sample());
    good.validate().unwrap();

    let mut m = good.clone();
    m.rowind[0] = 99;
    assert_invalid(m.validate(), "csc", ">= nrows");

    let mut m = good.clone();
    m.colptr[0] = 1;
    assert_invalid(m.validate(), "csc", "colptr[0]");

    let mut m = good;
    m.values.pop();
    assert_invalid(m.validate(), "csc", "mismatch");
}

#[test]
fn ell_corruptions_are_caught() {
    let good = Ell::from_triplets(&sample());
    good.validate().unwrap();

    let mut m = good.clone();
    m.rowlen[0] = m.width + 1;
    assert_invalid(m.validate(), "ell", "exceeds width");

    let mut m = good.clone();
    m.colind[0] = 99; // out-of-range column in a filled slot
    assert_invalid(m.validate(), "ell", "out of range");

    let mut m = good.clone();
    // Row 1 stores one entry of width 2: its padding slot must be PAD.
    let base = m.width; // row 1's slab starts at 1 * width
    assert_eq!(m.rowlen[1], 1);
    m.colind[base + 1] = 3;
    assert_invalid(m.validate(), "ell", "pad sentinel");

    let mut m = good;
    m.values.pop();
    assert_invalid(m.validate(), "ell", "slots");
}

#[test]
fn jad_corruptions_are_caught() {
    let good = Jad::from_triplets(&sample());
    good.validate().unwrap();

    let mut m = good.clone();
    m.iperm[0] = m.iperm[1]; // not a permutation
    assert_invalid(m.validate(), "jad", "inverse");

    let mut m = good.clone();
    m.rowlen.swap(0, m.nrows - 1); // jagged property broken
    assert_invalid(m.validate(), "jad", "increases");

    let mut m = good.clone();
    m.colind[0] = 99;
    assert_invalid(m.validate(), "jad", ">= ncols");

    let mut m = good;
    m.dptr[1] += 1; // strip length disagrees with rowlen
    assert_invalid(m.validate(), "jad", "disagrees");
}

#[test]
fn dia_corruptions_are_caught() {
    let good = Dia::from_triplets(&sample());
    good.validate().unwrap();

    let mut m = good.clone();
    m.diags[1] = m.diags[0]; // duplicate diagonal
    assert_invalid(m.validate(), "dia", "strictly increasing");

    let mut m = good.clone();
    m.lo[0] += 1; // extent disagrees with the shape
    assert_invalid(m.validate(), "dia", "extent");

    let mut m = good.clone();
    m.values.pop();
    assert_invalid(m.validate(), "dia", "values");

    let mut m = good;
    m.diags[0] = -100; // diagonal entirely outside the matrix
    assert_invalid(m.validate(), "dia", "outside");
}

#[test]
fn triplet_builder_rejects_untrusted_coordinates() {
    let mut t = Triplets::<f64>::new(2, 2);
    t.try_push(1, 1, 5.0).unwrap();
    match t.try_push(2, 0, 1.0) {
        Err(FormatError::EntryOutOfRange { r: 2, c: 0, .. }) => {}
        other => panic!("expected EntryOutOfRange, got {other:?}"),
    }
    // The failed push must not have corrupted the builder.
    assert_eq!(t.nnz(), 1);

    let e = Triplets::<f64>::try_from_entries(2, 2, &[(0, 0, 1.0), (0, 5, 2.0)]).unwrap_err();
    assert!(e.to_string().contains("out of range"), "{e}");
}
