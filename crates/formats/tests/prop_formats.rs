//! Property tests: every format round-trips through triplets, agrees with
//! every other format on random access, and enumerates exactly its stored
//! entries via its declared view (DESIGN.md property P2).

use bernoulli_formats::convert::{AnyFormat, FORMAT_NAMES};
use bernoulli_formats::cursor::check_view_conformance;
use bernoulli_formats::Triplets;
use proptest::prelude::*;

/// Random square matrix as a set of distinct entries.
fn arb_matrix(n: usize, max_nnz: usize) -> impl Strategy<Value = Triplets<f64>> {
    proptest::collection::btree_set((0..n, 0..n), 0..=max_nnz).prop_map(move |pos| {
        let entries: Vec<(usize, usize, f64)> = pos
            .into_iter()
            .enumerate()
            .map(|(k, (r, c))| (r, c, (k as f64 + 1.0) * 0.5))
            .collect();
        Triplets::from_entries(n, n, &entries)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn formats_agree_on_random_access(t in arb_matrix(8, 24)) {
        let views: Vec<AnyFormat<f64>> = FORMAT_NAMES
            .iter()
            .map(|&n| AnyFormat::from_triplets(n, &t))
            .collect();
        for r in 0..8 {
            for c in 0..8 {
                let expect = t.get(r, c);
                for f in &views {
                    prop_assert_eq!(f.as_view().get(r, c), expect, "{} at ({},{})", f.name(), r, c);
                }
            }
        }
    }

    #[test]
    fn all_views_conform(t in arb_matrix(7, 20)) {
        for &name in FORMAT_NAMES {
            let f = AnyFormat::from_triplets(name, &t);
            let v = f.as_view();
            let nalts = v.format_view().alternatives().len();
            for alt in 0..nalts {
                if let Err(e) = check_view_conformance(v, alt) {
                    prop_assert!(false, "{name} alternative {alt}: {e}");
                }
            }
        }
    }

    #[test]
    fn triplet_roundtrip_preserves_values(t in arb_matrix(6, 18)) {
        for &name in FORMAT_NAMES {
            let f = AnyFormat::from_triplets(name, &t);
            let back = f.to_triplets();
            for r in 0..6 {
                for c in 0..6 {
                    prop_assert_eq!(back.get(r, c), t.get(r, c), "{}", name);
                }
            }
        }
    }

    #[test]
    fn set_then_get_through_any_format(t in arb_matrix(6, 18)) {
        // Overwrite each stored entry via the high-level API and read it back.
        for &name in FORMAT_NAMES {
            let mut f = AnyFormat::from_triplets(name, &t);
            let entries = f.as_view().entries();
            let view = f.as_view_mut();
            for (k, (r, c, _)) in entries.iter().enumerate() {
                view.set(*r, *c, 1000.0 + k as f64);
            }
            for (k, (r, c, _)) in entries.iter().enumerate() {
                prop_assert_eq!(view.get(*r, *c), 1000.0 + k as f64, "{}", name);
            }
        }
    }

    #[test]
    fn matrix_market_roundtrip(t in arb_matrix(9, 30)) {
        let mut buf = Vec::new();
        bernoulli_formats::io::write_matrix_market(&t, &mut buf).unwrap();
        let back = bernoulli_formats::io::read_matrix_market(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(back, t);
    }
}

/// JAD with many equal-fill rows still lays out deterministically and
/// conforms — a regression guard for the stable-sort requirement.
#[test]
fn jad_equal_fill_rows() {
    let mut t = Triplets::new(6, 6);
    for i in 0..6usize {
        t.push(i, i, 1.0 + i as f64);
    }
    t.normalize();
    let a = bernoulli_formats::Jad::from_triplets(&t);
    assert_eq!(a.iperm, vec![0, 1, 2, 3, 4, 5]);
    check_view_conformance(&a, 0).unwrap();
    check_view_conformance(&a, 1).unwrap();
}

/// The generators produce matrices all formats can hold.
#[test]
fn generators_feed_all_formats() {
    use bernoulli_formats::gen;
    let inputs = [
        gen::tridiagonal(12),
        gen::poisson2d(4),
        gen::banded(10, 2, 5),
        gen::random_sparse(10, 10, 25, 5),
    ];
    for t in &inputs {
        for &name in FORMAT_NAMES {
            let f = AnyFormat::from_triplets(name, t);
            assert_eq!(f.as_view().get(1, 1), t.get(1, 1), "{name}");
        }
    }
}
