//! Fuzzing the Matrix Market reader: arbitrary bytes and structured
//! token soup must produce `Ok` or a typed `MmError` — never a panic,
//! never an out-of-range `Triplets` entry.

use bernoulli_formats::io::read_matrix_market;
use proptest::prelude::*;
use std::io::Cursor;

/// Tokens that steer generated inputs past the early header checks so
/// the deeper parsing paths (size line, entries, symmetry expansion)
/// get fuzzed too, plus junk that must bounce off them.
const TOKENS: &[&str] = &[
    "%%MatrixMarket",
    "matrix",
    "coordinate",
    "real",
    "integer",
    "pattern",
    "general",
    "symmetric",
    "%",
    "% comment",
    "0",
    "1",
    "2",
    "3",
    "17",
    "-1",
    "4294967297",
    "99999999999999999999",
    "1.5",
    "-2.5e300",
    "nan",
    "inf",
    "x",
    "",
    " ",
    "\t",
];

fn token_soup() -> impl Strategy<Value = String> {
    proptest::collection::vec((0usize..TOKENS.len(), 0u8..4), 0..40).prop_map(|picks| {
        let mut s = String::new();
        for (t, sep) in picks {
            s.push_str(TOKENS[t]);
            s.push(match sep {
                0 => ' ',
                1 => '\n',
                2 => '\t',
                _ => ' ',
            });
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic the reader.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..300)) {
        let _ = read_matrix_market(Cursor::new(bytes));
    }

    /// Token soup (valid-ish headers with garbage bodies) never panics,
    /// and anything accepted satisfies the declared shape.
    #[test]
    fn token_soup_never_panics(src in token_soup()) {
        if let Ok(t) = read_matrix_market(Cursor::new(src.into_bytes())) {
            for &(r, c, _) in t.entries() {
                prop_assert!(r < t.nrows() && c < t.ncols());
            }
        }
    }

    /// A well-formed prefix with a corrupted entry section: still no
    /// panic, and the reader's verdict is a typed error or a conforming
    /// matrix.
    #[test]
    fn corrupted_entries_never_panic(
        nrows in 0usize..6,
        ncols in 0usize..6,
        nnz in 0usize..9,
        body in token_soup(),
    ) {
        let src = format!(
            "%%MatrixMarket matrix coordinate real general\n{nrows} {ncols} {nnz}\n{body}"
        );
        if let Ok(t) = read_matrix_market(Cursor::new(src.into_bytes())) {
            prop_assert_eq!(t.nrows(), nrows);
            prop_assert_eq!(t.ncols(), ncols);
        }
    }
}
