//! Minimal scalar abstraction for matrix element types.
//!
//! The paper's generic programming system is templated over a `BASE`
//! element type; we mirror that with a small trait so formats and
//! handwritten kernels can be instantiated at `f32` or `f64` without
//! pulling in an external numerics crate.

use std::fmt::Debug;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Element types storable in sparse matrices.
pub trait Scalar:
    Copy
    + Debug
    + PartialEq
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Lossy conversion from `f64` (for generators and tests).
    fn from_f64(x: f64) -> Self;
    /// Lossy conversion to `f64` (for error norms and reporting).
    fn to_f64(self) -> f64;
}

impl Scalar for f64 {
    const ZERO: f64 = 0.0;
    const ONE: f64 = 1.0;
    fn from_f64(x: f64) -> f64 {
        x
    }
    fn to_f64(self) -> f64 {
        self
    }
}

impl Scalar for f32 {
    const ZERO: f32 = 0.0;
    const ONE: f32 = 1.0;
    fn from_f64(x: f64) -> f32 {
        x as f32
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_sum<T: Scalar>(xs: &[T]) -> T {
        let mut acc = T::ZERO;
        for &x in xs {
            acc += x;
        }
        acc
    }

    #[test]
    fn works_for_f64_and_f32() {
        assert_eq!(generic_sum(&[1.0f64, 2.0, 3.0]), 6.0);
        assert_eq!(generic_sum(&[1.0f32, 2.0, 3.0]), 6.0);
        assert_eq!(f64::from_f64(2.5), 2.5);
        assert_eq!(2.5f32.to_f64(), 2.5);
        assert_eq!(f64::ONE + f64::ZERO, 1.0);
    }
}
