//! Sparse matrix storage formats and the two-level API of the Bernoulli
//! generic programming system.
//!
//! The paper's central observation (§2) is that a sparse format is, for
//! compilation purposes, characterized by its **index structure**: which
//! coordinates must be enumerated before which, in what order enumeration
//! is efficient, which levels support indexed (random) access, and how the
//! stored coordinates relate to the dense row/column coordinates. This
//! crate provides:
//!
//! - **The high-level API** ([`SparseMatrix`]): a dense-matrix view
//!   (dimensions + random `get`/`set`) used by algorithm designers and by
//!   the reference executor. Corresponds to the paper's `matrix<BASE>`
//!   abstract class (`JadRandom` etc.).
//! - **The low-level API** ([`view::FormatView`] + [`cursor::SparseView`]):
//!   the index-structure description in the grammar of Fig. 6 —
//!   nesting, `map`, `perm`, aggregation `∪`, perspective `⊕` — together
//!   with runtime *level cursors* that enumerate and search each level.
//!   Corresponds to the paper's `term_nesting`/`term_perm2`/iterator class
//!   hierarchy.
//! - **Concrete formats**: [`Dense`], [`Coo`], [`Csr`], [`Csc`], [`Dia`],
//!   [`Ell`], [`Jad`], [`DiagSplit`] (a `∪` format storing the diagonal
//!   separately), and sorted/hashed sparse vectors ([`SparseVec`],
//!   [`HashVec`]) used by the join-strategy experiments.
//! - **Substrate**: triplet builders and conversions, Matrix Market IO,
//!   and synthetic workload generators (including the `can_1072`-like
//!   matrix substituting for the Harwell–Boeing input of the paper's §5).

pub mod blocks;
pub mod convert;
pub mod cursor;
pub mod features;
pub mod formats;
pub mod gen;
pub mod io;
pub mod partition;
pub mod scalar;
pub mod triplet;
pub mod view;

pub use blocks::{block_fill, discover_block_size, discover_strips, BlockReport};
pub use convert::{AnyFormat, FormatError, FORMAT_NAMES};
pub use cursor::{ChainCursor, KeyTuple, Position, SparseView};
pub use features::{vector_features, StructureFeatures};
pub use formats::bsr::Bsr;
pub use formats::coo::Coo;
pub use formats::csc::Csc;
pub use formats::csr::Csr;
pub use formats::dense::Dense;
pub use formats::dia::Dia;
pub use formats::diagsplit::DiagSplit;
pub use formats::ell::Ell;
pub use formats::jad::Jad;
pub use formats::sky::Sky;
pub use formats::sparsevec::{HashVec, SparseVec};
pub use formats::vbr::Vbr;
pub use scalar::Scalar;
pub use triplet::Triplets;
pub use view::{
    Chain, FlatLevel, FormatView, Order, SearchKind, StoredGuarantee, Transform, ViewExpr,
};

/// The high-level (dense) API: what the algorithm designer programs
/// against. Everything is addressed by dense row/column coordinates;
/// unstored positions read as zero.
pub trait SparseMatrix {
    /// Number of rows of the enveloping dense matrix.
    fn nrows(&self) -> usize;
    /// Number of columns of the enveloping dense matrix.
    fn ncols(&self) -> usize;
    /// Number of stored (structural) nonzeros.
    fn nnz(&self) -> usize;
    /// Random access read; zero for unstored positions.
    fn get(&self, r: usize, c: usize) -> f64;
    /// Random access write to a *stored* position.
    ///
    /// # Panics
    /// Panics if `(r, c)` is not a stored position (sparse formats without
    /// fill cannot materialize new entries).
    fn set(&mut self, r: usize, c: usize, v: f64);
    /// All stored entries as `(row, col, value)` triplets, in an
    /// unspecified order.
    fn entries(&self) -> Vec<(usize, usize, f64)>;
}
