//! Coordinate-list builder: the interchange representation all formats
//! construct from and convert back to.

use crate::scalar::Scalar;
use crate::FormatError;

/// A matrix under construction: explicit `(row, col, value)` entries.
///
/// `Triplets` is the hub of all format conversions: every concrete format
/// implements `from_triplets` and `to_triplets`, making any-to-any
/// conversion a two-step round trip.
#[derive(Clone, Debug, PartialEq)]
pub struct Triplets<T: Scalar = f64> {
    nrows: usize,
    ncols: usize,
    entries: Vec<(usize, usize, T)>,
}

impl<T: Scalar> Triplets<T> {
    /// An empty matrix of the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Triplets<T> {
        Triplets {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Builds from a slice of entries. Duplicate positions are summed.
    ///
    /// # Panics
    /// Panics if any coordinate is out of range; use
    /// [`try_from_entries`](Self::try_from_entries) for untrusted input.
    pub fn from_entries(nrows: usize, ncols: usize, entries: &[(usize, usize, T)]) -> Triplets<T> {
        match Triplets::try_from_entries(nrows, ncols, entries) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`from_entries`](Self::from_entries) with out-of-range
    /// coordinates reported as a [`FormatError`] — the entry point for
    /// entries that came from outside the process.
    pub fn try_from_entries(
        nrows: usize,
        ncols: usize,
        entries: &[(usize, usize, T)],
    ) -> Result<Triplets<T>, FormatError> {
        let mut t = Triplets::new(nrows, ncols);
        for &(r, c, v) in entries {
            t.try_push(r, c, v)?;
        }
        t.normalize();
        Ok(t)
    }

    /// Appends one entry (duplicates allowed until [`normalize`](Self::normalize)).
    ///
    /// # Panics
    /// Panics if the coordinate is out of range; use
    /// [`try_push`](Self::try_push) for untrusted input.
    pub fn push(&mut self, r: usize, c: usize, v: T) {
        if let Err(e) = self.try_push(r, c, v) {
            panic!("{e}");
        }
    }

    /// [`push`](Self::push) with out-of-range coordinates reported as a
    /// [`FormatError`] instead of a panic.
    pub fn try_push(&mut self, r: usize, c: usize, v: T) -> Result<(), FormatError> {
        if r >= self.nrows || c >= self.ncols {
            return Err(FormatError::EntryOutOfRange {
                r,
                c,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.entries.push((r, c, v));
        Ok(())
    }

    /// Sorts entries row-major and sums duplicates. Zero values are kept:
    /// a stored zero is a *structural* nonzero, as in all classic sparse
    /// packages.
    pub fn normalize(&mut self) {
        self.entries.sort_by_key(|&(r, c, _)| (r, c));
        let mut out: Vec<(usize, usize, T)> = Vec::with_capacity(self.entries.len());
        for &(r, c, v) in &self.entries {
            match out.last_mut() {
                Some(&mut (lr, lc, ref mut lv)) if lr == r && lc == c => *lv += v,
                _ => out.push((r, c, v)),
            }
        }
        self.entries = out;
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries (after normalization, distinct positions).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// The entries, sorted row-major if [`normalize`](Self::normalize) has
    /// run since the last `push`.
    pub fn entries(&self) -> &[(usize, usize, T)] {
        &self.entries
    }

    /// Random-access read (linear scan; builder convenience only).
    pub fn get(&self, r: usize, c: usize) -> T {
        self.entries
            .iter()
            .find(|&&(er, ec, _)| er == r && ec == c)
            .map(|&(_, _, v)| v)
            .unwrap_or(T::ZERO)
    }

    /// Materializes the enveloping dense matrix, row-major.
    pub fn to_dense_rows(&self) -> Vec<Vec<T>> {
        let mut d = vec![vec![T::ZERO; self.ncols]; self.nrows];
        for &(r, c, v) in &self.entries {
            d[r][c] += v;
        }
        d
    }

    /// Applies `f` to every stored value.
    pub fn map_values(&mut self, f: impl Fn(T) -> T) {
        for e in &mut self.entries {
            e.2 = f(e.2);
        }
    }

    /// Keeps only entries satisfying the position predicate.
    pub fn retain_positions(&mut self, f: impl Fn(usize, usize) -> bool) {
        self.entries.retain(|&(r, c, _)| f(r, c));
    }

    /// The transpose.
    pub fn transposed(&self) -> Triplets<T> {
        let mut t = Triplets::new(self.ncols, self.nrows);
        for &(r, c, v) in &self.entries {
            t.push(c, r, v);
        }
        t.normalize();
        t
    }

    /// Extracts the lower triangle (including the diagonal), ensuring a
    /// structurally-full diagonal by inserting `diag_fill` where the
    /// diagonal is missing. This is the standard preparation of a
    /// triangular-solve operand.
    pub fn lower_triangle_full_diag(&self, diag_fill: T) -> Triplets<T> {
        let n = self.nrows.min(self.ncols);
        let mut t = Triplets::new(self.nrows, self.ncols);
        let mut have_diag = vec![false; n];
        for &(r, c, v) in &self.entries {
            if r >= c {
                if r == c {
                    have_diag[r] = true;
                }
                t.push(r, c, v);
            }
        }
        for (i, have) in have_diag.iter().enumerate() {
            if !have {
                t.push(i, i, diag_fill);
            }
        }
        t.normalize();
        t
    }

    /// Number of stored entries in each row.
    pub fn row_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nrows];
        for &(r, _, _) in &self.entries {
            counts[r] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_normalize() {
        let t = Triplets::from_entries(3, 3, &[(2, 1, 5.0), (0, 0, 1.0), (2, 1, 2.0)]);
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.get(2, 1), 7.0);
        assert_eq!(t.get(0, 0), 1.0);
        assert_eq!(t.get(1, 1), 0.0);
        assert_eq!(t.entries(), &[(0, 0, 1.0), (2, 1, 7.0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut t = Triplets::<f64>::new(2, 2);
        t.push(2, 0, 1.0);
    }

    #[test]
    fn dense_roundtrip() {
        let t = Triplets::from_entries(2, 3, &[(0, 2, 4.0), (1, 0, -1.0)]);
        let d = t.to_dense_rows();
        assert_eq!(d, vec![vec![0.0, 0.0, 4.0], vec![-1.0, 0.0, 0.0]]);
    }

    #[test]
    fn transpose() {
        let t = Triplets::from_entries(2, 3, &[(0, 2, 4.0), (1, 0, -1.0)]);
        let tt = t.transposed();
        assert_eq!(tt.nrows(), 3);
        assert_eq!(tt.ncols(), 2);
        assert_eq!(tt.get(2, 0), 4.0);
        assert_eq!(tt.get(0, 1), -1.0);
    }

    #[test]
    fn lower_triangle() {
        let t = Triplets::from_entries(3, 3, &[(0, 1, 9.0), (1, 0, 2.0), (2, 2, 3.0), (2, 0, 4.0)]);
        let l = t.lower_triangle_full_diag(1.0);
        assert_eq!(l.get(0, 1), 0.0); // upper dropped
        assert_eq!(l.get(1, 0), 2.0);
        assert_eq!(l.get(2, 2), 3.0); // existing diagonal kept
        assert_eq!(l.get(0, 0), 1.0); // missing diagonal filled
        assert_eq!(l.get(1, 1), 1.0);
        assert_eq!(l.nnz(), 5);
    }

    #[test]
    fn structural_zeros_kept() {
        let t = Triplets::from_entries(2, 2, &[(0, 1, 0.0)]);
        assert_eq!(t.nnz(), 1);
    }

    #[test]
    fn row_counts() {
        let t = Triplets::from_entries(3, 3, &[(0, 0, 1.0), (0, 2, 1.0), (2, 1, 1.0)]);
        assert_eq!(t.row_counts(), vec![2, 0, 1]);
    }

    #[test]
    fn map_and_retain() {
        let mut t = Triplets::from_entries(2, 2, &[(0, 0, 1.0), (1, 1, 2.0)]);
        t.map_values(|v| v * 10.0);
        assert_eq!(t.get(1, 1), 20.0);
        t.retain_positions(|r, c| r == c && r == 0);
        assert_eq!(t.nnz(), 1);
    }

    #[test]
    fn generic_f32() {
        let t = Triplets::<f32>::from_entries(1, 1, &[(0, 0, 2.5f32)]);
        assert_eq!(t.get(0, 0), 2.5f32);
    }
}
