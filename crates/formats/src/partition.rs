//! Work-balanced partitioning of compressed index structures.
//!
//! Equal-count row blocks are the naive way to split a sparse matrix
//! across workers; on skewed patterns (a few dense rows, many near-empty
//! ones) they leave most workers idle. The right unit of work for
//! MVM-like kernels is *stored entries*, and every pointer-compressed
//! level (`Csr::rowptr`, `Csc::colptr`, JAD's `dptr`, ELL's per-row fill
//! prefix) is exactly a monotone cumulative-cost array — so nnz-balanced
//! boundaries are a handful of binary searches.

/// Splits `0..n` (where `n == ptr.len() - 1`) into at most `nblocks`
/// contiguous blocks of approximately equal cumulative cost, where
/// `ptr` is a monotone prefix-sum array (`ptr[i]..ptr[i+1]` is the cost
/// of item `i`).
///
/// Returns the block boundaries as a monotone vector `b` with
/// `b[0] == 0`, `b.last() == n`, and block `k` spanning
/// `b[k]..b[k + 1]`. Degenerate blocks are merged, so the result may
/// hold fewer than `nblocks` blocks; for `n == 0` the result is `[0]`
/// (no blocks).
///
/// Boundaries are a pure function of `ptr` and `nblocks` — two calls
/// with equal inputs produce equal partitions, which the parallel
/// kernels rely on for run-to-run determinism.
pub fn split_ptr_by_cost(ptr: &[usize], nblocks: usize) -> Vec<usize> {
    assert!(!ptr.is_empty(), "ptr must have at least one element");
    let n = ptr.len() - 1;
    let nblocks = nblocks.max(1);
    let mut bounds = Vec::with_capacity(nblocks + 1);
    bounds.push(0usize);
    let mut start = 0usize;
    // Greedy: each block takes ceil(remaining cost / remaining blocks),
    // so one outsized item cannot starve the blocks after it.
    for k in 0..nblocks {
        if start == n {
            break;
        }
        let blocks_left = nblocks - k;
        let cost_left = ptr[n] - ptr[start];
        if blocks_left == 1 || cost_left == 0 {
            bounds.push(n);
            break;
        }
        let target = ptr[start] + cost_left.div_ceil(blocks_left);
        let cut = ptr.partition_point(|&p| p < target).clamp(start + 1, n);
        bounds.push(cut);
        start = cut;
    }
    if bounds.last() != Some(&n) {
        bounds.push(n);
    }
    bounds
}

/// Splits `0..n` into at most `nblocks` contiguous blocks of
/// approximately equal *count* (the fallback when no cost structure is
/// available, e.g. dense vectors).
pub fn split_even(n: usize, nblocks: usize) -> Vec<usize> {
    let nblocks = nblocks.max(1).min(n.max(1));
    let mut bounds = Vec::with_capacity(nblocks + 1);
    bounds.push(0usize);
    if n == 0 {
        return bounds;
    }
    for k in 1..nblocks {
        let cut = (n as u128 * k as u128 / nblocks as u128) as usize;
        // `bounds` always starts with the pushed 0, so `last` is total.
        let prev = bounds.last().copied().unwrap_or(0);
        if cut > prev && cut < n {
            bounds.push(cut);
        }
    }
    bounds.push(n);
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_costs(ptr: &[usize], bounds: &[usize]) -> Vec<usize> {
        bounds.windows(2).map(|w| ptr[w[1]] - ptr[w[0]]).collect()
    }

    #[test]
    fn covers_all_rows_exactly_once() {
        let ptr = [0usize, 3, 3, 10, 11, 20, 20, 21];
        for nb in 1..10 {
            let b = split_ptr_by_cost(&ptr, nb);
            assert_eq!(b[0], 0);
            assert_eq!(b[b.len() - 1], 7);
            assert!(b.windows(2).all(|w| w[0] < w[1]), "monotone: {b:?}");
            assert!(b.len() <= nb + 1);
        }
    }

    #[test]
    fn balances_skewed_costs() {
        // One heavy item among many light ones: the heavy one gets its
        // own block instead of dragging half the light ones with it.
        let mut ptr = vec![0usize];
        for i in 0..100 {
            let cost = if i == 0 { 1000 } else { 1 };
            ptr.push(ptr[ptr.len() - 1] + cost);
        }
        let b = split_ptr_by_cost(&ptr, 4);
        let costs = block_costs(&ptr, &b);
        // The first block is just the heavy row.
        assert_eq!(b[1], 1, "bounds {b:?}");
        assert_eq!(costs[0], 1000);
        // Equal-count split would put ~25 rows (1024 cost) in block 0
        // and starve the rest; cost split caps the remaining blocks near
        // the ideal 99/3.
        assert!(costs[1..].iter().all(|&c| c <= 67), "costs {costs:?}");
    }

    #[test]
    fn uniform_costs_split_evenly() {
        let ptr: Vec<usize> = (0..=64).map(|i| 5 * i).collect();
        let b = split_ptr_by_cost(&ptr, 4);
        assert_eq!(b, vec![0, 16, 32, 48, 64]);
    }

    #[test]
    fn degenerate_shapes() {
        assert_eq!(split_ptr_by_cost(&[0], 4), vec![0]);
        assert_eq!(split_ptr_by_cost(&[0, 0, 0], 4), vec![0, 2]);
        assert_eq!(split_ptr_by_cost(&[0, 7], 4), vec![0, 1]);
        assert_eq!(split_even(0, 4), vec![0]);
        assert_eq!(split_even(3, 64), vec![0, 1, 2, 3]);
        assert_eq!(split_even(8, 2), vec![0, 4, 8]);
    }

    #[test]
    fn deterministic() {
        let ptr: Vec<usize> = (0..=1000).map(|i| i * i / 7).collect();
        assert_eq!(split_ptr_by_cost(&ptr, 7), split_ptr_by_cost(&ptr, 7));
    }

    #[test]
    fn more_blocks_than_items() {
        let ptr = [0usize, 2, 5, 9];
        let b = split_ptr_by_cost(&ptr, 64);
        assert_eq!(b, vec![0, 1, 2, 3]);
    }
}
