//! Instance structure analysis: the numbers a format/plan advisor needs.
//!
//! SpComp-style structure-aware compilation (see PAPERS.md) picks storage
//! and enumeration order from the *sparsity structure of the instance*,
//! not from hand-written workload guesses. [`StructureFeatures`] distills
//! a [`Triplets`] (or any [`AnyFormat`]) into the features that drive
//! those choices: density, bandwidth and row profile, structural
//! symmetry, diagonal fill, triangularity, the dominant block shape
//! (via [`crate::blocks`]), and the level-schedule depth of the lower
//! triangle. Everything is deterministic, so derived cost-model inputs
//! hash stably into plan-cache keys.

use crate::blocks::{discover_block_size, BlockReport};
use crate::convert::AnyFormat;
use crate::scalar::Scalar;
use crate::Triplets;
use std::collections::HashSet;

/// Largest block edge probed by [`StructureFeatures::block`] discovery.
pub const BLOCK_PROBE_MAX: usize = 8;
/// Minimum fill a discovered block shape must clear.
pub const BLOCK_PROBE_MIN_FILL: f64 = 0.9;

/// Structural summary of one sparse instance.
///
/// Computed in a single pass over the (normalized) entries, plus the
/// block-shape probe. All scores are in `[0, 1]` unless noted.
#[derive(Clone, Debug, PartialEq)]
pub struct StructureFeatures {
    /// Rows of the enveloping dense matrix.
    pub nrows: usize,
    /// Columns of the enveloping dense matrix.
    pub ncols: usize,
    /// Stored (structural) entries.
    pub nnz: usize,
    /// `nnz / (nrows * ncols)`; 0 for an empty shape.
    pub density: f64,
    /// Mean stored entries per row (over all rows).
    pub avg_row_nnz: f64,
    /// Largest stored-entry count of any row.
    pub max_row_nnz: usize,
    /// `max |r - c|` over stored entries.
    pub bandwidth: usize,
    /// Mean row span `last - first + 1` over nonempty rows — the
    /// profile/skyline width, tighter than `2 * bandwidth + 1` for
    /// locally banded patterns.
    pub profile: f64,
    /// Fraction of off-diagonal entries whose mirror `(c, r)` is also
    /// stored; 1.0 when there are no off-diagonal entries.
    pub symmetry: f64,
    /// Stored diagonal positions over `min(nrows, ncols)`; 1.0 when the
    /// diagonal is vacuous (a zero-sized shape).
    pub diag_fill: f64,
    /// Every stored entry satisfies `r >= c`.
    pub lower_triangular: bool,
    /// Every stored entry satisfies `r <= c`.
    pub upper_triangular: bool,
    /// Dominant block shape (largest `r x c` up to [`BLOCK_PROBE_MAX`]
    /// with fill ≥ [`BLOCK_PROBE_MIN_FILL`]); `block.fill` at that shape
    /// is the block score.
    pub block: BlockReport,
    /// Longest dependency chain of the strictly-lower entries — the
    /// number of sequential waves a level-scheduled triangular solve
    /// needs. 0 for an empty matrix, 1 when rows have no lower deps.
    pub level_depth: usize,
}

impl StructureFeatures {
    /// Analyzes a triplet instance.
    pub fn of_triplets<T: Scalar>(t: &Triplets<T>) -> StructureFeatures {
        let mut t = t.clone();
        t.normalize();
        let (nrows, ncols, nnz) = (t.nrows(), t.ncols(), t.nnz());
        let cells = nrows as f64 * ncols as f64;
        let min_dim = nrows.min(ncols);

        let positions: HashSet<(usize, usize)> =
            t.entries().iter().map(|&(r, c, _)| (r, c)).collect();

        let mut row_nnz = vec![0usize; nrows];
        let mut row_first = vec![usize::MAX; nrows];
        let mut row_last = vec![0usize; nrows];
        // Level of each row in the strictly-lower dependence DAG. Entries
        // are row-major sorted after normalize, so when row `r` is
        // processed every dependency row `c < r` already has its final
        // level — one pass suffices.
        let mut level = vec![0usize; nrows];
        let mut bandwidth = 0usize;
        let mut diag = 0usize;
        let mut off_diag = 0usize;
        let mut mirrored = 0usize;
        let mut lower = true;
        let mut upper = true;
        for &(r, c, _) in t.entries() {
            row_nnz[r] += 1;
            row_first[r] = row_first[r].min(c);
            row_last[r] = row_last[r].max(c);
            bandwidth = bandwidth.max(r.abs_diff(c));
            if r == c {
                diag += 1;
            } else {
                off_diag += 1;
                if positions.contains(&(c, r)) {
                    mirrored += 1;
                }
                if r < c {
                    lower = false;
                } else {
                    upper = false;
                }
            }
            if level[r] == 0 {
                level[r] = 1;
            }
            if c < r {
                level[r] = level[r].max(level[c] + 1);
            }
        }
        let mut profile_sum = 0.0;
        let mut nonempty = 0usize;
        for r in 0..nrows {
            if row_nnz[r] > 0 {
                nonempty += 1;
                profile_sum += (row_last[r] - row_first[r] + 1) as f64;
            }
        }

        StructureFeatures {
            nrows,
            ncols,
            nnz,
            density: if cells > 0.0 { nnz as f64 / cells } else { 0.0 },
            avg_row_nnz: nnz as f64 / nrows.max(1) as f64,
            max_row_nnz: row_nnz.iter().copied().max().unwrap_or(0),
            bandwidth,
            profile: if nonempty > 0 {
                profile_sum / nonempty as f64
            } else {
                0.0
            },
            symmetry: if off_diag > 0 {
                mirrored as f64 / off_diag as f64
            } else {
                1.0
            },
            diag_fill: if min_dim > 0 {
                diag as f64 / min_dim as f64
            } else {
                1.0
            },
            lower_triangular: lower,
            upper_triangular: upper,
            block: discover_block_size(&t, BLOCK_PROBE_MAX, BLOCK_PROBE_MIN_FILL),
            level_depth: level.iter().copied().max().unwrap_or(0),
        }
    }

    /// Analyzes any concrete format by way of its triplet image.
    pub fn of_format<T: Scalar>(f: &AnyFormat<T>) -> StructureFeatures {
        StructureFeatures::of_triplets(&f.to_triplets())
    }

    /// True when every diagonal position of a square instance is stored —
    /// the precondition for the `FullDiagonal` stored guarantee.
    pub fn full_diagonal(&self) -> bool {
        self.nrows == self.ncols && self.nrows > 0 && (self.diag_fill - 1.0).abs() < 1e-12
    }

    /// Block score: the fill of the discovered dominant block shape
    /// (1.0 = perfectly blocked at `block.r x block.c`).
    pub fn block_score(&self) -> f64 {
        self.block.fill
    }
}

/// Features of a sparse *vector*, treated as an `n x 1` instance so the
/// same [`StructureFeatures`] vocabulary (and the same cost-model
/// derivation) applies to the vector operands of dot-product workloads.
pub fn vector_features<T: Scalar>(n: usize, entries: &[(usize, T)]) -> StructureFeatures {
    let mut t = Triplets::new(n, 1);
    for &(i, v) in entries {
        t.push(i, 0, v);
    }
    StructureFeatures::of_triplets(&t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn banded_features() {
        let f = StructureFeatures::of_triplets(&gen::banded(64, 3, 7));
        assert_eq!((f.nrows, f.ncols), (64, 64));
        assert_eq!(f.bandwidth, 3);
        assert!((f.symmetry - 1.0).abs() < 1e-12);
        assert!(f.full_diagonal());
        assert!(!f.lower_triangular && !f.upper_triangular);
        // Interior rows span the full 7-wide band.
        assert!(f.profile > 6.0 && f.profile <= 7.0, "profile {}", f.profile);
    }

    #[test]
    fn lower_triangle_features_and_level_depth() {
        let l = gen::can_1072_like().lower_triangle_full_diag(1.0);
        let f = StructureFeatures::of_triplets(&l);
        assert!(f.lower_triangular && !f.upper_triangular);
        assert!(f.full_diagonal());
        // A connected lower triangle has a nontrivial wave schedule.
        assert!(f.level_depth > 1 && f.level_depth <= 1072);
    }

    #[test]
    fn fem_blocked_recovers_block_score() {
        let t = gen::fem_blocked(16 * 4, 4, 2, 1.0, 11);
        let f = StructureFeatures::of_triplets(&t);
        assert_eq!((f.block.r, f.block.c), (4, 4));
        assert!((f.block_score() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vector_features_shape() {
        let f = vector_features(100, &gen::sparse_vector(100, 30, 5));
        assert_eq!((f.nrows, f.ncols, f.nnz), (100, 1, 30));
        assert!((f.density - 0.3).abs() < 1e-12);
    }
}
