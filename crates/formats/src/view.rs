//! The format-description language: index structures in the grammar of the
//! paper's Fig. 6, plus enumeration properties.
//!
//! ```text
//!   E     := Index -> E                    (nesting)
//!          | map{F(in) |-> out : E}        (affine index transformation)
//!          | perm{P(in) |-> out : E}       (permutation)
//!          | E ∪ E                         (aggregation: both must be enumerated)
//!          | E ⊕ E                         (perspective: either may be used)
//!          | v                             (stored values)
//!   Index := attribute | <a, b, ...> | (a × b × ...)
//! ```
//!
//! Each nesting level is annotated with its *enumeration order* and the
//! kind of *search* (indexed access) it supports; the whole view carries
//! *enumeration bounds* (e.g. `c ≤ r` for a lower-triangular format) and
//! *storage guarantees* (e.g. "every diagonal position is stored"), which
//! the compiler uses for legality, guard simplification and the
//! zero-annihilation check.
//!
//! A [`FormatView`] is compiled (by [`FormatView::alternatives`]) into
//! *chains*: linearized access paths the code generator and the runtime
//! cursor API share. A `⊕` contributes alternative chain-sets (choose
//! one); a `∪` contributes multiple chains within one alternative (must
//! enumerate all).

use std::fmt;

/// Order in which a level's `enumerate` cursor yields keys.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Order {
    /// Keys strictly increase (lexicographically, for coupled levels).
    Increasing,
    /// Keys strictly decrease.
    Decreasing,
    /// No order guarantee.
    Unordered,
}

/// The kind of indexed access a level supports, with its cost class.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum SearchKind {
    /// No search: only full enumeration.
    None,
    /// O(k) scan of the level's entries.
    Linear,
    /// O(log k) binary search (keys stored sorted).
    Sorted,
    /// O(1) direct indexing (interval levels, permutation tables).
    Direct,
    /// O(1) expected hash lookup.
    Hash,
}

/// A coordinate translation attached to a chain.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Transform {
    /// `out = Σ coeff·attr + cst` — from the `map` production.
    Affine {
        out: String,
        terms: Vec<(String, i64)>,
        cst: i64,
    },
    /// `out = table[input]` — from the `perm` production.
    PermApply {
        table: String,
        input: String,
        out: String,
    },
    /// `out = table⁻¹[input]` — inverse permutation lookup.
    PermUnapply {
        table: String,
        input: String,
        out: String,
    },
}

impl Transform {
    /// The attribute this transform defines.
    pub fn out(&self) -> &str {
        match self {
            Transform::Affine { out, .. }
            | Transform::PermApply { out, .. }
            | Transform::PermUnapply { out, .. } => out,
        }
    }

    /// The attributes this transform reads.
    pub fn inputs(&self) -> Vec<&str> {
        match self {
            Transform::Affine { terms, .. } => terms.iter().map(|(a, _)| a.as_str()).collect(),
            Transform::PermApply { input, .. } | Transform::PermUnapply { input, .. } => {
                vec![input.as_str()]
            }
        }
    }
}

/// One linearized nesting level of a chain.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FlatLevel {
    /// Attributes bound by this level (len > 1 ⇒ coupled `<a,b>` index).
    pub attrs: Vec<String>,
    /// Enumeration order of the cursor.
    pub order: Order,
    /// Search support.
    pub search: SearchKind,
    /// True when the level enumerates a full integer interval (dense
    /// level): enumeration in either direction is free and the level is
    /// randomly accessible by construction.
    pub interval: bool,
}

/// A linearized access path: enumerate `levels[0]`, then within each of
/// its positions `levels[1]`, …, reaching stored values below the last
/// level. `fwd` computes dense coordinates from stored attributes, `inv`
/// the reverse.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Chain {
    /// Runtime dispatch index (canonical DFS order over the view).
    pub id: usize,
    pub levels: Vec<FlatLevel>,
    /// Dense attr := f(stored attrs); applied in order.
    pub fwd: Vec<Transform>,
    /// Stored attr := g(dense attrs); applied in order.
    pub inv: Vec<Transform>,
}

impl Chain {
    /// All attributes enumerated by the chain's levels, outermost first.
    pub fn stored_attrs(&self) -> Vec<&str> {
        self.levels
            .iter()
            .flat_map(|l| l.attrs.iter().map(|s| s.as_str()))
            .collect()
    }

    /// The level index that binds `attr`, if any.
    pub fn level_of(&self, attr: &str) -> Option<usize> {
        self.levels
            .iter()
            .position(|l| l.attrs.iter().any(|a| a == attr))
    }
}

/// An affine inequality `Σ coeff·attr + cst ≥ 0` over dense attributes,
/// used for the *enumeration bounds* annotation of the paper §2.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Bound {
    pub terms: Vec<(String, i64)>,
    pub cst: i64,
}

impl Bound {
    /// `lhs ≥ rhs` over single attributes.
    pub fn attr_ge(lhs: &str, rhs: &str) -> Bound {
        Bound {
            terms: vec![(lhs.to_string(), 1), (rhs.to_string(), -1)],
            cst: 0,
        }
    }
}

/// Storage guarantees: regions of the dense index space that are
/// *certainly* stored (whatever their value), needed for statements that
/// are not annihilated by zeros (e.g. the diagonal division of triangular
/// solve).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StoredGuarantee {
    /// Every `(i, i)` with `0 ≤ i < min(nrows, ncols)` is stored.
    FullDiagonal,
    /// Every position of the enveloping dense matrix is stored.
    AllPositions,
}

/// The index-structure term (paper Fig. 6).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ViewExpr {
    /// `Index -> E` with enumeration properties.
    Level {
        attrs: Vec<String>,
        order: Order,
        search: SearchKind,
        interval: bool,
        child: Box<ViewExpr>,
    },
    /// `map{...: E}` — attaches affine coordinate translations.
    Map {
        fwd: Vec<Transform>,
        inv: Vec<Transform>,
        child: Box<ViewExpr>,
    },
    /// `perm{table[input] |-> out : E}`.
    Perm {
        table: String,
        input: String,
        out: String,
        child: Box<ViewExpr>,
    },
    /// `E ∪ E` — both parts must be enumerated to cover the matrix.
    Union(Box<ViewExpr>, Box<ViewExpr>),
    /// `E ⊕ E` — either part may be used.
    Persp(Box<ViewExpr>, Box<ViewExpr>),
    /// `v` — the stored values.
    Value,
}

impl ViewExpr {
    /// Convenience constructor for a single-attribute level.
    pub fn level(attr: &str, order: Order, search: SearchKind, child: ViewExpr) -> ViewExpr {
        ViewExpr::Level {
            attrs: vec![attr.to_string()],
            order,
            search,
            interval: false,
            child: Box::new(child),
        }
    }

    /// Convenience constructor for an interval (dense) level.
    pub fn interval(attr: &str, child: ViewExpr) -> ViewExpr {
        ViewExpr::Level {
            attrs: vec![attr.to_string()],
            order: Order::Increasing,
            search: SearchKind::Direct,
            interval: true,
            child: Box::new(child),
        }
    }

    /// Convenience constructor for a coupled `<a, b>` level.
    pub fn coupled(attrs: &[&str], order: Order, search: SearchKind, child: ViewExpr) -> ViewExpr {
        ViewExpr::Level {
            attrs: attrs.iter().map(|s| s.to_string()).collect(),
            order,
            search,
            interval: false,
            child: Box::new(child),
        }
    }
}

/// A complete format description: the view term plus bounds, guarantees
/// and the dense attributes of the enveloping array.
#[derive(Clone, Debug)]
pub struct FormatView {
    /// Human-readable format name (`"csr"`, `"jad"`, …).
    pub name: String,
    /// Dense coordinates of the enveloping array (e.g. `["r", "c"]`).
    pub dense_attrs: Vec<String>,
    /// The index-structure term.
    pub expr: ViewExpr,
    /// Enumeration bounds over dense attributes.
    pub bounds: Vec<Bound>,
    /// Storage guarantees.
    pub guarantees: Vec<StoredGuarantee>,
}

impl FormatView {
    /// Compiles the view into its access alternatives.
    ///
    /// The outer `Vec` has one entry per way of accessing the matrix (the
    /// `⊕` choices); each entry is the set of chains that together cover
    /// all stored values (more than one only under `∪`). Chain `id`s are
    /// globally unique across all alternatives and match the runtime
    /// cursor dispatch of [`crate::SparseView`].
    pub fn alternatives(&self) -> Vec<Vec<Chain>> {
        let mut next_id = 0usize;
        let alts = flatten(&self.expr);
        // Assign ids in canonical (DFS) order: alternatives in order, chains
        // within an alternative in order — but chains shared textually
        // between alternatives are distinct runtime chains.
        alts.into_iter()
            .map(|alt| {
                alt.into_iter()
                    .map(|mut ch| {
                        ch.id = next_id;
                        next_id += 1;
                        ch
                    })
                    .collect()
            })
            .collect()
    }

    /// Total number of chains across all alternatives (the runtime
    /// dispatch range).
    pub fn num_chains(&self) -> usize {
        self.alternatives().iter().map(|a| a.len()).sum()
    }

    /// True if the format guarantees storage of the whole diagonal.
    pub fn has_full_diagonal(&self) -> bool {
        self.guarantees.iter().any(|g| {
            matches!(
                g,
                StoredGuarantee::FullDiagonal | StoredGuarantee::AllPositions
            )
        })
    }
}

/// Detects enumeration bounds and storage guarantees from the stored
/// pattern of a matrix instance.
///
/// The paper conveys bounds "using a pragma" (§2); we additionally infer
/// the common cases automatically so that, e.g., the lower triangle of a
/// factor loaded into any format carries `r ≥ c` and the full-diagonal
/// guarantee without user annotations.
pub fn detect_properties(
    entries: &[(usize, usize, f64)],
    nrows: usize,
    ncols: usize,
) -> (Vec<Bound>, Vec<StoredGuarantee>) {
    let mut bounds = Vec::new();
    let mut guarantees = Vec::new();
    if !entries.is_empty() {
        if entries.iter().all(|&(r, c, _)| r >= c) {
            bounds.push(Bound::attr_ge("r", "c"));
        }
        if entries.iter().all(|&(r, c, _)| c >= r) {
            bounds.push(Bound::attr_ge("c", "r"));
        }
    }
    let n = nrows.min(ncols);
    let mut diag = vec![false; n];
    for &(r, c, _) in entries {
        if r == c {
            diag[r] = true;
        }
    }
    if n > 0 && diag.iter().all(|&d| d) {
        guarantees.push(StoredGuarantee::FullDiagonal);
    }
    (bounds, guarantees)
}

fn flatten(e: &ViewExpr) -> Vec<Vec<Chain>> {
    match e {
        ViewExpr::Value => vec![vec![Chain {
            id: 0,
            levels: Vec::new(),
            fwd: Vec::new(),
            inv: Vec::new(),
        }]],
        ViewExpr::Level {
            attrs,
            order,
            search,
            interval,
            child,
        } => {
            let lvl = FlatLevel {
                attrs: attrs.clone(),
                order: *order,
                search: *search,
                interval: *interval,
            };
            map_chains(flatten(child), |ch| ch.levels.insert(0, lvl.clone()))
        }
        ViewExpr::Map { fwd, inv, child } => map_chains(flatten(child), |ch| {
            let mut f = fwd.clone();
            f.append(&mut ch.fwd);
            ch.fwd = f;
            let mut i = inv.clone();
            i.append(&mut ch.inv);
            ch.inv = i;
        }),
        ViewExpr::Perm {
            table,
            input,
            out,
            child,
        } => map_chains(flatten(child), |ch| {
            ch.fwd.insert(
                0,
                Transform::PermApply {
                    table: table.clone(),
                    input: input.clone(),
                    out: out.clone(),
                },
            );
            ch.inv.insert(
                0,
                Transform::PermUnapply {
                    table: table.clone(),
                    input: out.clone(),
                    out: input.clone(),
                },
            );
        }),
        ViewExpr::Union(a, b) => {
            // Cross product of alternatives; chains concatenate.
            let fa = flatten(a);
            let fb = flatten(b);
            let mut out = Vec::new();
            for alt_a in &fa {
                for alt_b in &fb {
                    let mut chains = alt_a.clone();
                    chains.extend(alt_b.iter().cloned());
                    out.push(chains);
                }
            }
            out
        }
        ViewExpr::Persp(a, b) => {
            let mut out = flatten(a);
            out.extend(flatten(b));
            out
        }
    }
}

fn map_chains(alts: Vec<Vec<Chain>>, f: impl Fn(&mut Chain) + Copy) -> Vec<Vec<Chain>> {
    alts.into_iter()
        .map(|alt| {
            alt.into_iter()
                .map(|mut ch| {
                    f(&mut ch);
                    ch
                })
                .collect()
        })
        .collect()
}

impl fmt::Display for ViewExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewExpr::Value => write!(f, "v"),
            ViewExpr::Level { attrs, child, .. } => {
                if attrs.len() == 1 {
                    write!(f, "{} -> {}", attrs[0], child)
                } else {
                    write!(f, "<{}> -> {}", attrs.join(","), child)
                }
            }
            ViewExpr::Map { fwd, child, .. } => {
                write!(f, "map{{")?;
                for (i, t) in fwd.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match t {
                        Transform::Affine { out, terms, cst } => {
                            let mut s = String::new();
                            for (k, (a, c)) in terms.iter().enumerate() {
                                if k > 0 {
                                    s.push_str(" + ");
                                }
                                if *c == 1 {
                                    s.push_str(a);
                                } else {
                                    s.push_str(&format!("{c}*{a}"));
                                }
                            }
                            if *cst != 0 {
                                s.push_str(&format!(" + {cst}"));
                            }
                            write!(f, "{s} |-> {out}")?;
                        }
                        Transform::PermApply { table, input, out } => {
                            write!(f, "{table}[{input}] |-> {out}")?;
                        }
                        Transform::PermUnapply { table, input, out } => {
                            write!(f, "{table}^-1[{input}] |-> {out}")?;
                        }
                    }
                }
                write!(f, " : {}}}", child)
            }
            ViewExpr::Perm {
                table,
                input,
                out,
                child,
            } => write!(f, "perm{{{table}[{input}] |-> {out} : {}}}", child),
            ViewExpr::Union(a, b) => write!(f, "({a}) ∪ ({b})"),
            ViewExpr::Persp(a, b) => write!(f, "({a}) ⊕ ({b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csr_view() -> FormatView {
        FormatView {
            name: "csr".into(),
            dense_attrs: vec!["r".into(), "c".into()],
            expr: ViewExpr::interval(
                "r",
                ViewExpr::level("c", Order::Increasing, SearchKind::Sorted, ViewExpr::Value),
            ),
            bounds: vec![],
            guarantees: vec![],
        }
    }

    #[test]
    fn csr_single_chain() {
        let v = csr_view();
        let alts = v.alternatives();
        assert_eq!(alts.len(), 1);
        assert_eq!(alts[0].len(), 1);
        let ch = &alts[0][0];
        assert_eq!(ch.stored_attrs(), vec!["r", "c"]);
        assert_eq!(ch.level_of("c"), Some(1));
        assert!(ch.levels[0].interval);
        assert!(!ch.levels[1].interval);
        assert_eq!(v.num_chains(), 1);
    }

    #[test]
    fn jad_two_alternatives() {
        // perm{iperm[rr] |-> r : (<rr,c> -> v) ⊕ (rr -> c -> v)}
        let flat = ViewExpr::coupled(
            &["rr", "c"],
            Order::Unordered,
            SearchKind::None,
            ViewExpr::Value,
        );
        let hier = ViewExpr::interval(
            "rr",
            ViewExpr::level("c", Order::Increasing, SearchKind::Linear, ViewExpr::Value),
        );
        let v = FormatView {
            name: "jad".into(),
            dense_attrs: vec!["r".into(), "c".into()],
            expr: ViewExpr::Perm {
                table: "iperm".into(),
                input: "rr".into(),
                out: "r".into(),
                child: Box::new(ViewExpr::Persp(Box::new(flat), Box::new(hier))),
            },
            bounds: vec![Bound::attr_ge("r", "c")],
            guarantees: vec![StoredGuarantee::FullDiagonal],
        };
        let alts = v.alternatives();
        assert_eq!(alts.len(), 2);
        assert_eq!(alts[0][0].id, 0);
        assert_eq!(alts[1][0].id, 1);
        // Both alternatives carry the perm transform.
        for alt in &alts {
            assert!(matches!(alt[0].fwd[0], Transform::PermApply { .. }));
            assert!(matches!(alt[0].inv[0], Transform::PermUnapply { .. }));
        }
        assert_eq!(alts[0][0].levels.len(), 1); // coupled flat level
        assert_eq!(alts[0][0].levels[0].attrs.len(), 2);
        assert_eq!(alts[1][0].levels.len(), 2); // hierarchical
        assert!(v.has_full_diagonal());
    }

    #[test]
    fn union_produces_multi_chain_alternative() {
        // (i -> v)  ∪  (r -> c -> v) : diagonal + offdiag, one alternative
        // with two chains.
        let diag = ViewExpr::Map {
            fwd: vec![
                Transform::Affine {
                    out: "r".into(),
                    terms: vec![("i".into(), 1)],
                    cst: 0,
                },
                Transform::Affine {
                    out: "c".into(),
                    terms: vec![("i".into(), 1)],
                    cst: 0,
                },
            ],
            inv: vec![Transform::Affine {
                out: "i".into(),
                terms: vec![("r".into(), 1)],
                cst: 0,
            }],
            child: Box::new(ViewExpr::interval("i", ViewExpr::Value)),
        };
        let off = ViewExpr::interval(
            "r",
            ViewExpr::level("c", Order::Increasing, SearchKind::Sorted, ViewExpr::Value),
        );
        let v = FormatView {
            name: "diagsplit".into(),
            dense_attrs: vec!["r".into(), "c".into()],
            expr: ViewExpr::Union(Box::new(diag), Box::new(off)),
            bounds: vec![],
            guarantees: vec![StoredGuarantee::FullDiagonal],
        };
        let alts = v.alternatives();
        assert_eq!(alts.len(), 1);
        assert_eq!(alts[0].len(), 2);
        assert_eq!(alts[0][0].id, 0);
        assert_eq!(alts[0][1].id, 1);
        assert_eq!(alts[0][0].stored_attrs(), vec!["i"]);
        assert_eq!(alts[0][1].stored_attrs(), vec!["r", "c"]);
    }

    #[test]
    fn dia_map_transforms() {
        // map{d + o |-> r, o |-> c : d -> o -> v}
        let v = FormatView {
            name: "dia".into(),
            dense_attrs: vec!["r".into(), "c".into()],
            expr: ViewExpr::Map {
                fwd: vec![
                    Transform::Affine {
                        out: "r".into(),
                        terms: vec![("d".into(), 1), ("o".into(), 1)],
                        cst: 0,
                    },
                    Transform::Affine {
                        out: "c".into(),
                        terms: vec![("o".into(), 1)],
                        cst: 0,
                    },
                ],
                inv: vec![
                    Transform::Affine {
                        out: "d".into(),
                        terms: vec![("r".into(), 1), ("c".into(), -1)],
                        cst: 0,
                    },
                    Transform::Affine {
                        out: "o".into(),
                        terms: vec![("c".into(), 1)],
                        cst: 0,
                    },
                ],
                child: Box::new(ViewExpr::level(
                    "d",
                    Order::Increasing,
                    SearchKind::Sorted,
                    ViewExpr::level("o", Order::Increasing, SearchKind::Direct, ViewExpr::Value),
                )),
            },
            bounds: vec![],
            guarantees: vec![],
        };
        let alts = v.alternatives();
        let ch = &alts[0][0];
        assert_eq!(ch.fwd.len(), 2);
        assert_eq!(ch.inv.len(), 2);
        assert_eq!(ch.fwd[0].out(), "r");
        assert_eq!(ch.fwd[0].inputs(), vec!["d", "o"]);
        let shown = format!("{}", v.expr);
        assert!(shown.contains("|-> r"), "{shown}");
        assert!(shown.contains("d -> o -> v"), "{shown}");
    }

    #[test]
    fn display_coupled_and_persp() {
        let e = ViewExpr::Persp(
            Box::new(ViewExpr::coupled(
                &["r", "c"],
                Order::Unordered,
                SearchKind::None,
                ViewExpr::Value,
            )),
            Box::new(ViewExpr::interval("r", ViewExpr::Value)),
        );
        assert_eq!(format!("{e}"), "(<r,c> -> v) ⊕ (r -> v)");
    }
}
