//! Any-to-any format conversion through [`Triplets`].

use crate::scalar::Scalar;
use crate::{Bsr, Coo, Csc, Csr, Dense, Dia, DiagSplit, Ell, Jad, Triplets, Vbr};

/// Errors a caller can trigger through the format layer: asking for a
/// format this build doesn't know, converting into a format whose
/// structural constraints the matrix violates, or presenting a view
/// that fails runtime conformance checking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FormatError {
    /// No format with this name (see [`FORMAT_NAMES`]).
    UnknownFormat { name: String },
    /// The format requires a square matrix (e.g. `diagsplit`).
    NotSquare {
        format: &'static str,
        nrows: usize,
        ncols: usize,
    },
    /// A view failed runtime conformance checking
    /// ([`check_view_conformance`](crate::cursor::check_view_conformance)).
    Nonconforming(String),
    /// An entry coordinate outside the matrix shape (builder input).
    EntryOutOfRange {
        r: usize,
        c: usize,
        nrows: usize,
        ncols: usize,
    },
    /// A format instance whose arrays violate the format's structural
    /// invariants (see the per-format `validate` methods) — the typed
    /// verdict for untrusted data that would otherwise surface as an
    /// out-of-bounds panic deep inside a kernel.
    Invalid {
        format: &'static str,
        reason: String,
    },
}

/// Shorthand constructor for [`FormatError::Invalid`].
pub(crate) fn invalid(format: &'static str, reason: impl Into<String>) -> FormatError {
    FormatError::Invalid {
        format,
        reason: reason.into(),
    }
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::UnknownFormat { name } => {
                write!(
                    f,
                    "unknown format {name:?} (known: {})",
                    FORMAT_NAMES.join(", ")
                )
            }
            FormatError::NotSquare {
                format,
                nrows,
                ncols,
            } => write!(
                f,
                "format {format:?} requires a square matrix, got {nrows}x{ncols}"
            ),
            FormatError::Nonconforming(msg) => write!(f, "nonconforming view: {msg}"),
            FormatError::EntryOutOfRange { r, c, nrows, ncols } => {
                write!(f, "entry ({r},{c}) out of range for {nrows}x{ncols} matrix")
            }
            FormatError::Invalid { format, reason } => {
                write!(f, "invalid {format} matrix: {reason}")
            }
        }
    }
}

impl std::error::Error for FormatError {}

/// Names of all matrix formats with universal conversion support.
pub const FORMAT_NAMES: &[&str] = &[
    "dense",
    "coo",
    "csr",
    "csc",
    "dia",
    "ell",
    "jad",
    "diagsplit",
    "bsr",
    "vbr",
];

/// A dynamically-chosen matrix format (conversion and experiment-harness
/// convenience; kernels always work with the concrete types).
#[derive(Clone, Debug)]
pub enum AnyFormat<T: Scalar = f64> {
    Dense(Dense<T>),
    Coo(Coo<T>),
    Csr(Csr<T>),
    Csc(Csc<T>),
    Dia(Dia<T>),
    Ell(Ell<T>),
    Jad(Jad<T>),
    DiagSplit(DiagSplit<T>),
    Bsr(Bsr<T>),
    Vbr(Vbr<T>),
}

impl<T: Scalar> AnyFormat<T> {
    /// Converts triplets into the named format.
    ///
    /// # Panics
    /// Panics on an unknown format name, or if the format's constraints
    /// are violated (e.g. `diagsplit` on a non-square matrix); use
    /// [`AnyFormat::try_from_triplets`] to recover instead.
    pub fn from_triplets(name: &str, t: &Triplets<T>) -> AnyFormat<T> {
        match Self::try_from_triplets(name, t) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`AnyFormat::from_triplets`] with unknown names and violated
    /// format constraints reported as a [`FormatError`].
    pub fn try_from_triplets(name: &str, t: &Triplets<T>) -> Result<AnyFormat<T>, FormatError> {
        Ok(match name {
            "dense" => AnyFormat::Dense(Dense::from_triplets(t)),
            "coo" => AnyFormat::Coo(Coo::from_triplets(t)),
            "csr" => AnyFormat::Csr(Csr::from_triplets(t)),
            "csc" => AnyFormat::Csc(Csc::from_triplets(t)),
            "dia" => AnyFormat::Dia(Dia::from_triplets(t)),
            "ell" => AnyFormat::Ell(Ell::from_triplets(t)),
            "jad" => AnyFormat::Jad(Jad::from_triplets(t)),
            "diagsplit" => {
                if t.nrows() != t.ncols() {
                    return Err(FormatError::NotSquare {
                        format: "diagsplit",
                        nrows: t.nrows(),
                        ncols: t.ncols(),
                    });
                }
                AnyFormat::DiagSplit(DiagSplit::from_triplets(t))
            }
            // Blocked formats pick their structure by discovery: the
            // dominant near-dense block size for BSR, the natural
            // identical-support strips for VBR. Both fall back to 1x1
            // blocking, so any matrix converts.
            "bsr" => {
                let rep = crate::blocks::discover_block_size(t, 8, 0.9);
                AnyFormat::Bsr(Bsr::from_triplets(t, rep.r, rep.c))
            }
            "vbr" => {
                let (rp, cp) = crate::blocks::discover_strips(t);
                AnyFormat::Vbr(Vbr::from_triplets(t, &rp, &cp))
            }
            other => {
                return Err(FormatError::UnknownFormat {
                    name: other.to_string(),
                })
            }
        })
    }

    /// Converts back to triplets.
    pub fn to_triplets(&self) -> Triplets<T> {
        match self {
            AnyFormat::Dense(m) => m.to_triplets(),
            AnyFormat::Coo(m) => m.to_triplets(),
            AnyFormat::Csr(m) => m.to_triplets(),
            AnyFormat::Csc(m) => m.to_triplets(),
            AnyFormat::Dia(m) => m.to_triplets(),
            AnyFormat::Ell(m) => m.to_triplets(),
            AnyFormat::Jad(m) => m.to_triplets(),
            AnyFormat::DiagSplit(m) => m.to_triplets(),
            AnyFormat::Bsr(m) => m.to_triplets(),
            AnyFormat::Vbr(m) => m.to_triplets(),
        }
    }

    /// Checks the structural invariants of the wrapped instance (see
    /// the per-format `validate` methods). Formats whose construction
    /// cannot produce out-of-bounds storage (`dense`, `coo` builders
    /// range-check on the way in; `diagsplit` wraps validated parts)
    /// report `Ok` unconditionally.
    pub fn validate(&self) -> Result<(), FormatError> {
        match self {
            AnyFormat::Csr(m) => m.validate(),
            AnyFormat::Csc(m) => m.validate(),
            AnyFormat::Dia(m) => m.validate(),
            AnyFormat::Ell(m) => m.validate(),
            AnyFormat::Jad(m) => m.validate(),
            AnyFormat::Bsr(m) => m.validate(),
            AnyFormat::Vbr(m) => m.validate(),
            AnyFormat::Dense(_) | AnyFormat::Coo(_) | AnyFormat::DiagSplit(_) => Ok(()),
        }
    }

    /// The format name.
    pub fn name(&self) -> &'static str {
        match self {
            AnyFormat::Dense(_) => "dense",
            AnyFormat::Coo(_) => "coo",
            AnyFormat::Csr(_) => "csr",
            AnyFormat::Csc(_) => "csc",
            AnyFormat::Dia(_) => "dia",
            AnyFormat::Ell(_) => "ell",
            AnyFormat::Jad(_) => "jad",
            AnyFormat::DiagSplit(_) => "diagsplit",
            AnyFormat::Bsr(_) => "bsr",
            AnyFormat::Vbr(_) => "vbr",
        }
    }
}

impl AnyFormat<f64> {
    /// Borrows the dynamic low-level API.
    pub fn as_view(&self) -> &dyn crate::SparseView {
        match self {
            AnyFormat::Dense(m) => m,
            AnyFormat::Coo(m) => m,
            AnyFormat::Csr(m) => m,
            AnyFormat::Csc(m) => m,
            AnyFormat::Dia(m) => m,
            AnyFormat::Ell(m) => m,
            AnyFormat::Jad(m) => m,
            AnyFormat::DiagSplit(m) => m,
            AnyFormat::Bsr(m) => m,
            AnyFormat::Vbr(m) => m,
        }
    }

    /// Mutably borrows the dynamic low-level API.
    pub fn as_view_mut(&mut self) -> &mut dyn crate::SparseView {
        match self {
            AnyFormat::Dense(m) => m,
            AnyFormat::Coo(m) => m,
            AnyFormat::Csr(m) => m,
            AnyFormat::Csc(m) => m,
            AnyFormat::Dia(m) => m,
            AnyFormat::Ell(m) => m,
            AnyFormat::Jad(m) => m,
            AnyFormat::DiagSplit(m) => m,
            AnyFormat::Bsr(m) => m,
            AnyFormat::Vbr(m) => m,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Triplets<f64> {
        Triplets::from_entries(
            4,
            4,
            &[
                (0, 0, 2.0),
                (1, 1, 3.0),
                (2, 2, 4.0),
                (3, 3, 5.0),
                (1, 0, -1.0),
                (3, 1, 6.0),
                (0, 2, 7.0),
            ],
        )
    }

    #[test]
    fn all_formats_roundtrip_values() {
        let t = sample();
        for &name in FORMAT_NAMES {
            let f = AnyFormat::from_triplets(name, &t);
            assert_eq!(f.name(), name);
            let back = f.to_triplets();
            // DIA and DiagSplit add structural zeros; compare by value.
            for r in 0..4 {
                for c in 0..4 {
                    assert_eq!(back.get(r, c), t.get(r, c), "{name} ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn cross_format_random_access_agrees() {
        let t = sample();
        let formats: Vec<AnyFormat<f64>> = FORMAT_NAMES
            .iter()
            .map(|&n| AnyFormat::from_triplets(n, &t))
            .collect();
        for r in 0..4 {
            for c in 0..4 {
                let expect = t.get(r, c);
                for f in &formats {
                    assert_eq!(f.as_view().get(r, c), expect, "{} ({r},{c})", f.name());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown format")]
    fn unknown_format_panics() {
        let _ = AnyFormat::<f64>::from_triplets("bcrs", &sample());
    }

    #[test]
    fn try_from_triplets_reports_typed_errors() {
        let e = AnyFormat::<f64>::try_from_triplets("bcrs", &sample()).unwrap_err();
        assert_eq!(
            e,
            FormatError::UnknownFormat {
                name: "bcrs".to_string()
            }
        );
        assert!(e.to_string().contains("csr"), "{e}"); // lists known names
        let rect = Triplets::from_entries(2, 3, &[(0, 0, 1.0)]);
        let e2 = AnyFormat::<f64>::try_from_triplets("diagsplit", &rect).unwrap_err();
        assert_eq!(
            e2,
            FormatError::NotSquare {
                format: "diagsplit",
                nrows: 2,
                ncols: 3
            }
        );
        // Every known name still converts.
        for &name in FORMAT_NAMES {
            assert!(AnyFormat::<f64>::try_from_triplets(name, &sample()).is_ok());
        }
    }
}
