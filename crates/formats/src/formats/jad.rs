//! Jagged Diagonal storage — the
//! `perm{iperm[rr] |-> r : (<rr,c> -> v) ⊕ (rr -> c -> v)}` view.
//!
//! Construction (paper Appendix A, Fig. 14): compress each row (dropping
//! zeros, keeping original column indices), sort the compressed rows by
//! decreasing fill (recording the permutation `iperm`), then store the
//! *columns* of the compressed-and-sorted matrix — the "jagged diagonals"
//! — contiguously. `dptr[d]` marks where diagonal `d` starts.
//!
//! Two perspectives (`⊕`):
//! - **flat**: enumerate `(rr, c)` pairs in storage order, walking the
//!   long diagonals — the fast path for MVM;
//! - **hierarchical**: random access to permuted row `rr`, then the `d`-th
//!   element of the row sits at `dptr[d] + rr` — the path triangular solve
//!   needs.
//!
//! One deliberate improvement over the paper's reference code: the paper's
//! `term_perm_vector::unapply` does a linear scan; we precompute the
//! inverse permutation (`iperm_inv`) for O(1) un-mapping, which is what a
//! production implementation would do.

use crate::scalar::Scalar;
use crate::view::{detect_properties, FormatView, Order, SearchKind, ViewExpr};
use crate::{ChainCursor, Position, SparseMatrix, SparseView, Triplets};

/// Jagged Diagonal matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Jad<T: Scalar = f64> {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// `iperm[rr]` = original row index of permuted row `rr`.
    pub iperm: Vec<usize>,
    /// `iperm_inv[r]` = permuted index of original row `r`.
    pub iperm_inv: Vec<usize>,
    /// Start of each jagged diagonal in `colind`/`values`
    /// (`len == ndiags + 1`).
    pub dptr: Vec<usize>,
    /// Column index of each stored entry, diagonal-major: the `d`-th
    /// element of permuted row `rr` is at `dptr[d] + rr`.
    pub colind: Vec<usize>,
    /// Values, same layout as `colind`.
    pub values: Vec<T>,
    /// Stored entries in each *permuted* row (non-increasing in `rr`).
    pub rowlen: Vec<usize>,
}

impl<T: Scalar> Jad<T> {
    /// Builds from triplets.
    pub fn from_triplets(t: &Triplets<T>) -> Jad<T> {
        let mut t = t.clone();
        t.normalize();
        let m = t.nrows();
        // Compress rows: per-row (col, value) lists, already column-sorted.
        let mut rows: Vec<Vec<(usize, T)>> = vec![Vec::new(); m];
        for &(r, c, v) in t.entries() {
            rows[r].push((c, v));
        }
        // Sort rows by decreasing fill; stable so equal-fill rows keep
        // their original relative order (deterministic layout).
        let mut iperm: Vec<usize> = (0..m).collect();
        iperm.sort_by_key(|&r| std::cmp::Reverse(rows[r].len()));
        let mut iperm_inv = vec![0usize; m];
        for (rr, &r) in iperm.iter().enumerate() {
            iperm_inv[r] = rr;
        }
        let rowlen: Vec<usize> = iperm.iter().map(|&r| rows[r].len()).collect();
        let nd = rowlen.first().copied().unwrap_or(0);
        // dptr[d+1] - dptr[d] = number of rows with fill > d.
        let mut dptr = Vec::with_capacity(nd + 1);
        dptr.push(0usize);
        for d in 0..nd {
            let cnt = rowlen.partition_point(|&len| len > d);
            dptr.push(dptr[dptr.len() - 1] + cnt);
        }
        let nnz = dptr[dptr.len() - 1];
        let mut colind = vec![0usize; nnz];
        let mut values = vec![T::ZERO; nnz];
        for rr in 0..m {
            let r = iperm[rr];
            for (d, &(c, v)) in rows[r].iter().enumerate() {
                colind[dptr[d] + rr] = c;
                values[dptr[d] + rr] = v;
            }
        }
        Jad {
            nrows: m,
            ncols: t.ncols(),
            iperm,
            iperm_inv,
            dptr,
            colind,
            values,
            rowlen,
        }
    }

    /// Converts back to triplets.
    pub fn to_triplets(&self) -> Triplets<T> {
        let mut t = Triplets::new(self.nrows, self.ncols);
        for rr in 0..self.nrows {
            let r = self.iperm[rr];
            for d in 0..self.rowlen[rr] {
                let jj = self.dptr[d] + rr;
                t.push(r, self.colind[jj], self.values[jj]);
            }
        }
        t.normalize();
        t
    }

    /// Checks the structural invariants of an *untrusted* JAD instance:
    /// `iperm`/`iperm_inv` are mutually inverse permutations of the
    /// rows, `rowlen` is non-increasing (the defining jagged property),
    /// each `dptr` strip is exactly as long as the number of rows
    /// reaching that diagonal, and all stored columns are in range.
    pub fn validate(&self) -> Result<(), crate::FormatError> {
        let fail = |reason: String| Err(crate::convert::invalid("jad", reason));
        let m = self.nrows;
        if self.iperm.len() != m || self.iperm_inv.len() != m || self.rowlen.len() != m {
            return fail(format!(
                "iperm/iperm_inv/rowlen have {}/{}/{} entries, want nrows = {m}",
                self.iperm.len(),
                self.iperm_inv.len(),
                self.rowlen.len()
            ));
        }
        for (rr, &r) in self.iperm.iter().enumerate() {
            if r >= m {
                return fail(format!("iperm[{rr}] = {r} >= nrows {m}"));
            }
            if self.iperm_inv[r] != rr {
                return fail(format!(
                    "iperm_inv[{r}] = {} but iperm[{rr}] = {r}: not inverse permutations",
                    self.iperm_inv[r]
                ));
            }
        }
        for rr in 1..m {
            if self.rowlen[rr] > self.rowlen[rr - 1] {
                return fail(format!("rowlen increases at permuted row {rr}"));
            }
        }
        let nd = self.rowlen.first().copied().unwrap_or(0);
        if self.dptr.len() != nd + 1 {
            return fail(format!(
                "dptr has {} entries, want max rowlen + 1 = {}",
                self.dptr.len(),
                nd + 1
            ));
        }
        if self.dptr[0] != 0 {
            return fail(format!("dptr[0] = {}, want 0", self.dptr[0]));
        }
        for d in 0..nd {
            let want = self.rowlen.partition_point(|&len| len > d);
            let got = self.dptr[d + 1].checked_sub(self.dptr[d]);
            if got != Some(want) {
                return fail(format!(
                    "diagonal {d} strip length {:?} disagrees with rowlen (want {want})",
                    got
                ));
            }
        }
        let nnz = *self.dptr.last().unwrap_or(&0);
        if self.colind.len() != nnz || self.values.len() != nnz {
            return fail(format!(
                "colind/values have {}/{} entries, want dptr total {nnz}",
                self.colind.len(),
                self.values.len()
            ));
        }
        if let Some(&c) = self.colind.iter().find(|&&c| c >= self.ncols) {
            return fail(format!("stored column {c} >= ncols {}", self.ncols));
        }
        Ok(())
    }

    /// Number of jagged diagonals.
    pub fn ndiags(&self) -> usize {
        self.dptr.len() - 1
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Storage index of `(r, c)` (binary search over the row's diagonals,
    /// exploiting that column indices increase along a row).
    pub fn find(&self, r: usize, c: usize) -> Option<usize> {
        let rr = self.iperm_inv[r];
        let len = self.rowlen[rr];
        let (mut lo, mut hi) = (0usize, len);
        while lo < hi {
            let mid = (lo + hi) / 2;
            let jj = self.dptr[mid] + rr;
            match self.colind[jj].cmp(&c) {
                std::cmp::Ordering::Equal => return Some(jj),
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
            }
        }
        None
    }

    /// Binary search within *permuted* row `rr` for column `c`.
    pub fn find_in_row(&self, rr: usize, c: usize) -> Option<usize> {
        let (mut lo, mut hi) = (0usize, self.rowlen[rr]);
        while lo < hi {
            let mid = (lo + hi) / 2;
            let jj = self.dptr[mid] + rr;
            match self.colind[jj].cmp(&c) {
                std::cmp::Ordering::Equal => return Some(jj),
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
            }
        }
        None
    }

    /// The diagonal `d` containing flat index `jj` (binary search over
    /// `dptr`).
    fn diag_of(&self, jj: usize) -> usize {
        debug_assert!(jj < self.nnz());
        self.dptr.partition_point(|&p| p <= jj) - 1
    }
}

impl SparseMatrix for Jad<f64> {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn nnz(&self) -> usize {
        self.values.len()
    }
    fn get(&self, r: usize, c: usize) -> f64 {
        self.find(r, c).map_or(0.0, |i| self.values[i])
    }
    fn set(&mut self, r: usize, c: usize, v: f64) {
        let i = self
            .find(r, c)
            .unwrap_or_else(|| panic!("({r},{c}) is not a stored position"));
        self.values[i] = v;
    }
    fn entries(&self) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::with_capacity(self.nnz());
        for rr in 0..self.nrows {
            let r = self.iperm[rr];
            for d in 0..self.rowlen[rr] {
                let jj = self.dptr[d] + rr;
                out.push((r, self.colind[jj], self.values[jj]));
            }
        }
        out
    }
}

/// The JAD index structure (paper §2 / Appendix A.2):
/// `perm{iperm[rr] |-> r : (<rr, c> -> v) ⊕ (rr -> c -> v)}`.
///
/// Chain 0 is the flat (diagonal-walking) perspective; chain 1 is the
/// hierarchical (row-indexed) perspective.
pub fn jad_format_view() -> FormatView {
    let flat = ViewExpr::coupled(
        &["rr", "c"],
        Order::Unordered,
        SearchKind::None,
        ViewExpr::Value,
    );
    let hier = ViewExpr::interval(
        "rr",
        ViewExpr::level("c", Order::Increasing, SearchKind::Sorted, ViewExpr::Value),
    );
    FormatView {
        name: "jad".into(),
        dense_attrs: vec!["r".into(), "c".into()],
        expr: ViewExpr::Perm {
            table: "iperm".into(),
            input: "rr".into(),
            out: "r".into(),
            child: Box::new(ViewExpr::Persp(Box::new(flat), Box::new(hier))),
        },
        bounds: vec![],
        guarantees: vec![],
    }
}

impl SparseView for Jad<f64> {
    fn format_view(&self) -> FormatView {
        let mut v = jad_format_view();
        let (b, g) = detect_properties(&self.entries(), self.nrows, self.ncols);
        v.bounds = b;
        v.guarantees = g;
        v
    }

    fn cursor(&self, chain: usize, level: usize, parent: Position, reverse: bool) -> ChainCursor {
        assert!(
            !reverse || (chain == 1 && level == 0),
            "only the jad row level reverses"
        );
        match (chain, level) {
            // Flat: one coupled level over all entries in diagonal order.
            (0, 0) => ChainCursor::over_range(0, 0, parent, 0, self.nnz() as i64, false),
            // Hier: permuted rows, then the row's diagonals.
            (1, 0) => ChainCursor::over_range(1, 0, parent, 0, self.nrows as i64, reverse),
            (1, 1) => ChainCursor::over_range(1, 1, parent, 0, self.rowlen[parent] as i64, false),
            _ => panic!("jad chain/level out of range: ({chain},{level})"),
        }
    }

    fn advance(&self, cur: &mut ChainCursor) -> bool {
        if !cur.step() {
            return false;
        }
        match (cur.chain, cur.level) {
            (0, 0) => {
                let jj = cur.idx as usize;
                let d = self.diag_of(jj);
                cur.keys = vec![(jj - self.dptr[d]) as i64, self.colind[jj] as i64];
                cur.pos = jj;
            }
            (1, 0) => {
                cur.keys = vec![cur.idx];
                cur.pos = cur.idx as usize;
            }
            (1, 1) => {
                let jj = self.dptr[cur.idx as usize] + cur.parent;
                cur.keys = vec![self.colind[jj] as i64];
                cur.pos = jj;
            }
            _ => unreachable!(),
        }
        true
    }

    fn search(
        &self,
        chain: usize,
        level: usize,
        parent: Position,
        keys: &[i64],
    ) -> Option<Position> {
        match (chain, level) {
            (1, 0) => {
                let k = keys[0];
                (k >= 0 && k < self.nrows as i64).then_some(k as usize)
            }
            (1, 1) => {
                let c = keys[0];
                if c < 0 {
                    return None;
                }
                // Binary search over the row's diagonals.
                let rr = parent;
                let (mut lo, mut hi) = (0usize, self.rowlen[rr]);
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    let jj = self.dptr[mid] + rr;
                    match (self.colind[jj] as i64).cmp(&c) {
                        std::cmp::Ordering::Equal => return Some(jj),
                        std::cmp::Ordering::Less => lo = mid + 1,
                        std::cmp::Ordering::Greater => hi = mid,
                    }
                }
                None
            }
            (0, 0) => panic!("jad flat perspective does not support search"),
            _ => panic!("jad chain/level out of range"),
        }
    }

    fn value_at(&self, _chain: usize, pos: Position) -> f64 {
        self.values[pos]
    }

    fn set_value_at(&mut self, _chain: usize, pos: Position, v: f64) {
        self.values[pos] = v;
    }

    fn perm_apply(&self, table: &str, x: i64) -> i64 {
        assert_eq!(table, "iperm", "jad has a single permutation table");
        self.iperm[x as usize] as i64
    }

    fn perm_unapply(&self, table: &str, x: i64) -> i64 {
        assert_eq!(table, "iperm", "jad has a single permutation table");
        self.iperm_inv[x as usize] as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::check_view_conformance;

    /// The matrix of the paper's Fig. 14(a):
    /// ```text
    ///   [a 0 b 0]        row fills: 2, 1, 2, 3
    ///   [0 c 0 0]
    ///   [0 d e 0]
    ///   [f 0 g h]
    /// ```
    fn fig14() -> Triplets<f64> {
        Triplets::from_entries(
            4,
            4,
            &[
                (0, 0, 1.0), // a
                (0, 2, 2.0), // b
                (1, 1, 3.0), // c
                (2, 1, 4.0), // d
                (2, 2, 5.0), // e
                (3, 0, 6.0), // f
                (3, 2, 7.0), // g
                (3, 3, 8.0), // h
            ],
        )
    }

    #[test]
    fn construction_matches_fig14() {
        let a = Jad::from_triplets(&fig14());
        // Row 3 has 3 entries -> first after sorting; rows 0 and 2 have 2
        // (stable: 0 before 2); row 1 has 1 -> last.
        assert_eq!(a.iperm, vec![3, 0, 2, 1]);
        assert_eq!(a.iperm_inv, vec![1, 3, 2, 0]);
        assert_eq!(a.rowlen, vec![3, 2, 2, 1]);
        assert_eq!(a.ndiags(), 3);
        // Diagonal 0 has 4 entries, diagonal 1 has 3, diagonal 2 has 1.
        assert_eq!(a.dptr, vec![0, 4, 7, 8]);
        // Diagonal 0: first entries of rows [3,0,2,1] = f,a,d,c.
        assert_eq!(a.colind[0..4], [0, 0, 1, 1]);
        assert_eq!(a.values[0..4], [6.0, 1.0, 4.0, 3.0]);
        // Diagonal 1: second entries of rows [3,0,2] = g,b,e.
        assert_eq!(a.colind[4..7], [2, 2, 2]);
        assert_eq!(a.values[4..7], [7.0, 2.0, 5.0]);
        // Diagonal 2: third entry of row 3 = h.
        assert_eq!(a.colind[7], 3);
        assert_eq!(a.values[7], 8.0);
    }

    #[test]
    fn random_access() {
        let a = Jad::from_triplets(&fig14());
        assert_eq!(a.get(3, 2), 7.0);
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(0, 1), 0.0);
        assert_eq!(a.get(2, 2), 5.0);
    }

    #[test]
    fn roundtrip() {
        let t = fig14();
        assert_eq!(Jad::from_triplets(&t).to_triplets(), t);
    }

    #[test]
    fn both_perspectives_conform() {
        let a = Jad::from_triplets(&fig14());
        check_view_conformance(&a, 0).unwrap(); // flat
        check_view_conformance(&a, 1).unwrap(); // hierarchical
    }

    #[test]
    fn flat_cursor_walks_diagonals() {
        let a = Jad::from_triplets(&fig14());
        let mut cur = a.cursor(0, 0, 0, false);
        let mut seen = Vec::new();
        while a.advance(&mut cur) {
            seen.push((cur.keys[0], cur.keys[1]));
        }
        // (rr, c) pairs in storage order: diagonal 0 rr=0..4, then diag 1...
        assert_eq!(
            seen,
            vec![
                (0, 0),
                (1, 0),
                (2, 1),
                (3, 1),
                (0, 2),
                (1, 2),
                (2, 2),
                (0, 3)
            ]
        );
    }

    #[test]
    fn hier_row_access() {
        let a = Jad::from_triplets(&fig14());
        // Original row 3 is permuted row 0.
        let rr = a.perm_unapply("iperm", 3) as usize;
        assert_eq!(rr, 0);
        let mut cur = a.cursor(1, 1, rr, false);
        let mut row = Vec::new();
        while a.advance(&mut cur) {
            row.push((cur.keys[0], a.value_at(1, cur.pos)));
        }
        assert_eq!(row, vec![(0, 6.0), (2, 7.0), (3, 8.0)]);
    }

    #[test]
    fn hier_search_by_column() {
        let a = Jad::from_triplets(&fig14());
        let rr = a.iperm_inv[3];
        let p = a.search(1, 1, rr, &[3]).unwrap();
        assert_eq!(a.value_at(1, p), 8.0);
        assert!(a.search(1, 1, rr, &[1]).is_none());
    }

    #[test]
    fn triangular_properties_detected() {
        let l = fig14().lower_triangle_full_diag(1.0);
        let a = Jad::from_triplets(&l);
        let v = a.format_view();
        assert!(v.has_full_diagonal());
        assert!(!v.bounds.is_empty()); // r >= c detected
    }

    #[test]
    fn perm_tables() {
        let a = Jad::from_triplets(&fig14());
        for rr in 0..4 {
            let r = a.perm_apply("iperm", rr);
            assert_eq!(a.perm_unapply("iperm", r), rr);
        }
    }
}
