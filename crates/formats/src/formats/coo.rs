//! Co-ordinate storage — the `<r, c> -> v` view.
//!
//! Three parallel arrays hold the nonzeros and their positions; the
//! nonzeros may be ordered arbitrarily (paper §1). The view is a single
//! *coupled* level binding both coordinates at once, with no order
//! guarantee and only linear search.

use crate::scalar::Scalar;
use crate::view::{detect_properties, FormatView, Order, SearchKind, ViewExpr};
use crate::{ChainCursor, Position, SparseMatrix, SparseView, Triplets};

/// Co-ordinate (triplet-array) matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Coo<T: Scalar = f64> {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Row position of each stored entry.
    pub rows: Vec<usize>,
    /// Column position of each stored entry.
    pub cols: Vec<usize>,
    /// Value of each stored entry.
    pub values: Vec<T>,
}

impl<T: Scalar> Coo<T> {
    /// Builds from triplets, preserving the (row-major) normalized order.
    pub fn from_triplets(t: &Triplets<T>) -> Coo<T> {
        let mut t = t.clone();
        t.normalize();
        Coo {
            nrows: t.nrows(),
            ncols: t.ncols(),
            rows: t.entries().iter().map(|&(r, _, _)| r).collect(),
            cols: t.entries().iter().map(|&(_, c, _)| c).collect(),
            values: t.entries().iter().map(|&(_, _, v)| v).collect(),
        }
    }

    /// Builds with an explicitly scrambled entry order (for tests that
    /// must not rely on any ordering).
    pub fn from_triplets_shuffled(t: &Triplets<T>, seed: u64) -> Coo<T> {
        let mut coo = Coo::from_triplets(t);
        // Fisher–Yates with a splitmix64 stream; deterministic for tests.
        let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let n = coo.values.len();
        for i in (1..n).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            coo.rows.swap(i, j);
            coo.cols.swap(i, j);
            coo.values.swap(i, j);
        }
        coo
    }

    /// Converts back to triplets.
    pub fn to_triplets(&self) -> Triplets<T> {
        let mut t = Triplets::new(self.nrows, self.ncols);
        for i in 0..self.values.len() {
            t.push(self.rows[i], self.cols[i], self.values[i]);
        }
        t.normalize();
        t
    }

    /// Linear search for `(r, c)`.
    pub fn find(&self, r: usize, c: usize) -> Option<usize> {
        (0..self.values.len()).find(|&i| self.rows[i] == r && self.cols[i] == c)
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }
}

impl SparseMatrix for Coo<f64> {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn nnz(&self) -> usize {
        self.values.len()
    }
    fn get(&self, r: usize, c: usize) -> f64 {
        self.find(r, c).map_or(0.0, |i| self.values[i])
    }
    fn set(&mut self, r: usize, c: usize, v: f64) {
        let i = self
            .find(r, c)
            .unwrap_or_else(|| panic!("({r},{c}) is not a stored position"));
        self.values[i] = v;
    }
    fn entries(&self) -> Vec<(usize, usize, f64)> {
        (0..self.nnz())
            .map(|i| (self.rows[i], self.cols[i], self.values[i]))
            .collect()
    }
}

/// The COO index structure: `<r, c> -> v`, unordered, linear search.
pub fn coo_format_view() -> FormatView {
    FormatView {
        name: "coo".into(),
        dense_attrs: vec!["r".into(), "c".into()],
        expr: ViewExpr::coupled(
            &["r", "c"],
            Order::Unordered,
            SearchKind::Linear,
            ViewExpr::Value,
        ),
        bounds: vec![],
        guarantees: vec![],
    }
}

impl SparseView for Coo<f64> {
    fn format_view(&self) -> FormatView {
        let mut v = coo_format_view();
        let (b, g) = detect_properties(&self.entries(), self.nrows, self.ncols);
        v.bounds = b;
        v.guarantees = g;
        v
    }

    fn cursor(&self, chain: usize, level: usize, parent: Position, reverse: bool) -> ChainCursor {
        assert_eq!(chain, 0);
        assert_eq!(level, 0, "coo has a single coupled level");
        assert!(!reverse, "coo enumerates in storage order only");
        ChainCursor::over_range(chain, 0, parent, 0, self.values.len() as i64, false)
    }

    fn advance(&self, cur: &mut ChainCursor) -> bool {
        if !cur.step() {
            return false;
        }
        let i = cur.idx as usize;
        cur.keys = vec![self.rows[i] as i64, self.cols[i] as i64];
        cur.pos = i;
        true
    }

    fn search(
        &self,
        chain: usize,
        level: usize,
        _parent: Position,
        keys: &[i64],
    ) -> Option<Position> {
        assert_eq!(chain, 0);
        assert_eq!(level, 0);
        if keys[0] < 0 || keys[1] < 0 {
            return None;
        }
        self.find(keys[0] as usize, keys[1] as usize)
    }

    fn value_at(&self, _chain: usize, pos: Position) -> f64 {
        self.values[pos]
    }

    fn set_value_at(&mut self, _chain: usize, pos: Position, v: f64) {
        self.values[pos] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::check_view_conformance;

    fn sample() -> Triplets<f64> {
        Triplets::from_entries(3, 3, &[(0, 0, 1.0), (1, 2, 2.0), (2, 0, 3.0), (2, 2, 4.0)])
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        assert_eq!(Coo::from_triplets(&t).to_triplets(), t);
    }

    #[test]
    fn shuffled_preserves_content() {
        let t = sample();
        let coo = Coo::from_triplets_shuffled(&t, 42);
        assert_eq!(coo.to_triplets(), t);
        assert_eq!(coo.get(2, 0), 3.0);
        check_view_conformance(&coo, 0).unwrap();
    }

    #[test]
    fn coupled_cursor() {
        let coo = Coo::from_triplets(&sample());
        let mut cur = coo.cursor(0, 0, 0, false);
        let mut seen = Vec::new();
        while coo.advance(&mut cur) {
            seen.push((cur.keys[0], cur.keys[1], coo.value_at(0, cur.pos)));
        }
        assert_eq!(seen.len(), 4);
        assert!(seen.contains(&(1, 2, 2.0)));
    }

    #[test]
    fn view_conformance() {
        check_view_conformance(&Coo::from_triplets(&sample()), 0).unwrap();
    }

    #[test]
    fn linear_search() {
        let coo = Coo::from_triplets_shuffled(&sample(), 7);
        let p = coo.search(0, 0, 0, &[2, 2]).unwrap();
        assert_eq!(coo.value_at(0, p), 4.0);
        assert_eq!(coo.search(0, 0, 0, &[1, 1]), None);
    }
}
