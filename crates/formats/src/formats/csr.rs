//! Compressed Sparse Row storage — the `r -> c -> v` view.
//!
//! CSR permits indexed access to rows (the `r` level is a full interval
//! with O(1) access) and ordered enumeration of the columns within each
//! row; columns of the whole matrix cannot be accessed directly (paper
//! §1, Fig. 1).

use crate::scalar::Scalar;
use crate::view::{detect_properties, FormatView, Order, SearchKind, ViewExpr};
use crate::{ChainCursor, Position, SparseMatrix, SparseView, Triplets};

/// Compressed Sparse Row matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr<T: Scalar = f64> {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// `rowptr[r]..rowptr[r+1]` indexes the entries of row `r`
    /// (`len == nrows + 1`).
    pub rowptr: Vec<usize>,
    /// Column index of each stored entry, sorted within each row.
    pub colind: Vec<usize>,
    /// Value of each stored entry.
    pub values: Vec<T>,
}

impl<T: Scalar> Csr<T> {
    /// Builds from (normalized or not) triplets.
    pub fn from_triplets(t: &Triplets<T>) -> Csr<T> {
        let mut t = t.clone();
        t.normalize();
        let mut rowptr = vec![0usize; t.nrows() + 1];
        for &(r, _, _) in t.entries() {
            rowptr[r + 1] += 1;
        }
        for r in 0..t.nrows() {
            rowptr[r + 1] += rowptr[r];
        }
        let colind = t.entries().iter().map(|&(_, c, _)| c).collect();
        let values = t.entries().iter().map(|&(_, _, v)| v).collect();
        Csr {
            nrows: t.nrows(),
            ncols: t.ncols(),
            rowptr,
            colind,
            values,
        }
    }

    /// Converts back to triplets.
    pub fn to_triplets(&self) -> Triplets<T> {
        let mut t = Triplets::new(self.nrows, self.ncols);
        for r in 0..self.nrows {
            for i in self.rowptr[r]..self.rowptr[r + 1] {
                t.push(r, self.colind[i], self.values[i]);
            }
        }
        t.normalize();
        t
    }

    /// Checks the structural invariants of an *untrusted* CSR instance
    /// (one deserialized or assembled outside this crate): `rowptr` has
    /// `nrows + 1` monotone entries starting at 0 and ending at the
    /// storage length, and every row's column indices are in range and
    /// strictly increasing. Data passing this check cannot drive any
    /// accessor or kernel out of bounds.
    pub fn validate(&self) -> Result<(), crate::FormatError> {
        let fail = |reason: String| Err(crate::convert::invalid("csr", reason));
        if self.rowptr.len() != self.nrows + 1 {
            return fail(format!(
                "rowptr has {} entries, want nrows + 1 = {}",
                self.rowptr.len(),
                self.nrows + 1
            ));
        }
        if self.rowptr[0] != 0 {
            return fail(format!("rowptr[0] = {}, want 0", self.rowptr[0]));
        }
        if self.values.len() != self.colind.len() {
            return fail(format!(
                "values/colind length mismatch ({} vs {})",
                self.values.len(),
                self.colind.len()
            ));
        }
        if self.rowptr[self.nrows] != self.colind.len() {
            return fail(format!(
                "rowptr ends at {}, want the storage length {}",
                self.rowptr[self.nrows],
                self.colind.len()
            ));
        }
        for r in 0..self.nrows {
            let (lo, hi) = (self.rowptr[r], self.rowptr[r + 1]);
            if lo > hi {
                return fail(format!("rowptr decreases at row {r} ({lo} > {hi})"));
            }
            for i in lo..hi {
                if self.colind[i] >= self.ncols {
                    return fail(format!(
                        "row {r} stores column {} >= ncols {}",
                        self.colind[i], self.ncols
                    ));
                }
                if i > lo && self.colind[i] <= self.colind[i - 1] {
                    return fail(format!("row {r} columns not strictly increasing"));
                }
            }
        }
        Ok(())
    }

    /// The half-open storage range of row `r`.
    pub fn row_range(&self, r: usize) -> std::ops::Range<usize> {
        self.rowptr[r]..self.rowptr[r + 1]
    }

    /// Binary-searches row `r` for column `c`; returns the storage index.
    pub fn find(&self, r: usize, c: usize) -> Option<usize> {
        let rng = self.row_range(r);
        self.colind[rng.clone()]
            .binary_search(&c)
            .ok()
            .map(|k| rng.start + k)
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Splits the rows into at most `nblocks` contiguous blocks of
    /// approximately equal stored-entry count (see
    /// [`crate::partition::split_ptr_by_cost`]); the boundaries are a
    /// deterministic function of the pattern.
    pub fn partition_rows(&self, nblocks: usize) -> Vec<usize> {
        crate::partition::split_ptr_by_cost(&self.rowptr, nblocks)
    }
}

impl SparseMatrix for Csr<f64> {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn nnz(&self) -> usize {
        self.values.len()
    }
    fn get(&self, r: usize, c: usize) -> f64 {
        self.find(r, c).map_or(0.0, |i| self.values[i])
    }
    fn set(&mut self, r: usize, c: usize, v: f64) {
        let i = self
            .find(r, c)
            .unwrap_or_else(|| panic!("({r},{c}) is not a stored position"));
        self.values[i] = v;
    }
    fn entries(&self) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::with_capacity(self.nnz());
        for r in 0..self.nrows {
            for i in self.row_range(r) {
                out.push((r, self.colind[i], self.values[i]));
            }
        }
        out
    }
}

/// The CSR index structure: `r -> c -> v`, `r` an interval with direct
/// access, `c` increasing with binary search.
pub fn csr_format_view() -> FormatView {
    FormatView {
        name: "csr".into(),
        dense_attrs: vec!["r".into(), "c".into()],
        expr: ViewExpr::interval(
            "r",
            ViewExpr::level("c", Order::Increasing, SearchKind::Sorted, ViewExpr::Value),
        ),
        bounds: vec![],
        guarantees: vec![],
    }
}

impl SparseView for Csr<f64> {
    fn format_view(&self) -> FormatView {
        let mut v = csr_format_view();
        let (b, g) = detect_properties(&self.entries(), self.nrows, self.ncols);
        v.bounds = b;
        v.guarantees = g;
        v
    }

    fn cursor(&self, chain: usize, level: usize, parent: Position, reverse: bool) -> ChainCursor {
        assert_eq!(chain, 0);
        match level {
            0 => ChainCursor::over_range(chain, 0, parent, 0, self.nrows as i64, reverse),
            1 => {
                assert!(!reverse, "csr column level enumerates forward only");
                let rng = self.row_range(parent);
                ChainCursor::over_range(chain, 1, parent, rng.start as i64, rng.end as i64, false)
            }
            _ => panic!("csr has 2 levels"),
        }
    }

    fn advance(&self, cur: &mut ChainCursor) -> bool {
        if !cur.step() {
            return false;
        }
        match cur.level {
            0 => {
                cur.keys = vec![cur.idx];
                cur.pos = cur.idx as usize;
            }
            1 => {
                cur.keys = vec![self.colind[cur.idx as usize] as i64];
                cur.pos = cur.idx as usize;
            }
            _ => unreachable!(),
        }
        true
    }

    fn search(
        &self,
        chain: usize,
        level: usize,
        parent: Position,
        keys: &[i64],
    ) -> Option<Position> {
        assert_eq!(chain, 0);
        let k = keys[0];
        if k < 0 {
            return None;
        }
        match level {
            0 => (k < self.nrows as i64).then_some(k as usize),
            1 => self.find(parent, k as usize),
            _ => panic!("csr has 2 levels"),
        }
    }

    fn value_at(&self, _chain: usize, pos: Position) -> f64 {
        self.values[pos]
    }

    fn set_value_at(&mut self, _chain: usize, pos: Position, v: f64) {
        self.values[pos] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::check_view_conformance;

    fn sample() -> Csr<f64> {
        // The paper's Fig. 1 example matrix:
        //   [a 0 b 0]
        //   [0 c 0 0]
        //   [0 d e 0]
        //   [f 0 0 g]
        Csr::from_triplets(&Triplets::from_entries(
            4,
            4,
            &[
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 1, 4.0),
                (2, 2, 5.0),
                (3, 0, 6.0),
                (3, 3, 7.0),
            ],
        ))
    }

    #[test]
    fn layout_matches_fig1() {
        let a = sample();
        assert_eq!(a.rowptr, vec![0, 2, 3, 5, 7]);
        assert_eq!(a.colind, vec![0, 2, 1, 1, 2, 0, 3]);
        assert_eq!(a.nnz(), 7);
    }

    #[test]
    fn random_access() {
        let a = sample();
        assert_eq!(a.get(0, 2), 2.0);
        assert_eq!(a.get(0, 1), 0.0);
        assert_eq!(a.get(3, 3), 7.0);
    }

    #[test]
    fn set_stored() {
        let mut a = sample();
        a.set(2, 1, 9.0);
        assert_eq!(a.get(2, 1), 9.0);
    }

    #[test]
    #[should_panic(expected = "not a stored position")]
    fn set_unstored_panics() {
        let mut a = sample();
        a.set(0, 1, 9.0);
    }

    #[test]
    fn triplet_roundtrip() {
        let a = sample();
        assert_eq!(Csr::from_triplets(&a.to_triplets()), a);
    }

    #[test]
    fn view_conformance() {
        check_view_conformance(&sample(), 0).unwrap();
    }

    #[test]
    fn column_cursor_sorted() {
        let a = sample();
        let mut cur = a.cursor(0, 1, 2, false);
        let mut cols = Vec::new();
        while a.advance(&mut cur) {
            cols.push(cur.keys[0]);
        }
        assert_eq!(cols, vec![1, 2]);
    }

    #[test]
    fn search_levels() {
        let a = sample();
        assert_eq!(a.search(0, 0, 0, &[2]), Some(2));
        assert_eq!(a.search(0, 0, 0, &[4]), None);
        let p = a.search(0, 1, 3, &[3]).unwrap();
        assert_eq!(a.value_at(0, p), 7.0);
        assert_eq!(a.search(0, 1, 3, &[1]), None);
    }

    #[test]
    fn empty_rows() {
        let a = Csr::<f64>::from_triplets(&Triplets::from_entries(3, 3, &[(1, 1, 1.0)]));
        assert_eq!(a.rowptr, vec![0, 0, 1, 1]);
        assert_eq!(a.get(0, 0), 0.0);
        check_view_conformance(&a, 0).unwrap();
    }
}
