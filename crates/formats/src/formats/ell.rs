//! ELLPACK storage — `r -> c -> v` with a fixed number of slots per row.
//!
//! Every row stores exactly `width` (column, value) slots; shorter rows
//! are padded with a sentinel column. Column indices are kept sorted
//! within each row, and the per-row fill `rowlen` makes binary search
//! possible despite the padding.

use crate::scalar::Scalar;
use crate::view::{detect_properties, FormatView, Order, SearchKind, ViewExpr};
use crate::{ChainCursor, Position, SparseMatrix, SparseView, Triplets};

/// Sentinel column index marking a padding slot.
pub const ELL_PAD: i64 = -1;

/// ELLPACK / ITPACK matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Ell<T: Scalar = f64> {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Slots per row (the maximum row fill).
    pub width: usize,
    /// Column index per slot, row-major `colind[r * width + s]`;
    /// [`ELL_PAD`] in padding slots.
    pub colind: Vec<i64>,
    /// Value per slot (zero in padding slots).
    pub values: Vec<T>,
    /// Stored entries in each row (`rowlen[r] <= width`).
    pub rowlen: Vec<usize>,
}

impl<T: Scalar> Ell<T> {
    /// Builds from triplets.
    pub fn from_triplets(t: &Triplets<T>) -> Ell<T> {
        let mut t = t.clone();
        t.normalize();
        let rowlen = t.row_counts();
        let width = rowlen.iter().copied().max().unwrap_or(0);
        let mut colind = vec![ELL_PAD; t.nrows() * width];
        let mut values = vec![T::ZERO; t.nrows() * width];
        let mut fill = vec![0usize; t.nrows()];
        for &(r, c, v) in t.entries() {
            let s = fill[r];
            colind[r * width + s] = c as i64;
            values[r * width + s] = v;
            fill[r] += 1;
        }
        Ell {
            nrows: t.nrows(),
            ncols: t.ncols(),
            width,
            colind,
            values,
            rowlen,
        }
    }

    /// Checks the structural invariants of an *untrusted* ELL instance:
    /// slot arrays sized `nrows * width`, per-row fill `rowlen[r] <=
    /// width`, filled slots holding in-range strictly increasing
    /// columns, and padding slots holding [`ELL_PAD`].
    pub fn validate(&self) -> Result<(), crate::FormatError> {
        let fail = |reason: String| Err(crate::convert::invalid("ell", reason));
        if self.rowlen.len() != self.nrows {
            return fail(format!(
                "rowlen has {} entries, want nrows = {}",
                self.rowlen.len(),
                self.nrows
            ));
        }
        let slots = self.nrows * self.width;
        if self.colind.len() != slots || self.values.len() != slots {
            return fail(format!(
                "colind/values have {}/{} slots, want nrows * width = {slots}",
                self.colind.len(),
                self.values.len()
            ));
        }
        for r in 0..self.nrows {
            let len = self.rowlen[r];
            if len > self.width {
                return fail(format!("rowlen[{r}] = {len} exceeds width {}", self.width));
            }
            let base = r * self.width;
            for s in 0..len {
                let c = self.colind[base + s];
                if c < 0 || c >= self.ncols as i64 {
                    return fail(format!("row {r} slot {s} stores column {c}, out of range"));
                }
                if s > 0 && c <= self.colind[base + s - 1] {
                    return fail(format!("row {r} columns not strictly increasing"));
                }
            }
            for s in len..self.width {
                if self.colind[base + s] != ELL_PAD {
                    return fail(format!(
                        "row {r} padding slot {s} holds {} instead of the pad sentinel",
                        self.colind[base + s]
                    ));
                }
            }
        }
        Ok(())
    }

    /// Converts back to triplets.
    pub fn to_triplets(&self) -> Triplets<T> {
        let mut t = Triplets::new(self.nrows, self.ncols);
        for r in 0..self.nrows {
            for s in 0..self.rowlen[r] {
                t.push(
                    r,
                    self.colind[r * self.width + s] as usize,
                    self.values[r * self.width + s],
                );
            }
        }
        t.normalize();
        t
    }

    /// Binary search for `(r, c)` within the sorted, filled prefix of the
    /// row.
    pub fn find(&self, r: usize, c: usize) -> Option<usize> {
        let base = r * self.width;
        let row = &self.colind[base..base + self.rowlen[r]];
        row.binary_search(&(c as i64)).ok().map(|s| base + s)
    }

    /// Number of stored entries (padding excluded).
    pub fn nnz(&self) -> usize {
        self.rowlen.iter().sum()
    }
}

impl SparseMatrix for Ell<f64> {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn nnz(&self) -> usize {
        self.rowlen.iter().sum()
    }
    fn get(&self, r: usize, c: usize) -> f64 {
        self.find(r, c).map_or(0.0, |i| self.values[i])
    }
    fn set(&mut self, r: usize, c: usize, v: f64) {
        let i = self
            .find(r, c)
            .unwrap_or_else(|| panic!("({r},{c}) is not a stored position"));
        self.values[i] = v;
    }
    fn entries(&self) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::with_capacity(self.nnz());
        for r in 0..self.nrows {
            for s in 0..self.rowlen[r] {
                out.push((
                    r,
                    self.colind[r * self.width + s] as usize,
                    self.values[r * self.width + s],
                ));
            }
        }
        out
    }
}

/// The ELL index structure: `r -> c -> v` like CSR, but the column level
/// enumerates a fixed-width padded slot array.
pub fn ell_format_view() -> FormatView {
    FormatView {
        name: "ell".into(),
        dense_attrs: vec!["r".into(), "c".into()],
        expr: ViewExpr::interval(
            "r",
            ViewExpr::level("c", Order::Increasing, SearchKind::Sorted, ViewExpr::Value),
        ),
        bounds: vec![],
        guarantees: vec![],
    }
}

impl SparseView for Ell<f64> {
    fn format_view(&self) -> FormatView {
        let mut v = ell_format_view();
        let (b, g) = detect_properties(&self.entries(), self.nrows, self.ncols);
        v.bounds = b;
        v.guarantees = g;
        v
    }

    fn cursor(&self, chain: usize, level: usize, parent: Position, reverse: bool) -> ChainCursor {
        assert_eq!(chain, 0);
        match level {
            0 => ChainCursor::over_range(chain, 0, parent, 0, self.nrows as i64, reverse),
            1 => {
                assert!(!reverse, "ell column level enumerates forward only");
                let base = (parent * self.width) as i64;
                ChainCursor::over_range(
                    chain,
                    1,
                    parent,
                    base,
                    base + self.rowlen[parent] as i64,
                    false,
                )
            }
            _ => panic!("ell has 2 levels"),
        }
    }

    fn advance(&self, cur: &mut ChainCursor) -> bool {
        if !cur.step() {
            return false;
        }
        match cur.level {
            0 => {
                cur.keys = vec![cur.idx];
                cur.pos = cur.idx as usize;
            }
            1 => {
                cur.keys = vec![self.colind[cur.idx as usize]];
                cur.pos = cur.idx as usize;
            }
            _ => unreachable!(),
        }
        true
    }

    fn search(
        &self,
        chain: usize,
        level: usize,
        parent: Position,
        keys: &[i64],
    ) -> Option<Position> {
        assert_eq!(chain, 0);
        let k = keys[0];
        if k < 0 {
            return None;
        }
        match level {
            0 => (k < self.nrows as i64).then_some(k as usize),
            1 => self.find(parent, k as usize),
            _ => panic!("ell has 2 levels"),
        }
    }

    fn value_at(&self, _chain: usize, pos: Position) -> f64 {
        self.values[pos]
    }

    fn set_value_at(&mut self, _chain: usize, pos: Position, v: f64) {
        self.values[pos] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::check_view_conformance;

    fn sample() -> Triplets<f64> {
        Triplets::from_entries(
            3,
            4,
            &[
                (0, 0, 1.0),
                (0, 3, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
                (2, 3, 6.0),
            ],
        )
    }

    #[test]
    fn layout() {
        let a = Ell::from_triplets(&sample());
        assert_eq!(a.width, 3);
        assert_eq!(a.rowlen, vec![2, 1, 3]);
        assert_eq!(a.nnz(), 6);
        assert_eq!(&a.colind[0..3], &[0, 3, ELL_PAD]);
        assert_eq!(&a.colind[3..6], &[1, ELL_PAD, ELL_PAD]);
        assert_eq!(&a.colind[6..9], &[0, 2, 3]);
    }

    #[test]
    fn random_access() {
        let a = Ell::from_triplets(&sample());
        assert_eq!(a.get(0, 3), 2.0);
        assert_eq!(a.get(0, 1), 0.0);
        assert_eq!(a.get(2, 2), 5.0);
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        assert_eq!(Ell::from_triplets(&t).to_triplets(), t);
    }

    #[test]
    fn view_conformance() {
        check_view_conformance(&Ell::from_triplets(&sample()), 0).unwrap();
    }

    #[test]
    fn padding_skipped_by_cursor() {
        let a = Ell::from_triplets(&sample());
        let mut cur = a.cursor(0, 1, 1, false);
        let mut cols = Vec::new();
        while a.advance(&mut cur) {
            cols.push(cur.keys[0]);
        }
        assert_eq!(cols, vec![1]);
    }

    #[test]
    fn search() {
        let a = Ell::from_triplets(&sample());
        let p = a.search(0, 1, 2, &[2]).unwrap();
        assert_eq!(a.value_at(0, p), 5.0);
        assert!(a.search(0, 1, 2, &[1]).is_none());
    }

    #[test]
    fn empty_matrix() {
        let a = Ell::<f64>::from_triplets(&Triplets::new(2, 2));
        assert_eq!(a.width, 0);
        assert_eq!(a.nnz(), 0);
        check_view_conformance(&a, 0).unwrap();
    }
}
