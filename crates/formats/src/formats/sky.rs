//! Skyline storage (lower profile / SKS) — `r -> c -> v` with per-row
//! contiguous column strips `lo[r] ..= r`.
//!
//! The classic direct-solver format of the paper's era: each row stores
//! everything from its first nonzero up to the diagonal, so the diagonal
//! is always structural and in-row access is O(1). The column level is an
//! interval level with *runtime* per-row bounds (like DIA's offset
//! level).

use crate::scalar::Scalar;
use crate::view::{
    detect_properties, Bound, FormatView, Order, SearchKind, StoredGuarantee, ViewExpr,
};
use crate::{ChainCursor, Position, SparseMatrix, SparseView, Triplets};

/// Lower skyline matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Sky<T: Scalar = f64> {
    /// Matrix order (square, lower triangular).
    pub n: usize,
    /// First stored column of each row (`lo[r] <= r`).
    pub lo: Vec<usize>,
    /// Strip start in `values` (`len == n + 1`).
    pub ptr: Vec<usize>,
    /// Strip storage: `A[r][c] = values[ptr[r] + (c - lo[r])]` for
    /// `lo[r] <= c <= r`; in-strip zeros are structural.
    pub values: Vec<T>,
}

impl<T: Scalar> Sky<T> {
    /// Builds from triplets.
    ///
    /// # Panics
    /// Panics if the matrix is not square or has entries above the
    /// diagonal.
    pub fn from_triplets(t: &Triplets<T>) -> Sky<T> {
        assert_eq!(t.nrows(), t.ncols(), "skyline requires a square matrix");
        let n = t.nrows();
        let mut t = t.clone();
        t.normalize();
        let mut lo: Vec<usize> = (0..n).collect();
        for &(r, c, _) in t.entries() {
            assert!(c <= r, "skyline requires a lower-triangular matrix");
            lo[r] = lo[r].min(c);
        }
        let mut ptr = Vec::with_capacity(n + 1);
        ptr.push(0usize);
        for r in 0..n {
            ptr.push(ptr[r] + (r - lo[r] + 1));
        }
        let mut values = vec![T::ZERO; ptr[ptr.len() - 1]];
        for &(r, c, v) in t.entries() {
            values[ptr[r] + (c - lo[r])] = v;
        }
        Sky { n, lo, ptr, values }
    }

    /// Converts back to triplets (in-strip zeros are kept: structural).
    pub fn to_triplets(&self) -> Triplets<T> {
        let mut t = Triplets::new(self.n, self.n);
        for r in 0..self.n {
            for c in self.lo[r]..=r {
                t.push(r, c, self.values[self.ptr[r] + (c - self.lo[r])]);
            }
        }
        t.normalize();
        t
    }

    /// Storage index of `(r, c)`, if within the row's strip.
    pub fn find(&self, r: usize, c: usize) -> Option<usize> {
        (c >= self.lo[r] && c <= r).then(|| self.ptr[r] + (c - self.lo[r]))
    }

    /// Number of stored entries (strip cells, including in-strip zeros).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }
}

impl SparseMatrix for Sky<f64> {
    fn nrows(&self) -> usize {
        self.n
    }
    fn ncols(&self) -> usize {
        self.n
    }
    fn nnz(&self) -> usize {
        self.values.len()
    }
    fn get(&self, r: usize, c: usize) -> f64 {
        self.find(r, c).map_or(0.0, |i| self.values[i])
    }
    fn set(&mut self, r: usize, c: usize, v: f64) {
        let i = self
            .find(r, c)
            .unwrap_or_else(|| panic!("({r},{c}) is outside the skyline profile"));
        self.values[i] = v;
    }
    fn entries(&self) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::with_capacity(self.nnz());
        for r in 0..self.n {
            for c in self.lo[r]..=r {
                out.push((r, c, self.values[self.ptr[r] + (c - self.lo[r])]));
            }
        }
        out
    }
}

/// The skyline index structure: `r -> c -> v` with an interval column
/// level (runtime per-row bounds), lower-triangular bound, structural
/// diagonal.
pub fn sky_format_view() -> FormatView {
    FormatView {
        name: "sky".into(),
        dense_attrs: vec!["r".into(), "c".into()],
        expr: ViewExpr::interval(
            "r",
            ViewExpr::Level {
                attrs: vec!["c".into()],
                order: Order::Increasing,
                search: SearchKind::Direct,
                interval: true,
                child: Box::new(ViewExpr::Value),
            },
        ),
        bounds: vec![Bound::attr_ge("r", "c")],
        guarantees: vec![StoredGuarantee::FullDiagonal],
    }
}

impl SparseView for Sky<f64> {
    fn format_view(&self) -> FormatView {
        let mut v = sky_format_view();
        let (b, mut g) = detect_properties(&self.entries(), self.n, self.n);
        v.bounds = b;
        if !g.iter().any(|x| matches!(x, StoredGuarantee::FullDiagonal)) {
            g.push(StoredGuarantee::FullDiagonal);
        }
        v.guarantees = g;
        v
    }

    fn cursor(&self, chain: usize, level: usize, parent: Position, reverse: bool) -> ChainCursor {
        assert_eq!(chain, 0);
        match level {
            0 => ChainCursor::over_range(chain, 0, parent, 0, self.n as i64, reverse),
            1 => ChainCursor::over_range(
                chain,
                1,
                parent,
                self.lo[parent] as i64,
                parent as i64 + 1,
                reverse,
            ),
            _ => panic!("sky has 2 levels"),
        }
    }

    fn advance(&self, cur: &mut ChainCursor) -> bool {
        if !cur.step() {
            return false;
        }
        match cur.level {
            0 => {
                cur.keys = vec![cur.idx];
                cur.pos = cur.idx as usize;
            }
            1 => {
                cur.keys = vec![cur.idx];
                cur.pos = self.ptr[cur.parent] + (cur.idx as usize - self.lo[cur.parent]);
            }
            _ => unreachable!(),
        }
        true
    }

    fn search(
        &self,
        chain: usize,
        level: usize,
        parent: Position,
        keys: &[i64],
    ) -> Option<Position> {
        assert_eq!(chain, 0);
        let k = keys[0];
        if k < 0 {
            return None;
        }
        match level {
            0 => (k < self.n as i64).then_some(k as usize),
            1 => self.find(parent, k as usize),
            _ => panic!("sky has 2 levels"),
        }
    }

    fn value_at(&self, _chain: usize, pos: Position) -> f64 {
        self.values[pos]
    }

    fn set_value_at(&mut self, _chain: usize, pos: Position, v: f64) {
        self.values[pos] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::check_view_conformance;

    fn sample() -> Triplets<f64> {
        Triplets::from_entries(
            4,
            4,
            &[
                (0, 0, 2.0),
                (1, 1, 3.0),
                (2, 0, 1.0),
                (2, 2, 4.0),
                (3, 2, 5.0),
                (3, 3, 6.0),
            ],
        )
    }

    #[test]
    fn layout() {
        let a = Sky::from_triplets(&sample());
        assert_eq!(a.lo, vec![0, 1, 0, 2]);
        assert_eq!(a.ptr, vec![0, 1, 2, 5, 7]);
        // Row 2 strip covers (2,0), (2,1)=structural zero, (2,2).
        assert_eq!(a.nnz(), 7);
        assert_eq!(a.get(2, 1), 0.0);
        assert!(a.find(2, 1).is_some(), "in-strip zero is structural");
    }

    #[test]
    fn random_access() {
        let a = Sky::from_triplets(&sample());
        assert_eq!(a.get(3, 2), 5.0);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(3, 0), 0.0);
        assert!(a.find(3, 0).is_none(), "outside the profile");
    }

    #[test]
    fn roundtrip() {
        let a = Sky::from_triplets(&sample());
        let b = Sky::from_triplets(&a.to_triplets());
        assert_eq!(a, b);
    }

    #[test]
    fn view_conformance() {
        check_view_conformance(&Sky::from_triplets(&sample()), 0).unwrap();
    }

    #[test]
    fn full_diagonal_guaranteed() {
        // Even with no diagonal entries in the input, the strip reaches
        // the diagonal (structural zeros).
        let t = Triplets::from_entries(3, 3, &[(2, 0, 1.0)]);
        let a = Sky::from_triplets(&t);
        assert!(a.find(2, 2).is_some());
        assert!(a.format_view().has_full_diagonal());
    }

    #[test]
    #[should_panic(expected = "lower-triangular")]
    fn upper_entries_rejected() {
        let t = Triplets::from_entries(3, 3, &[(0, 2, 1.0)]);
        let _ = Sky::from_triplets(&t);
    }

    #[test]
    fn reverse_column_cursor() {
        let a = Sky::from_triplets(&sample());
        let mut cur = a.cursor(0, 1, 2, true);
        let mut cols = Vec::new();
        while a.advance(&mut cur) {
            cols.push(cur.keys[0]);
        }
        assert_eq!(cols, vec![2, 1, 0]);
    }
}
