//! Concrete storage formats.
//!
//! Every format provides:
//! - storage with **public fields** (the code emitter generates Rust that
//!   indexes them directly, like the paper's Fig. 9 instantiated code);
//! - `from_triplets` / `to_triplets` conversions;
//! - the high-level API ([`crate::SparseMatrix`]);
//! - the low-level API ([`crate::SparseView`]) with a
//!   [`crate::view::FormatView`] index-structure description.

pub mod bsr;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod dia;
pub mod diagsplit;
pub mod ell;
pub mod jad;
pub mod sky;
pub mod sparsevec;
pub mod vbr;
