//! Variable Block Row storage — the NIST Sparse BLAS two-level layout
//! with *runtime* block strips (`val/indx/bindx/rpntr/cpntr/bpntrb/bpntre`).
//!
//! Rows and columns are partitioned into strips (`rpntr`/`cpntr`), and
//! every block-strip intersection containing a nonzero is stored dense
//! (in-block zeros are structural fill-in). Unlike BSR the strip widths
//! vary per block, so block extents are runtime data — the same
//! runtime-bounds shape as SKY's per-row strips, one level up.
//!
//! Deviation from the NIST Fortran convention: blocks are stored
//! **row-major** within each block (`val[indx[b] + rr*w + cc]`), so a
//! logical row's slice of a block is contiguous, matching the emitted
//! loops and the register-tiled kernels.

use crate::scalar::Scalar;
use crate::view::{detect_properties, FormatView, Order, SearchKind, ViewExpr};
use crate::{ChainCursor, Position, SparseMatrix, SparseView, Triplets};

/// Variable Block Row matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Vbr<T: Scalar = f64> {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Dense block storage, row-major within each block:
    /// `A[rpntr[br] + rr][cpntr[bindx[b]] + cc] = val[indx[b] + rr*w + cc]`
    /// with `w = cpntr[bindx[b]+1] - cpntr[bindx[b]]`.
    pub val: Vec<T>,
    /// Start of each block in `val` (`len == nblocks + 1`).
    pub indx: Vec<usize>,
    /// Block column (index into `cpntr`) of each stored block, sorted
    /// within each block row.
    pub bindx: Vec<usize>,
    /// Row-strip boundaries (`len == nbr + 1`, `rpntr[0] == 0`,
    /// `rpntr[nbr] == nrows`).
    pub rpntr: Vec<usize>,
    /// Column-strip boundaries (`len == nbc + 1`).
    pub cpntr: Vec<usize>,
    /// First block of each block row in `bindx` (`len == nbr`).
    pub bpntrb: Vec<usize>,
    /// One past the last block of each block row (`len == nbr`).
    pub bpntre: Vec<usize>,
    /// Derived: block row of each logical row (`len == nrows`).
    pub rowblk: Vec<usize>,
}

impl<T: Scalar> Vbr<T> {
    /// Builds from triplets with the given row/column strips. Every
    /// block-strip intersection containing an entry is stored dense.
    ///
    /// # Panics
    /// Panics if `rpntr`/`cpntr` are not strictly-increasing partitions
    /// of `0..=nrows` / `0..=ncols`.
    pub fn from_triplets(t: &Triplets<T>, rpntr: &[usize], cpntr: &[usize]) -> Vbr<T> {
        let check = |p: &[usize], n: usize, what: &str| {
            assert!(
                p.len() >= 2
                    && p[0] == 0
                    && p[p.len() - 1] == n
                    && p.windows(2).all(|w| w[0] < w[1]),
                "{what} must be a strictly-increasing partition of 0..={n}, got {p:?}"
            );
        };
        check(rpntr, t.nrows(), "rpntr");
        check(cpntr, t.ncols(), "cpntr");
        let mut t = t.clone();
        t.normalize();
        let nbr = rpntr.len() - 1;
        let strip_map = |p: &[usize], n: usize| {
            let mut m = vec![0usize; n];
            for (b, w) in p.windows(2).enumerate() {
                m[w[0]..w[1]].fill(b);
            }
            m
        };
        let rowblk = strip_map(rpntr, t.nrows());
        let colblk = strip_map(cpntr, t.ncols());
        let mut blocks: std::collections::BTreeSet<(usize, usize)> =
            std::collections::BTreeSet::new();
        for &(row, col, _) in t.entries() {
            blocks.insert((rowblk[row], colblk[col]));
        }
        let mut indx = vec![0usize];
        let mut bindx = Vec::with_capacity(blocks.len());
        let mut bpntrb = vec![0usize; nbr];
        let mut bpntre = vec![0usize; nbr];
        let mut next = 0usize;
        let blocks: Vec<(usize, usize)> = blocks.into_iter().collect();
        let mut i = 0;
        for (br, (b0, e0)) in bpntrb.iter_mut().zip(bpntre.iter_mut()).enumerate() {
            *b0 = i;
            let h = rpntr[br + 1] - rpntr[br];
            while i < blocks.len() && blocks[i].0 == br {
                let bc = blocks[i].1;
                bindx.push(bc);
                next += h * (cpntr[bc + 1] - cpntr[bc]);
                indx.push(next);
                i += 1;
            }
            *e0 = i;
        }
        let mut out = Vbr {
            nrows: t.nrows(),
            ncols: t.ncols(),
            val: Vec::new(),
            indx,
            bindx,
            rpntr: rpntr.to_vec(),
            cpntr: cpntr.to_vec(),
            bpntrb,
            bpntre,
            rowblk,
        };
        let mut val = vec![T::ZERO; next];
        for &(row, col, v) in t.entries() {
            let Some(i) = out.find(row, col) else {
                unreachable!("entry block is stored by construction");
            };
            val[i] = v;
        }
        out.val = val;
        out
    }

    /// Converts back to triplets (in-block zeros are kept: structural).
    pub fn to_triplets(&self) -> Triplets<T> {
        let mut t = Triplets::new(self.nrows, self.ncols);
        for br in 0..self.rpntr.len() - 1 {
            let h = self.rpntr[br + 1] - self.rpntr[br];
            for b in self.bpntrb[br]..self.bpntre[br] {
                let bc = self.bindx[b];
                let (cj0, w) = (self.cpntr[bc], self.cpntr[bc + 1] - self.cpntr[bc]);
                for rr in 0..h {
                    for cc in 0..w {
                        t.push(
                            self.rpntr[br] + rr,
                            cj0 + cc,
                            self.val[self.indx[b] + rr * w + cc],
                        );
                    }
                }
            }
        }
        t.normalize();
        t
    }

    /// Checks the structural invariants of an *untrusted* VBR instance:
    /// `rpntr`/`cpntr` are partitions, the block-row pointer pairs are
    /// in range and monotone, block columns are in range and strictly
    /// increasing per block row, `indx` matches the block areas exactly,
    /// and `rowblk` agrees with `rpntr`.
    pub fn validate(&self) -> Result<(), crate::FormatError> {
        let fail = |reason: String| Err(crate::convert::invalid("vbr", reason));
        let part_ok = |p: &[usize], n: usize| {
            p.len() >= 2 && p[0] == 0 && p[p.len() - 1] == n && p.windows(2).all(|w| w[0] < w[1])
        };
        if !part_ok(&self.rpntr, self.nrows) {
            return fail(format!(
                "rpntr {:?} is not a partition of 0..={}",
                self.rpntr, self.nrows
            ));
        }
        if !part_ok(&self.cpntr, self.ncols) {
            return fail(format!(
                "cpntr {:?} is not a partition of 0..={}",
                self.cpntr, self.ncols
            ));
        }
        let nbr = self.rpntr.len() - 1;
        let nbc = self.cpntr.len() - 1;
        if self.bpntrb.len() != nbr || self.bpntre.len() != nbr {
            return fail(format!(
                "bpntrb/bpntre have {}/{} entries, want nbr = {nbr}",
                self.bpntrb.len(),
                self.bpntre.len()
            ));
        }
        if self.indx.len() != self.bindx.len() + 1 || self.indx[0] != 0 {
            return fail(format!(
                "indx has {} entries starting at {}, want nblocks + 1 = {} starting at 0",
                self.indx.len(),
                self.indx.first().copied().unwrap_or(1),
                self.bindx.len() + 1
            ));
        }
        if self.indx[self.indx.len() - 1] != self.val.len() {
            return fail(format!(
                "indx ends at {}, want the storage length {}",
                self.indx[self.indx.len() - 1],
                self.val.len()
            ));
        }
        if self.rowblk.len() != self.nrows {
            return fail(format!(
                "rowblk has {} entries, want nrows = {}",
                self.rowblk.len(),
                self.nrows
            ));
        }
        let mut covered = 0usize;
        for br in 0..nbr {
            let (lo, hi) = (self.bpntrb[br], self.bpntre[br]);
            if lo > hi || hi > self.bindx.len() || lo != covered {
                return fail(format!(
                    "block row {br} pointers {lo}..{hi} are not a contiguous monotone cover"
                ));
            }
            covered = hi;
            let h = self.rpntr[br + 1] - self.rpntr[br];
            for row in self.rpntr[br]..self.rpntr[br + 1] {
                if self.rowblk[row] != br {
                    return fail(format!("rowblk[{row}] = {}, want {br}", self.rowblk[row]));
                }
            }
            for b in lo..hi {
                let bc = self.bindx[b];
                if bc >= nbc {
                    return fail(format!("block row {br} stores block column {bc} >= {nbc}"));
                }
                if b > lo && bc <= self.bindx[b - 1] {
                    return fail(format!(
                        "block row {br} block columns not strictly increasing"
                    ));
                }
                let area = h * (self.cpntr[bc + 1] - self.cpntr[bc]);
                if self.indx[b + 1] != self.indx[b] + area {
                    return fail(format!(
                        "block {b} spans indx {}..{}, want area {area}",
                        self.indx[b],
                        self.indx[b + 1]
                    ));
                }
            }
        }
        if covered != self.bindx.len() {
            return fail(format!(
                "block rows cover {covered} blocks, want {}",
                self.bindx.len()
            ));
        }
        Ok(())
    }

    /// Storage index of `(row, col)`, if its block is stored.
    pub fn find(&self, row: usize, col: usize) -> Option<usize> {
        let br = self.rowblk[row];
        let rr = row - self.rpntr[br];
        for b in self.bpntrb[br]..self.bpntre[br] {
            let bc = self.bindx[b];
            if col < self.cpntr[bc] {
                return None;
            }
            if col < self.cpntr[bc + 1] {
                let w = self.cpntr[bc + 1] - self.cpntr[bc];
                return Some(self.indx[b] + rr * w + (col - self.cpntr[bc]));
            }
        }
        None
    }

    /// Number of stored entries (block cells, including in-block zeros).
    pub fn nnz(&self) -> usize {
        self.val.len()
    }

    /// Number of stored blocks.
    pub fn nblocks(&self) -> usize {
        self.bindx.len()
    }

    /// Fill-in ratio: stored cells / cells that came from actual entries.
    pub fn fill_ratio(&self, source_nnz: usize) -> f64 {
        if source_nnz == 0 {
            return 1.0;
        }
        self.val.len() as f64 / source_nnz as f64
    }

    /// Splits the *logical rows* into at most `nblocks` contiguous spans
    /// of approximately equal stored-cell count, with every boundary
    /// aligned to a row strip (so parallel workers never share a block;
    /// see [`crate::partition::split_ptr_by_cost`]). Deterministic.
    pub fn partition_rows(&self, nblocks: usize) -> Vec<usize> {
        let nbr = self.rpntr.len() - 1;
        let mut ptr = Vec::with_capacity(nbr + 1);
        ptr.push(0usize);
        for br in 0..nbr {
            // Blocks of a block row are contiguous in `val`, so the
            // cumulative cell count through block row `br` is the end of
            // its last block.
            ptr.push(self.indx[self.bpntre[br]]);
        }
        crate::partition::split_ptr_by_cost(&ptr, nblocks)
            .into_iter()
            .map(|b| self.rpntr[b])
            .collect()
    }
}

impl SparseMatrix for Vbr<f64> {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn nnz(&self) -> usize {
        self.val.len()
    }
    fn get(&self, r: usize, c: usize) -> f64 {
        self.find(r, c).map_or(0.0, |i| self.val[i])
    }
    fn set(&mut self, r: usize, c: usize, v: f64) {
        let i = self
            .find(r, c)
            .unwrap_or_else(|| panic!("({r},{c}) is not inside a stored block"));
        self.val[i] = v;
    }
    fn entries(&self) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::with_capacity(self.nnz());
        for br in 0..self.rpntr.len() - 1 {
            let h = self.rpntr[br + 1] - self.rpntr[br];
            for b in self.bpntrb[br]..self.bpntre[br] {
                let bc = self.bindx[b];
                let (cj0, w) = (self.cpntr[bc], self.cpntr[bc + 1] - self.cpntr[bc]);
                for rr in 0..h {
                    for cc in 0..w {
                        out.push((
                            self.rpntr[br] + rr,
                            cj0 + cc,
                            self.val[self.indx[b] + rr * w + cc],
                        ));
                    }
                }
            }
        }
        out.sort_by_key(|&(r, c, _)| (r, c));
        out
    }
}

/// The VBR index structure seen *per logical row*: `r -> c -> v`, `r` an
/// interval with direct access, `c` increasing with search (block
/// columns are sorted and columns within a block ascend). Block extents
/// are runtime data (`rpntr`/`cpntr`), so nothing is encoded in the name.
pub fn vbr_format_view() -> FormatView {
    FormatView {
        name: "vbr".into(),
        dense_attrs: vec!["r".into(), "c".into()],
        expr: ViewExpr::interval(
            "r",
            ViewExpr::level("c", Order::Increasing, SearchKind::Sorted, ViewExpr::Value),
        ),
        bounds: vec![],
        guarantees: vec![],
    }
}

impl SparseView for Vbr<f64> {
    fn format_view(&self) -> FormatView {
        let mut v = vbr_format_view();
        let (b, g) = detect_properties(&self.entries(), self.nrows, self.ncols);
        v.bounds = b;
        v.guarantees = g;
        v
    }

    fn cursor(&self, chain: usize, level: usize, parent: Position, reverse: bool) -> ChainCursor {
        assert_eq!(chain, 0);
        match level {
            0 => ChainCursor::over_range(chain, 0, parent, 0, self.nrows as i64, reverse),
            1 => {
                assert!(!reverse, "vbr column level enumerates forward only");
                // The raw index is the ordinal of the stored cell within
                // the parent row's block strip.
                let br = self.rowblk[parent];
                let width: usize = (self.bpntrb[br]..self.bpntre[br])
                    .map(|b| {
                        let bc = self.bindx[b];
                        self.cpntr[bc + 1] - self.cpntr[bc]
                    })
                    .sum();
                ChainCursor::over_range(chain, 1, parent, 0, width as i64, false)
            }
            _ => unreachable!("vbr has 2 levels"),
        }
    }

    fn advance(&self, cur: &mut ChainCursor) -> bool {
        if !cur.step() {
            return false;
        }
        match cur.level {
            0 => {
                cur.keys = vec![cur.idx];
                cur.pos = cur.idx as usize;
            }
            1 => {
                let br = self.rowblk[cur.parent];
                let rr = cur.parent - self.rpntr[br];
                let mut o = cur.idx as usize;
                let mut b = self.bpntrb[br];
                loop {
                    let bc = self.bindx[b];
                    let w = self.cpntr[bc + 1] - self.cpntr[bc];
                    if o < w {
                        cur.keys = vec![(self.cpntr[bc] + o) as i64];
                        cur.pos = self.indx[b] + rr * w + o;
                        break;
                    }
                    o -= w;
                    b += 1;
                }
            }
            _ => unreachable!(),
        }
        true
    }

    fn search(
        &self,
        chain: usize,
        level: usize,
        parent: Position,
        keys: &[i64],
    ) -> Option<Position> {
        assert_eq!(chain, 0);
        let k = keys[0];
        if k < 0 {
            return None;
        }
        match level {
            0 => (k < self.nrows as i64).then_some(k as usize),
            1 => self.find(parent, k as usize),
            _ => unreachable!("vbr has 2 levels"),
        }
    }

    fn value_at(&self, _chain: usize, pos: Position) -> f64 {
        self.val[pos]
    }

    fn set_value_at(&mut self, _chain: usize, pos: Position, v: f64) {
        self.val[pos] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::check_view_conformance;

    fn sample() -> Triplets<f64> {
        // 5x5 with strips {0..2, 2..5} x {0..2, 2..4, 4..5}: blocks of
        // varying shapes 2x2, 2x1, 3x2, 3x1.
        Triplets::from_entries(
            5,
            5,
            &[
                (0, 0, 1.0),
                (1, 1, 2.0),
                (0, 4, 3.0),
                (2, 2, 4.0),
                (3, 3, 5.0),
                (4, 4, 6.0),
                (2, 3, 7.0),
            ],
        )
    }

    fn strips() -> (Vec<usize>, Vec<usize>) {
        (vec![0, 2, 5], vec![0, 2, 4, 5])
    }

    #[test]
    fn layout() {
        let (rp, cp) = strips();
        let a = Vbr::from_triplets(&sample(), &rp, &cp);
        // Block row 0: blocks at block cols 0 (2x2) and 2 (2x1).
        // Block row 1: blocks at block cols 1 (3x2) and 2 (3x1).
        assert_eq!(a.bindx, vec![0, 2, 1, 2]);
        assert_eq!(a.bpntrb, vec![0, 2]);
        assert_eq!(a.bpntre, vec![2, 4]);
        assert_eq!(a.indx, vec![0, 4, 6, 12, 15]);
        assert_eq!(a.nnz(), 15);
        assert_eq!(a.rowblk, vec![0, 0, 1, 1, 1]);
        let r = a.validate();
        assert!(r.is_ok(), "{r:?}");
        assert_eq!(a.fill_ratio(7), 15.0 / 7.0);
    }

    #[test]
    fn random_access() {
        let (rp, cp) = strips();
        let a = Vbr::from_triplets(&sample(), &rp, &cp);
        assert_eq!(a.get(0, 4), 3.0);
        assert_eq!(a.get(1, 4), 0.0, "in-block structural zero");
        assert!(a.find(1, 4).is_some());
        assert_eq!(a.get(2, 3), 7.0);
        assert_eq!(a.get(2, 0), 0.0);
        assert!(a.find(2, 0).is_none(), "block (1,0) not stored");
    }

    #[test]
    fn roundtrip() {
        let (rp, cp) = strips();
        let a = Vbr::from_triplets(&sample(), &rp, &cp);
        let b = Vbr::from_triplets(&a.to_triplets(), &rp, &cp);
        assert_eq!(a, b);
    }

    #[test]
    fn view_conformance() {
        let (rp, cp) = strips();
        let r = check_view_conformance(&Vbr::from_triplets(&sample(), &rp, &cp), 0);
        assert!(r.is_ok(), "{r:?}");
        // Degenerate 1x1 strips == scalar CSR-like storage.
        let rp1: Vec<usize> = (0..=5).collect();
        let r = check_view_conformance(&Vbr::from_triplets(&sample(), &rp1, &rp1), 0);
        assert!(r.is_ok(), "{r:?}");
    }

    #[test]
    fn column_cursor_sorted() {
        let (rp, cp) = strips();
        let a = Vbr::from_triplets(&sample(), &rp, &cp);
        let mut cur = a.cursor(0, 1, 0, false);
        let mut cols = Vec::new();
        while a.advance(&mut cur) {
            cols.push(cur.keys[0]);
        }
        assert_eq!(cols, vec![0, 1, 4]);
    }

    #[test]
    #[should_panic(expected = "partition")]
    fn bad_strips_rejected() {
        let _ = Vbr::from_triplets(&sample(), &[0, 2, 4], &[0, 2, 4, 5]);
    }

    #[test]
    fn validate_rejects_corrupt() {
        let (rp, cp) = strips();
        let mut a = Vbr::from_triplets(&sample(), &rp, &cp);
        a.bindx[1] = 9;
        assert!(a.validate().is_err());
        let mut b = Vbr::from_triplets(&sample(), &rp, &cp);
        b.indx[1] = 3;
        assert!(b.validate().is_err());
        let mut c = Vbr::from_triplets(&sample(), &rp, &cp);
        c.rowblk[0] = 1;
        assert!(c.validate().is_err());
    }
}
